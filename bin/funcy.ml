(* funcy — the FuncyTuner command-line driver.

   Subcommands:
     list         benchmarks and platforms
     profile      Caliper-profile a benchmark at O3 and show hot loops
     decisions    per-region code-generation decisions for a CV
     tune         run one tuning algorithm on one benchmark/platform
     selfcheck    differential checkpoint/resume equivalence oracle
     experiment   regenerate paper tables/figures (same ids as bench/main)
     report       summarize a run from its --trace file *)

open Cmdliner
open Ft_prog
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner
module Engine = Ft_engine.Engine
module Cache = Ft_engine.Cache
module Quarantine = Ft_engine.Quarantine
module Checkpoint = Ft_engine.Checkpoint
module Trace = Ft_obs.Trace

let program_arg =
  let parse s =
    match Ft_suite.Suite.find s with
    | Some p -> Ok p
    | None -> Error (`Msg ("unknown benchmark: " ^ s))
  in
  let print fmt (p : Program.t) = Format.pp_print_string fmt p.Program.name in
  Arg.conv (parse, print)

let platform_arg =
  let parse s =
    match Platform.of_short_name (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None -> Error (`Msg "platform must be one of: opteron, snb, bdw")
  in
  let print fmt p = Format.pp_print_string fmt (Platform.short_name p) in
  Arg.conv (parse, print)

let program_t =
  Arg.(
    required
    & opt (some program_arg) None
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Benchmark (lulesh, cl, amg, optewe, bwaves, fma3d, swim).")

let platform_t =
  Arg.(
    value
    & opt platform_arg Platform.Broadwell
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:"Platform: opteron, snb or bdw (default bdw).")

let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N" ~doc:"Experiment seed (default 42).")

let pool_t =
  Arg.(
    value & opt int 1000
    & info [ "k"; "pool" ] ~docv:"K"
        ~doc:"Pre-sampled CV pool size / evaluation budget (default 1000).")

let bounded_int_arg ~what ~min_v =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= min_v -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "%s must be >= %d, got %d" what min_v n))
    | None ->
        Error (`Msg (Printf.sprintf "invalid value '%s', expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_t =
  Arg.(
    value
    & opt (bounded_int_arg ~what:"jobs" ~min_v:1) 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluation-engine workers (default 1 = sequential). \
           Results are bit-identical for any value.")

let backend_t =
  let backend_arg =
    let parse s =
      match Ft_engine.Backend.of_name s with
      | Some b -> Ok b
      | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown backend '%s', expected %s" s
                  (String.concat " or "
                     (List.map Ft_engine.Backend.to_name Ft_engine.Backend.all))))
    in
    let print fmt b =
      Format.pp_print_string fmt (Ft_engine.Backend.to_name b)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt backend_arg Ft_engine.Backend.default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Evaluation substrate: $(b,domains) (default; shared-memory OCaml \
           domains), $(b,processes) (a pool of forked workers — a \
           crashing evaluation loses one worker, never the search) or \
           $(b,sharded) (a coordinator over $(b,--nodes) forked node \
           processes with pre-partitioned shards and work stealing).  Tune \
           output and logical traces are byte-identical across backends.")

let kill_workers_t =
  Arg.(
    value
    & opt (some (bounded_int_arg ~what:"kill-workers-after" ~min_v:0)) None
    & info [ "kill-workers-after" ] ~docv:"N"
        ~doc:
          "Testing hook ($(b,--backend processes) only): in each batch's \
           first round, one worker SIGKILLs itself after completing \
           $(docv) jobs, exercising crash recovery; results still match \
           an uninterrupted run.")

let nodes_t =
  Arg.(
    value
    & opt (bounded_int_arg ~what:"nodes" ~min_v:1) 1
    & info [ "nodes" ] ~docv:"N"
        ~doc:
          "Node count for $(b,--backend sharded) (default 1): the \
           coordinator pre-partitions each batch into $(docv) contiguous \
           shards, one per forked node, rebalanced by work stealing.  \
           Results are bit-identical for any value.")

let kill_node_t =
  Arg.(
    value
    & opt (some (bounded_int_arg ~what:"kill-node-after" ~min_v:0)) None
    & info [ "kill-node-after" ] ~docv:"N"
        ~doc:
          "Testing hook ($(b,--backend sharded) only): in each batch's \
           first round, node 0 SIGKILLs itself after completing $(docv) \
           jobs — its unfed shard migrates to surviving nodes and its \
           in-flight job retries; results still match an uninterrupted \
           run.")

let shared_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "shared-cache" ] ~docv:"PATH"
        ~doc:
          "Share the measurement cache with concurrent funcy processes \
           through $(docv): adopt its entries at startup and merge ours \
           back at exit, under an exclusive file lock.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print engine telemetry (builds, runs, cache, timers) at exit.")

let maybe_stats stats telemetry =
  if stats then (
    print_newline ();
    print_string (Ft_engine.Telemetry.render telemetry))

(* --- run tracing flags ------------------------------------------------- *)

type trace_spec = {
  trace_path : string option;
  trace_clock : Trace.clock;
  trace_format : [ `Jsonl | `Chrome ];
}

let trace_spec_t =
  let path_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record every engine and search event (jobs, cache decisions, \
             faults, retries, phase spans) and write the trace to $(docv) \
             at exit.  Without this flag not a single event is recorded \
             and all output is byte-identical to an untraced run.")
  in
  let clock_t =
    Arg.(
      value
      & opt (enum [ ("wall", Trace.Wall); ("logical", Trace.Logical) ])
          Trace.Wall
      & info [ "trace-clock" ] ~docv:"CLOCK"
          ~doc:
            "$(b,wall) (default) stamps events with elapsed seconds and \
             records schedule-dependent detail (cache hit/miss split, \
             builds, timers); $(b,logical) stamps canonical event order \
             only, making the trace bytes reproducible at any $(b,--jobs) \
             count.")
  in
  let format_t =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "$(b,jsonl) (default): one JSON event per line, readable by \
             $(b,funcy report); $(b,chrome): a chrome://tracing / Perfetto \
             trace_event file.")
  in
  let combine trace_path trace_clock trace_format =
    { trace_path; trace_clock; trace_format }
  in
  Term.(const combine $ path_t $ clock_t $ format_t)

let make_trace spec =
  match spec.trace_path with
  | None -> None
  | Some _ -> Some (Trace.create ~clock:spec.trace_clock ())

let export_trace spec trace =
  match (spec.trace_path, trace) with
  | Some path, Some t -> (
      match spec.trace_format with
      | `Jsonl -> Ft_obs.Export.write_jsonl t ~path
      | `Chrome -> Ft_obs.Export.write_chrome t ~path)
  | _ -> ()

(* --- fault / recovery / checkpoint flags ------------------------------- *)

type resilience = {
  faults : bool;
  fault_rate : float;
  fault_seed : int;
  timeout : float option;
  repeats : int;
  retries : int;
  checkpoint : string option;
  die_after : int option;
  cache_format : Cache.format;
}

let resilience_t =
  let rate_arg =
    let parse s =
      match float_of_string_opt s with
      | Some r when r >= 0.0 && r <= 1.0 -> Ok r
      | Some r ->
          Error (`Msg (Printf.sprintf "fault rate must be in [0,1], got %g" r))
      | None ->
          Error (`Msg (Printf.sprintf "invalid value '%s', expected a float" s))
    in
    Arg.conv (parse, fun fmt r -> Format.fprintf fmt "%g" r)
  in
  let timeout_arg =
    let parse s =
      match float_of_string_opt s with
      | Some t when t > 0.0 -> Ok t
      | Some t ->
          Error (`Msg (Printf.sprintf "timeout must be positive, got %g" t))
      | None ->
          Error (`Msg (Printf.sprintf "invalid value '%s', expected a float" s))
    in
    Arg.conv (parse, fun fmt t -> Format.fprintf fmt "%g" t)
  in
  let faults_t =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Arm the deterministic fault-injection model: compile \
             failures, crashes, wrong answers, hangs and timing outliers, \
             all reproducible from $(b,--fault-seed) at any $(b,--jobs).")
  in
  let rate_t =
    Arg.(
      value & opt rate_arg 0.1
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:"Overall injected fault rate in [0,1] (default 0.1).")
  in
  let fault_seed_t =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed of the fault schedule (default 1).")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some timeout_arg) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-run (simulated) wall-clock budget; hung runs exceeding it \
             are killed, retried if transient, then quarantined (default \
             3600).")
  in
  let repeats_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"repeats" ~min_v:1) 1
      & info [ "repeats" ] ~docv:"N"
          ~doc:
            "Measurements per configuration, aggregated by outlier-robust \
             median selection (default 1).")
  in
  let retries_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"retries" ~min_v:0) 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget for transient crashes/timeouts (default 2).")
  in
  let checkpoint_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Periodically snapshot the measurement cache (and quarantine \
             list) to $(docv); if $(docv) already exists, resume from it \
             — a killed search re-run with the same arguments reaches a \
             bit-identical result.")
  in
  let die_after_t =
    Arg.(
      value
      & opt (some (bounded_int_arg ~what:"die-after" ~min_v:1)) None
      & info [ "die-after" ] ~docv:"N"
          ~doc:
            "Testing hook: flush the checkpoint and abort (exit 99) after \
             $(docv) engine jobs, simulating a mid-search crash.")
  in
  let cache_format_t =
    let format_arg =
      let parse s =
        match Cache.format_of_string s with
        | Some f -> Ok f
        | None ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown cache format '%s', expected text or binary" s))
      in
      Arg.conv
        (parse, fun fmt f -> Format.pp_print_string fmt (Cache.format_to_string f))
    in
    Arg.(
      value
      & opt format_arg Cache.default_format
      & info [ "cache-format" ] ~docv:"FMT"
          ~doc:
            "On-disk format of the cache files this run writes \
             ($(b,--checkpoint) snapshots, $(b,--shared-cache), serve \
             state): $(b,binary) (default; versioned append-only records, \
             O(delta) shared-cache syncs) or $(b,text) (the v1 \
             line-oriented format, human-inspectable).  Reading \
             auto-detects either format, so old checkpoints and \
             $(b,--warm-start) files keep working and either setting \
             reaches bit-identical results.")
  in
  let combine faults fault_rate fault_seed timeout repeats retries checkpoint
      die_after cache_format =
    { faults; fault_rate; fault_seed; timeout; repeats; retries; checkpoint;
      die_after; cache_format }
  in
  Term.(
    const combine $ faults_t $ rate_t $ fault_seed_t $ timeout_t $ repeats_t
    $ retries_t $ checkpoint_t $ die_after_t $ cache_format_t)

let policy_of_resilience r =
  let base = Engine.default_policy in
  {
    base with
    Engine.faults =
      (if r.faults then
         Some (Ft_fault.Fault.make ~seed:r.fault_seed ~rate:r.fault_rate ())
       else None);
    timeout_s = Option.value ~default:base.Engine.timeout_s r.timeout;
    max_retries = r.retries;
    repeats = r.repeats;
  }

(* Build the engine the session (or lab) will evaluate through: arm the
   policy and, with --checkpoint, attach the snapshot file — resuming from
   it when it already exists.  Resume chatter goes to stderr so stdout
   stays byte-comparable across resumed runs. *)
let make_engine ~jobs ?backend ?kill_workers_after ?nodes ?kill_node_after
    ?trace r =
  let policy = policy_of_resilience r in
  match r.checkpoint with
  | None ->
      Engine.create ~jobs ?backend ?kill_workers_after ?nodes
        ?kill_node_after ~policy ?trace ()
  | Some path ->
      let ck = Checkpoint.create ~path ~format:r.cache_format () in
      let cache, quarantine =
        match if Checkpoint.exists ck then Checkpoint.load ck else None with
        | Some (cache, quarantine) ->
            Printf.eprintf
              "funcy: resuming from %s (%d cached summaries, %d quarantined)\n%!"
              path (Cache.length cache)
              (Quarantine.length quarantine);
            Trace.checkpoint_loaded trace ~path ~entries:(Cache.length cache);
            (cache, quarantine)
        | None -> (Cache.create (), Quarantine.create ())
      in
      Engine.create ~jobs ?backend ?kill_workers_after ?nodes
        ?kill_node_after ~cache ~quarantine ~policy ~checkpoint:ck ?trace ()

(* --shared-cache: one read-merge-write against the shared file at startup
   (adopting whatever other processes committed) and one at exit
   (publishing what this run measured).  Chatter goes to stderr so stdout
   stays byte-comparable with unshared runs. *)
let adopt_shared_cache engine ~format = function
  | None -> ()
  | Some path ->
      let adopted = Cache.sync ~format (Engine.cache engine) ~path in
      if adopted > 0 then
        Printf.eprintf "funcy: adopted %d cached summaries from %s\n%!"
          adopted path

let publish_shared_cache engine ~format = function
  | None -> ()
  | Some path -> ignore (Cache.sync ~format (Engine.cache engine) ~path)

(* The simulated crash still flushes the checkpoint and exports the trace
   collected so far: a post-mortem [funcy report] on a crashed run is
   precisely the observability story. *)
let arm_die_after engine ?(on_die = fun () -> ()) = function
  | None -> ()
  | Some n ->
      Ft_engine.Telemetry.set_progress (Engine.telemetry engine)
        (fun ~completed ~expected:_ ->
          if completed >= n then begin
            Engine.flush_checkpoint engine;
            on_die ();
            Printf.eprintf "funcy: --die-after %d: simulated crash\n%!" n;
            exit 99
          end)

(* --- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Ft_util.Table.print (Ft_suite.Suite.table1 ());
    print_newline ();
    Ft_util.Table.print (Ft_suite.Suite.table2 ())
  in
  Cmd.v (Cmd.info "list" ~doc:"Show the benchmark suite and platforms")
    Term.(const run $ const ())

(* --- profile ---------------------------------------------------------- *)

let profile_cmd =
  let run program platform seed =
    let toolchain = Ft_machine.Toolchain.make platform in
    let input = Ft_suite.Suite.tuning_input platform program in
    let report =
      Ft_caliper.Profiler.run ~toolchain ~program ~input
        ~rng:(Ft_util.Rng.create seed) ()
    in
    Printf.printf "Caliper profile of %s on %s (input %s):\n\n"
      program.Program.name (Platform.name platform) input.Input.label;
    print_string (Ft_caliper.Report.render report);
    let hot = Ft_caliper.Report.hot_loops ~threshold:0.01 report in
    Printf.printf "\nhot loops (>= 1%%): %s\n" (String.concat ", " hot)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Caliper-profile a benchmark at O3")
    Term.(const run $ program_t $ platform_t $ seed_t)

(* --- decisions -------------------------------------------------------- *)

let decisions_cmd =
  let cv_arg =
    (* A dedicated converter so a typo yields a cmdliner usage error (with
       exit code 124) instead of an uncaught exception and backtrace. *)
    let parse s =
      match Ft_flags.Cv.of_compact s with
      | Some cv -> Ok cv
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "malformed compact CV '%s': expected dot-separated value \
                   indices as printed by 'funcy tune' (e.g. the O3 default \
                   is '%s')"
                  s
                  (Ft_flags.Cv.to_compact Ft_flags.Cv.o3)))
    in
    let print fmt cv =
      Format.pp_print_string fmt (Ft_flags.Cv.to_compact cv)
    in
    Arg.conv (parse, print)
  in
  let cv_t =
    Arg.(
      value
      & opt (some cv_arg) None
      & info [ "cv" ] ~docv:"COMPACT"
          ~doc:
            "Compact CV encoding (dot-separated value indices); defaults \
             to the O3 baseline.")
  in
  let run program platform cv_compact =
    let cv = Option.value ~default:Ft_flags.Cv.o3 cv_compact in
    let toolchain = Ft_machine.Toolchain.make platform in
    let input = Ft_suite.Suite.tuning_input platform program in
    let binary = Ft_machine.Toolchain.compile_uniform toolchain ~cv program in
    let run_report =
      Ft_machine.Exec.evaluate ~arch:toolchain.Ft_machine.Toolchain.arch
        ~input binary
    in
    Printf.printf "%s on %s with: %s\n" program.Program.name
      (Platform.name platform) (Ft_flags.Cv.render cv);
    Printf.printf "end-to-end: %.3f s\n\n" run_report.Ft_machine.Exec.total_s;
    let table =
      Ft_util.Table.create ~title:"Per-region decisions"
        [ "region"; "seconds"; "decision" ]
    in
    List.iter
      (fun (r : Ft_machine.Exec.region_report) ->
        Ft_util.Table.add_row table
          [
            r.Ft_machine.Exec.name;
            Ft_util.Table.fmt_f r.Ft_machine.Exec.seconds;
            Ft_compiler.Decision.summary r.Ft_machine.Exec.decision;
          ])
      (run_report.Ft_machine.Exec.loops
      @ [ run_report.Ft_machine.Exec.nonloop ]);
    Ft_util.Table.print table;
    print_newline ();
    print_string (Ft_machine.Explain.render run_report)
  in
  Cmd.v
    (Cmd.info "decisions"
       ~doc:"Show per-region code-generation decisions for a CV")
    Term.(const run $ program_t $ platform_t $ cv_t)

(* --- tune ------------------------------------------------------------- *)

(* The same bytes the tuning server returns for this search — the
   byte-identity half of the serve contract lives in [Result.render]. *)
let print_result (r : Result.t) = print_string (Result.render r)

let tune_cmd =
  let algo_t =
    let algos =
      [
        ("cfr", `Cfr);
        ("cfr-adaptive", `Adaptive);
        ("adaptive-sh", `AdaptiveSh);
        ("random", `Random);
        ("fr", `Fr);
        ("greedy", `Greedy);
        ("opentuner", `Opentuner);
        ("cobayn", `Cobayn);
        ("ce", `Ce);
        ("pgo", `Pgo);
      ]
    in
    Arg.(
      value
      & opt (enum algos) `Cfr
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "One of: cfr, cfr-adaptive, adaptive-sh, random, fr, greedy, \
             opentuner, cobayn, ce, pgo (default cfr).")
  in
  let top_x_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "top-x" ] ~docv:"X"
          ~doc:
            "Space-focusing width (default: each algorithm's own — 20 \
             for cfr/cfr-adaptive, 4 for adaptive-sh).")
  in
  let budget_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "adaptive-sh only: total measurement budget for the \
             successive-halving allocator (default: a quarter of the \
             pool size).")
  in
  let warm_start_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm-start" ] ~docv:"CACHE"
          ~doc:
            "adaptive-sh only: a previous run's persistent cache file \
             (e.g. a --shared-cache); arms whose assignments it already \
             holds are pre-scored as allocator priors, costing no \
             budget.")
  in
  let run program platform seed pool jobs backend kill_workers nodes
      kill_node shared_cache stats resilience tspec algo top_x budget
      warm_start =
    let trace = make_trace tspec in
    let engine =
      make_engine ~jobs ~backend ?kill_workers_after:kill_workers ~nodes
        ?kill_node_after:kill_node ?trace resilience
    in
    adopt_shared_cache engine ~format:resilience.cache_format shared_cache;
    arm_die_after engine
      ~on_die:(fun () -> export_trace tspec trace)
      resilience.die_after;
    let session =
      Tuner.make_session ~pool_size:pool ~engine ~platform ~program
        ~input:(Ft_suite.Suite.tuning_input platform program)
        ~seed ()
    in
    let ctx = session.Tuner.ctx in
    Printf.printf "%s on %s: T_O3 = %.3f s, %d modules outlined\n"
      program.Program.name (Platform.name platform)
      ctx.Funcytuner.Context.baseline_s
      (Ft_outline.Outline.module_count session.Tuner.outline - 1);
    (match (Engine.policy engine).Engine.faults with
    | Some f -> Printf.printf "fault model: %s\n" (Ft_fault.Fault.describe f)
    | None -> ());
    print_newline ();
    Fun.protect ~finally:(fun () ->
        Engine.flush_checkpoint engine;
        publish_shared_cache engine ~format:resilience.cache_format shared_cache;
        export_trace tspec trace;
        maybe_stats stats (Funcytuner.Context.telemetry ctx))
    @@ fun () ->
    match algo with
    | `Cfr -> print_result (Tuner.run_cfr ?top_x session)
    | `Adaptive ->
        print_result
          (Funcytuner.Adaptive.run ?top_x ctx
             (Lazy.force session.Tuner.collection))
    | `AdaptiveSh ->
        let warm = Option.map Ft_engine.Cache.load warm_start in
        print_result
          (Funcytuner.Adaptive_sh.run ?top_x ?budget ?warm ctx
             (Lazy.force session.Tuner.collection))
    | `Random -> print_result (Funcytuner.Random_search.run ctx)
    | `Fr -> print_result (Funcytuner.Fr.run ctx session.Tuner.outline)
    | `Greedy ->
        let g =
          Funcytuner.Greedy.run ctx (Lazy.force session.Tuner.collection)
        in
        print_result g.Funcytuner.Greedy.realized;
        Printf.printf "  G.Independent bound: speedup %.3f\n"
          g.Funcytuner.Greedy.independent_speedup
    | `Opentuner ->
        let o = Ft_opentuner.Ensemble.run ctx in
        print_result o.Ft_opentuner.Ensemble.result;
        Printf.printf "  technique usage: %s\n"
          (String.concat ", "
             (List.map
                (fun (n, u) -> Printf.sprintf "%s=%d" n u)
                o.Ft_opentuner.Ensemble.technique_uses))
    | `Cobayn ->
        let toolchain = Ft_machine.Toolchain.make platform in
        let model =
          Ft_cobayn.Model.train ~toolchain ~variant:Ft_cobayn.Features.Static
            ~corpus_seed:seed ()
        in
        print_result (Ft_cobayn.Model.tune model ctx)
    | `Ce ->
        let toolchain = Ft_machine.Toolchain.make platform in
        let input = Ft_suite.Suite.tuning_input platform program in
        let ce =
          Ft_baselines.Ce.run
            ?faults:(Engine.policy engine).Engine.faults ?trace ~toolchain
            ~program ~input
            ~rng:(Ft_util.Rng.create seed)
            ()
        in
        Printf.printf
          "CE: speedup %.3f over O3 after %d evaluations (%d eliminations%s)\n\
          \  final CV: %s\n"
          ce.Ft_baselines.Ce.speedup ce.Ft_baselines.Ce.evaluations
          (List.length ce.Ft_baselines.Ce.steps)
          (if ce.Ft_baselines.Ce.failures > 0 then
             Printf.sprintf ", %d trials lost to faults"
               ce.Ft_baselines.Ce.failures
           else "")
          (Ft_flags.Cv.render ce.Ft_baselines.Ce.cv)
    | `Pgo ->
        let toolchain = Ft_machine.Toolchain.make platform in
        let input = Ft_suite.Suite.tuning_input platform program in
        let pgo =
          Ft_baselines.Pgo_driver.run ?trace ~toolchain ~program ~input
            ~rng:(Ft_util.Rng.create seed) ()
        in
        Printf.printf "PGO: speedup %.3f over O3%s\n"
          pgo.Ft_baselines.Pgo_driver.speedup
          (match pgo.Ft_baselines.Pgo_driver.diagnostic with
          | Some msg -> "\n  note: " ^ msg
          | None -> "")
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Run one auto-tuning algorithm")
    Term.(
      const run $ program_t $ platform_t $ seed_t $ pool_t $ jobs_t
      $ backend_t $ kill_workers_t $ nodes_t $ kill_node_t $ shared_cache_t
      $ stats_t $ resilience_t $ trace_spec_t $ algo_t $ top_x_t $ budget_t
      $ warm_start_t)

(* --- selfcheck --------------------------------------------------------- *)

(* Byte-exact rendering of a search result for the differential oracle:
   floats in %h so two runs compare equal exactly when their results are
   bit-identical, never merely close. *)
let render_result_exact (r : Result.t) =
  let compact_config = function
    | Result.Whole_program cv -> "uniform:" ^ Ft_flags.Cv.to_compact cv
    | Result.Per_module assignment ->
        String.concat ","
          (List.map
             (fun (m, cv) -> m ^ "=" ^ Ft_flags.Cv.to_compact cv)
             assignment)
  in
  Printf.sprintf "%s|%h|%h|%d|%s|%s" r.Result.algorithm r.Result.best_seconds
    r.Result.speedup r.Result.evaluations
    (compact_config r.Result.configuration)
    (String.concat "," (List.map (Printf.sprintf "%h") r.Result.trace))

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_scratch_dir f =
  let path = Filename.temp_file "funcy-selfcheck" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> remove_tree path) (fun () -> f path)

let selfcheck_cmd =
  let algos =
    [
      ("cfr", `Cfr);
      ("fr", `Fr);
      ("random", `Random);
      ("adaptive-sh", `AdaptiveSh);
    ]
  in
  let algos_t =
    Arg.(
      value
      & opt_all (enum algos) []
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Search to check: cfr, fr, random or adaptive-sh (repeatable; \
             default: all four).")
  in
  let kill_at_t =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "kill-at" ] ~docv:"N,..."
          ~doc:
            "Evaluation boundaries to kill at (comma-separated), clamped \
             to the reference run's range.  Default: the first, a middle \
             and the last boundary.")
  in
  let serve_t =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Instead of the checkpoint/resume oracle, run the \
             kill-restart equivalence oracle for the tuning service: a \
             supervised, journalled daemon is SIGKILLed at every \
             request boundary and mid-search, clients \
             reconnect-and-resume, and every delivered result must be \
             byte-identical to an unkilled daemon's and to a solo run; \
             a spec that keeps crashing the daemon must end as a typed \
             poisoned rejection.  Exits 1 on any divergence.")
  in
  (* The service-side oracle: forked supervised daemons, so it must run
     before this process spawns any domain. *)
  let run_serve_oracle program platform seed pool jobs backend resilience =
    let policy = policy_of_resilience resilience in
    with_scratch_dir @@ fun scratch ->
    let make_runner ~state_dir =
      let make_engine ?cache ?quarantine ?checkpoint () =
        Engine.create ~jobs ~backend ?cache ?quarantine ~policy ?checkpoint ()
      in
      Ft_serve.Runner.make_durable ~make_engine ~state_dir ~checkpoint_every:8
        ~cache_format:resilience.cache_format ()
    in
    let spec s =
      {
        Ft_serve.Protocol.benchmark = program.Program.name;
        platform = Platform.short_name platform;
        algorithm = "cfr";
        seed = s;
        pool;
        top_x = None;
      }
    in
    let specs =
      [ ("sc-1", "t0", spec seed); ("sc-2", "t1", spec (seed + 1)) ]
    in
    let outcome =
      Ft_serve.Servecheck.run ~scratch ~make_runner ~specs
        ~poison:("sc-poison", "t0", spec (seed + 2))
        ()
    in
    print_string (Ft_serve.Servecheck.render outcome);
    if not (Ft_serve.Servecheck.passed outcome) then exit 1
  in
  let run program platform seed pool jobs backend kill_workers nodes
      kill_node resilience algos_selected kill_at serve =
    if serve then run_serve_oracle program platform seed pool jobs backend
      resilience
    else begin
    let policy = policy_of_resilience resilience in
    let input = Ft_suite.Suite.tuning_input platform program in
    let algos_selected =
      match algos_selected with
      | [] -> [ `Cfr; `Fr; `Random; `AdaptiveSh ]
      | l -> l
    in
    with_scratch_dir @@ fun scratch ->
    let failures =
      List.filter
        (fun algo ->
          let name =
            match algo with
            | `Cfr -> "cfr"
            | `Fr -> "fr"
            | `Random -> "random"
            | `AdaptiveSh -> "adaptive-sh"
          in
          let label =
            Printf.sprintf "%s (%s on %s, seed %d, jobs %d, backend %s)" name
              program.Program.name
              (Platform.short_name platform)
              seed jobs
              (Ft_engine.Backend.to_name backend)
          in
          let make_engine ~cache ~quarantine ~checkpoint ~trace =
            Engine.create ~jobs ~backend ?kill_workers_after:kill_workers
              ~nodes ?kill_node_after:kill_node ~cache ~quarantine ~policy
              ?checkpoint ?trace ()
          in
          let search engine =
            let session =
              Tuner.make_session ~pool_size:pool ~engine ~platform ~program
                ~input ~seed ()
            in
            render_result_exact
              (match algo with
              | `Cfr -> Tuner.run_cfr session
              | `Fr -> Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline
              | `Random -> Funcytuner.Random_search.run session.Tuner.ctx
              | `AdaptiveSh ->
                  Funcytuner.Adaptive_sh.run session.Tuner.ctx
                    (Lazy.force session.Tuner.collection))
          in
          let outcome =
            Ft_engine.Selfcheck.run ?kill_points:kill_at
              ~format:resilience.cache_format ~scratch ~label ~make_engine
              ~search ()
          in
          print_string (Ft_engine.Selfcheck.render outcome);
          not (Ft_engine.Selfcheck.passed outcome))
        algos_selected
    in
    if failures <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:
         "Differential checkpoint/resume equivalence oracle: for each \
          selected search, compare an uninterrupted run against runs \
          killed at several evaluation boundaries and resumed from their \
          checkpoints (plus a cache-merge round-trip), asserting \
          byte-identical results, caches, quarantines and normalized \
          logical traces.  With $(b,--serve), check the tuning service's \
          kill-restart equivalence instead.  Exits 1 on any divergence.  \
          $(b,--checkpoint) and $(b,--die-after) are managed internally \
          and ignored here.")
    Term.(
      const run $ program_t $ platform_t $ seed_t $ pool_t $ jobs_t
      $ backend_t $ kill_workers_t $ nodes_t $ kill_node_t $ resilience_t
      $ algos_t $ kill_at_t $ serve_t)

(* --- experiment ------------------------------------------------------- *)

let experiment_names =
  [
    "tab1"; "tab2"; "fig1"; "fig5a"; "fig5b"; "fig5c"; "fig6"; "fig7a";
    "fig7b"; "fig8"; "fig9"; "tab3"; "ablations"; "faults";
  ]

let experiment_cmd =
  let csv_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR"
          ~doc:
            "Also write each figure-shaped experiment as CSV into $(docv)              (created if missing).")
  in
  let experiment_arg =
    (* Validated up front so a typo is a usage error with the valid names,
       not an uncaught exception after the preceding experiments ran. *)
    let parse s =
      if List.mem s experiment_names then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "unknown experiment '%s', expected one of: %s" s
                (String.concat ", " experiment_names)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let names_t =
    Arg.(
      value & pos_all experiment_arg []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"fig1 fig5a fig5b fig5c fig6 fig7a fig7b fig8 fig9 tab1 tab2 \
                tab3 ablations faults (default: fig5c).")
  in
  let run seed pool jobs backend kill_workers nodes kill_node shared_cache
      stats resilience tspec csv_dir names =
    let trace = make_trace tspec in
    let engine =
      make_engine ~jobs ~backend ?kill_workers_after:kill_workers ~nodes
        ?kill_node_after:kill_node ?trace resilience
    in
    adopt_shared_cache engine ~format:resilience.cache_format shared_cache;
    arm_die_after engine
      ~on_die:(fun () -> export_trace tspec trace)
      resilience.die_after;
    let lab = Ft_experiments.Lab.create ~seed ~pool_size:pool ~engine () in
    let open Ft_experiments in
    let emit name series =
      Series.print series;
      match csv_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (name ^ ".csv") in
          Csv.write ~path series;
          Printf.printf "(wrote %s)\n" path
    in
    let dispatch = function
      | "tab1" -> Ft_util.Table.print (Ft_suite.Suite.table1 ())
      | "tab2" -> Ft_util.Table.print (Ft_suite.Suite.table2 ())
      | "fig1" -> emit "fig1" (Fig1.run lab)
      | "fig5a" -> emit "fig5a" (Fig5.panel lab Platform.Opteron)
      | "fig5b" -> emit "fig5b" (Fig5.panel lab Platform.Sandy_bridge)
      | "fig5c" -> emit "fig5c" (Fig5.panel lab Platform.Broadwell)
      | "fig6" -> emit "fig6" (Fig6.run lab)
      | "fig7a" -> emit "fig7a" (Fig7.panel lab ~small:true)
      | "fig7b" -> emit "fig7b" (Fig7.panel lab ~small:false)
      | "fig8" -> emit "fig8" (Fig8.run lab)
      | "fig9" -> emit "fig9" (Casestudy.fig9 lab)
      | "tab3" -> Ft_util.Table.print (Casestudy.table3 lab)
      | "faults" ->
          emit "faults"
            (Faults.run ~telemetry:(Lab.telemetry lab)
               ~fault_seed:resilience.fault_seed ~seed ~pool_size:pool ~jobs
               ())
      | "ablations" ->
          emit "topx" (Ablations.top_x_sweep lab);
          Ft_util.Table.print (Ablations.convergence lab);
          Ft_util.Table.print (Ablations.adaptive_budget lab);
          emit "elimination" (Ablations.elimination_variants lab);
          Ft_util.Table.print (Ablations.critical_flags_table lab)
      | _ ->
          (* unreachable: names are validated by [experiment_arg] *)
          assert false
    in
    Fun.protect ~finally:(fun () ->
        Engine.flush_checkpoint engine;
        publish_shared_cache engine ~format:resilience.cache_format shared_cache;
        export_trace tspec trace;
        maybe_stats stats (Ft_experiments.Lab.telemetry lab))
    @@ fun () ->
    List.iter dispatch (match names with [] -> [ "fig5c" ] | n -> n)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate paper tables and figures")
    Term.(
      const run $ seed_t $ pool_t $ jobs_t $ backend_t $ kill_workers_t
      $ nodes_t $ kill_node_t $ shared_cache_t $ stats_t $ resilience_t
      $ trace_spec_t $ csv_dir_t $ names_t)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"A JSONL trace written by $(b,--trace) (default format).")
  in
  let run file =
    match Ft_obs.Report.load file with
    | Stdlib.Ok t -> print_string (Ft_obs.Report.render t)
    | Stdlib.Error msg ->
        Printf.eprintf "funcy report: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a traced run: per-phase breakdown, cache hit-rate, \
          convergence curve, fault/retry table, derived engine counters")
    Term.(const run $ file_t)

(* --- serve / client / loadgen ------------------------------------------ *)

module Serve = Ft_serve.Server
module Sproto = Ft_serve.Protocol
module Sclient = Ft_serve.Client

let socket_t =
  Arg.(
    value & opt string "funcy.sock"
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket the tuning daemon listens on (default \
           funcy.sock in the current directory).")

let serve_cmd =
  let max_queue_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"max-queue" ~min_v:1) 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: waiting requests beyond $(docv) are \
             rejected with a typed queue_full backpressure response \
             (default 256).")
  in
  let progress_every_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"progress-every" ~min_v:1) 25
      & info [ "progress-every" ] ~docv:"N"
          ~doc:
            "Engine jobs between streamed progress heartbeats (default \
             25); sockets are drained on every job regardless, so \
             requests coalesce onto an in-flight search.")
  in
  let state_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable state directory (created if missing): a \
             write-ahead request journal plus per-search checkpoint \
             snapshots.  A daemon restarted on the same $(docv) replays \
             unfinished requests, answers completed fingerprints from \
             the durable memo, resumes half-finished searches from \
             their checkpoints, and quarantines specs that keep \
             crashing it.")
  in
  let die_after_requests_t =
    Arg.(
      value
      & opt (some (bounded_int_arg ~what:"die-after-requests" ~min_v:1)) None
      & info [ "die-after-requests" ] ~docv:"N"
          ~doc:
            "Chaos hook: SIGKILL the daemon the instant the $(docv)th \
             accepted request of each boot is acknowledged.  Under \
             $(b,--supervise) with $(b,--state-dir) this exercises \
             crash recovery deterministically.")
  in
  let poison_threshold_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"poison-threshold" ~min_v:1) 3
      & info [ "poison-threshold" ] ~docv:"K"
          ~doc:
            "Journalled daemon crashes during one fingerprint's search \
             before that fingerprint is quarantined and answered with a \
             typed poisoned rejection (default 3).")
  in
  let checkpoint_every_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"checkpoint-every" ~min_v:1) 32
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "With $(b,--state-dir): snapshot a running search's cache \
             every $(docv) state-changing events (default 32).")
  in
  let supervise_t =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the daemon in a forked child under a crash monitor: \
             an abnormal death (crash, SIGKILL) is respawned with \
             capped exponential backoff up to $(b,--respawn-budget) \
             times; a clean drain ends the supervisor.")
  in
  let respawn_budget_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"respawn-budget" ~min_v:0) 16
      & info [ "respawn-budget" ] ~docv:"N"
          ~doc:"Respawns the supervisor allows (default 16).")
  in
  let run socket max_queue progress_every jobs backend kill_workers nodes
      kill_node stats resilience tspec state_dir die_after_requests
      poison_threshold checkpoint_every supervise respawn_budget =
    (* Everything engine-flavoured happens inside [daemon] so that under
       --supervise the forking supervisor parent never spawns a domain. *)
    let daemon ~generation:_ =
      let trace = make_trace tspec in
      let telemetry, runner =
        match state_dir with
        | None ->
            let engine =
              make_engine ~jobs ~backend ?kill_workers_after:kill_workers
                ~nodes ?kill_node_after:kill_node ?trace resilience
            in
            (Engine.telemetry engine, Ft_serve.Runner.make ~engine)
        | Some dir ->
            let policy = policy_of_resilience resilience in
            let make_engine ?cache ?quarantine ?checkpoint () =
              Engine.create ~jobs ~backend ?kill_workers_after:kill_workers
                ~nodes ?kill_node_after:kill_node ?cache ?quarantine ~policy
                ?checkpoint ?trace ()
            in
            ( Ft_engine.Telemetry.create (),
              Ft_serve.Runner.make_durable ~make_engine ~state_dir:dir
                ~checkpoint_every ~cache_format:resilience.cache_format () )
      in
      let config =
        {
          (Serve.default_config ~socket_path:socket) with
          max_queue;
          progress_every;
          state_dir;
          die_after_requests;
          poison_threshold;
        }
      in
      let counters =
        Fun.protect ~finally:(fun () ->
            export_trace tspec trace;
            maybe_stats stats telemetry)
        @@ fun () ->
        Serve.serve ?trace ~telemetry
          ~on_ready:(fun () ->
            Printf.eprintf "funcy serve: listening on %s\n%!" socket)
          config runner
      in
      print_endline "funcy serve: drained; lifetime counters:";
      List.iter (fun (k, v) -> Printf.printf "  %-18s %d\n" k v) counters;
      0
    in
    if supervise then begin
      let config =
        { Ft_serve.Supervisor.default_config with respawn_budget }
      in
      let outcome =
        Ft_serve.Supervisor.run
          ~on_exit:(fun ~generation status ->
            Printf.eprintf "funcy serve: generation %d %s\n%!" generation
              (Ft_serve.Supervisor.exit_status_to_string status))
          config daemon
      in
      if not outcome.Ft_serve.Supervisor.clean then exit 1
    end
    else ignore (daemon ~generation:0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning-as-a-service daemon: concurrent requests for \
          the same search coalesce onto one in-flight execution, \
          tenants are served round-robin, and completed searches are \
          memoized.  With $(b,--state-dir) every accepted request is \
          journalled before acknowledgement and a restarted daemon \
          picks up exactly where the dead one stopped; add \
          $(b,--supervise) to restart it automatically.  Stop with a \
          shutdown request (or SIGTERM): the daemon drains its queue \
          and exits.")
    Term.(
      const run $ socket_t $ max_queue_t $ progress_every_t $ jobs_t
      $ backend_t $ kill_workers_t $ nodes_t $ kill_node_t $ stats_t
      $ resilience_t $ trace_spec_t $ state_dir_t $ die_after_requests_t
      $ poison_threshold_t $ checkpoint_every_t $ supervise_t
      $ respawn_budget_t)

let wait_t =
  let wait_arg =
    let parse s =
      match float_of_string_opt s with
      | Some w when w >= 0.0 -> Ok w
      | _ -> Error (`Msg (Printf.sprintf "invalid wait '%s'" s))
    in
    Arg.conv (parse, fun fmt w -> Format.fprintf fmt "%g" w)
  in
  Arg.(
    value & opt wait_arg 5.0
    & info [ "wait" ] ~docv:"SECONDS"
        ~doc:
          "Keep retrying an absent/refusing socket for $(docv) seconds \
           before giving up (default 5; the daemon may still be \
           starting).")

let client_cmd =
  let algo_t =
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) Ft_serve.Runner.algorithms))
          "cfr"
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "One of: cfr, cfr-adaptive, adaptive-sh, fr, random (the \
             searches the service accepts; default cfr).")
  in
  let top_x_t =
    Arg.(
      value
      & opt (some (bounded_int_arg ~what:"top-x" ~min_v:1)) None
      & info [ "top-x" ] ~docv:"X"
          ~doc:"CFR space-focusing width (default: the algorithm's).")
  in
  let tenant_t =
    Arg.(
      value & opt string "cli"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant the request is accounted to (default cli).")
  in
  let id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:"Request id (default: derived from the process id).")
  in
  let quiet_t =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:"Suppress the lifecycle chatter on stderr; print only the \
                result.")
  in
  let ping_t =
    Arg.(
      value & flag
      & info [ "ping" ]
          ~doc:"Instead of tuning, check the daemon is alive and exit.")
  in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Instead of tuning, print the daemon's lifetime counters.")
  in
  let shutdown_t =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:
            "Instead of tuning, ask the daemon to drain its queue and \
             exit.")
  in
  let deadline_ms_t =
    Arg.(
      value
      & opt (some (bounded_int_arg ~what:"deadline-ms" ~min_v:1)) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Ask the server to answer within $(docv) milliseconds; a \
             request still waiting past that is rejected with a typed \
             deadline_exceeded response (protocol v2).")
  in
  let reconnect_t =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "If the daemon dies mid-stream, reconnect and resend the \
             same request id (idempotent against a $(b,--state-dir) \
             daemon's journal) instead of failing — rides out \
             supervised restarts.")
  in
  let run socket program platform seed pool algo top_x tenant id wait quiet
      ping stats shutdown deadline_ms reconnect =
    let fail failure =
      Printf.eprintf "funcy client: %s\n" (Sclient.failure_to_string failure);
      exit 1
    in
    if ping then (
      match Sclient.ping ~retry_for:wait socket with
      | Stdlib.Ok () -> print_endline "pong"; exit 0
      | Stdlib.Error failure -> fail failure);
    if stats then (
      match Sclient.stats ~retry_for:wait socket with
      | Stdlib.Ok counters ->
          List.iter (fun (k, v) -> Printf.printf "%-18s %d\n" k v) counters;
          exit 0
      | Stdlib.Error failure -> fail failure);
    if shutdown then (
      match Sclient.shutdown ~retry_for:wait socket with
      | Stdlib.Ok () -> print_endline "daemon draining"; exit 0
      | Stdlib.Error failure -> fail failure);
    let program =
      match program with
      | Some p -> p
      | None ->
          Printf.eprintf
            "funcy client: required option --benchmark is missing\n";
          exit 2
    in
    let spec =
      {
        Sproto.benchmark = program.Program.name;
        platform = Platform.short_name platform;
        algorithm = algo;
        seed;
        pool;
        top_x;
      }
    in
    let id =
      match id with Some i -> i | None -> Printf.sprintf "cli-%d" (Unix.getpid ())
    in
    let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "funcy client: %s\n%!" s) fmt in
    let on_event = function
      | Sproto.Admitted { queue_depth; _ } ->
          say "admitted (queue depth %d)" queue_depth
      | Sproto.Coalesced { leader; _ } ->
          say "coalesced onto in-flight request %s" leader
      | Sproto.Started _ -> say "search started"
      | Sproto.Progress { ticks; _ } -> say "%d engine jobs" ticks
      | _ -> ()
    in
    let submit =
      if reconnect then Sclient.tune_persistent ~attempts:8
      else Sclient.tune
    in
    match
      submit ~retry_for:wait ?deadline_ms ~on_event ~socket_path:socket ~id
        ~tenant spec
    with
    | Stdlib.Ok payload ->
        say "%s result, group of %d, search ran %.2f s"
          (Sproto.origin_to_string payload.Sproto.origin)
          payload.Sproto.group_size payload.Sproto.run_s;
        print_string payload.Sproto.text
    | Stdlib.Error failure ->
        Printf.eprintf "funcy client: %s\n" (Sclient.failure_to_string failure);
        exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit one tune request to a running daemon, stream its \
          lifecycle to stderr, and print the result — byte-identical \
          to the result block of a solo $(b,funcy tune) with the same \
          arguments.")
    Term.(
      const run $ socket_t
      $ Arg.(
          value
          & opt (some program_arg) None
          & info [ "b"; "benchmark" ] ~docv:"NAME"
              ~doc:
                "Benchmark (lulesh, cl, amg, optewe, bwaves, fma3d, swim). \
                 Required unless $(b,--ping), $(b,--stats) or \
                 $(b,--shutdown) is given.")
      $ platform_t $ seed_t $ pool_t $ algo_t $ top_x_t $ tenant_t $ id_t
      $ wait_t $ quiet_t $ ping_t $ stats_t $ shutdown_t $ deadline_ms_t
      $ reconnect_t)

let loadgen_cmd =
  let clients_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"clients" ~min_v:0) 200
      & info [ "clients" ] ~docv:"N"
          ~doc:"Total synthetic requests to play (default 200).")
  in
  let concurrency_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"concurrency" ~min_v:1) 64
      & info [ "concurrency" ] ~docv:"N"
          ~doc:"In-flight connection window (default 64).")
  in
  let tenants_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"tenants" ~min_v:1) 4
      & info [ "tenants" ] ~docv:"N"
          ~doc:"Synthetic tenants, assigned uniformly (default 4).")
  in
  let zipf_t =
    let zipf_arg =
      let parse s =
        match float_of_string_opt s with
        | Some z when z >= 0.0 -> Ok z
        | _ -> Error (`Msg (Printf.sprintf "invalid zipf exponent '%s'" s))
      in
      Arg.conv (parse, fun fmt z -> Format.fprintf fmt "%g" z)
    in
    Arg.(
      value & opt zipf_arg 1.1
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Zipf popularity exponent over the (benchmark, seed) \
             catalog: 0 is uniform, larger concentrates load on a few \
             hot searches (default 1.1).")
  in
  let seeds_per_benchmark_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"seeds-per-benchmark" ~min_v:1) 3
      & info [ "seeds-per-benchmark" ] ~docv:"N"
          ~doc:"Tune seeds 0..N-1 per benchmark in the catalog (default 3).")
  in
  let algo_t =
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) Ft_serve.Runner.algorithms))
          "cfr-adaptive"
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"Search every request asks for (default cfr-adaptive).")
  in
  let lg_pool_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"pool" ~min_v:1) 60
      & info [ "k"; "pool" ] ~docv:"K"
          ~doc:"CV pool size / evaluation budget per search (default 60).")
  in
  let benchmarks_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated benchmark catalog (default: the whole \
             suite).")
  in
  let reconnect_t =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "Resume requests whose stream died without a terminal \
             response by resending the same id after a short backoff — \
             rides out supervised daemon restarts; broken streams then \
             count as reconnects, not errors.")
  in
  let max_attempts_t =
    Arg.(
      value
      & opt (bounded_int_arg ~what:"max-attempts" ~min_v:1) 10
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Sends per request under $(b,--reconnect) (default 10).")
  in
  let run socket clients concurrency tenants zipf seed seeds_per_benchmark
      algo pool platform benchmarks wait reconnect max_attempts =
    (match Sclient.ping ~retry_for:wait socket with
    | Stdlib.Ok () -> ()
    | Stdlib.Error failure ->
        Printf.eprintf "funcy loadgen: no daemon on %s: %s\n" socket
          (Sclient.failure_to_string failure);
        exit 1);
    let config =
      {
        Ft_serve.Loadgen.socket_path = socket;
        clients;
        concurrency;
        tenants;
        zipf_s = zipf;
        seed;
        benchmarks;
        seeds_per_benchmark;
        algorithm = algo;
        platform = Platform.short_name platform;
        pool;
        reconnect;
        max_attempts;
      }
    in
    let outcome = Ft_serve.Loadgen.run config in
    print_string (Ft_serve.Loadgen.render outcome);
    if not (Ft_serve.Loadgen.passed outcome) then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Flood a running daemon with synthetic clients under zipfian \
          program popularity, report throughput, latency percentiles \
          and the coalescing mix, and verify that every coalesced \
          result is byte-identical.  Exits non-zero on any protocol \
          error or divergent result.")
    Term.(
      const run $ socket_t $ clients_t $ concurrency_t $ tenants_t $ zipf_t
      $ seed_t $ seeds_per_benchmark_t $ algo_t $ lg_pool_t $ platform_t
      $ benchmarks_t $ wait_t $ reconnect_t $ max_attempts_t)

let () =
  (* Enable --backend sharded everywhere an engine can be built. *)
  Ft_shard.Shard.install ();
  let doc = "FuncyTuner: per-loop compilation auto-tuning (ICPP'19 reproduction)" in
  let info = Cmd.info "funcy" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; profile_cmd; decisions_cmd; tune_cmd; selfcheck_cmd;
            experiment_cmd; report_cmd; serve_cmd; client_cmd; loadgen_cmd;
          ]))
