open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result
module Cfr = Funcytuner.Cfr
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag
module Exec = Ft_machine.Exec

let top_x_sweep ?(values = [ 1; 5; 10; 20; 50; 200; 1000 ]) lab =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let session = Lab.session lab Platform.Broadwell program in
  let collection = Lazy.force session.Tuner.collection in
  let rows =
    List.map
      (fun x ->
        let r = Cfr.run ~top_x:x session.Tuner.ctx collection in
        (Printf.sprintf "X=%d" x, [ r.Result.speedup ]))
      values
  in
  Series.make
    ~title:
      "Ablation: CFR top-X space-focusing width (Cloverleaf, Broadwell)"
    ~columns:[ "CFR speedup" ] rows

let convergence lab =
  let table =
    Ft_util.Table.create
      ~title:
        "Ablation: evaluations until within 0.5% of the final best \
         (Broadwell)"
      [ "Benchmark"; "Random"; "FR"; "CFR" ]
  in
  List.iter
    (fun (p : Program.t) ->
      let r = Lab.report lab Platform.Broadwell p in
      Ft_util.Table.add_row table
        [
          p.Program.name;
          string_of_int (Result.evaluations_to_best r.Tuner.random);
          string_of_int (Result.evaluations_to_best r.Tuner.fr);
          string_of_int (Result.evaluations_to_best r.Tuner.cfr);
        ])
    Ft_suite.Suite.all;
  table

(* §4.4.1: starting from a tuned per-module assignment, repeatedly revert
   any flag of the focused module's CV to its O3 default if doing so does
   not degrade the (noise-free) end-to-end runtime. *)
let eliminate_for_module session assignment focus =
  let evaluate assignment =
    let binary =
      Tuner.build_configuration session (Result.Per_module assignment)
    in
    let input = session.Tuner.ctx.Funcytuner.Context.input in
    (Exec.evaluate
       ~arch:
         session.Tuner.ctx.Funcytuner.Context.toolchain
           .Ft_machine.Toolchain.arch
       ~input binary)
      .Exec.total_s
  in
  let set_cv assignment cv =
    List.map (fun (m, c) -> if m = focus then (m, cv) else (m, c)) assignment
  in
  let current = ref assignment in
  let current_s = ref (evaluate assignment) in
  let improved = ref true in
  while !improved do
    improved := false;
    Array.iter
      (fun flag ->
        let cv = List.assoc focus !current in
        let default = Flag.default_o3 flag in
        if Cv.get cv flag <> default then begin
          let trial = set_cv !current (Cv.set cv flag default) in
          let s = evaluate trial in
          (* "does not degrade": allow a hair of slack for coupling
             rounding. *)
          if s <= !current_s *. 1.002 then begin
            current := trial;
            current_s := Float.min s !current_s;
            improved := true
          end
        end)
      Flag.all
  done;
  let cv = List.assoc focus !current in
  Array.to_list Flag.all
  |> List.filter_map (fun flag ->
         if Cv.get cv flag <> Flag.default_o3 flag then
           Some
             (Printf.sprintf "%s=%s" (Flag.name flag) (Cv.value_name cv flag))
         else None)

let critical_flags lab (program : Program.t) =
  let session = Lab.session lab Platform.Broadwell program in
  let report = Lab.report lab Platform.Broadwell program in
  match report.Tuner.cfr.Result.configuration with
  | Result.Whole_program _ -> []
  | Result.Per_module assignment ->
      let hot = session.Tuner.outline.Ft_outline.Outline.hot in
      List.map
        (fun m -> (m, eliminate_for_module session assignment m))
        hot

let adaptive_budget lab =
  let table =
    Ft_util.Table.create
      ~title:
        "Ablation: early-stopping CFR vs full CFR (Broadwell) — speedup and \
         evaluations spent"
      [ "Benchmark"; "CFR"; "evals"; "CFR-adaptive"; "evals(adaptive)" ]
  in
  List.iter
    (fun (p : Program.t) ->
      let session = Lab.session lab Platform.Broadwell p in
      let collection = Lazy.force session.Tuner.collection in
      let full = (Lab.report lab Platform.Broadwell p).Tuner.cfr in
      let adaptive =
        Funcytuner.Adaptive.run session.Tuner.ctx collection
      in
      Ft_util.Table.add_row table
        [
          p.Program.name;
          Ft_util.Table.fmt_f full.Result.speedup;
          string_of_int full.Result.evaluations;
          Ft_util.Table.fmt_f adaptive.Result.speedup;
          string_of_int adaptive.Result.evaluations;
        ])
    Ft_suite.Suite.all;
  table

type budget_point = { budget : int; evaluations : int; speedup : float }

type quality_curve = {
  benchmark : string;
  cfr_speedup : float;
  cfr_evaluations : int;
  points : budget_point list;
}

let quality_vs_budget ?(divisors = [ 16; 8; 4; 2 ]) lab =
  let divisors = List.sort_uniq (fun a b -> compare b a) divisors in
  let k = Lab.pool_size lab in
  List.map
    (fun (p : Program.t) ->
      let session = Lab.session lab Platform.Broadwell p in
      let collection = Lazy.force session.Tuner.collection in
      let cfr = (Lab.report lab Platform.Broadwell p).Tuner.cfr in
      let points =
        List.map
          (fun d ->
            let budget = max 2 (k / d) in
            let r =
              Funcytuner.Adaptive_sh.run ~budget session.Tuner.ctx collection
            in
            {
              budget;
              evaluations = r.Result.evaluations;
              speedup = r.Result.speedup;
            })
          divisors
      in
      {
        benchmark = p.Program.name;
        cfr_speedup = cfr.Result.speedup;
        cfr_evaluations = cfr.Result.evaluations;
        points;
      })
    Ft_suite.Suite.all

let quality_vs_budget_table curves =
  let columns =
    match curves with
    | [] -> []
    | c :: _ ->
        List.map (fun pt -> Printf.sprintf "SH@%d" pt.budget) c.points
  in
  let table =
    Ft_util.Table.create
      ~title:
        "Quality vs budget: adaptive-sh at K/16..K/2 measurements vs \
         full-budget CFR (Broadwell)"
      (("Benchmark" :: columns) @ [ "CFR (full)" ])
  in
  List.iter
    (fun c ->
      Ft_util.Table.add_row table
        ((c.benchmark
          :: List.map (fun pt -> Ft_util.Table.fmt_f pt.speedup) c.points)
        @ [ Ft_util.Table.fmt_f c.cfr_speedup ]))
    curves;
  table

let elimination_variants lab =
  let toolchain = Ft_machine.Toolchain.make Platform.Broadwell in
  let cell algo (p : Program.t) =
    let input = Ft_suite.Suite.tuning_input Platform.Broadwell p in
    let rng = Lab.rng lab ("elim:" ^ p.Program.name) in
    let result =
      match algo with
      | `Be -> Ft_baselines.Ce.run_batch ~toolchain ~program:p ~input ~rng ()
      | `Ie ->
          Ft_baselines.Ce.run_iterative ~toolchain ~program:p ~input ~rng ()
      | `Ce -> Ft_baselines.Ce.run ~toolchain ~program:p ~input ~rng ()
    in
    result.Ft_baselines.Ce.speedup
  in
  let rows =
    List.map
      (fun name ->
        let p = Option.get (Ft_suite.Suite.find name) in
        (name, [ cell `Be p; cell `Ie p; cell `Ce p ]))
      [ "LULESH"; "Cloverleaf"; "AMG" ]
  in
  Series.make
    ~title:
      "Ablation: Pan & Eigenmann elimination variants over O3 (ICC, \
       Broadwell)"
    ~columns:[ "BE"; "IE"; "CE" ] rows

let critical_flags_table lab =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let all = critical_flags lab program in
  let table =
    Ft_util.Table.create
      ~title:
        "4.4.1 analysis: performance-critical flags of CFR's per-loop CVs \
         (Cloverleaf, Broadwell)"
      [ "Kernel"; "Critical flags (vs O3 defaults)" ]
  in
  List.iter
    (fun kernel ->
      match List.assoc_opt kernel all with
      | None -> ()
      | Some flags ->
          Ft_util.Table.add_row table
            [
              kernel;
              (match flags with [] -> "(none)" | f -> String.concat " " f);
            ])
    Casestudy.kernels;
  table
