open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result
module Engine = Ft_engine.Engine

let rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
let columns = [ "Random"; "FR"; "CFR" ]

let row ?telemetry ~fault_seed ~seed ~pool_size ~jobs rate =
  let policy =
    if rate = 0.0 then Engine.default_policy
    else
      {
        Engine.default_policy with
        Engine.faults = Some (Ft_fault.Fault.make ~seed:fault_seed ~rate ());
      }
  in
  let engine = Engine.create ~jobs ?telemetry ~policy () in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let platform = Platform.Broadwell in
  let input = Ft_suite.Suite.tuning_input platform program in
  let session =
    Tuner.make_session ~pool_size ~engine ~platform ~program ~input ~seed ()
  in
  let ctx = session.Tuner.ctx in
  let random = Funcytuner.Random_search.run ctx in
  let fr = Funcytuner.Fr.run ctx session.Tuner.outline in
  let cfr = Tuner.run_cfr session in
  [ random.Result.speedup; fr.Result.speedup; cfr.Result.speedup ]

let run ?telemetry ?(fault_seed = 1) ~seed ~pool_size ~jobs () =
  let rows =
    List.map
      (fun rate ->
        ( Printf.sprintf "%g%%" (rate *. 100.0),
          row ?telemetry ~fault_seed ~seed ~pool_size ~jobs rate ))
      rates
  in
  Series.make
    ~title:
      "Faults: swim/bdw speedup over O3 as the injected fault rate grows \
       (searches skip quarantined CVs and return their best valid CV)"
    ~columns rows
