open Ft_prog
module Tuner = Funcytuner.Tuner
module Rng = Ft_util.Rng

type t = {
  seed : int;
  pool_size : int;
  top_x : int;
  engine : Ft_engine.Engine.t;
  sessions : (string, Tuner.session) Hashtbl.t;
  reports : (string, Tuner.report) Hashtbl.t;
  opentuner_runs : (string, Ft_opentuner.Ensemble.t) Hashtbl.t;
  cobayn_models : (string, Ft_cobayn.Model.t) Hashtbl.t;
  cobayn_runs : (string, Funcytuner.Result.t) Hashtbl.t;
  pgo_runs : (string, Ft_baselines.Pgo_driver.t) Hashtbl.t;
}

let create ?(seed = 42) ?(pool_size = 1000) ?(top_x = 20) ?(jobs = 1) ?policy
    ?engine () =
  {
    seed;
    pool_size;
    top_x;
    (* One engine for the whole lab: the measurement cache is shared by
       every (benchmark, platform) cell — keys embed program, platform and
       input, so cells never collide — and telemetry aggregates across the
       whole run. *)
    engine =
      (match engine with
      | Some e -> e
      | None -> Ft_engine.Engine.create ~jobs ?policy ());
    sessions = Hashtbl.create 32;
    reports = Hashtbl.create 32;
    opentuner_runs = Hashtbl.create 8;
    cobayn_models = Hashtbl.create 4;
    cobayn_runs = Hashtbl.create 32;
    pgo_runs = Hashtbl.create 8;
  }

let seed t = t.seed
let pool_size t = t.pool_size
let engine t = t.engine
let telemetry t = Ft_engine.Engine.telemetry t.engine
let rng t label = Rng.of_label (Rng.create t.seed) label

let memo table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = compute () in
      Hashtbl.replace table key v;
      v

let cell_key platform (program : Program.t) =
  Platform.short_name platform ^ "/" ^ program.Program.name

let session t platform program =
  memo t.sessions (cell_key platform program) (fun () ->
      let input = Ft_suite.Suite.tuning_input platform program in
      Tuner.make_session ~pool_size:t.pool_size ~engine:t.engine ~platform
        ~program ~input ~seed:t.seed ())

let report t platform program =
  memo t.reports (cell_key platform program) (fun () ->
      Tuner.run_all ~top_x:t.top_x (session t platform program))

let opentuner t (program : Program.t) =
  memo t.opentuner_runs program.Program.name (fun () ->
      let s = session t Platform.Broadwell program in
      Ft_opentuner.Ensemble.run s.Tuner.ctx)

let cobayn_model t variant =
  memo t.cobayn_models (Ft_cobayn.Features.variant_name variant) (fun () ->
      let toolchain = Ft_machine.Toolchain.make Platform.Broadwell in
      Ft_cobayn.Model.train ~toolchain ~variant ~corpus_seed:t.seed ())

let cobayn t variant (program : Program.t) =
  let key =
    Ft_cobayn.Features.variant_name variant ^ "/" ^ program.Program.name
  in
  memo t.cobayn_runs key (fun () ->
      let model = cobayn_model t variant in
      let s = session t Platform.Broadwell program in
      Ft_cobayn.Model.tune model s.Tuner.ctx)

let pgo t (program : Program.t) =
  memo t.pgo_runs program.Program.name (fun () ->
      let toolchain = Ft_machine.Toolchain.make Platform.Broadwell in
      let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
      Ft_baselines.Pgo_driver.run ~toolchain ~program ~input
        ~rng:(rng t ("pgo:" ^ program.Program.name))
        ())

let evaluate_on t platform program ~input configuration =
  let s = session t platform program in
  Tuner.evaluate_configuration s ~input
    ~rng:(rng t ("eval:" ^ cell_key platform program ^ ":" ^ input.Input.label))
    configuration

let o3_on t platform program ~input =
  Tuner.o3_seconds (session t platform program) ~input
