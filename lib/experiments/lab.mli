(** The shared experimental environment.

    One [Lab.t] fixes the master seed, the pool size K and CFR's top-X,
    and memoizes everything expensive — tuning sessions (profile + outline
    + collection), the four §2.2 algorithm runs, OpenTuner runs, trained
    COBAYN models and their inference runs — so that every figure runner
    reuses the same tuned configurations, exactly as the paper evaluates
    one tuning campaign from several angles (Figs. 5–9 share runs). *)

type t

val create :
  ?seed:int ->
  ?pool_size:int ->
  ?top_x:int ->
  ?jobs:int ->
  ?policy:Ft_engine.Engine.policy ->
  ?engine:Ft_engine.Engine.t ->
  unit ->
  t
(** Defaults: seed 42, K = 1000, top-X = 20, jobs 1 (sequential engine).
    All results are bit-identical for any [jobs] value.  [policy] arms the
    lab engine's fault model / timeout / repeats; pass a pre-built
    [engine] instead (e.g. with a checkpoint attached) to override
    everything, in which case [jobs] and [policy] are ignored. *)

val seed : t -> int
val pool_size : t -> int

val engine : t -> Ft_engine.Engine.t
(** The lab-wide evaluation engine: one worker pool, one measurement cache
    and one telemetry record shared by every session. *)

val telemetry : t -> Ft_engine.Telemetry.t
(** Aggregated counters/timers across every experiment run so far (the
    [--stats] source). *)

val session :
  t -> Ft_prog.Platform.t -> Ft_prog.Program.t -> Funcytuner.Tuner.session
(** Cached tuning session on the platform's Table 2 tuning input. *)

val report :
  t -> Ft_prog.Platform.t -> Ft_prog.Program.t -> Funcytuner.Tuner.report
(** Cached {!Funcytuner.Tuner.run_all} results (Random, FR, G, CFR). *)

val opentuner : t -> Ft_prog.Program.t -> Ft_opentuner.Ensemble.t
(** Cached OpenTuner run on Broadwell. *)

val cobayn_model : t -> Ft_cobayn.Features.variant -> Ft_cobayn.Model.t
(** Cached trained model (training happens once per variant). *)

val cobayn :
  t -> Ft_cobayn.Features.variant -> Ft_prog.Program.t -> Funcytuner.Result.t
(** Cached COBAYN inference on Broadwell. *)

val pgo : t -> Ft_prog.Program.t -> Ft_baselines.Pgo_driver.t
(** Cached PGO run on Broadwell. *)

val evaluate_on :
  t ->
  Ft_prog.Platform.t ->
  Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  Funcytuner.Result.configuration ->
  float
(** Measured seconds of a tuned configuration on another input (the §4.3
    generalization protocol). *)

val o3_on :
  t ->
  Ft_prog.Platform.t ->
  Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  float
(** Noise-free O3 seconds on an arbitrary input. *)

val rng : t -> string -> Ft_util.Rng.t
(** A labelled random stream derived from the lab seed. *)
