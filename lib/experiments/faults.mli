(** Search quality under injected faults.

    Sweeps the fault rate on one benchmark/platform cell (363.swim on
    Broadwell, the cheapest tier-1 cell) and reruns the engine-backed
    searches at each rate: every search must complete — faulty CVs are
    retried, quarantined and skipped — and return its best {e valid}
    configuration, so speedups degrade gracefully instead of crashing.
    Each rate gets a fresh engine (own cache and quarantine, same fault
    seed) so rates do not contaminate each other; pass [?telemetry] to
    aggregate fault/retry/quarantine counters across the sweep for
    [--stats]. *)

val rates : float list
(** The swept fault rates: 0, 5, 10, 20 and 30 %. *)

val columns : string list
(** ["Random"; "FR"; "CFR"]. *)

val run :
  ?telemetry:Ft_engine.Telemetry.t ->
  ?fault_seed:int ->
  seed:int ->
  pool_size:int ->
  jobs:int ->
  unit ->
  Series.t
(** One row per fault rate, one column per search, cell = speedup over O3
    of the best fault-free configuration found.  Bit-identical for any
    [jobs]. *)
