(** Ablations of FuncyTuner's design choices (beyond the paper's figures,
    but directly implied by its §2.2.4 and §4.3/§4.4.1 discussions).

    - {b Top-X sweep}: within the unified framing, G is CFR with X = 1 and
      FR is CFR with X = K.  Sweeping X maps out the focus/diversity
      trade-off the paper argues for (1 < X << 1000).
    - {b Convergence}: the paper notes CFR finds its best variant in tens
      to hundreds of evaluations — the best-so-far traces quantify that.
    - {b Critical flags} (§4.4.1): iterative greedy elimination of flags
      from a winning CV, reverting every flag whose removal does not
      degrade performance, leaving the performance-critical ones. *)

val top_x_sweep : ?values:int list -> Lab.t -> Series.t
(** CFR on Cloverleaf/Broadwell with X ∈ {1, 5, 10, 20, 50, 200, 1000}
    by default (X = 1 ≈ measured greedy; X = K ≈ FR). *)

val convergence : Lab.t -> Ft_util.Table.t
(** Evaluations-to-best for Random / FR / CFR on every benchmark
    (Broadwell). *)

val critical_flags :
  Lab.t -> Ft_prog.Program.t -> (string * string list) list
(** Per top-5-kernel critical flags of the CFR assignment on Cloverleaf
    (kernel name → surviving flag settings, rendered); other programs use
    their hot loops. *)

val critical_flags_table : Lab.t -> Ft_util.Table.t
(** The §4.4.1 analysis for Cloverleaf's top-5 kernels. *)

val adaptive_budget : Lab.t -> Ft_util.Table.t
(** §4.3's overhead-reduction remark, quantified: full CFR vs
    early-stopping CFR ({!Funcytuner.Adaptive}) — achieved speedup and
    evaluations actually spent, per benchmark on Broadwell. *)

val elimination_variants : Lab.t -> Series.t
(** Pan & Eigenmann's three elimination algorithms (BE / IE / CE) on the
    Fig. 1 benchmarks with the ICC personality — how much the "combined"
    refinement matters at per-program granularity. *)

(** {2 Quality vs budget}

    The adaptive-allocation claim, measured: successive-halving CFR
    ({!Funcytuner.Adaptive_sh}) run at a sweep of measurement budgets
    (fractions of the lab pool size K, which is exactly full CFR's
    budget) against the full-budget CFR reference.  The K/4 point is the
    tier-1 contract — within 2% of CFR — the smaller ones show where the
    curve falls off. *)

type budget_point = {
  budget : int;  (** allocator budget handed to adaptive-sh *)
  evaluations : int;  (** measurements actually spent (budget + 1) *)
  speedup : float;
}

type quality_curve = {
  benchmark : string;
  cfr_speedup : float;
  cfr_evaluations : int;
  points : budget_point list;  (** ascending budget *)
}

val quality_vs_budget : ?divisors:int list -> Lab.t -> quality_curve list
(** One curve per benchmark on Broadwell; budgets are [K / d] for [d] in
    [divisors] (default [[16; 8; 4; 2]]), ascending. *)

val quality_vs_budget_table : quality_curve list -> Ft_util.Table.t
