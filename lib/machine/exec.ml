open Ft_prog
open Ft_compiler
module Rng = Ft_util.Rng

type region_report = {
  name : string;
  seconds : float;
  compute_s : float;
  memory_s : float;
  width : Decision.width;
  decision : Decision.t;
}

type run = {
  total_s : float;
  nonloop : region_report;
  loops : region_report list;
  freq_factor : float;
  icache_mult : float;
}

(* Raw (pre-coupling) cost of one region, split into components. *)
type raw = {
  r_name : string;
  r_compute : float;  (* seconds at nominal frequency *)
  r_memory : float;  (* seconds; DRAM-bound part is frequency-insensitive *)
  r_fixed : float;  (* fork/join etc. *)
  r_cv : Ft_flags.Cv.t;
  r_decision : Decision.t;
  r_vectorized : bool;
  r_code_aligned : bool;
}

let shares (f : Feature.t) =
  let total = Feature.bytes_per_iter f in
  if total <= 0.0 then (0.0, 0.0)
  else (f.Feature.gather_bytes /. total, f.Feature.strided_bytes /. total)

let raw_region ~(arch : Arch.t) ~scale ~steps (r : Linker.region) =
  let u = r.Linker.cunit in
  let d = r.Linker.final in
  let f = Loop.features_at ~scale u.Cunit.loop in
  let gshare, sshare = shares f in
  let lanes = float_of_int (Decision.lanes d.Decision.width) in
  let vectorized = d.Decision.width <> Decision.Scalar in
  let unroll = float_of_int d.Decision.unroll in
  let iters = f.Feature.trip_count *. f.Feature.invocations *. float_of_int steps in
  let freq_hz = arch.Arch.freq_ghz *. 1e9 in
  (* --- compute component ------------------------------------------- *)
  let both_path =
    (* Masked SIMD touches both branch paths' work and data; scalar cmov
       conversion only straightens the assignments, so its tax is
       smaller. *)
    if d.Decision.if_converted && f.Feature.divergence > 0.0 then
      if vectorized then 1.0 +. (0.55 *. f.Feature.divergence)
      else 1.0 +. (0.25 *. f.Feature.divergence)
    else 1.0
  in
  let work_flops = f.Feature.flops_per_iter *. d.Decision.redundancy *. both_path in
  let fma_eff =
    if d.Decision.fma_used then 1.0 +. (0.6 *. f.Feature.fma_fraction) else 1.0
  in
  let eff_lanes =
    if not vectorized then 1.0
    else
      (* Gathers and shuffles cost one extra op per extra lane; mask
         bookkeeping for divergent control flow grows superlinearly with
         width (wider masks, more blend/permute pressure) — this is what
         makes 256-bit code on divergent kernels lose to scalar even though
         128-bit code may break even (paper §4.4, observation 1). *)
      let linear = lanes -. 1.0 in
      let mask_growth = linear ** 1.5 in
      let hostility =
        (gshare *. arch.Arch.gather_cost *. linear)
        +. (sshare *. arch.Arch.strided_cost *. linear)
        +. (f.Feature.divergence *. arch.Arch.mask_cost *. mask_growth)
      in
      lanes /. (1.0 +. hostility)
  in
  let throughput_cycles =
    work_flops
    /. (arch.Arch.issue_flops *. fma_eff *. eff_lanes)
    /. (d.Decision.sched_quality *. d.Decision.isel_quality)
  in
  let latency_cycles =
    if f.Feature.dep_chain <= 0.0 then 0.0
    else if f.Feature.reduction then
      f.Feature.dep_chain *. arch.Arch.fp_latency
      /. (unroll *. lanes *. d.Decision.sched_quality)
    else
      f.Feature.dep_chain *. arch.Arch.fp_latency *. 0.9
      /. d.Decision.sched_quality
  in
  let core_cycles = Float.max throughput_cycles latency_cycles in
  let mispredict_cycles =
    if d.Decision.if_converted || f.Feature.divergence <= 0.0 then 0.0
    else
      f.Feature.divergence
      *. (1.0 -. f.Feature.branch_predictability)
      *. arch.Arch.mispredict_cycles
      *. if d.Decision.profile_guided then 0.75 else 1.0
  in
  let spill_cycles = d.Decision.spills *. 3.0 in
  let call_cycles = f.Feature.calls_per_iter *. 12.0 in
  let loop_overhead = 2.0 /. (unroll *. lanes) in
  (* Software prefetches occupy issue slots: a small compute-side tax that
     makes maximal prefetch levels a real trade-off for compute-bound
     loops. *)
  let prefetch_overhead = 0.15 *. float_of_int d.Decision.prefetch in
  let remainder_waste =
    let w = unroll *. lanes /. (2.0 *. f.Feature.trip_count) in
    if d.Decision.profile_guided then 0.25 *. w else w
  in
  let tiling_overhead = if d.Decision.tiled then 1.03 else 1.0 in
  let cycles_per_iter =
    (core_cycles +. mispredict_cycles +. spill_cycles +. call_cycles
   +. loop_overhead +. prefetch_overhead)
    *. (1.0 +. remainder_waste)
    *. tiling_overhead
  in
  let capacity =
    if f.Feature.parallel then Arch.effective_cores arch else 1.0
  in
  let compute_s = iters *. cycles_per_iter /. (freq_hz *. capacity) in
  (* --- memory component -------------------------------------------- *)
  let ws_kb = f.Feature.working_set_kb in
  let per_thread_kb = ws_kb /. float_of_int arch.Arch.omp_threads in
  let llc_total_kb =
    arch.Arch.llc_kb_per_socket *. float_of_int arch.Arch.sockets
  in
  let dram_resident = ws_kb > llc_total_kb in
  let write_factor =
    if f.Feature.write_bytes <= 0.0 then 1.0
    else if d.Decision.streaming then
      if dram_resident then 1.0 (* no read-for-ownership *)
      else 1.35 (* bypassed a cache-resident set: forced reloads *)
    else 1.35
  in
  let reload_penalty =
    if d.Decision.streaming && not dram_resident then f.Feature.write_bytes
    else 0.0
  in
  let traffic_per_iter =
    (f.Feature.read_bytes +. f.Feature.strided_bytes +. f.Feature.gather_bytes
   +. (f.Feature.write_bytes *. write_factor)
   +. reload_penalty)
    *. both_path
  in
  let traffic_total = iters *. traffic_per_iter in
  let dram_traffic, llc_traffic, l2_traffic =
    if per_thread_kb <= arch.Arch.l2_kb then (0.0, 0.0, traffic_total)
    else if not dram_resident then (0.0, traffic_total, 0.0)
    else if d.Decision.tiled then
      (0.45 *. traffic_total, 0.55 *. traffic_total, 0.0)
    else (traffic_total, 0.0, 0.0)
  in
  let prefetch_util =
    let level = float_of_int d.Decision.prefetch in
    let base = 0.83 +. (0.01 *. level) in
    let base = Ft_util.Stats.clamp ~lo:0.3 ~hi:0.87 base in
    let base =
      if gshare > 0.3 then base *. (0.45 +. (0.012 *. level)) else base
    in
    let base =
      if d.Decision.prefetch_far then
        if dram_resident && d.Decision.prefetch > 0 then base +. 0.02
        else base -. 0.05
      else base
    in
    Ft_util.Stats.clamp ~lo:0.2 ~hi:0.88 base
  in
  let dram_bw_gbs =
    if f.Feature.parallel then Arch.aggregate_dram_gbs arch *. prefetch_util
    else
      arch.Arch.dram_gbs_per_socket *. arch.Arch.serial_bw_fraction
      *. prefetch_util
  in
  let llc_bw_gbs =
    if f.Feature.parallel then arch.Arch.llc_gbs
    else arch.Arch.llc_gbs /. float_of_int arch.Arch.omp_threads *. 2.0
  in
  let l2_bw_bytes_per_s =
    arch.Arch.l2_bytes_per_cycle *. freq_hz
    *. if f.Feature.parallel then Arch.effective_cores arch else 1.0
  in
  let memory_s =
    (dram_traffic /. (dram_bw_gbs *. 1e9))
    +. (llc_traffic /. (llc_bw_gbs *. 1e9))
    +. (l2_traffic /. l2_bw_bytes_per_s)
  in
  (* --- fixed component --------------------------------------------- *)
  let fixed_s =
    if f.Feature.parallel then
      f.Feature.invocations *. float_of_int steps *. arch.Arch.barrier_us
      *. 1e-6
    else 0.0
  in
  {
    r_name = u.Cunit.region_name;
    r_compute = compute_s;
    r_memory = memory_s;
    r_fixed = fixed_s;
    r_cv = u.Cunit.cv;
    r_decision = d;
    r_vectorized = vectorized;
    r_code_aligned = d.Decision.code_aligned;
  }

let nominal_seconds r = Float.max r.r_compute r.r_memory +. r.r_fixed

let evaluate ~(arch : Arch.t) ~(input : Input.t) (binary : Linker.binary) =
  let program = binary.Linker.program in
  let scale = Input.scale ~reference:program.Program.reference_size input in
  let steps = input.Input.steps in
  let raw_nonloop = raw_region ~arch ~scale ~steps binary.Linker.nonloop in
  let raw_loops =
    List.map (raw_region ~arch ~scale ~steps) binary.Linker.regions
  in
  let all = raw_nonloop :: raw_loops in
  (* Coupling 1: AVX-256 frequency license. *)
  let total_nominal =
    List.fold_left (fun acc r -> acc +. nominal_seconds r) 0.0 all
  in
  let share_256 =
    if total_nominal <= 0.0 then 0.0
    else
      List.fold_left
        (fun acc r ->
          if r.r_decision.Decision.width = Decision.W256 then
            acc +. nominal_seconds r
          else acc)
        0.0 all
      /. total_nominal
  in
  let freq_factor = 1.0 -. (arch.Arch.avx256_throttle *. share_256) in
  (* Coupling 2: aggregate hot-code footprint vs the i-cache. *)
  let code_bytes =
    float_of_int binary.Linker.total_code_bytes
    *. if binary.Linker.layout_hot then 0.85 else 1.0
  in
  let overflow =
    Float.max 0.0 ((code_bytes /. (arch.Arch.icache_kb *. 1024.0)) -. 1.0)
  in
  let icache_mult = 1.0 +. (0.06 *. Float.min 2.0 overflow) in
  (* Coupling 3: shared-array padding decided by the non-loop module. *)
  let padded = binary.Linker.data_padded in
  let finalize r =
    let align_c = if padded && r.r_vectorized then 0.992 else 1.0 in
    let align_c = if r.r_code_aligned then align_c *. 0.995 else align_c in
    (* Padding aligns vector streams but wastes line/TLB capacity. *)
    let align_m =
      if padded then if r.r_vectorized then 0.985 else 1.015 else 1.0
    in
    let compute =
      r.r_compute *. icache_mult *. align_c *. binary.Linker.link_luck
      /. freq_factor
    in
    let memory = r.r_memory *. align_m in
    let quirk =
      Quirk.factor ~platform:arch.Arch.platform
        ~program:program.Program.name ~region:r.r_name r.r_cv
    in
    let caliper_mult =
      if binary.Linker.instrumented && r.r_name <> raw_nonloop.r_name then
        1.02
      else 1.0
    in
    let seconds =
      (Float.max compute memory +. r.r_fixed) *. quirk *. caliper_mult
    in
    {
      name = r.r_name;
      seconds;
      compute_s = compute;
      memory_s = memory;
      width = r.r_decision.Decision.width;
      decision = r.r_decision;
    }
  in
  let nonloop = finalize raw_nonloop in
  let loops = List.map finalize raw_loops in
  let total_s =
    List.fold_left (fun acc r -> acc +. r.seconds) nonloop.seconds loops
  in
  { total_s; nonloop; loops; freq_factor; icache_mult }

type measurement = {
  elapsed_s : float;
  region_samples : (string * float) list;
}

type summary = {
  sum_total_s : float;
  sum_nonloop_s : float;
  sum_loops : (string * float) list;
}

let summarize run =
  {
    sum_total_s = run.total_s;
    sum_nonloop_s = run.nonloop.seconds;
    sum_loops = List.map (fun r -> (r.name, r.seconds)) run.loops;
  }

let output_signature s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%h:%h" s.sum_total_s s.sum_nonloop_s);
  List.iter
    (fun (name, seconds) ->
      Buffer.add_string buf (Printf.sprintf ":%s=%h" name seconds))
    s.sum_loops;
  Rng.hash_string (Buffer.contents buf)

let lognormal rng ~sigma =
  exp (Rng.gauss rng ~mu:0.0 ~sigma)

let sample ~rng ~instrumented s =
  let noisy_loops =
    List.map
      (fun (name, seconds) -> (name, seconds *. lognormal rng ~sigma:0.01))
      s.sum_loops
  in
  let noisy_nonloop = s.sum_nonloop_s *. lognormal rng ~sigma:0.01 in
  let elapsed_s =
    List.fold_left (fun acc (_, t) -> acc +. t) noisy_nonloop noisy_loops
  in
  let region_samples = if instrumented then noisy_loops else [] in
  { elapsed_s; region_samples }

let measure ~arch ~input ~rng binary =
  sample ~rng
    ~instrumented:binary.Ft_compiler.Linker.instrumented
    (summarize (evaluate ~arch ~input binary))
