(** Execution of a linked binary on an architecture: the true cost model.

    For every region the model prices the compiler's decisions against the
    loop's features, roofline-style: a compute/latency term (SIMD lane
    efficiency degraded by divergence masks, gathers and shuffles; FP
    dependence chains broken — or not — by unrolling; mispredictions;
    spills; call and loop overheads) raced against a memory term (working
    set mapped to a cache level; DRAM bandwidth shared by all threads and
    modulated by prefetching and non-temporal stores), plus OpenMP
    fork/join cost per invocation.

    Three whole-binary couplings make module compilation non-separable,
    reproducing the paper's central observation (§4.4):
    - the AVX-256 frequency license slows {e every} region when 256-bit
      regions are hot (Intel platforms only);
    - aggregate hot-code size beyond the i-cache penalizes all loops;
    - shared-array padding/alignment chosen by the {e non-loop} module's CV
      changes vectorized loops' efficiency.

    [evaluate] is pure and noise-free; [measure] adds multiplicative
    log-normal measurement noise (σ ≈ 1 %, matching the paper's reported
    run-to-run deviations) and models Caliper's ≤ 3 % instrumentation
    overhead on instrumented builds. *)

type region_report = {
  name : string;
  seconds : float;  (** final noise-free time of this region *)
  compute_s : float;  (** compute-bound component (after couplings) *)
  memory_s : float;  (** memory-bound component *)
  width : Ft_compiler.Decision.width;  (** as linked *)
  decision : Ft_compiler.Decision.t;  (** final (post-link) decision *)
}

type run = {
  total_s : float;  (** noise-free end-to-end runtime *)
  nonloop : region_report;
  loops : region_report list;  (** in program order *)
  freq_factor : float;  (** applied AVX frequency derating (≤ 1) *)
  icache_mult : float;  (** applied i-cache pressure multiplier (≥ 1) *)
}

val evaluate :
  arch:Arch.t -> input:Ft_prog.Input.t -> Ft_compiler.Linker.binary -> run
(** Deterministic, noise-free execution. *)

type measurement = {
  elapsed_s : float;  (** noisy end-to-end wall time *)
  region_samples : (string * float) list;
      (** per-loop Caliper samples — present only on instrumented builds,
          and never for the non-loop region (the paper derives it by
          subtraction, §3.3) *)
}

type summary = {
  sum_total_s : float;  (** noise-free end-to-end runtime *)
  sum_nonloop_s : float;  (** noise-free non-loop region time *)
  sum_loops : (string * float) list;  (** noise-free loop times, in order *)
}
(** The noise-free distillate of a {!run}: everything a later noisy
    {!sample} needs.  Summaries are what the evaluation engine memoizes —
    a binary's summary never changes, only the noise drawn on top of it. *)

val summarize : run -> summary

val output_signature : summary -> int
(** A checksum standing in for the program's numerical output: a hash of
    the bit-exact summary.  The fault layer validates each run's observed
    signature against this expected one; a miscompiled binary perturbs the
    observed side, so the mismatch is how wrong-answer faults are
    detected. *)

val sample : rng:Ft_util.Rng.t -> instrumented:bool -> summary -> measurement
(** Draw one noisy measurement from a noise-free summary.  [measure] is
    exactly [sample ~rng ~instrumented (summarize (evaluate ...))]; the
    split lets a memoized summary be re-sampled without re-executing. *)

val measure :
  arch:Arch.t ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  Ft_compiler.Linker.binary ->
  measurement
(** One timed run with measurement noise (and instrumentation overhead when
    the binary is instrumented). *)
