module Rng = Ft_util.Rng
module Flag = Ft_flags.Flag
module Cv = Ft_flags.Cv

let amplitude = 0.002

let flag_factor ~platform ~program ~region (flag : Flag.id) value =
  let key =
    Printf.sprintf "quirk:%s:%s:%s:%s=%d"
      (Ft_prog.Platform.short_name platform)
      program region (Flag.name flag) value
  in
  let rng = Rng.create (Rng.hash_string key) in
  1.0 +. ((Rng.float rng 2.0 -. 1.0) *. amplitude)

(* The same ~1000 pooled CVs are priced against the same regions hundreds
   of thousands of times during a search, so two layers are memoized:

   - Per (platform, program, region): the multiplier of {e every}
     (flag, value) pair — 33 flags x arity <= 6 — computed once.  Pricing
     a CV the region has never seen is then 33 array reads and multiplies
     instead of 33 seed-string formats and hashes, which used to dominate
     the whole evaluation hot path (the seed strings cost ~60k minor
     words per evaluation).
   - Per (region, CV): the finished product, keyed on [Cv.hash].  [Cv.hash]
     is stable and collisions are harmless here (a collision would only
     alias one ±few-% texture value).

   Both tables are domain-local: [Exec.evaluate] runs inside worker
   domains, and a shared [Hashtbl] mutated concurrently would race.  Each
   domain rebuilds at most a few kilobytes of table.

   The product folds over [Flag.all] in canonical order, so every factor
   is bit-identical to the unmemoized computation. *)
type tables = {
  regions : (string, float array array) Hashtbl.t;
  products : (string * int, float) Hashtbl.t;
}

let dls : tables Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { regions = Hashtbl.create 64; products = Hashtbl.create 4096 })

let build_table ~platform ~program ~region =
  Array.map
    (fun flag ->
      Array.init (Flag.arity flag) (fun value ->
          flag_factor ~platform ~program ~region flag value))
    Flag.all

let factor ~platform ~program ~region cv =
  let t = Domain.DLS.get dls in
  let rkey =
    Ft_prog.Platform.short_name platform ^ ":" ^ program ^ ":" ^ region
  in
  let mkey = (rkey, Cv.hash cv) in
  match Hashtbl.find_opt t.products mkey with
  | Some f -> f
  | None ->
      let table =
        match Hashtbl.find_opt t.regions rkey with
        | Some tab -> tab
        | None ->
            let tab = build_table ~platform ~program ~region in
            Hashtbl.replace t.regions rkey tab;
            tab
      in
      let f = ref 1.0 in
      Array.iteri
        (fun i flag -> f := !f *. table.(i).(Cv.get cv flag))
        Flag.all;
      Hashtbl.replace t.products mkey !f;
      !f
