(** Trace serialization: JSONL (the native format {!Report} reads back)
    and Chrome [trace_event] JSON for [chrome://tracing] / Perfetto.

    {2 JSONL}

    Line 1 is a header object
    [{"trace":"funcytuner/1","clock":...,"events":N}]; each further line
    is one event: [{"ts":...,"ev":...,<payload fields>}].  Under a
    logical clock [ts] is the event's ordinal in canonical order (an
    int); under a wall clock it is seconds since trace creation.  All
    rendering is deterministic, so logical-clock files are
    byte-comparable across runs and worker counts.

    {2 Chrome}

    One [{"traceEvents":[...]}] object: phase spans become ["B"]/["E"]
    duration events, everything else becomes an instant event with its
    payload under ["args"].  Timestamps are microseconds (ordinals under
    a logical clock); jobs are mapped to tids so per-job lanes separate
    in the viewer. *)

val jsonl_lines : Trace.t -> string list
(** Header line followed by one line per event, canonical order, no
    trailing newlines. *)

val write_jsonl : path:string -> Trace.t -> unit
(** Write {!jsonl_lines}, one per line, to [path]. *)

val chrome_string : Trace.t -> string

val write_chrome : path:string -> Trace.t -> unit
