(** The typed event vocabulary of the trace subsystem.

    Every observable step of a tuning run — batch submission, job
    start/finish, cache traffic, fault injection, retries, quarantine,
    checkpoints, phase boundaries — is one of these constructors; the
    {!Trace} buffer stamps them with an ordering key and the exporters
    serialize them through {!to_json}/{!of_json}.

    Event payloads carry only values that are pure functions of the run's
    seeds (cache keys, fault kinds, attempt numbers, deterministic elapsed
    seconds) — all wall-clock data lives in the {!Trace} stamp, never in
    the event itself — so the same search always produces the same event
    values at any worker count. *)

type phase = Profile | Collect | Prune | Search
(** Algorithm 1's phases: profile the O3 build and outline hot loops;
    collect the per-loop runtime matrix; prune each module's space to its
    top-X CVs; search the focused space end-to-end.  Searches that skip a
    phase (e.g. Random skips prune) simply never open that span. *)

val phase_name : phase -> string
(** ["profile"] / ["collect"] / ["prune"] / ["search"]. *)

val phase_of_name : string -> phase option

type t =
  | Batch_submitted of { size : int }
      (** a batch of [size] jobs handed to the worker pool *)
  | Job_started of { key : string }
      (** one engine job began; [key] is its content-addressed cache key *)
  | Job_finished of {
      key : string;
      outcome : string;  (** ["ok"], ["build-failed"], ["crashed"],
                             ["wrong-answer"] or ["timed-out"] *)
      elapsed_s : float option;
          (** the measured (simulated) seconds where one exists *)
    }
  | Cache_query of { key : string }
      (** logical-clock stand-in for hit/miss: {e which} worker misses is
          a scheduling race, but the multiset of queried keys is not *)
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Build_done of { key : string }  (** compile+link actually performed *)
  | Run_done of { key : string }  (** binary evaluation actually performed *)
  | Fault_injected of {
      key : string;
      fault : string;
          (** ["ice"], ["crash"], ["wrong-answer"] or ["timeout"] —
              mirrors the {!Ft_engine.Telemetry} fault counters *)
    }
  | Retry of { key : string; attempt : int; backoff_s : float }
  | Outlier of { key : string }  (** heavy-tailed measurement injected *)
  | Quarantine_added of { key : string; reason : string }
  | Quarantine_hit of { key : string; reason : string }
  | Worker_crashed of { detail : string }
      (** a process-backend worker died mid-job (wall clock only: crash
          timing is scheduling, and crashed attempts are retried to the
          same logical events, so logical traces never mention them) *)
  | Checkpoint_saved of { path : string }
  | Checkpoint_loaded of { path : string; entries : int }
  | Timer of { name : string; seconds : float }
      (** one accumulation onto a telemetry timer (wall clock only) *)
  | Phase_begin of { phase : phase }
  | Phase_end of { phase : phase }
  | Prune_kept of { module_name : string; kept : int }
      (** space focusing kept [kept] CVs for this module (top-X) *)
  | Rung_opened of { rung : int; arms : int; pulls : int }
      (** adaptive-sh: successive-halving rung [rung] began with [arms]
          surviving candidate assignments and [pulls] measurements
          scheduled.  A pure function of the allocator's inputs, so it
          survives normalization like any search decision. *)
  | Rung_closed of { rung : int; survivors : int }
      (** adaptive-sh: the rung's quota was observed; [survivors] arms
          were promoted out of it (the arm count itself on the final
          rung, which promotes nobody) *)
  | Arm_promoted of { rung : int; arm : int }
      (** adaptive-sh: arm [arm] ranked inside the top [ceil (s/eta)]
          of rung [rung] and advances to the next rung *)
  | Arm_eliminated of { rung : int; arm : int }
      (** adaptive-sh: arm [arm] was cut at the close of rung [rung] *)
  | Request_received of { id : string; tenant : string; fingerprint : string }
      (** server: a tune request arrived, keyed by its content-addressed
          program fingerprint *)
  | Request_admitted of { id : string; queue_depth : int }
      (** server: the request opened a fresh search group; [queue_depth]
          is the number of requests pending after admission *)
  | Request_coalesced of { id : string; leader : string }
      (** server: the request joined the pending or in-flight group led
          by request [leader] (single-flight dedup) *)
  | Request_cached of { id : string }
      (** server: served from the completed-result memo without
          scheduling *)
  | Request_rejected of { id : string; reason : string }
      (** server: typed admission-control rejection (["queue_full"],
          ["draining"], ["unsupported: ..."], ["bad_version ..."]) *)
  | Group_started of { fingerprint : string; members : int }
      (** server: a search group left the queue and began its (single)
          search with [members] coalesced requests attached *)
  | Group_finished of { fingerprint : string; members : int; run_s : float }
      (** server: the group's search completed after [run_s] wall
          seconds; every member receives the same result bytes *)
  | Group_cancelled of { fingerprint : string }
      (** server: the group was abandoned — every subscriber
          disconnected or expired before its search finished *)
  | Request_expired of { id : string }
      (** server: the request's [deadline_ms] elapsed while it waited *)
  | Request_replayed of { id : string; fingerprint : string }
      (** server: restart recovery re-enqueued this journaled request
          from a previous incarnation *)
  | Server_recovered of { restarts : int; replayed : int; poisoned : int }
      (** server: one boot's journal replay — prior incarnations seen,
          unfinished requests re-enqueued, fingerprints crash-quarantined *)

val name : t -> string
(** The wire tag (the ["ev"] field), e.g. ["job_end"] or ["cache_hit"]. *)

val fields : t -> (string * Json.t) list
(** The payload fields, in fixed order, excluding ["ev"]. *)

val of_json : Json.t -> (t, string) result
(** Rebuild an event from an exported object (ignores unknown extra
    fields such as ["ts"]); [Error] names the missing/malformed piece. *)
