let header t n =
  Json.Obj
    [
      ("trace", Json.String "funcytuner/1");
      ("clock", Json.String (Trace.clock_name (Trace.clock t)));
      ("events", Json.Int n);
    ]

let jsonl_lines t =
  let evs = Trace.events t in
  let line i (st : Trace.stamped) =
    let ts =
      match Trace.clock t with
      | Trace.Logical -> Json.Int i
      | Trace.Wall -> Json.Float st.Trace.ts
    in
    Json.Obj
      (("ts", ts)
      :: ("ev", Json.String (Event.name st.Trace.event))
      :: Event.fields st.Trace.event)
  in
  Json.to_string (header t (List.length evs))
  :: List.mapi (fun i st -> Json.to_string (line i st)) evs

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_jsonl ~path t =
  write_file path (String.concat "\n" (jsonl_lines t) ^ "\n")

(* -- Chrome trace_event ------------------------------------------------ *)

let chrome_string t =
  let evs = Trace.events t in
  let ts_us i (st : Trace.stamped) =
    match Trace.clock t with
    | Trace.Logical -> Json.Int i
    | Trace.Wall -> Json.Float (st.Trace.ts *. 1e6)
  in
  let tid (st : Trace.stamped) =
    if st.Trace.job < 0 then 0 else st.Trace.job + 1
  in
  let entry i (st : Trace.stamped) =
    let common ph name extra =
      Json.Obj
        ([
           ("name", Json.String name);
           ("ph", Json.String ph);
           ("ts", ts_us i st);
           ("pid", Json.Int 1);
           ("tid", Json.Int (tid st));
         ]
        @ extra)
    in
    match st.Trace.event with
    | Event.Phase_begin { phase } -> common "B" (Event.phase_name phase) []
    | Event.Phase_end { phase } -> common "E" (Event.phase_name phase) []
    | e ->
        common "i" (Event.name e)
          [ ("s", Json.String "t"); ("args", Json.Obj (Event.fields e)) ]
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.mapi entry evs));
         ("displayTimeUnit", Json.String "ms");
       ])

let write_chrome ~path t = write_file path (chrome_string t ^ "\n")
