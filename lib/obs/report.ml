module Table = Ft_util.Table

type entry = { ts : float; event : Event.t }
type t = { clock : string; entries : entry list }

(* --- loading ---------------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let load path =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty trace file"
  | header :: rest -> (
      let ( let* ) = Result.bind in
      let* header_json =
        Result.map_error (fun e -> "malformed header line: " ^ e)
          (Json.of_string header)
      in
      let* () =
        match Option.bind (Json.member "trace" header_json) Json.to_str with
        | Some "funcytuner/1" -> Ok ()
        | Some other -> Error ("unsupported trace format: " ^ other)
        | None ->
            Error
              "not a funcytuner trace (missing \"trace\" header field — was \
               this exported with --trace-format chrome?)"
      in
      let clock =
        Option.value ~default:"wall"
          (Option.bind (Json.member "clock" header_json) Json.to_str)
      in
      let* () =
        match Option.bind (Json.member "events" header_json) Json.to_int with
        | Some n when n = List.length rest -> Ok ()
        | Some n ->
            Error
              (Printf.sprintf
                 "truncated trace: header declares %d events, file has %d" n
                 (List.length rest))
        | None -> Ok ()
      in
      let parse_line i line =
        let* json =
          Result.map_error
            (fun e -> Printf.sprintf "line %d: %s" (i + 2) e)
            (Json.of_string line)
        in
        let* event =
          Result.map_error
            (fun e -> Printf.sprintf "line %d: %s" (i + 2) e)
            (Event.of_json json)
        in
        let ts =
          Option.value ~default:0.0
            (Option.bind (Json.member "ts" json) Json.to_float)
        in
        Ok { ts; event }
      in
      let* entries =
        List.fold_left
          (fun acc (i, line) ->
            let* acc = acc in
            let* e = parse_line i line in
            Ok (e :: acc))
          (Ok [])
          (List.mapi (fun i l -> (i, l)) rest)
      in
      Ok { clock; entries = List.rev entries })

(* --- derived counters ------------------------------------------------- *)

type counters = {
  builds : int;
  runs : int;
  cache_hits : int;
  cache_misses : int;
  retries : int;
  build_failures : int;
  crashes : int;
  wrong_answers : int;
  timeouts : int;
  worker_crashes : int;
  outliers : int;
  quarantined : int;
  quarantine_hits : int;
  timers : (string * float) list;
}

(* The hit/miss sequence, in trace order.  Wall traces record the split;
   logical traces record only the queried keys, for which first-occurrence
   = miss reproduces exactly the sequential schedule (the canonical order
   is the [--jobs 1] order, under which the first query of a key is
   always the one that populates the cache). *)
let lookup_sequence events =
  let seen = Hashtbl.create 256 in
  List.filter_map
    (fun event ->
      match event with
      | Event.Cache_hit _ -> Some true
      | Event.Cache_miss _ -> Some false
      | Event.Cache_query { key } ->
          if Hashtbl.mem seen key then Some true
          else begin
            Hashtbl.add seen key ();
            Some false
          end
      | _ -> None)
    events

let derive events =
  let count p = List.length (List.filter p events) in
  let lookups = lookup_sequence events in
  let cache_hits = List.length (List.filter Fun.id lookups) in
  let cache_misses = List.length lookups - cache_hits in
  let recorded_builds =
    count (function Event.Build_done _ -> true | _ -> false)
  in
  let recorded_runs = count (function Event.Run_done _ -> true | _ -> false) in
  let fault kind =
    count (function
      | Event.Fault_injected { fault; _ } -> fault = kind
      | _ -> false)
  in
  let timers =
    List.fold_left
      (fun acc event ->
        match event with
        | Event.Timer { name; seconds } ->
            let prior = Option.value ~default:0.0 (List.assoc_opt name acc) in
            (name, prior +. seconds) :: List.remove_assoc name acc
        | _ -> acc)
      [] events
    |> List.sort compare
  in
  {
    (* A logical trace suppresses build/run events; the builds actually
       performed are then exactly the cache misses. *)
    builds = (if recorded_builds > 0 then recorded_builds else cache_misses);
    runs = (if recorded_runs > 0 then recorded_runs else cache_misses);
    cache_hits;
    cache_misses;
    retries = count (function Event.Retry _ -> true | _ -> false);
    build_failures = fault "ice";
    crashes = fault "crash";
    wrong_answers = fault "wrong-answer";
    timeouts = fault "timeout";
    worker_crashes =
      count (function Event.Worker_crashed _ -> true | _ -> false);
    outliers = count (function Event.Outlier _ -> true | _ -> false);
    quarantined =
      count (function Event.Quarantine_added _ -> true | _ -> false);
    quarantine_hits =
      count (function Event.Quarantine_hit _ -> true | _ -> false);
    timers;
  }

(* --- per-phase breakdown ---------------------------------------------- *)

type phase_acc = {
  mutable spans : int;
  mutable events : int;
  mutable jobs : int;
  mutable ok : int;
  mutable faults : int;
  mutable seconds : float;
}

let phase_breakdown t =
  let order = ref [] in
  let table : (string, phase_acc) Hashtbl.t = Hashtbl.create 8 in
  let acc name =
    match Hashtbl.find_opt table name with
    | Some a -> a
    | None ->
        let a =
          { spans = 0; events = 0; jobs = 0; ok = 0; faults = 0; seconds = 0.0 }
        in
        Hashtbl.add table name a;
        order := name :: !order;
        a
  in
  let stack = ref [] in
  List.iter
    (fun { ts; event } ->
      match event with
      | Event.Phase_begin { phase } ->
          let a = acc (Event.phase_name phase) in
          a.spans <- a.spans + 1;
          stack := (Event.phase_name phase, ts) :: !stack
      | Event.Phase_end { phase } -> (
          match !stack with
          | (name, t0) :: rest when name = Event.phase_name phase ->
              (acc name).seconds <- (acc name).seconds +. (ts -. t0);
              stack := rest
          | _ -> (* unbalanced span: ignore rather than fail the report *) ())
      | event -> (
          match !stack with
          | [] -> ()
          | (name, _) :: _ -> (
              let a = acc name in
              a.events <- a.events + 1;
              match event with
              | Event.Job_finished { outcome; _ } ->
                  a.jobs <- a.jobs + 1;
                  if outcome = "ok" then a.ok <- a.ok + 1
              | Event.Fault_injected _ -> a.faults <- a.faults + 1
              | _ -> ())))
    t.entries;
  List.rev_map (fun name -> (name, Hashtbl.find table name)) !order
  |> List.rev

(* --- sections --------------------------------------------------------- *)

let section buf title =
  Buffer.add_string buf "\n";
  Buffer.add_string buf title;
  Buffer.add_string buf "\n"

let render_phases buf t =
  let wall = t.clock = "wall" in
  let phases = phase_breakdown t in
  if phases <> [] then begin
    section buf "Per-phase breakdown:";
    let headers =
      [ "phase"; "spans"; "events"; "jobs"; "ok" ]
      @ if wall then [ "seconds" ] else []
    in
    let table = Table.create ~title:"" headers in
    List.iter
      (fun (name, a) ->
        Table.add_row table
          ([
             name;
             string_of_int a.spans;
             string_of_int a.events;
             string_of_int a.jobs;
             string_of_int a.ok;
           ]
          @ if wall then [ Table.fmt_f a.seconds ] else []))
      phases;
    Buffer.add_string buf (Table.render table);
    Buffer.add_char buf '\n'
  end

let render_cache buf t =
  let lookups = lookup_sequence (List.map (fun e -> e.event) t.entries) in
  let n = List.length lookups in
  if n > 0 then begin
    section buf "Cache hit-rate over time:";
    let buckets = min 10 n in
    let arr = Array.of_list lookups in
    for b = 0 to buckets - 1 do
      let lo = b * n / buckets and hi = ((b + 1) * n / buckets) - 1 in
      let hits = ref 0 in
      for i = lo to hi do
        if arr.(i) then incr hits
      done;
      let width = hi - lo + 1 in
      let pct = 100.0 *. float_of_int !hits /. float_of_int width in
      Buffer.add_string buf
        (Printf.sprintf "  lookups %5d-%-5d  %5.1f%%  %s\n" (lo + 1) (hi + 1)
           pct
           (Table.bar ~width:30 ~scale:100.0 pct))
    done
  end

let render_convergence buf t =
  let measurements =
    List.filter_map
      (fun e ->
        match e.event with
        | Event.Job_finished { outcome = "ok"; elapsed_s = Some s; _ } -> Some s
        | _ -> None)
      t.entries
  in
  match measurements with
  | [] -> ()
  | first :: rest ->
      section buf "Convergence (best-so-far seconds vs evaluations):";
      let best_curve =
        List.rev
          (List.fold_left
             (fun acc s ->
               match acc with
               | best :: _ -> Float.min best s :: acc
               | [] -> [ s ])
             [ first ] rest)
      in
      let arr = Array.of_list best_curve in
      let n = Array.length arr in
      let scale = arr.(0) in
      let rows = min 12 n in
      let shown = Hashtbl.create 16 in
      for r = 0 to rows - 1 do
        let i = if rows = 1 then 0 else r * (n - 1) / (rows - 1) in
        if not (Hashtbl.mem shown i) then begin
          Hashtbl.add shown i ();
          Buffer.add_string buf
            (Printf.sprintf "  %5d  %10.3f s  %s\n" (i + 1) arr.(i)
               (Table.bar ~width:40 ~scale arr.(i)))
        end
      done

let render_faults buf (c : counters) =
  let total = c.build_failures + c.crashes + c.wrong_answers + c.timeouts in
  if total > 0 || c.retries > 0 || c.quarantine_hits > 0 || c.worker_crashes > 0
  then begin
    section buf "Faults and recovery:";
    let table = Table.create ~title:"" [ "event"; "count" ] in
    List.iter
      (fun (name, count) ->
        if count > 0 then Table.add_row table [ name; string_of_int count ])
      [
        ("build failures (ICE)", c.build_failures);
        ("crashes", c.crashes);
        ("wrong answers", c.wrong_answers);
        ("timeouts", c.timeouts);
        ("worker crashes", c.worker_crashes);
        ("retries", c.retries);
        ("outlier measurements", c.outliers);
        ("quarantined", c.quarantined);
        ("quarantine hits", c.quarantine_hits);
      ];
    Buffer.add_string buf (Table.render table);
    Buffer.add_char buf '\n'
  end

let render_prune buf t =
  let kept =
    List.filter_map
      (fun e ->
        match e.event with
        | Event.Prune_kept { module_name; kept } -> Some (module_name, kept)
        | _ -> None)
      t.entries
  in
  if kept <> [] then begin
    section buf "Per-loop focused pools (top-X after pruning):";
    let shown, rest =
      if List.length kept > 40 then
        (List.filteri (fun i _ -> i < 40) kept, List.length kept - 40)
      else (kept, 0)
    in
    let table = Table.create ~title:"" [ "module"; "kept CVs" ] in
    List.iter
      (fun (m, k) -> Table.add_row table [ m; string_of_int k ])
      shown;
    Buffer.add_string buf (Table.render table);
    Buffer.add_char buf '\n';
    if rest > 0 then
      Buffer.add_string buf (Printf.sprintf "  ... and %d more modules\n" rest)
  end

(* --- server section ---------------------------------------------------- *)

(* A server trace interleaves request-lifecycle events with the engine
   events of every search it ran; this section derives the service-level
   story: admission, single-flight coalescing, result-cache hits, typed
   rejections, per-tenant traffic, and group shapes. *)
let render_serve buf t =
  let events = List.map (fun e -> e.event) t.entries in
  let count p = List.length (List.filter p events) in
  let received =
    count (function Event.Request_received _ -> true | _ -> false)
  in
  if received > 0 then begin
    let admitted =
      count (function Event.Request_admitted _ -> true | _ -> false)
    in
    let coalesced =
      count (function Event.Request_coalesced _ -> true | _ -> false)
    in
    let cached = count (function Event.Request_cached _ -> true | _ -> false) in
    let rejections =
      List.filter_map
        (function Event.Request_rejected { reason; _ } -> Some reason | _ -> None)
        events
    in
    let groups =
      List.filter_map
        (function
          | Event.Group_finished { members; run_s; _ } -> Some (members, run_s)
          | _ -> None)
        events
    in
    let cancelled =
      count (function Event.Group_cancelled _ -> true | _ -> false)
    in
    let expired =
      count (function Event.Request_expired _ -> true | _ -> false)
    in
    let replays =
      count (function Event.Request_replayed _ -> true | _ -> false)
    in
    (* One Server_recovered per boot; the last one carries the totals. *)
    let recovery =
      List.fold_left
        (fun acc -> function
          | Event.Server_recovered { restarts; replayed; poisoned } ->
              Some (restarts, replayed, poisoned)
          | _ -> acc)
        None events
    in
    let tenants = Hashtbl.create 8 in
    let tenant_order = ref [] in
    List.iter
      (function
        | Event.Request_received { tenant; _ } ->
            (match Hashtbl.find_opt tenants tenant with
            | Some n -> Hashtbl.replace tenants tenant (n + 1)
            | None ->
                Hashtbl.add tenants tenant 1;
                tenant_order := tenant :: !tenant_order)
        | _ -> ())
      events;
    section buf "Server requests:";
    let pct n d =
      if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d
    in
    Buffer.add_string buf
      (Printf.sprintf "  received    %d (from %d tenants)\n" received
         (Hashtbl.length tenants));
    Buffer.add_string buf
      (Printf.sprintf "  admitted    %d fresh searches\n" admitted);
    Buffer.add_string buf
      (Printf.sprintf "  coalesced   %d (%.1f%% of received — single-flight)\n"
         coalesced (pct coalesced received));
    Buffer.add_string buf
      (Printf.sprintf "  result-cache hits  %d (%.1f%%)\n" cached
         (pct cached received));
    (match recovery with
    | Some (restarts, replayed, poisoned) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  recovery    %d restarts, %d requests replayed, %d poisoned specs\n"
             restarts
             (max replayed replays)
             poisoned)
    | None ->
        if replays > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  recovery    %d requests replayed\n" replays));
    if expired > 0 || cancelled > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  abandoned   %d expired requests, %d cancelled groups\n"
           expired cancelled);
    if rejections <> [] then begin
      let by_reason = Hashtbl.create 4 in
      List.iter
        (fun r ->
          Hashtbl.replace by_reason r
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_reason r)))
        rejections;
      Buffer.add_string buf
        (Printf.sprintf "  rejected    %d:\n" (List.length rejections));
      Hashtbl.fold (fun r n acc -> (r, n) :: acc) by_reason []
      |> List.sort compare
      |> List.iter (fun (r, n) ->
             Buffer.add_string buf (Printf.sprintf "    %-24s %d\n" r n))
    end;
    if groups <> [] then begin
      let members = List.map fst groups in
      let total_members = List.fold_left ( + ) 0 members in
      let run_s = List.fold_left (fun a (_, s) -> a +. s) 0.0 groups in
      Buffer.add_string buf
        (Printf.sprintf
           "  groups run  %d (mean size %.1f, max %d; %.3f s searching)\n"
           (List.length groups)
           (float_of_int total_members /. float_of_int (List.length groups))
           (List.fold_left max 0 members)
           run_s)
    end;
    let tenant_table = Table.create ~title:"" [ "tenant"; "requests" ] in
    List.iter
      (fun tenant ->
        Table.add_row tenant_table
          [ tenant; string_of_int (Hashtbl.find tenants tenant) ])
      (List.rev !tenant_order);
    Buffer.add_string buf (Table.render tenant_table);
    Buffer.add_char buf '\n'
  end

let render_counters buf (c : counters) =
  section buf "Derived engine counters:";
  Buffer.add_string buf
    (Printf.sprintf "  builds      %d\n  runs        %d\n" c.builds c.runs);
  let lookups = c.cache_hits + c.cache_misses in
  let pct =
    if lookups = 0 then 0.0
    else 100.0 *. float_of_int c.cache_hits /. float_of_int lookups
  in
  Buffer.add_string buf
    (Printf.sprintf "  cache       %d hits / %d misses (%.1f%% hit rate)\n"
       c.cache_hits c.cache_misses pct);
  List.iter
    (fun (name, seconds) ->
      Buffer.add_string buf (Printf.sprintf "  %-11s %.3f s\n" name seconds))
    c.timers

let render t =
  let buf = Buffer.create 4096 in
  let events = List.map (fun e -> e.event) t.entries in
  let c = derive events in
  let span_s =
    match (t.clock, List.rev t.entries) with
    | "wall", last :: _ -> Printf.sprintf ", %.3f s" last.ts
    | _ -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d events, clock=%s%s\n" (List.length t.entries)
       t.clock span_s);
  render_serve buf t;
  render_phases buf t;
  render_cache buf t;
  render_convergence buf t;
  render_faults buf c;
  render_prune buf t;
  render_counters buf c;
  Buffer.contents buf
