type phase = Profile | Collect | Prune | Search

let phase_name = function
  | Profile -> "profile"
  | Collect -> "collect"
  | Prune -> "prune"
  | Search -> "search"

let phase_of_name = function
  | "profile" -> Some Profile
  | "collect" -> Some Collect
  | "prune" -> Some Prune
  | "search" -> Some Search
  | _ -> None

type t =
  | Batch_submitted of { size : int }
  | Job_started of { key : string }
  | Job_finished of { key : string; outcome : string; elapsed_s : float option }
  | Cache_query of { key : string }
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Build_done of { key : string }
  | Run_done of { key : string }
  | Fault_injected of { key : string; fault : string }
  | Retry of { key : string; attempt : int; backoff_s : float }
  | Outlier of { key : string }
  | Quarantine_added of { key : string; reason : string }
  | Quarantine_hit of { key : string; reason : string }
  | Worker_crashed of { detail : string }
  | Checkpoint_saved of { path : string }
  | Checkpoint_loaded of { path : string; entries : int }
  | Timer of { name : string; seconds : float }
  | Phase_begin of { phase : phase }
  | Phase_end of { phase : phase }
  | Prune_kept of { module_name : string; kept : int }
  | Rung_opened of { rung : int; arms : int; pulls : int }
  | Rung_closed of { rung : int; survivors : int }
  | Arm_promoted of { rung : int; arm : int }
  | Arm_eliminated of { rung : int; arm : int }
  | Request_received of { id : string; tenant : string; fingerprint : string }
  | Request_admitted of { id : string; queue_depth : int }
  | Request_coalesced of { id : string; leader : string }
  | Request_cached of { id : string }
  | Request_rejected of { id : string; reason : string }
  | Group_started of { fingerprint : string; members : int }
  | Group_finished of { fingerprint : string; members : int; run_s : float }
  | Group_cancelled of { fingerprint : string }
  | Request_expired of { id : string }
  | Request_replayed of { id : string; fingerprint : string }
  | Server_recovered of { restarts : int; replayed : int; poisoned : int }

let name = function
  | Batch_submitted _ -> "batch"
  | Job_started _ -> "job_start"
  | Job_finished _ -> "job_end"
  | Cache_query _ -> "cache_query"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Build_done _ -> "build"
  | Run_done _ -> "run"
  | Fault_injected _ -> "fault"
  | Retry _ -> "retry"
  | Outlier _ -> "outlier"
  | Quarantine_added _ -> "quarantine_add"
  | Quarantine_hit _ -> "quarantine_hit"
  | Worker_crashed _ -> "worker_crash"
  | Checkpoint_saved _ -> "checkpoint_save"
  | Checkpoint_loaded _ -> "checkpoint_load"
  | Timer _ -> "timer"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Prune_kept _ -> "prune"
  | Rung_opened _ -> "rung_open"
  | Rung_closed _ -> "rung_close"
  | Arm_promoted _ -> "arm_promote"
  | Arm_eliminated _ -> "arm_elim"
  | Request_received _ -> "req_recv"
  | Request_admitted _ -> "req_admit"
  | Request_coalesced _ -> "req_coalesce"
  | Request_cached _ -> "req_cached"
  | Request_rejected _ -> "req_reject"
  | Group_started _ -> "group_start"
  | Group_finished _ -> "group_end"
  | Group_cancelled _ -> "group_cancel"
  | Request_expired _ -> "req_expire"
  | Request_replayed _ -> "req_replay"
  | Server_recovered _ -> "server_recover"

let fields = function
  | Batch_submitted { size } -> [ ("size", Json.Int size) ]
  | Job_started { key } -> [ ("key", Json.String key) ]
  | Job_finished { key; outcome; elapsed_s } ->
      [ ("key", Json.String key); ("outcome", Json.String outcome) ]
      @ (match elapsed_s with
        | Some s -> [ ("elapsed_s", Json.Float s) ]
        | None -> [])
  | Cache_query { key } | Cache_hit { key } | Cache_miss { key }
  | Build_done { key } | Run_done { key } | Outlier { key } ->
      [ ("key", Json.String key) ]
  | Fault_injected { key; fault } ->
      [ ("key", Json.String key); ("fault", Json.String fault) ]
  | Retry { key; attempt; backoff_s } ->
      [
        ("key", Json.String key);
        ("attempt", Json.Int attempt);
        ("backoff_s", Json.Float backoff_s);
      ]
  | Quarantine_added { key; reason } | Quarantine_hit { key; reason } ->
      [ ("key", Json.String key); ("reason", Json.String reason) ]
  | Worker_crashed { detail } -> [ ("detail", Json.String detail) ]
  | Checkpoint_saved { path } -> [ ("path", Json.String path) ]
  | Checkpoint_loaded { path; entries } ->
      [ ("path", Json.String path); ("entries", Json.Int entries) ]
  | Timer { name; seconds } ->
      [ ("name", Json.String name); ("seconds", Json.Float seconds) ]
  | Phase_begin { phase } | Phase_end { phase } ->
      [ ("phase", Json.String (phase_name phase)) ]
  | Prune_kept { module_name; kept } ->
      [ ("module", Json.String module_name); ("kept", Json.Int kept) ]
  | Rung_opened { rung; arms; pulls } ->
      [ ("rung", Json.Int rung); ("arms", Json.Int arms); ("pulls", Json.Int pulls) ]
  | Rung_closed { rung; survivors } ->
      [ ("rung", Json.Int rung); ("survivors", Json.Int survivors) ]
  | Arm_promoted { rung; arm } | Arm_eliminated { rung; arm } ->
      [ ("rung", Json.Int rung); ("arm", Json.Int arm) ]
  | Request_received { id; tenant; fingerprint } ->
      [
        ("id", Json.String id);
        ("tenant", Json.String tenant);
        ("fingerprint", Json.String fingerprint);
      ]
  | Request_admitted { id; queue_depth } ->
      [ ("id", Json.String id); ("queue_depth", Json.Int queue_depth) ]
  | Request_coalesced { id; leader } ->
      [ ("id", Json.String id); ("leader", Json.String leader) ]
  | Request_cached { id } -> [ ("id", Json.String id) ]
  | Request_rejected { id; reason } ->
      [ ("id", Json.String id); ("reason", Json.String reason) ]
  | Group_started { fingerprint; members } ->
      [ ("fingerprint", Json.String fingerprint); ("members", Json.Int members) ]
  | Group_finished { fingerprint; members; run_s } ->
      [
        ("fingerprint", Json.String fingerprint);
        ("members", Json.Int members);
        ("run_s", Json.Float run_s);
      ]
  | Group_cancelled { fingerprint } -> [ ("fingerprint", Json.String fingerprint) ]
  | Request_expired { id } -> [ ("id", Json.String id) ]
  | Request_replayed { id; fingerprint } ->
      [ ("id", Json.String id); ("fingerprint", Json.String fingerprint) ]
  | Server_recovered { restarts; replayed; poisoned } ->
      [
        ("restarts", Json.Int restarts);
        ("replayed", Json.Int replayed);
        ("poisoned", Json.Int poisoned);
      ]

let of_json json =
  let str field =
    match Option.bind (Json.member field json) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field '%s'" field)
  in
  let int field =
    match Option.bind (Json.member field json) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing int field '%s'" field)
  in
  let num field =
    match Option.bind (Json.member field json) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing number field '%s'" field)
  in
  let phase field =
    match str field with
    | Error _ as e -> e
    | Ok s -> (
        match phase_of_name s with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown phase '%s'" s))
  in
  let ( let* ) = Result.bind in
  match str "ev" with
  | Error _ -> Error "missing event tag 'ev'"
  | Ok tag -> (
      match tag with
      | "batch" ->
          let* size = int "size" in
          Ok (Batch_submitted { size })
      | "job_start" ->
          let* key = str "key" in
          Ok (Job_started { key })
      | "job_end" ->
          let* key = str "key" in
          let* outcome = str "outcome" in
          let elapsed_s =
            Option.bind (Json.member "elapsed_s" json) Json.to_float
          in
          Ok (Job_finished { key; outcome; elapsed_s })
      | "cache_query" ->
          let* key = str "key" in
          Ok (Cache_query { key })
      | "cache_hit" ->
          let* key = str "key" in
          Ok (Cache_hit { key })
      | "cache_miss" ->
          let* key = str "key" in
          Ok (Cache_miss { key })
      | "build" ->
          let* key = str "key" in
          Ok (Build_done { key })
      | "run" ->
          let* key = str "key" in
          Ok (Run_done { key })
      | "fault" ->
          let* key = str "key" in
          let* fault = str "fault" in
          Ok (Fault_injected { key; fault })
      | "retry" ->
          let* key = str "key" in
          let* attempt = int "attempt" in
          let* backoff_s = num "backoff_s" in
          Ok (Retry { key; attempt; backoff_s })
      | "outlier" ->
          let* key = str "key" in
          Ok (Outlier { key })
      | "quarantine_add" ->
          let* key = str "key" in
          let* reason = str "reason" in
          Ok (Quarantine_added { key; reason })
      | "quarantine_hit" ->
          let* key = str "key" in
          let* reason = str "reason" in
          Ok (Quarantine_hit { key; reason })
      | "worker_crash" ->
          let* detail = str "detail" in
          Ok (Worker_crashed { detail })
      | "checkpoint_save" ->
          let* path = str "path" in
          Ok (Checkpoint_saved { path })
      | "checkpoint_load" ->
          let* path = str "path" in
          let* entries = int "entries" in
          Ok (Checkpoint_loaded { path; entries })
      | "timer" ->
          let* name = str "name" in
          let* seconds = num "seconds" in
          Ok (Timer { name; seconds })
      | "phase_begin" ->
          let* phase = phase "phase" in
          Ok (Phase_begin { phase })
      | "phase_end" ->
          let* phase = phase "phase" in
          Ok (Phase_end { phase })
      | "prune" ->
          let* module_name = str "module" in
          let* kept = int "kept" in
          Ok (Prune_kept { module_name; kept })
      | "rung_open" ->
          let* rung = int "rung" in
          let* arms = int "arms" in
          let* pulls = int "pulls" in
          Ok (Rung_opened { rung; arms; pulls })
      | "rung_close" ->
          let* rung = int "rung" in
          let* survivors = int "survivors" in
          Ok (Rung_closed { rung; survivors })
      | "arm_promote" ->
          let* rung = int "rung" in
          let* arm = int "arm" in
          Ok (Arm_promoted { rung; arm })
      | "arm_elim" ->
          let* rung = int "rung" in
          let* arm = int "arm" in
          Ok (Arm_eliminated { rung; arm })
      | "req_recv" ->
          let* id = str "id" in
          let* tenant = str "tenant" in
          let* fingerprint = str "fingerprint" in
          Ok (Request_received { id; tenant; fingerprint })
      | "req_admit" ->
          let* id = str "id" in
          let* queue_depth = int "queue_depth" in
          Ok (Request_admitted { id; queue_depth })
      | "req_coalesce" ->
          let* id = str "id" in
          let* leader = str "leader" in
          Ok (Request_coalesced { id; leader })
      | "req_cached" ->
          let* id = str "id" in
          Ok (Request_cached { id })
      | "req_reject" ->
          let* id = str "id" in
          let* reason = str "reason" in
          Ok (Request_rejected { id; reason })
      | "group_start" ->
          let* fingerprint = str "fingerprint" in
          let* members = int "members" in
          Ok (Group_started { fingerprint; members })
      | "group_end" ->
          let* fingerprint = str "fingerprint" in
          let* members = int "members" in
          let* run_s = num "run_s" in
          Ok (Group_finished { fingerprint; members; run_s })
      | "group_cancel" ->
          let* fingerprint = str "fingerprint" in
          Ok (Group_cancelled { fingerprint })
      | "req_expire" ->
          let* id = str "id" in
          Ok (Request_expired { id })
      | "req_replay" ->
          let* id = str "id" in
          let* fingerprint = str "fingerprint" in
          Ok (Request_replayed { id; fingerprint })
      | "server_recover" ->
          let* restarts = int "restarts" in
          let* replayed = int "replayed" in
          let* poisoned = int "poisoned" in
          Ok (Server_recovered { restarts; replayed; poisoned })
      | tag -> Error (Printf.sprintf "unknown event tag '%s'" tag))
