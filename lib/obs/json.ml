type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

(* Shortest decimal form that round-trips: most values need 15 significant
   digits, the rest 17.  Deterministic, so equal traces print to equal
   bytes. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "malformed \\u escape"
               in
               (* The trace schema only escapes control characters, so a
                  Latin-1 fold is enough; anything wider degrades to '?'. *)
               Buffer.add_char buf
                 (if code < 256 then Char.chr code else '?');
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "malformed number '%s'" lexeme))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) ->
      Error (Printf.sprintf "at offset %d: %s" p msg)

(* --- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
