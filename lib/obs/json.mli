(** A minimal JSON value type, printer and parser.

    The harness has no JSON dependency (and may not grow one), but the
    trace exporters ({!Export}) and the offline reader ({!Report}) need a
    common wire format, so this module implements the small subset the
    trace schema uses: objects, arrays, strings, booleans, null, and
    numbers split into [Int] and [Float] so integer fields survive a
    round-trip exactly.

    Printing is deterministic — object fields are emitted in the order
    given, floats use a shortest-round-trip decimal form — which is what
    makes logical-clock trace files byte-comparable across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line, no spaces) rendering.
    @raise Invalid_argument on a non-finite float: JSON has no lexeme for
    them and the trace schema never produces one. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed); [Error]
    carries a position-annotated reason.  Accepts exactly what
    {!to_string} emits, plus ordinary JSON escapes and whitespace. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] ([None] on missing field or non-object). *)

val to_int : t -> int option
(** [Int n] as [Some n] (floats are not silently truncated). *)

val to_float : t -> float option
(** [Float f] or [Int n] as a float. *)

val to_str : t -> string option
(** [String s] as [Some s]. *)
