(** Offline run summaries from exported traces — the [funcy report]
    engine.

    A report is computed purely from a JSONL trace file ({!Export}), so a
    run can be analyzed on a different machine, long after the fact:

    - per-phase breakdown (events, jobs, faults and — for wall-clock
      traces — seconds per Algorithm-1 phase);
    - cache hit-rate over time (from the hit/miss split, or re-derived
      from [cache_query] first-occurrences for logical traces, which by
      construction equals what a sequential run would have recorded);
    - the convergence curve: best-so-far end-to-end seconds vs completed
      evaluations;
    - the fault/retry/quarantine table;
    - per-loop focused pool sizes (CFR's top-X pruning decisions);
    - the derived {!counters}, which for a wall-clock trace reproduce
      {!Ft_engine.Telemetry.snapshot} exactly (asserted in the test
      suite). *)

type entry = { ts : float; event : Event.t }

type t = { clock : string; entries : entry list }
(** A parsed trace: entries in file (= canonical) order. *)

val load : string -> (t, string) result
(** Read a JSONL trace written by {!Export.write_jsonl}.  [Error]
    explains the first malformed line, a missing/foreign header, or an
    event-count mismatch with the header. *)

type counters = {
  builds : int;
  runs : int;
  cache_hits : int;
  cache_misses : int;
  retries : int;
  build_failures : int;
  crashes : int;
  wrong_answers : int;
  timeouts : int;
  worker_crashes : int;
  outliers : int;
  quarantined : int;
  quarantine_hits : int;
  timers : (string * float) list;
}
(** Mirror of {!Ft_engine.Telemetry.snapshot}, recomputed from events. *)

val derive : Event.t list -> counters
(** Recompute telemetry from a trace.  Hits/misses come from the recorded
    split when present, else from [cache_query] first-occurrence; builds
    and runs fall back to the derived miss count when a logical trace
    recorded no [build]/[run] events. *)

val render : t -> string
(** The multi-section plain-text report. *)
