(** The in-memory trace buffer: where events accumulate during a run.

    {2 Recording}

    A trace is shared by the main thread and every worker domain of the
    engine pool.  To keep recording cheap and contention-free, events land
    in one of a fixed set of mutex-sharded buffers keyed by the recording
    domain; ordering is reconstructed afterwards (see below), never from
    arrival time.

    Every emission helper takes a [t option] and is a no-op on [None], so
    call sites stay one-liners and a trace-less run executes the exact
    code path it always did.

    {2 Ordering and determinism}

    Each event is stamped with a three-part key [(serial, job, seq)]:

    - main-thread events draw [serial] from an atomic counter (the main
      thread is sequential, so this order is deterministic) with
      [job = -1];
    - a batch handed to the pool takes {e one} serial for all its jobs;
      within it each job is identified by its submission index [job], and
      its events by a per-job sequence number [seq].

    Sorting by this key yields the {e canonical order}: exactly the order
    a sequential ([--jobs 1]) run would have recorded.  Because each
    engine job's computation is a pure function of the job description,
    the events a job emits are schedule-independent, so the sorted event
    list — and hence the exported logical-clock trace bytes — is
    bit-identical at any worker count.

    {2 Clock modes}

    [Wall] stamps events with monotonic seconds since trace creation and
    additionally records the schedule-dependent events (hit/miss split,
    builds/runs performed, timer accumulations, checkpoint saves) that
    make the {!Ft_engine.Telemetry} counters derivable from the trace.
    [Logical] suppresses those — cache lookups degrade to {!Event.Cache_query}
    — and stamps nothing but the canonical order itself, making the
    exported bytes reproducible. *)

type clock = Wall | Logical

val clock_name : clock -> string
(** ["wall"] / ["logical"]. *)

val clock_of_name : string -> clock option

type t

val create : ?clock:clock -> unit -> t
(** A fresh, empty trace ([clock] defaults to [Wall]). *)

val clock : t -> clock

type stamped = {
  serial : int;  (** main-thread sequence number, or the batch's *)
  job : int;  (** submission index within the batch; [-1] on the main thread *)
  seq : int;  (** per-job event sequence number *)
  ts : float;  (** seconds since trace creation ([Wall]); [0.] in [Logical] *)
  event : Event.t;
}

val events : t -> stamped list
(** All recorded events in canonical [(serial, job, seq)] order. *)

val epoch : t -> float
(** The trace's creation time (absolute [Unix.gettimeofday]), i.e. what
    [Wall] timestamps are relative to.  A worker process ships this with
    its events so {!inject} can rebase them onto the parent's epoch. *)

val inject : t -> epoch:float -> stamped list -> unit
(** Adopt stamps recorded by a worker's shadow trace (processes backend).
    The canonical keys are preserved verbatim — the parent allocated the
    batch serial before forking, so they already sort correctly — and
    [Wall] timestamps are rebased from the shadow's [epoch] onto this
    trace's; [Logical] stamps are untouched (all zero). *)

val length : t -> int

(* -- structure: batches, job scopes, phase spans ----------------------- *)

val batch : t option -> size:int -> int
(** Record a {!Event.Batch_submitted} and return the batch serial to pass
    to {!in_job} (0 when the trace is [None] — the value is then unused). *)

val in_job : t option -> batch:int -> index:int -> (unit -> 'a) -> 'a
(** Run a job's body with emissions attributed to [(batch, index)] via
    domain-local state.  Scopes nest save/restore, so a sequential pool
    running jobs on the main domain is handled too. *)

val span : t option -> Event.phase -> (unit -> 'a) -> 'a
(** Bracket [f] with {!Event.Phase_begin}/{!Event.Phase_end} (emitted even
    if [f] raises). *)

(* -- emission helpers (each a no-op on [None]) ------------------------- *)

val job_started : t option -> key:string -> unit

val job_finished :
  t option -> key:string -> outcome:string -> elapsed_s:float option -> unit

val cache_lookup : t option -> key:string -> hit:bool -> unit
(** Records {!Event.Cache_hit}/{!Event.Cache_miss} under a [Wall] clock;
    under [Logical] both sides collapse to {!Event.Cache_query}, because
    which racing worker takes the miss is scheduling, not search. *)

val build_done : t option -> key:string -> unit  (** [Wall] only *)

val run_done : t option -> key:string -> unit  (** [Wall] only *)

val fault : t option -> key:string -> fault:string -> unit

val retry : t option -> key:string -> attempt:int -> backoff_s:float -> unit

val outlier : t option -> key:string -> unit

val quarantine_added : t option -> key:string -> reason:string -> unit
(** [Wall] only: under workers racing on one faulty key, {e who} inserts
    is scheduling (cf. {!cache_lookup}). *)

val quarantine_hit : t option -> key:string -> reason:string -> unit

val worker_crashed : t option -> detail:string -> unit
(** [Wall] only: a crashed attempt is retried to the same logical events,
    so logical traces stay byte-identical across backends and kills. *)

val checkpoint_saved : t option -> path:string -> unit  (** [Wall] only *)

val checkpoint_loaded : t option -> path:string -> entries:int -> unit
(** [Wall] only *)

val timer : t option -> name:string -> seconds:float -> unit
(** [Wall] only: durations are wall-clock facts. *)

val prune_kept : t option -> module_name:string -> kept:int -> unit

val rung_opened : t option -> rung:int -> arms:int -> pulls:int -> unit
val rung_closed : t option -> rung:int -> survivors:int -> unit
val arm_promoted : t option -> rung:int -> arm:int -> unit

val arm_eliminated : t option -> rung:int -> arm:int -> unit
(** Adaptive-sh allocator decisions (see {!Event.Rung_opened} et al.):
    deterministic search facts, emitted under either clock and kept by
    {!normalized_lines}. *)

(** {3 Server request-lifecycle events}

    Emitted by {!Ft_serve.Server} at each step of a request's life
    (receive → admit/coalesce/reject → group run → respond), under
    either clock: they describe live traffic, which no determinism
    contract covers, and [funcy report] renders them as the server
    section.  All are dropped by {!normalized_lines}. *)

val request_received :
  t option -> id:string -> tenant:string -> fingerprint:string -> unit

val request_admitted : t option -> id:string -> queue_depth:int -> unit
val request_coalesced : t option -> id:string -> leader:string -> unit
val request_cached : t option -> id:string -> unit
val request_rejected : t option -> id:string -> reason:string -> unit
val group_started : t option -> fingerprint:string -> members:int -> unit

val group_finished :
  t option -> fingerprint:string -> members:int -> run_s:float -> unit

val group_cancelled : t option -> fingerprint:string -> unit
val request_expired : t option -> id:string -> unit
val request_replayed : t option -> id:string -> fingerprint:string -> unit

val server_recovered :
  t option -> restarts:int -> replayed:int -> poisoned:int -> unit

(** {2 Resume-invariant normalization}

    The selfcheck oracle compares the trace of an uninterrupted run with
    the trace of a killed-and-resumed one.  Those traces are {e not}
    byte-identical, for exactly two documented reasons, and normalization
    removes exactly them:

    - {b schedule detail}: the [Wall]-only events (hit/miss split, builds,
      runs, timers, checkpoint saves/loads, quarantine insertions, worker
      crashes) depend on what the cache already held and who raced whom —
      [Cache_hit]/[Cache_miss] are collapsed to {!Event.Cache_query}, the
      rest are dropped (a [Logical] trace never records them anyway);
    - {b the resume boundary}: a key whose fault verdict was quarantined
      before the kill replays after resume as a single [Quarantine_hit]
      where the original run recorded the [Fault_injected]/[Retry]
      evidence for the same verdict — all three are dropped, leaving the
      schedule-independent [Job_finished] outcome (which must and does
      agree) to carry the comparison.  For the same reason, [Cache_query]
      events whose key satisfies [is_quarantined] (the caller passes the
      run's {e final} quarantine membership — itself compared separately,
      byte-for-byte) are dropped: deriving a crash/timeout/miscompile
      verdict queries the cache on the way to the fault, replaying it
      from a snapshot does not.

    Everything else — batch structure, job starts/finishes with outcomes,
    cache queries, outlier degradations, phase spans, prune decisions —
    must be byte-identical between a fresh and a resumed run, at any
    [--jobs] count, on either backend. *)

val resume_invariant : stamped -> bool
(** Does this event's {e kind} survive normalization?  (The per-key
    [Cache_query] rule needs quarantine context this predicate does not
    have; it treats all cache queries as invariant.) *)

val normalized_lines : ?is_quarantined:(string -> bool) -> t -> string list
(** The resume-invariant skeleton of the trace: events in canonical
    order, filtered and projected as above, each rendered as a compact
    JSON line (no stamps — sequence numbers shift where events were
    dropped, and position in the list already encodes the order). *)
