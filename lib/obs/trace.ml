type clock = Wall | Logical

let clock_name = function Wall -> "wall" | Logical -> "logical"

let clock_of_name = function
  | "wall" -> Some Wall
  | "logical" -> Some Logical
  | _ -> None

type stamped = {
  serial : int;
  job : int;
  seq : int;
  ts : float;
  event : Event.t;
}

type shard = { lock : Mutex.t; mutable events : stamped list }

let shard_count = 16 (* power of two: sharded by domain id, below *)

type t = {
  clock : clock;
  t0 : float;
  next_serial : int Atomic.t;
  shards : shard array;
}

let create ?(clock = Wall) () =
  {
    clock;
    t0 = Unix.gettimeofday ();
    next_serial = Atomic.make 0;
    shards =
      Array.init shard_count (fun _ ->
          { lock = Mutex.create (); events = [] });
  }

let clock t = t.clock

(* The active job scope of the current domain: (batch serial, job index,
   per-job event counter).  Pool workers process jobs sequentially, so a
   plain domain-local slot (saved/restored around each job) suffices. *)
let job_scope : (int * int * int ref) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record_stamped t st =
  let shard =
    t.shards.((Domain.self () :> int) land (shard_count - 1))
  in
  Mutex.protect shard.lock (fun () -> shard.events <- st :: shard.events)

(* In-job events are batched in a domain-local buffer and drained into
   the domain's shard under a single mutex acquisition — at job exit
   ({!in_job}'s finally, which runs in the recording domain, so a pool
   join can never observe an undrained job), at [flush_threshold], or
   when the domain switches traces.  Per-event locking remains only for
   out-of-job emissions, which are rare by construction. *)

let flush_threshold = 512

type pending_buf = {
  tr : t;
  mutable buffered : stamped list;  (* newest first, like a shard *)
  mutable count : int;
}

let pending : pending_buf option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let drain_buf b =
  match b.buffered with
  | [] -> ()
  | evs ->
      b.buffered <- [];
      b.count <- 0;
      let shard =
        b.tr.shards.((Domain.self () :> int) land (shard_count - 1))
      in
      Mutex.protect shard.lock (fun () -> shard.events <- evs @ shard.events)

let drain_pending () =
  match Domain.DLS.get pending with
  | None -> ()
  | Some b ->
      drain_buf b;
      Domain.DLS.set pending None

let record_buffered t st =
  match Domain.DLS.get pending with
  | Some b when b.tr == t ->
      b.buffered <- st :: b.buffered;
      b.count <- b.count + 1;
      if b.count >= flush_threshold then drain_buf b
  | other ->
      (match other with Some b -> drain_buf b | None -> ());
      Domain.DLS.set pending (Some { tr = t; buffered = [ st ]; count = 1 })

(* Flush this domain's buffer when the caller is about to read [t]'s
   shards directly (insurance for readers inside a job scope). *)
let flush_local t =
  match Domain.DLS.get pending with
  | Some b when b.tr == t -> drain_buf b
  | _ -> ()

let now t = match t.clock with Wall -> Unix.gettimeofday () -. t.t0 | Logical -> 0.0

let record t event =
  match Domain.DLS.get job_scope with
  | Some (batch, index, counter) ->
      let s = !counter in
      incr counter;
      record_buffered t { serial = batch; job = index; seq = s; ts = now t; event }
  | None ->
      let serial = Atomic.fetch_and_add t.next_serial 1 in
      record_stamped t { serial; job = -1; seq = 0; ts = now t; event }

let epoch t = t.t0

(* Adopt events recorded by a worker process's shadow trace.  The
   shipment's stamps already carry the canonical (serial, job, seq) key —
   the parent allocated the batch serial before forking — so adoption is
   order-free; only wall timestamps need rebasing from the shadow's epoch
   onto ours (logical stamps are 0 on both sides). *)
let inject t ~epoch:e0 stamps =
  let dt = match t.clock with Wall -> e0 -. t.t0 | Logical -> 0.0 in
  List.iter
    (fun st ->
      record_stamped t (if dt = 0.0 then st else { st with ts = st.ts +. dt }))
    stamps

let events t =
  flush_local t;
  let all =
    Array.fold_left
      (fun acc shard ->
        List.rev_append (Mutex.protect shard.lock (fun () -> shard.events)) acc)
      [] t.shards
  in
  List.sort
    (fun a b ->
      match compare a.serial b.serial with
      | 0 -> (
          match compare a.job b.job with
          | 0 -> compare a.seq b.seq
          | c -> c)
      | c -> c)
    all

let length t =
  flush_local t;
  Array.fold_left
    (fun acc shard ->
      acc + Mutex.protect shard.lock (fun () -> List.length shard.events))
    0 t.shards

(* -- structure --------------------------------------------------------- *)

let batch t ~size =
  match t with
  | None -> 0
  | Some tr ->
      let serial = Atomic.fetch_and_add tr.next_serial 1 in
      (* job = -1 sorts the submission record ahead of the batch's jobs. *)
      record_stamped tr
        {
          serial;
          job = -1;
          seq = 0;
          ts = now tr;
          event = Event.Batch_submitted { size };
        };
      serial

let in_job t ~batch ~index f =
  match t with
  | None -> f ()
  | Some _ ->
      let saved = Domain.DLS.get job_scope in
      Domain.DLS.set job_scope (Some (batch, index, ref 0));
      Fun.protect
        ~finally:(fun () ->
          (* Drain before the scope closes: this runs in the recording
             domain, so every in-job event is in its shard before the
             pool can join the batch and a reader can ask for it. *)
          drain_pending ();
          Domain.DLS.set job_scope saved)
        f

let emit t e = match t with None -> () | Some tr -> record tr e

let span t phase f =
  match t with
  | None -> f ()
  | Some tr ->
      record tr (Event.Phase_begin { phase });
      Fun.protect ~finally:(fun () -> record tr (Event.Phase_end { phase })) f

(* -- emission helpers -------------------------------------------------- *)

let emit_wall t e =
  match t with Some tr when tr.clock = Wall -> record tr e | _ -> ()

let job_started t ~key = emit t (Event.Job_started { key })

let job_finished t ~key ~outcome ~elapsed_s =
  emit t (Event.Job_finished { key; outcome; elapsed_s })

let cache_lookup t ~key ~hit =
  match t with
  | None -> ()
  | Some tr ->
      record tr
        (match tr.clock with
        | Wall -> if hit then Event.Cache_hit { key } else Event.Cache_miss { key }
        | Logical -> Event.Cache_query { key })

let build_done t ~key = emit_wall t (Event.Build_done { key })
let run_done t ~key = emit_wall t (Event.Run_done { key })
let fault t ~key ~fault = emit t (Event.Fault_injected { key; fault })

let retry t ~key ~attempt ~backoff_s =
  emit t (Event.Retry { key; attempt; backoff_s })

let outlier t ~key = emit t (Event.Outlier { key })

let quarantine_added t ~key ~reason =
  emit_wall t (Event.Quarantine_added { key; reason })

let quarantine_hit t ~key ~reason =
  emit t (Event.Quarantine_hit { key; reason })

let worker_crashed t ~detail = emit_wall t (Event.Worker_crashed { detail })

let checkpoint_saved t ~path = emit_wall t (Event.Checkpoint_saved { path })

let checkpoint_loaded t ~path ~entries =
  emit_wall t (Event.Checkpoint_loaded { path; entries })

let timer t ~name ~seconds = emit_wall t (Event.Timer { name; seconds })

let prune_kept t ~module_name ~kept =
  emit t (Event.Prune_kept { module_name; kept })

(* Adaptive-search rung lifecycle.  Allocator decisions are pure
   functions of the observed (deterministic) scores, so these are
   emitted under either clock and kept by normalization: a resumed or
   re-scheduled run must reproduce the same promotions. *)

let rung_opened t ~rung ~arms ~pulls =
  emit t (Event.Rung_opened { rung; arms; pulls })

let rung_closed t ~rung ~survivors =
  emit t (Event.Rung_closed { rung; survivors })

let arm_promoted t ~rung ~arm = emit t (Event.Arm_promoted { rung; arm })
let arm_eliminated t ~rung ~arm = emit t (Event.Arm_eliminated { rung; arm })

(* Server request-lifecycle events.  Arrival order, coalescing and queue
   depth are properties of live traffic, not of any one search, so they
   are recorded under either clock (a server trace is never part of the
   logical byte-identity contract). *)

let request_received t ~id ~tenant ~fingerprint =
  emit t (Event.Request_received { id; tenant; fingerprint })

let request_admitted t ~id ~queue_depth =
  emit t (Event.Request_admitted { id; queue_depth })

let request_coalesced t ~id ~leader =
  emit t (Event.Request_coalesced { id; leader })

let request_cached t ~id = emit t (Event.Request_cached { id })

let request_rejected t ~id ~reason =
  emit t (Event.Request_rejected { id; reason })

let group_started t ~fingerprint ~members =
  emit t (Event.Group_started { fingerprint; members })

let group_finished t ~fingerprint ~members ~run_s =
  emit t (Event.Group_finished { fingerprint; members; run_s })

let group_cancelled t ~fingerprint = emit t (Event.Group_cancelled { fingerprint })
let request_expired t ~id = emit t (Event.Request_expired { id })

let request_replayed t ~id ~fingerprint =
  emit t (Event.Request_replayed { id; fingerprint })

let server_recovered t ~restarts ~replayed ~poisoned =
  emit t (Event.Server_recovered { restarts; replayed; poisoned })

(* -- resume-invariant normalization ------------------------------------ *)

(* Project an event onto the resume-invariant skeleton (see the .mli for
   the rule-by-rule rationale), or [None] to drop it. *)
let normalize_event = function
  (* Wall-only schedule detail: which worker took the miss, performed the
     build, saved the snapshot... is scheduling, not search. *)
  | Event.Cache_hit { key } | Event.Cache_miss { key } ->
      Some (Event.Cache_query { key })
  | Event.Build_done _ | Event.Run_done _ | Event.Timer _
  | Event.Checkpoint_saved _ | Event.Checkpoint_loaded _
  | Event.Quarantine_added _ | Event.Worker_crashed _ -> None
  (* The documented resume boundary: a key whose fault verdict was
     snapshotted replays as one Quarantine_hit instead of the original
     Fault_injected/Retry sequence — same verdict, different evidence. *)
  | Event.Fault_injected _ | Event.Retry _ | Event.Quarantine_hit _ -> None
  (* Server request-lifecycle events are live-traffic facts (arrival
     order, coalescing, queue depth), not search facts: a resumed search
     owes them nothing, so they are outside the invariant skeleton. *)
  | Event.Request_received _ | Event.Request_admitted _
  | Event.Request_coalesced _ | Event.Request_cached _
  | Event.Request_rejected _ | Event.Group_started _
  | Event.Group_finished _ | Event.Group_cancelled _
  | Event.Request_expired _ | Event.Request_replayed _
  | Event.Server_recovered _ -> None
  | e -> Some e

let resume_invariant st = Option.is_some (normalize_event st.event)

let normalized_lines ?(is_quarantined = fun _ -> false) t =
  List.filter_map
    (fun st ->
      match normalize_event st.event with
      | None -> None
      (* A key that ends the run quarantined only queried the cache on the
         runs that derived its verdict the hard way (fresh fault path),
         never on the runs that replayed the verdict from a snapshot —
         the one cache-query asymmetry resume can produce.  The verdict
         itself stays: its Job_finished outcome must and does agree. *)
      | Some (Event.Cache_query { key }) when is_quarantined key -> None
      | Some e ->
          Some
            (Json.to_string
               (Json.Obj (("ev", Json.String (Event.name e)) :: Event.fields e))))
    (events t)
