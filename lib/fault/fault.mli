(** Deterministic fault injection for the evaluation engine.

    Real autotuning campaigns are not a perfect world: compilers ICE on
    hostile flag combinations, miscompiled binaries crash or print wrong
    answers, noisy machines hang or produce heavy-tailed timing outliers.
    OpenTuner-style frameworks treat failing configurations as first-class
    citizens, and the engine's recovery policy ({!Ft_engine.Engine}) needs a
    reproducible adversary to be tested against.  This module is that
    adversary: a seeded fault model whose every decision is a {e pure
    function} of the fault seed and a structural key — never of wall-clock
    time, worker scheduling or evaluation order — so a fault schedule is
    bit-reproducible at any [--jobs N].

    Determinism argument: each query seeds a private SplitMix64 stream with
    a hash of [(fault seed, fault kind, structural key)] (the same
    construction as {!Ft_machine.Quirk}).  Two engines with the same fault
    seed therefore agree on every injected fault regardless of how many
    workers evaluate the schedule or in which order, and a quarantine hit
    returns exactly the outcome a re-evaluation would have computed. *)

type t = {
  seed : int;  (** the fault schedule seed ([--fault-seed]) *)
  compile_fail_rate : float;
      (** base probability that compiling one (module, CV) pair ICEs;
          scaled up by the CV's {!hostility} *)
  crash_rate : float;  (** probability a built binary crashes at runtime *)
  wrong_answer_rate : float;
      (** probability a binary is miscompiled: it runs to completion but
          its output checksum fails validation *)
  hang_rate : float;
      (** probability a run hangs (simulated elapsed time is inflated by a
          heavy-tailed factor and may trip the engine's timeout budget) *)
  outlier_rate : float;
      (** per-repeat probability that one timing measurement is a
          heavy-tailed outlier (motivates [--repeats] aggregation) *)
  transient_fraction : float;
      (** fraction of crashes and hangs that are transient — they stop
          firing after one or two retries; the rest persist forever *)
}

val make : ?seed:int -> ?rate:float -> unit -> t
(** [make ~seed ~rate ()] distributes an overall injection rate over the
    fault classes (compile 25 %, crash 25 %, wrong answer 15 %, hang 15 %
    of [rate]; outliers at [rate] per repeat; 60 % of crashes/hangs
    transient).  Defaults: [seed = 1], [rate = 0.1]. *)

val describe : t -> string
(** One-line human-readable summary (for [--stats] headers and logs). *)

val hostility : Ft_flags.Cv.t -> float
(** Multiplier (>= 1) applied to [compile_fail_rate] for a CV: aggressive
    unrolling, forced 256-bit SIMD, speculative dependence analysis,
    advanced instruction selection and extreme inliner budgets all make a
    vector more likely to ICE — exactly the hostile corners a random
    sampler keeps probing. *)

val ice : t -> program:string -> module_name:string -> Ft_flags.Cv.t -> bool
(** Does compiling [module_name] of [program] under this CV ICE?  Compile
    faults are {e persistent}: the same triple always ICEs, so retrying is
    pointless and the engine quarantines immediately. *)

type run_fault =
  | Run_ok  (** no fault injected on this attempt *)
  | Crash of { transient : bool }  (** the binary crashed (e.g. SIGSEGV) *)
  | Wrong_answer  (** ran to completion, output fails validation *)
  | Hang of { factor : float; transient : bool }
      (** simulated elapsed time is [factor] (heavy-tailed, >= 50) times
          the nominal runtime; whether that trips depends on the engine's
          timeout budget *)

val run_fault : t -> key:string -> attempt:int -> run_fault
(** The fault injected into run [attempt] (0-based) of the build identified
    by [key] (the engine's content-addressed cache key).  The fault class
    is drawn once per build; transient crashes/hangs stop firing after a
    per-build number of attempts (1 or 2), persistent ones never do, and
    wrong answers are always persistent (a miscompile is in the binary). *)

val corrupt_signature : key:string -> int -> int
(** The output checksum observed from a miscompiled run: a deterministic
    corruption of the expected signature, guaranteed different from it —
    this is what the engine's output-validation step compares against. *)

val outlier : t -> key:string -> repeat:int -> float option
(** [Some factor] (heavy-tailed, >= 1.5) when repeat [repeat] of build
    [key] lands on a noisy-machine outlier, [None] otherwise. *)
