module Rng = Ft_util.Rng
module Cv = Ft_flags.Cv

type t = {
  seed : int;
  compile_fail_rate : float;
  crash_rate : float;
  wrong_answer_rate : float;
  hang_rate : float;
  outlier_rate : float;
  transient_fraction : float;
}

let make ?(seed = 1) ?(rate = 0.1) () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.make: rate must be in [0,1]";
  {
    seed;
    compile_fail_rate = 0.25 *. rate;
    crash_rate = 0.25 *. rate;
    wrong_answer_rate = 0.15 *. rate;
    hang_rate = 0.15 *. rate;
    outlier_rate = rate;
    transient_fraction = 0.6;
  }

let describe t =
  Printf.sprintf
    "faults(seed=%d ice=%.3f crash=%.3f wrong=%.3f hang=%.3f outlier=%.3f \
     transient=%.0f%%)"
    t.seed t.compile_fail_rate t.crash_rate t.wrong_answer_rate t.hang_rate
    t.outlier_rate
    (100.0 *. t.transient_fraction)

(* Every decision is drawn from a private stream seeded by a hash of
   (fault seed, kind, structural key) — the Quirk construction — so the
   schedule is a pure function of the model and the key, independent of
   worker count and evaluation order. *)
let stream t kind key =
  Rng.create (Rng.hash_string (Printf.sprintf "fault:%d:%s:%s" t.seed kind key))

let draw t kind key = Rng.float (stream t kind key) 1.0

(* --- compile faults --------------------------------------------------- *)

let hostility cv =
  let add acc cond w = if cond then acc +. w else acc in
  let h = 1.0 in
  let h = add h (Cv.unroll_bound cv = Some 16) 0.8 in
  let h = add h (Cv.simd_pref cv = Cv.Width_256) 0.7 in
  let h = add h (Cv.dep_analysis cv = Cv.Level_high) 0.6 in
  let h = add h (Cv.isel cv = Cv.Isel_advanced) 0.5 in
  let h = add h (Cv.inline_factor cv = 400) 0.4 in
  let h = add h (Cv.tile_size cv <> None && Cv.interchange cv) 0.4 in
  h

let ice t ~program ~module_name cv =
  let key =
    Printf.sprintf "%s:%s:%s" program module_name (Cv.to_compact cv)
  in
  let p = Float.min 0.95 (t.compile_fail_rate *. hostility cv) in
  draw t "ice" key < p

(* --- run faults ------------------------------------------------------- *)

type run_fault =
  | Run_ok
  | Crash of { transient : bool }
  | Wrong_answer
  | Hang of { factor : float; transient : bool }

(* A heavy-tailed (Pareto) factor: u^(-alpha) scaled so the median is a
   couple of orders of magnitude above nominal. *)
let pareto rng ~scale ~alpha =
  let u = Float.max 1e-9 (Rng.float rng 1.0) in
  scale *. (u ** (-.alpha))

let run_fault t ~key ~attempt =
  (* The class and its parameters are per-build (persistent across
     attempts); only whether a *transient* fault still fires depends on
     the attempt number. *)
  let u = draw t "run" key in
  let transient () = draw t "transient" key < t.transient_fraction in
  (* Transient faults fire on the first 1 or 2 attempts, then clear. *)
  let severity () = 1 + Rng.int (stream t "severity" key) 2 in
  let fires ~is_transient =
    (not is_transient) || attempt < severity ()
  in
  if u < t.crash_rate then
    let tr = transient () in
    if fires ~is_transient:tr then Crash { transient = tr } else Run_ok
  else if u < t.crash_rate +. t.wrong_answer_rate then Wrong_answer
  else if u < t.crash_rate +. t.wrong_answer_rate +. t.hang_rate then
    let tr = transient () in
    if fires ~is_transient:tr then
      Hang { factor = pareto (stream t "hang" key) ~scale:50.0 ~alpha:1.5;
             transient = tr }
    else Run_ok
  else Run_ok

let corrupt_signature ~key expected =
  let salt = Rng.hash_string ("corrupt:" ^ key) lor 1 in
  expected lxor salt

(* --- measurement outliers --------------------------------------------- *)

let outlier t ~key ~repeat =
  let k = Printf.sprintf "%s:%d" key repeat in
  if draw t "outlier" k < t.outlier_rate then
    Some (pareto (stream t "outlier-mult" k) ~scale:1.5 ~alpha:0.8)
  else None
