module Context = Funcytuner.Context
module Result = Funcytuner.Result
module Engine = Ft_engine.Engine
module Exec = Ft_machine.Exec

type t = {
  result : Result.t;
  technique_uses : (string * int) list;
}

let run ?budget (ctx : Context.t) =
  let budget =
    match budget with Some b -> b | None -> Array.length ctx.Context.pool
  in
  let rng = Context.stream ctx "opentuner" in
  let measure_rng = Context.stream ctx "opentuner:measure" in
  let techniques =
    [
      De.create ~rng:(Ft_util.Rng.of_label rng "de") ();
      Nelder_mead.create ~rng:(Ft_util.Rng.of_label rng "nm") ();
      Torczon.create ~rng:(Ft_util.Rng.of_label rng "torczon") ();
      Ga.create ~rng:(Ft_util.Rng.of_label rng "ga") ();
      Pso.create ~rng:(Ft_util.Rng.of_label rng "pso") ();
      Annealing.create ~rng:(Ft_util.Rng.of_label rng "sa") ();
      {
        Technique.name = "Random";
        propose =
          (let r = Ft_util.Rng.of_label rng "random" in
           fun () -> Ft_flags.Space.sample r);
        feedback = (fun _ _ -> ());
      };
    ]
  in
  let bandit =
    Bandit.create (List.map (fun t -> t.Technique.name) techniques)
  in
  let technique name =
    List.find (fun t -> t.Technique.name = name) techniques
  in
  (* A faulted configuration still has to feed the techniques a cost —
     their population arithmetic needs finite numbers — so it is charged a
     flat 10× baseline penalty, steering every technique away from the
     faulty region without ever being eligible to win. *)
  let penalty = ctx.Context.baseline_s *. 10.0 in
  let best = ref None in
  let trace = ref [] in
  Ft_obs.Trace.span (Context.trace ctx) Ft_obs.Event.Search (fun () ->
  for _ = 1 to budget do
    let name = Bandit.select bandit in
    let tech = technique name in
    let cv = tech.Technique.propose () in
    let cost, valid =
      match Context.try_measure_uniform ctx ~rng:measure_rng cv with
      | Engine.Ok m -> (m.Exec.elapsed_s, true)
      | _ -> (penalty, false)
    in
    tech.Technique.feedback cv cost;
    let improved =
      valid && match !best with Some (c, _) -> cost < c | None -> true
    in
    Bandit.reward bandit name improved;
    if improved then best := Some (cost, cv);
    trace := cost :: !trace
  done);
  let best_seconds, best_cv =
    match !best with
    | Some (_, cv) -> (Context.evaluate_uniform ctx cv, cv)
    | None ->
        if budget = 0 then invalid_arg "Ensemble.run: zero budget"
        else
          (* Every proposal faulted: fall back to the O3 build. *)
          (Context.evaluate_uniform ctx Ft_flags.Cv.o3, Ft_flags.Cv.o3)
  in
  let result =
    Result.make ~algorithm:"OpenTuner"
      ~configuration:(Result.Whole_program best_cv)
      ~baseline_s:ctx.Context.baseline_s ~evaluations:budget
      ~trace:(Result.best_so_far (List.rev !trace))
      ~best_seconds
  in
  {
    result;
    technique_uses =
      List.map
        (fun t -> (t.Technique.name, Bandit.uses bandit t.Technique.name))
        techniques;
  }
