type t = Domains | Processes | Sharded

let default = Domains
let all = [ Domains; Processes; Sharded ]

let to_name = function
  | Domains -> "domains"
  | Processes -> "processes"
  | Sharded -> "sharded"

let of_name = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | "sharded" -> Some Sharded
  | _ -> None

let describe = function
  | Domains ->
      "shared-memory worker domains (one process, OCaml 5 domains)"
  | Processes ->
      "forked worker processes (crash isolation, length-prefixed Marshal \
       frames over pipes)"
  | Sharded ->
      "coordinator + forked worker nodes (--nodes): pre-partitioned shards \
       with work stealing, cache deltas shipped as binary v2 frames"
