type t = Domains | Processes

let default = Domains
let all = [ Domains; Processes ]
let to_name = function Domains -> "domains" | Processes -> "processes"

let of_name = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | _ -> None

let describe = function
  | Domains ->
      "shared-memory worker domains (one process, OCaml 5 domains)"
  | Processes ->
      "forked worker processes (crash isolation, length-prefixed Marshal \
       frames over pipes)"
