(** A fixed-size pool of forked worker processes — the crash-isolated
    sibling of the domain {!Pool}.

    {!map} forks its workers {e after} the closure and job array exist,
    so both sides of the protocol share them through fork-time memory
    and the pipes carry only plain data ({!Ipc} frames: job indices
    down, [(index, payload)] replies up).  Scheduling is dynamic — each
    worker is fed the next unclaimed index as it goes idle — and results
    land by submission index, like the domain pool.

    {2 Crash taxonomy}

    A worker can die by signal (OOM kill, SIGSEGV, the chaos hook), by
    nonzero exit, or by desynchronizing its reply stream (a torn frame).
    All three surface the same way: the worker's in-flight job finishes
    as [Error (Crashed { pid; detail })], the worker is reaped, and the
    pool forks a replacement (bounded by a respawn budget, since a
    systematically lethal closure must not fork-bomb).  Jobs that were
    never fed are unaffected; jobs already completed keep their results.
    The pool never re-runs a crashed job itself — that retry decision
    (and its determinism argument) belongs to {!Engine}.

    {b Fork vs. domains}: the runtime refuses [Unix.fork] in any process
    that has ever spawned a domain, so a process must commit to one
    backend before any [jobs > 1] domain work runs ([jobs = 1] on the
    domain pool is strictly sequential and spawns none).  The CLI's
    [--backend] flag satisfies this naturally; tests that mix backends
    run in separate binaries ([test/test_backend.ml]). *)

type crash = { pid : int; detail : string }
(** [detail] is human-readable: ["killed by SIGKILL"], ["exited 3"],
    ["torn frame: short payload (12/96 bytes); killed by SIGKILL"]. *)

type failure =
  | Raised of string
      (** the closure raised inside a healthy worker; payload is
          [Printexc.to_string] of the exception (the worker survives) *)
  | Crashed of crash  (** the worker process itself died *)

val crash_to_string : crash -> string
val failure_to_string : failure -> string

val map :
  workers:int ->
  ?on_result:(int -> ('b, failure) result -> unit) ->
  ?kill_first_worker_after:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, failure) result array
(** [map ~workers f a] runs [f] over [a] on up to [workers] forked
    processes and returns per-index results in submission order.

    [on_result] is invoked in the {e parent}, once per index, as each
    reply frame (or crash) arrives — the engine uses it to merge worker
    shipments and advance progress mid-batch.

    [kill_first_worker_after:k] is the deterministic chaos hook: the
    first worker spawned SIGKILLs itself when fed its [(k+1)]-th job
    (i.e. after completing [k]), once per [map] call — exercising the
    whole crash path (in-flight job loss, reap, respawn) on demand.

    The closure and array are captured by fork, so [f] may close over
    anything; only its {e result} must be Marshal-safe plain data.
    @raise Invalid_argument if [workers < 1]. *)
