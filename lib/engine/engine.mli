(** The parallel evaluation engine: how (build, run) jobs execute.

    Every search in the paper is embarrassingly parallel — the §2.2.2
    collection framework performs K = 1000 independent instrumented builds,
    and CFR links and measures 1000 more per-module configurations.  The
    engine owns that loop for all of them:

    - jobs run on a fixed-size {!Pool} of domains ([jobs = 1], the
      default, is strictly sequential);
    - every job carries {e its own} RNG stream for measurement noise, so
      results are bit-identical at any worker count ({e deterministic
      parallelism} — the correctness property [test/suite_engine.ml]
      checks explicitly);
    - noise-free summaries are memoized in a content-addressed {!Cache}
      (shareable across searches and persistable across runs);
    - counters and timers accumulate in {!Telemetry}.

    Determinism argument, in full: a [build] value determines the binary
    (compilation and linking are pure), and the binary plus the input
    determines the noise-free {!Ft_machine.Exec.summary} (evaluation is
    pure).  The only stochastic step — measurement noise — is drawn from
    the job's private [rng], never from shared state.  Hence each job's
    measurement is a pure function of the job description, and the pool
    only ever changes {e when} a job runs, not what it computes.

    {2 Fault tolerance}

    A {!policy} can arm a deterministic fault model
    ({!Ft_fault.Fault}) and a recovery discipline around it: compile
    failures and miscompiles are quarantined immediately (retrying cannot
    fix a binary), transient crashes and timeouts are retried up to
    [max_retries] times with capped exponential backoff (simulated — the
    wait is recorded on the ["backoff"] timer, never slept), and repeated
    measurements ([repeats]) are reduced to a robust representative that
    rejects heavy-tailed outliers.  Because injected faults are pure
    functions of the fault seed and the build's cache key, every outcome —
    including which attempt a transient fault clears on — is bit-identical
    at any [jobs] count, and a {!Quarantine} hit returns exactly what
    re-evaluation would have computed. *)

type build =
  | Uniform of { cv : Ft_flags.Cv.t; instrumented : bool }
      (** traditional whole-program build: one CV for every region *)
  | Assigned of {
      assignment : (string * Ft_flags.Cv.t) list;
      instrumented : bool;
    }
      (** per-module build of an outlined program; the assignment must
          cover every module of the outline handed to the engine call *)

type job = { build : build; rng : Ft_util.Rng.t }
(** One unit of work: a build plus the private stream its measurement
    noise is drawn from. *)

type policy = {
  faults : Ft_fault.Fault.t option;
      (** arm the fault model, or [None] for the perfect world (default) *)
  timeout_s : float;  (** budget a (simulated) run may not exceed *)
  max_retries : int;  (** attempts after the first, for transient faults *)
  backoff_base_s : float;  (** first retry delay (simulated) *)
  backoff_cap_s : float;  (** backoff ceiling (simulated) *)
  repeats : int;  (** measurements per job, robustly aggregated *)
}

val default_policy : policy
(** No faults, 3600 s timeout, 2 retries, 0.1 s base / 5 s cap backoff,
    1 repeat — under which the engine is bit-identical to the
    pre-fault-layer engine. *)

type job_outcome =
  | Ok of Ft_machine.Exec.measurement  (** a valid, validated measurement *)
  | Build_failed of string  (** compiler ICE; payload is the module *)
  | Crashed of string  (** runtime crash surviving all retries *)
  | Wrong_answer  (** ran, but output validation failed (miscompile) *)
  | Timed_out of float  (** killed at this simulated elapsed seconds *)
  | Worker_crashed of string
      (** processes backend only: the {e worker process} evaluating this
          job died (signal, nonzero exit, torn IPC frame) on every
          attempt the retry budget allowed; payload is the last crash
          detail.  Quarantined as [Crashed ("worker: " ^ detail)]. *)

exception Job_failed of job_outcome
(** Raised by the fail-fast API ({!measure_one}/{!measure_batch}) for any
    non-[Ok] outcome.  Never raised when the policy has no fault model. *)

val elapsed : job_outcome -> float option
(** Wall time of the job, where one is defined: the measurement's for
    [Ok], the kill time for [Timed_out], [None] otherwise. *)

val outcome_to_string : job_outcome -> string
(** Short human-readable rendering, e.g. ["crashed(persistent crash)"]. *)

val reason_of_outcome : job_outcome -> Quarantine.reason option
(** The quarantine reason a terminal outcome records ([None] for [Ok]). *)

type t

val create :
  ?jobs:int ->
  ?backend:Backend.t ->
  ?kill_workers_after:int ->
  ?nodes:int ->
  ?kill_node_after:int ->
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?policy:policy ->
  ?quarantine:Quarantine.t ->
  ?checkpoint:Checkpoint.t ->
  ?trace:Ft_obs.Trace.t ->
  unit ->
  t
(** [jobs] defaults to 1 (sequential).  [backend] (default
    {!Backend.Domains}) selects the execution substrate for batches:
    {!Backend.Processes} runs each batch on a {!Procpool} of forked
    workers, whose crashes surface as typed [Worker_crashed] outcomes
    instead of taking the search down; {!Backend.Sharded} runs it on the
    installed coordinator/node topology ({!install_node_mapper},
    normally [Ft_shard.Shard.install]) across [nodes] (default 1) forked
    node processes, with work stealing and codec-framed cache deltas.
    [kill_workers_after] arms the deterministic chaos hook (processes
    backend only): on each batch's {e first} round, the first worker
    SIGKILLs itself after completing that many jobs — the crash path's
    test harness.  [kill_node_after] is the same hook for the sharded
    backend's designated first node.  A fresh cache, telemetry and
    quarantine are allocated unless shared ones are passed (e.g. one
    cache for a whole experiment lab, or a quarantine reloaded from a
    checkpoint).  When a [checkpoint] is attached, cache and quarantine
    snapshots are refreshed as state accumulates and on
    {!flush_checkpoint}.  When a [trace] is attached, every cache lookup,
    build, run, fault, retry, quarantine decision and job completion is
    recorded as a typed {!Ft_obs.Event} — with no trace, not a single
    extra instruction runs on the job path.
    @raise Invalid_argument if [jobs < 1], [nodes < 1],
    [policy.repeats < 1], [policy.max_retries < 0],
    [policy.timeout_s <= 0], [kill_workers_after < 0] or
    [kill_node_after < 0]. *)

val jobs : t -> int
val backend : t -> Backend.t

val nodes : t -> int
(** Node count for the sharded backend (1 unless set; ignored by the
    other backends, as [jobs] is by the sharded one). *)

val cache : t -> Cache.t
val telemetry : t -> Telemetry.t
val policy : t -> policy
val quarantine : t -> Quarantine.t
val checkpoint : t -> Checkpoint.t option
val trace : t -> Ft_obs.Trace.t option

val timed : t -> string -> (unit -> 'a) -> 'a
(** [timed t name f] runs [f], accumulating its wall time both on the
    telemetry timer [name] and (wall-clock traces only) as a trace
    {!Ft_obs.Event.Timer} event, keeping the two stores derivable from
    one another.  Used by the engine for ["build"]/["run"] and by the
    search layers for their phase timers. *)

val flush_checkpoint : t -> unit
(** Force a checkpoint snapshot now (no-op without an attached
    checkpoint).  Called by the CLI at the end of a run and from its
    simulated-kill hook. *)

val key :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  string
(** The content-addressed cache key of a build in an execution context
    (exposed for tests; also the structural key faults are drawn from). *)

val summary :
  ?key_str:string ->
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  Ft_machine.Exec.summary
(** Noise-free summary of one build, through the cache.  [key_str], when
    given, must be {!key} of the same build in the same context — callers
    that already computed it skip the second canonicalization + digest on
    the evaluation hot path.
    @raise Invalid_argument for an [Assigned] build without [?outline]. *)

val evaluate :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  float
(** [(summary ...).sum_total_s]: the cached noise-free end-to-end time.
    Never faulted — searches use it to confirm a winner. *)

val measure_one :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job ->
  Ft_machine.Exec.measurement
(** One noisy measurement, drawn from the job's own stream on top of the
    cached summary.  @raise Job_failed on any injected fault outcome. *)

val try_measure_one :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job ->
  job_outcome
(** Outcome-typed version of {!measure_one}: quarantine lookup, per-module
    ICE check, retry/backoff loop, output validation and robust repeat
    aggregation, never raising for an injected fault. *)

val measure_batch :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job array ->
  Ft_machine.Exec.measurement array
(** Measure a batch on the pool, fail-fast: the first [Job_failed]
    aborts the batch (wrapped in {!Pool.Worker_failure}).  Results are in
    submission order and bit-identical for any [jobs] setting {e and
    either backend} (see the determinism argument above).  Progress ticks
    fire per completed job.  On the processes backend the whole batch
    runs before the first failure (in submission order) is raised —
    isolation makes aborting siblings pointless. *)

val try_measure_batch :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job array ->
  job_outcome array
(** Partial-results batch: every job yields its own {!job_outcome} in
    submission order; injected faults (and even unexpected worker
    exceptions, recorded as [Crashed]) never poison sibling jobs.  On the
    processes backend a {e dying worker} doesn't either: its in-flight
    job is re-run on a fresh worker up to [policy.max_retries] times
    (bit-identically, by determinism), then surfaces as
    [Worker_crashed]. *)

val measure_list :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job list ->
  Ft_machine.Exec.measurement list
(** List version of {!measure_batch}. *)

val try_measure_list :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job list ->
  job_outcome list
(** List version of {!try_measure_batch}. *)

(** {2 Sharded-backend registry}

    [Ft_shard] (the coordinator/node library) depends on this one, so
    the engine reaches it through an installed callback rather than by
    name.  The record field is universally quantified: one installation
    serves every item/result type the engine instantiates it at. *)

type node_mapper = {
  map :
    'a 'b.
    nodes:int ->
    ?on_result:(int -> ('b, Procpool.failure) Stdlib.result -> unit) ->
    ?kill_first_node_after:int ->
    ('a -> 'b) ->
    'a array ->
    ('b, Procpool.failure) Stdlib.result array;
}
(** The contract {!Backend.Sharded} batches run through — same shape and
    failure taxonomy as {!Procpool.map}, with [nodes] forked node
    processes in place of cursor-fed workers and [kill_first_node_after]
    arming the designated node's self-SIGKILL chaos hook. *)

val install_node_mapper : node_mapper -> unit
(** Install (or replace) the sharded backend's mapper.  Called once at
    startup by [Ft_shard.Shard.install]; a {!Backend.Sharded} batch
    without an installation fails with a [Failure] naming the missing
    call. *)
