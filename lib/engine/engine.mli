(** The parallel evaluation engine: how (build, run) jobs execute.

    Every search in the paper is embarrassingly parallel — the §2.2.2
    collection framework performs K = 1000 independent instrumented builds,
    and CFR links and measures 1000 more per-module configurations.  The
    engine owns that loop for all of them:

    - jobs run on a fixed-size {!Pool} of domains ([jobs = 1], the
      default, is strictly sequential);
    - every job carries {e its own} RNG stream for measurement noise, so
      results are bit-identical at any worker count ({e deterministic
      parallelism} — the correctness property [test/suite_engine.ml]
      checks explicitly);
    - noise-free summaries are memoized in a content-addressed {!Cache}
      (shareable across searches and persistable across runs);
    - counters and timers accumulate in {!Telemetry}.

    Determinism argument, in full: a [build] value determines the binary
    (compilation and linking are pure), and the binary plus the input
    determines the noise-free {!Ft_machine.Exec.summary} (evaluation is
    pure).  The only stochastic step — measurement noise — is drawn from
    the job's private [rng], never from shared state.  Hence each job's
    measurement is a pure function of the job description, and the pool
    only ever changes {e when} a job runs, not what it computes. *)

type build =
  | Uniform of { cv : Ft_flags.Cv.t; instrumented : bool }
      (** traditional whole-program build: one CV for every region *)
  | Assigned of {
      assignment : (string * Ft_flags.Cv.t) list;
      instrumented : bool;
    }
      (** per-module build of an outlined program; the assignment must
          cover every module of the outline handed to the engine call *)

type job = { build : build; rng : Ft_util.Rng.t }
(** One unit of work: a build plus the private stream its measurement
    noise is drawn from. *)

type t

val create :
  ?jobs:int -> ?cache:Cache.t -> ?telemetry:Telemetry.t -> unit -> t
(** [jobs] defaults to 1 (sequential).  A fresh cache and telemetry are
    allocated unless shared ones are passed (e.g. one cache for a whole
    experiment lab).  @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
val cache : t -> Cache.t
val telemetry : t -> Telemetry.t

val key :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  string
(** The content-addressed cache key of a build in an execution context
    (exposed for tests). *)

val summary :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  Ft_machine.Exec.summary
(** Noise-free summary of one build, through the cache.
    @raise Invalid_argument for an [Assigned] build without [?outline]. *)

val evaluate :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  build ->
  float
(** [(summary ...).sum_total_s]: the cached noise-free end-to-end time. *)

val measure_one :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job ->
  Ft_machine.Exec.measurement
(** One noisy measurement, drawn from the job's own stream on top of the
    cached summary. *)

val measure_batch :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job array ->
  Ft_machine.Exec.measurement array
(** Measure a batch on the pool.  Results are in submission order and
    bit-identical for any [jobs] setting (see the determinism argument
    above).  Progress ticks fire per completed job. *)

val measure_list :
  t ->
  toolchain:Ft_machine.Toolchain.t ->
  ?outline:Ft_outline.Outline.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  job list ->
  Ft_machine.Exec.measurement list
(** List version of {!measure_batch}. *)
