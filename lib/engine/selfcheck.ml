module Trace = Ft_obs.Trace

type divergence = { stage : string; part : string; diff : string list }

type outcome = {
  label : string;
  evaluations : int;
  kill_points : int list;
  checks : int;
  divergences : divergence list;
}

(* What one run leaves behind, everything rendered to comparable lines:
   the result string, the serialized cache and quarantine snapshots, and
   the resume-invariant skeleton of the logical trace. *)
type artifacts = {
  result : string;
  cache_lines : string list;
  quarantine_lines : string list;
  trace_lines : string list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines_of contents =
  match String.split_on_char '\n' contents with
  | lines -> (
      match List.rev lines with
      | "" :: rest -> List.rev rest (* drop the trailing newline's ghost *)
      | _ -> lines)

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

(* Always rendered as text, whatever format the checkpoints under test
   use: the comparison is semantic (same bindings, bit-exact %h floats)
   and the divergence diffs must stay human-readable lines. *)
let serialize_cache ~scratch ~tag cache =
  let path = Filename.concat scratch (tag ^ ".cache") in
  Cache.save ~format:Cache.Text cache ~path;
  lines_of (read_file path)

let snapshot ~scratch ~tag engine trace result =
  let qpath = Filename.concat scratch (tag ^ ".quarantine") in
  let quarantine = Engine.quarantine engine in
  Quarantine.save quarantine ~path:qpath;
  {
    result;
    cache_lines = serialize_cache ~scratch ~tag (Engine.cache engine);
    quarantine_lines = lines_of (read_file qpath);
    trace_lines =
      Trace.normalized_lines
        ~is_quarantined:(fun key -> Quarantine.find quarantine key <> None)
        trace;
  }

(* A positional line diff — the compared renderings are all in canonical
   (sorted or trace) order, so position-by-position is the honest shape. *)
let diff_lines ~expected ~actual =
  let ea = Array.of_list expected and aa = Array.of_list actual in
  let ne = Array.length ea and na = Array.length aa in
  let out = ref [] in
  let add line = out := line :: !out in
  if ne <> na then
    add (Printf.sprintf "reference has %d lines, this run %d" ne na);
  let n = min ne na in
  let shown = ref 0 and suppressed = ref 0 in
  for i = 0 to n - 1 do
    if ea.(i) <> aa.(i) then
      if !shown < 6 then begin
        incr shown;
        add (Printf.sprintf "line %d:" (i + 1));
        add ("  reference: " ^ ea.(i));
        add ("  this run:  " ^ aa.(i))
      end
      else incr suppressed
  done;
  if !suppressed > 0 then
    add (Printf.sprintf "... and %d more differing lines" !suppressed);
  if ne > n then add (Printf.sprintf "reference has %d extra trailing lines" (ne - n));
  if na > n then add (Printf.sprintf "this run has %d extra trailing lines" (na - n));
  List.rev !out

let compare_part ~stage ~part ~expected ~actual acc =
  if expected = actual then acc
  else { stage; part; diff = diff_lines ~expected ~actual } :: acc

let compare_artifacts ~stage ~reference ~candidate =
  []
  |> compare_part ~stage ~part:"result" ~expected:[ reference.result ]
       ~actual:[ candidate.result ]
  |> compare_part ~stage ~part:"cache" ~expected:reference.cache_lines
       ~actual:candidate.cache_lines
  |> compare_part ~stage ~part:"quarantine"
       ~expected:reference.quarantine_lines
       ~actual:candidate.quarantine_lines
  |> compare_part ~stage ~part:"trace" ~expected:reference.trace_lines
       ~actual:candidate.trace_lines
  |> List.rev

let run ?kill_points ?format ~scratch ~label ~make_engine ~search () =
  (* Reference: uninterrupted, fresh stores, logical trace. *)
  let ref_trace = Trace.create ~clock:Trace.Logical () in
  let ref_engine =
    make_engine ~cache:(Cache.create ()) ~quarantine:(Quarantine.create ())
      ~checkpoint:None ~trace:(Some ref_trace)
  in
  let ref_result = search ref_engine in
  let evaluations = Telemetry.completed (Engine.telemetry ref_engine) in
  let reference = snapshot ~scratch ~tag:"reference" ref_engine ref_trace ref_result in
  let kill_points =
    (match kill_points with
    | Some explicit -> explicit
    | None -> [ 1; (evaluations + 1) / 2; evaluations ])
    |> List.filter (fun n -> n >= 1 && n <= evaluations)
    |> List.sort_uniq compare
  in
  (* One kill point: flush a checkpoint at exactly [n] completed jobs of a
     fresh ("doomed") run, discard everything the doomed run did after
     that flush, and resume a third run from the snapshot.  The doomed
     engine gets no attached checkpoint — periodic ticks after [n] would
     overwrite the kill-point state — just the one-shot flush below,
     which is precisely what --die-after leaves on disk before exit 99. *)
  let check_kill n =
    let stage = Printf.sprintf "kill@%d" n in
    let snap = Filename.concat scratch (Printf.sprintf "kill%d.snap" n) in
    let ck = Checkpoint.create ~path:snap ?format () in
    List.iter remove_if_exists
      [ Checkpoint.path ck; Checkpoint.quarantine_path ck;
        Checkpoint.commit_path ck ];
    let doomed =
      make_engine ~cache:(Cache.create ()) ~quarantine:(Quarantine.create ())
        ~checkpoint:None ~trace:None
    in
    Telemetry.set_progress (Engine.telemetry doomed)
      (fun ~completed ~expected:_ ->
        if completed = n then
          Checkpoint.flush ck ~cache:(Engine.cache doomed)
            ~quarantine:(Engine.quarantine doomed));
    ignore (search doomed : string);
    match Checkpoint.load ck with
    | None ->
        ( [ { stage; part = "checkpoint";
              diff = [ "no snapshot reached the disk at this kill point" ] } ],
          None )
    | Some (cache, quarantine) ->
        let trace = Trace.create ~clock:Trace.Logical () in
        let resumed_engine =
          make_engine ~cache ~quarantine
            ~checkpoint:(Some (Checkpoint.create ~path:snap ?format ()))
            ~trace:(Some trace)
        in
        let result = search resumed_engine in
        let candidate =
          snapshot ~scratch ~tag:(Printf.sprintf "resumed%d" n) resumed_engine
            trace result
        in
        ( compare_artifacts ~stage ~reference ~candidate,
          Some (Engine.cache resumed_engine) )
  in
  let kill_divs, last_resumed_cache =
    List.fold_left
      (fun (divs, last) n ->
        let d, cache = check_kill n in
        (divs @ d, match cache with Some _ -> cache | None -> last))
      ([], None) kill_points
  in
  (* Cache-merge round-trip: adopting the resumed cache into the reference
     cache, and vice versa, must commute — and since a resumed search
     recomputes exactly the reference's key set, both unions must
     serialize to the reference snapshot itself. *)
  let merge_divs, merge_checks =
    match last_resumed_cache with
    | None -> ([], 0)
    | Some resumed_cache ->
        let adopt base extra =
          let union = Cache.create () in
          ignore (Cache.merge union ~from:base : int);
          ignore (Cache.merge union ~from:extra : int);
          union
        in
        let ab =
          serialize_cache ~scratch ~tag:"merge-ab"
            (adopt (Engine.cache ref_engine) resumed_cache)
        in
        let ba =
          serialize_cache ~scratch ~tag:"merge-ba"
            (adopt resumed_cache (Engine.cache ref_engine))
        in
        ( []
          |> compare_part ~stage:"cache-merge" ~part:"order-independence"
               ~expected:ab ~actual:ba
          |> compare_part ~stage:"cache-merge" ~part:"union-vs-reference"
               ~expected:reference.cache_lines ~actual:ab
          |> List.rev,
          2 )
  in
  {
    label;
    evaluations;
    kill_points;
    checks = (4 * List.length kill_points) + merge_checks;
    divergences = kill_divs @ merge_divs;
  }

let passed o = o.divergences = []

let render o =
  let b = Buffer.create 512 in
  Printf.bprintf b "selfcheck %s: %d evaluations, kill points [%s]\n" o.label
    o.evaluations
    (String.concat "; " (List.map string_of_int o.kill_points));
  List.iter
    (fun d ->
      Printf.bprintf b "  DIVERGENCE at %s in %s:\n" d.stage d.part;
      List.iter (fun line -> Printf.bprintf b "    %s\n" line) d.diff)
    o.divergences;
  if passed o then
    Printf.bprintf b
      "  %d checks passed: every resume reproduced the result, cache, \
       quarantine and normalized trace byte-for-byte; cache merge is \
       order-independent\n\
      \  PASS\n"
      o.checks
  else
    Printf.bprintf b "  FAIL: %d of %d checks diverged\n"
      (List.length o.divergences)
      o.checks;
  Buffer.contents b
