module Rng = Ft_util.Rng
module Stats = Ft_util.Stats
module Cv = Ft_flags.Cv
module Platform = Ft_prog.Platform
module Input = Ft_prog.Input
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec
module Outline = Ft_outline.Outline
module Fault = Ft_fault.Fault
module Trace = Ft_obs.Trace

type build =
  | Uniform of { cv : Cv.t; instrumented : bool }
  | Assigned of { assignment : (string * Cv.t) list; instrumented : bool }

type job = { build : build; rng : Rng.t }

type policy = {
  faults : Fault.t option;
  timeout_s : float;
  max_retries : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  repeats : int;
}

let default_policy =
  {
    faults = None;
    timeout_s = 3600.0;
    max_retries = 2;
    backoff_base_s = 0.1;
    backoff_cap_s = 5.0;
    repeats = 1;
  }

type job_outcome =
  | Ok of Exec.measurement
  | Build_failed of string
  | Crashed of string
  | Wrong_answer
  | Timed_out of float
  | Worker_crashed of string

exception Job_failed of job_outcome

let elapsed = function
  | Ok m -> Some m.Exec.elapsed_s
  | Timed_out s -> Some s
  | Build_failed _ | Crashed _ | Wrong_answer | Worker_crashed _ -> None

let outcome_to_string = function
  | Ok m -> Printf.sprintf "ok(%.4fs)" m.Exec.elapsed_s
  | Build_failed m -> "build-failed(" ^ m ^ ")"
  | Crashed d -> "crashed(" ^ d ^ ")"
  | Wrong_answer -> "wrong-answer"
  | Timed_out s -> Printf.sprintf "timed-out(%.1fs)" s
  | Worker_crashed d -> "worker-crashed(" ^ d ^ ")"

(* Payload-free outcome tag for trace events. *)
let outcome_tag = function
  | Ok _ -> "ok"
  | Build_failed _ -> "build-failed"
  | Crashed _ -> "crashed"
  | Wrong_answer -> "wrong-answer"
  | Timed_out _ -> "timed-out"
  | Worker_crashed _ -> "worker-crashed"

let reason_tag = function
  | Quarantine.Build_failed _ -> "build-failed"
  | Quarantine.Crashed _ -> "crashed"
  | Quarantine.Wrong_answer -> "wrong-answer"
  | Quarantine.Timed_out _ -> "timed-out"

(* Only terminal (quarantinable) outcomes map to a reason; [Ok] does not.
   A worker crash shares the [Crashed] reason with a ["worker: "] prefix:
   quarantine is a persisted format and the distinction is diagnostic,
   not behavioral. *)
let reason_of_outcome = function
  | Ok _ -> None
  | Build_failed m -> Some (Quarantine.Build_failed m)
  | Crashed d -> Some (Quarantine.Crashed d)
  | Wrong_answer -> Some Quarantine.Wrong_answer
  | Timed_out s -> Some (Quarantine.Timed_out s)
  | Worker_crashed d -> Some (Quarantine.Crashed ("worker: " ^ d))

let outcome_of_reason = function
  | Quarantine.Build_failed m -> Build_failed m
  | Quarantine.Crashed d -> Crashed d
  | Quarantine.Wrong_answer -> Wrong_answer
  | Quarantine.Timed_out s -> Timed_out s

(* What a forked worker has added to its (fork-private) cache and
   quarantine copies, so the parent can adopt the entries from the
   shipment.  Threaded as a field of [t] rather than a parameter so the
   whole measurement path stays oblivious to which backend runs it. *)
type journal = {
  mutable j_cache : (string * Exec.summary) list;
  mutable j_quar : (string * Quarantine.reason) list;
}

type t = {
  jobs : int;
  backend : Backend.t;
  kill_workers_after : int option;
  nodes : int;
  kill_node_after : int option;
  cache : Cache.t;
  telemetry : Telemetry.t;
  policy : policy;
  quarantine : Quarantine.t;
  checkpoint : Checkpoint.t option;
  trace : Trace.t option;
  journal : journal option;
}

let create ?(jobs = 1) ?(backend = Backend.default) ?kill_workers_after
    ?(nodes = 1) ?kill_node_after ?cache ?telemetry ?(policy = default_policy)
    ?quarantine ?checkpoint ?trace () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if nodes < 1 then invalid_arg "Engine.create: nodes must be >= 1";
  if policy.repeats < 1 then
    invalid_arg "Engine.create: policy.repeats must be >= 1";
  if policy.max_retries < 0 then
    invalid_arg "Engine.create: policy.max_retries must be >= 0";
  if policy.timeout_s <= 0.0 then
    invalid_arg "Engine.create: policy.timeout_s must be positive";
  (match kill_workers_after with
  | Some k when k < 0 ->
      invalid_arg "Engine.create: kill_workers_after must be >= 0"
  | _ -> ());
  (match kill_node_after with
  | Some k when k < 0 -> invalid_arg "Engine.create: kill_node_after must be >= 0"
  | _ -> ());
  {
    jobs;
    backend;
    kill_workers_after;
    nodes;
    kill_node_after;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    telemetry =
      (match telemetry with Some t -> t | None -> Telemetry.create ());
    policy;
    quarantine =
      (match quarantine with Some q -> q | None -> Quarantine.create ());
    checkpoint;
    trace;
    journal = None;
  }

let jobs t = t.jobs
let backend t = t.backend
let nodes t = t.nodes
let cache t = t.cache
let telemetry t = t.telemetry
let policy t = t.policy
let quarantine t = t.quarantine
let checkpoint t = t.checkpoint
let trace t = t.trace

let checkpoint_tick t =
  match t.checkpoint with
  | None -> ()
  | Some ck ->
      if Checkpoint.tick ck ~cache:t.cache ~quarantine:t.quarantine then
        Trace.checkpoint_saved t.trace ~path:(Checkpoint.path ck)

let flush_checkpoint t =
  match t.checkpoint with
  | None -> ()
  | Some ck ->
      Checkpoint.flush ck ~cache:t.cache ~quarantine:t.quarantine;
      Trace.checkpoint_saved t.trace ~path:(Checkpoint.path ck)

(* Time [f] onto a telemetry timer and mirror the accumulation into the
   trace (wall clock only — durations are not deterministic facts). *)
let timed t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Telemetry.add_time t.telemetry name dt;
      Trace.timer t.trace ~name ~seconds:dt)
    f

let instrumented = function
  | Uniform { instrumented; _ } | Assigned { instrumented; _ } -> instrumented

(* The canonical description digested into a cache key.  Everything that
   determines the produced binary and its noise-free runtime must appear:
   compiler personality, platform, program, input geometry, build kind
   (a whole-program build and a per-module build that happens to assign one
   CV everywhere are different binaries: only the latter is outlined),
   the CV assignment itself and the instrumentation flag.  Assignments are
   sorted by module name so equal assignments written in different orders
   share a key. *)
let canonical_key ~(toolchain : Toolchain.t) ~(program : Ft_prog.Program.t)
    ~(input : Input.t) build =
  let buf = Buffer.create 256 in
  Buffer.add_string buf toolchain.Toolchain.cprofile.Ft_compiler.Cprofile.name;
  Buffer.add_char buf ';';
  Buffer.add_string buf
    (Platform.short_name toolchain.Toolchain.arch.Ft_machine.Arch.platform);
  Buffer.add_char buf ';';
  Buffer.add_string buf program.Ft_prog.Program.name;
  Printf.bprintf buf ";size=%h;steps=%d;" input.Input.size input.Input.steps;
  (* Hand-rolled appends below: this runs once per evaluation (and the
     bytes are pinned — they are what existing caches digested). *)
  (match build with
  | Uniform { cv; instrumented } ->
      Buffer.add_string buf
        (if instrumented then "uniform;instr=true;" else "uniform;instr=false;");
      Cv.add_compact buf cv
  | Assigned { assignment; instrumented } ->
      Buffer.add_string buf
        (if instrumented then "assigned;instr=true" else "assigned;instr=false");
      List.iter
        (fun (m, cv) ->
          Buffer.add_char buf ';';
          Buffer.add_string buf m;
          Buffer.add_char buf '=';
          Cv.add_compact buf cv)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) assignment));
  Buffer.contents buf

let key ~toolchain ~program ~input build =
  Cache.digest (canonical_key ~toolchain ~program ~input build)

(* The (module, CV) pairs a build compiles, for the per-module ICE check.
   A whole-program build is one compilation unit; per-module builds are
   checked in sorted module order so the first ICE reported is stable. *)
let compilations = function
  | Uniform { cv; _ } -> [ ("<whole-program>", cv) ]
  | Assigned { assignment; _ } ->
      List.sort (fun (a, _) (b, _) -> String.compare a b) assignment

let compile ~toolchain ?outline ~program build =
  match build with
  | Uniform { cv; instrumented } ->
      Toolchain.compile_uniform toolchain ~cv ~instrumented program
  | Assigned { assignment; instrumented } -> (
      match outline with
      | None ->
          invalid_arg "Engine: a per-module build requires an ?outline"
      | Some o ->
          Outline.compile ~toolchain o
            ~assignment:(fun name ->
              match List.assoc_opt name assignment with
              | Some cv -> cv
              | None ->
                  invalid_arg ("Engine: assignment misses module " ^ name))
            ~instrumented ())

(* [?key_str] lets callers that already digested the job's key (the
   measurement path computes it for quarantine and trace bookkeeping)
   avoid paying for the canonical string and digest twice. *)
let summary ?key_str t ~toolchain ?outline ~program ~input build =
  let key =
    match key_str with
    | Some k -> k
    | None -> key ~toolchain ~program ~input build
  in
  match Cache.find t.cache key with
  | Some s ->
      Telemetry.cache_hit t.telemetry;
      Trace.cache_lookup t.trace ~key ~hit:true;
      s
  | None ->
      Telemetry.cache_miss t.telemetry;
      Trace.cache_lookup t.trace ~key ~hit:false;
      let binary =
        timed t "build" (fun () -> compile ~toolchain ?outline ~program build)
      in
      Telemetry.build t.telemetry;
      Trace.build_done t.trace ~key;
      let run =
        timed t "run" (fun () ->
            Exec.evaluate ~arch:toolchain.Toolchain.arch ~input binary)
      in
      Telemetry.run t.telemetry;
      Trace.run_done t.trace ~key;
      let s = Exec.summarize run in
      Cache.add t.cache key s;
      (match t.journal with
      | Some j -> j.j_cache <- (key, s) :: j.j_cache
      | None -> ());
      checkpoint_tick t;
      s

let evaluate t ~toolchain ?outline ~program ~input build =
  (summary t ~toolchain ?outline ~program ~input build).Exec.sum_total_s

(* -- the fault-aware measurement path ---------------------------------- *)

let quarantine_add t key reason =
  if Quarantine.find t.quarantine key = None then begin
    Quarantine.add t.quarantine key reason;
    (match t.journal with
    | Some j -> j.j_quar <- (key, reason) :: j.j_quar
    | None -> ());
    Telemetry.quarantine t.telemetry;
    Trace.quarantine_added t.trace ~key ~reason:(reason_tag reason);
    checkpoint_tick t
  end

(* Simulated exponential backoff: recorded as wall-clock the policy would
   have spent, without actually sleeping (faults are simulated; so is the
   waiting). *)
let backoff_s policy attempt =
  Float.min policy.backoff_cap_s
    (policy.backoff_base_s *. (2.0 ** float_of_int attempt))

(* Draw the job's measurement: [repeats] samples from the job's private
   stream, each possibly inflated into a heavy-tailed outlier by the fault
   model, reduced to one robust representative.  With [repeats = 1] and no
   fault model this is {e exactly} the historical single [Exec.sample] —
   bit-compatibility with fault-free runs is load-bearing for the existing
   determinism tests. *)
let sample_measurement t ~key ~rng ~instrumented s =
  let n = t.policy.repeats in
  match (n, t.policy.faults) with
  | 1, None -> Exec.sample ~rng ~instrumented s
  | _ ->
      let draw repeat =
        let m = Exec.sample ~rng ~instrumented s in
        match t.policy.faults with
        | None -> m
        | Some f -> (
            match Fault.outlier f ~key ~repeat with
            | None -> m
            | Some factor ->
                Telemetry.outlier t.telemetry;
                Trace.outlier t.trace ~key;
                { m with Exec.elapsed_s = m.Exec.elapsed_s *. factor })
      in
      (* Samples must be drawn in repeat order: they share the job stream. *)
      let samples = Array.make n (draw 0) in
      for i = 1 to n - 1 do
        samples.(i) <- draw i
      done;
      samples.(Stats.robust_representative
                 (Array.map (fun m -> m.Exec.elapsed_s) samples))

let run_job t ~toolchain ?outline ~program ~input ~key_str { build; rng } =
  match Quarantine.find t.quarantine key_str with
  | Some reason ->
      Telemetry.quarantine_hit t.telemetry;
      Trace.quarantine_hit t.trace ~key:key_str ~reason:(reason_tag reason);
      outcome_of_reason reason
  | None -> (
      let ice_module =
        match t.policy.faults with
        | None -> None
        | Some f ->
            List.find_map
              (fun (module_name, cv) ->
                if
                  Fault.ice f ~program:program.Ft_prog.Program.name
                    ~module_name cv
                then Some module_name
                else None)
              (compilations build)
      in
      match ice_module with
      | Some module_name ->
          Telemetry.build_failure t.telemetry;
          Trace.fault t.trace ~key:key_str ~fault:"ice";
          quarantine_add t key_str (Quarantine.Build_failed module_name);
          Build_failed module_name
      | None -> (
          let s = summary ~key_str t ~toolchain ?outline ~program ~input build in
          match t.policy.faults with
          | None ->
              Ok
                (sample_measurement t ~key:key_str ~rng
                   ~instrumented:(instrumented build) s)
          | Some f ->
              let retry attempt k =
                Telemetry.retry t.telemetry;
                let wait = backoff_s t.policy attempt in
                Telemetry.add_time t.telemetry "backoff" wait;
                Trace.retry t.trace ~key:key_str ~attempt ~backoff_s:wait;
                Trace.timer t.trace ~name:"backoff" ~seconds:wait;
                k (attempt + 1)
              in
              let rec attempt_run attempt =
                match Fault.run_fault f ~key:key_str ~attempt with
                | Fault.Run_ok -> validate ()
                | Fault.Crash { transient } ->
                    Telemetry.crash t.telemetry;
                    Trace.fault t.trace ~key:key_str ~fault:"crash";
                    if transient && attempt < t.policy.max_retries then
                      retry attempt attempt_run
                    else begin
                      let detail =
                        if transient then "transient crash, retries exhausted"
                        else "persistent crash"
                      in
                      quarantine_add t key_str (Quarantine.Crashed detail);
                      Crashed detail
                    end
                | Fault.Hang { factor; transient } ->
                    let elapsed_s = factor *. s.Exec.sum_total_s in
                    if elapsed_s > t.policy.timeout_s then begin
                      Telemetry.timeout t.telemetry;
                      Trace.fault t.trace ~key:key_str ~fault:"timeout";
                      if transient && attempt < t.policy.max_retries then
                        retry attempt attempt_run
                      else begin
                        quarantine_add t key_str
                          (Quarantine.Timed_out elapsed_s);
                        Timed_out elapsed_s
                      end
                    end
                    else
                      (* Slow but within budget: the run completed; its
                         timing lands wherever the noise model puts it. *)
                      validate ()
                | Fault.Wrong_answer ->
                    let expected = Exec.output_signature s in
                    let observed =
                      Fault.corrupt_signature ~key:key_str expected
                    in
                    if observed <> expected then begin
                      Telemetry.wrong_answer t.telemetry;
                      Trace.fault t.trace ~key:key_str ~fault:"wrong-answer";
                      quarantine_add t key_str Quarantine.Wrong_answer;
                      Wrong_answer
                    end
                    else validate ()
              and validate () =
                Ok
                  (sample_measurement t ~key:key_str ~rng
                     ~instrumented:(instrumented build) s)
              in
              attempt_run 0))

let try_measure_one t ~toolchain ?outline ~program ~input job =
  let key_str = key ~toolchain ~program ~input job.build in
  Trace.job_started t.trace ~key:key_str;
  let outcome = run_job t ~toolchain ?outline ~program ~input ~key_str job in
  Trace.job_finished t.trace ~key:key_str ~outcome:(outcome_tag outcome)
    ~elapsed_s:(elapsed outcome);
  outcome

let measure_one t ~toolchain ?outline ~program ~input job =
  match try_measure_one t ~toolchain ?outline ~program ~input job with
  | Ok m -> m
  | outcome -> raise (Job_failed outcome)

(* -- the process backend ------------------------------------------------ *)

(* Everything a forked worker must send home with a job's outcome.  Only
   plain data: the parent's stores are unreachable from a child (fork
   copies them), so each job runs against a {e shadow} engine — fresh
   telemetry, a fresh trace of the same clock, no checkpoint, a journal —
   and the parent replays the deltas.  A worker that dies before its
   shipment is written leaves no partial effect anywhere: crashed
   attempts are invisible, which is exactly the retry semantics the
   logical-trace byte-identity argument needs. *)
type shipment = {
  sh_outcome : job_outcome;
  sh_cache : (string * Exec.summary) list;
  sh_quar : (string * Quarantine.reason) list;
  sh_tel : Telemetry.snapshot;
  sh_trace : (float * Trace.stamped list) option;
}

let worker_shipment t ~toolchain ?outline ~program ~input ~batch (i, job) =
  let shadow_trace =
    Option.map (fun tr -> Trace.create ~clock:(Trace.clock tr) ()) t.trace
  in
  let j = { j_cache = []; j_quar = [] } in
  let t' =
    {
      t with
      telemetry = Telemetry.create ();
      trace = shadow_trace;
      checkpoint = None;
      journal = Some j;
    }
  in
  let outcome =
    Trace.in_job shadow_trace ~batch ~index:i (fun () ->
        try_measure_one t' ~toolchain ?outline ~program ~input job)
  in
  {
    sh_outcome = outcome;
    sh_cache = List.rev j.j_cache;
    sh_quar = List.rev j.j_quar;
    sh_tel = Telemetry.snapshot t'.telemetry;
    sh_trace =
      Option.map (fun tr -> (Trace.epoch tr, Trace.events tr)) shadow_trace;
  }

(* Replay one worker's deltas onto the parent's stores.  Adoption is
   conditional on absence: a sibling worker (blind to this one's fork
   image) may have already computed the same key — the values are
   bit-identical by the determinism argument, so first-in wins.  The
   progress tick comes last so a [--die-after] checkpoint flush already
   contains the merged entries. *)
let merge_shipment t sh =
  List.iter
    (fun (k, s) -> if Cache.find t.cache k = None then Cache.add t.cache k s)
    sh.sh_cache;
  List.iter
    (fun (k, r) ->
      if Quarantine.find t.quarantine k = None then Quarantine.add t.quarantine k r)
    sh.sh_quar;
  Telemetry.absorb t.telemetry sh.sh_tel;
  (match (t.trace, sh.sh_trace) with
  | Some tr, Some (epoch, stamps) -> Trace.inject tr ~epoch stamps
  | _ -> ());
  checkpoint_tick t;
  Telemetry.tick t.telemetry

(* -- the sharded backend's registry ------------------------------------- *)

(* [Ft_shard] implements the coordinator/node topology but depends on
   this library (Ipc, Procpool's failure taxonomy, Cache_codec), so the
   engine cannot call it by name.  Instead the shard library installs
   its polymorphic map here at program start ([Ft_shard.Shard.install]);
   the field is universally quantified so one installation serves every
   instantiation the engine needs. *)
type node_mapper = {
  map :
    'a 'b.
    nodes:int ->
    ?on_result:(int -> ('b, Procpool.failure) Stdlib.result -> unit) ->
    ?kill_first_node_after:int ->
    ('a -> 'b) ->
    'a array ->
    ('b, Procpool.failure) Stdlib.result array;
}

let installed_node_mapper : node_mapper option ref = ref None
let install_node_mapper m = installed_node_mapper := Some m

let node_mapper () =
  match !installed_node_mapper with
  | Some m -> m
  | None ->
      failwith
        "Engine: --backend sharded requested but no node mapper is installed \
         (call Ft_shard.Shard.install () at startup)"

(* On the sharded backend a node ships its cache news as Cache_codec
   binary v2 frames — the cluster wire format is the cache's own commit
   format, not Marshal — so the coordinator can absorb deltas with the
   same decoder that reads cache files.  The codec is bit-exact on
   floats, so transcoding preserves the determinism contract. *)
let encode_cache_frames entries =
  let buf = Buffer.create 256 in
  List.iter (fun (k, s) -> Cache_codec.encode_record buf k s) entries;
  Buffer.contents buf

let decode_cache_frames frames =
  let d =
    Cache_codec.decode ~warn:(fun ~line:_ ~reason:_ -> ()) ~pos:0 frames
  in
  if d.Cache_codec.torn || d.Cache_codec.skipped > 0 then
    failwith "Engine: torn cache-delta frames in a node shipment";
  d.Cache_codec.entries

(* Run a batch on a pool of forked workers ([pool_map] abstracts over
   Procpool and the sharded coordinator).  Crashed jobs are re-run in
   fresh pool rounds — never in-parent: a job that deterministically
   kills its worker must stay isolated — up to [max_retries] times;
   exhaustion surfaces as [Worker_crashed] and quarantines the key.  The
   chaos hook is armed only on the first round, so the retried job's
   re-run is never re-killed and the run converges to the uninterrupted
   result. *)
let pooled_outcomes t ~pool_map ~toolchain ?outline ~program ~input jobs_array
    =
  let n = Array.length jobs_array in
  Telemetry.expect t.telemetry n;
  let batch = Trace.batch t.trace ~size:n in
  let outcomes = Array.make n None in
  let f = worker_shipment t ~toolchain ?outline ~program ~input ~batch in
  let run_round ~chaos indices =
    let idx = Array.of_list indices in
    let items = Array.map (fun i -> (i, jobs_array.(i))) idx in
    let on_result _slot = function
      | Stdlib.Ok sh -> merge_shipment t sh
      | Stdlib.Error _ -> ()
    in
    let res = pool_map ~chaos ~on_result f items in
    let crashed = ref [] in
    Array.iteri
      (fun slot r ->
        let i = idx.(slot) in
        match r with
        | Stdlib.Ok sh -> outcomes.(i) <- Some sh.sh_outcome
        | Stdlib.Error (Procpool.Raised msg) ->
            (* Parity with the domains backend: an exception that escaped
               a healthy worker is a crashed run, not a crashed worker. *)
            outcomes.(i) <- Some (Crashed msg);
            Telemetry.tick t.telemetry
        | Stdlib.Error (Procpool.Crashed c) ->
            let detail = Procpool.crash_to_string c in
            Telemetry.worker_crash t.telemetry;
            Trace.worker_crashed t.trace ~detail;
            crashed := (i, detail) :: !crashed)
      res;
    List.rev !crashed
  in
  let rec rounds attempt ~chaos indices =
    match run_round ~chaos indices with
    | [] -> ()
    | crashed when attempt < t.policy.max_retries ->
        rounds (attempt + 1) ~chaos:false (List.map fst crashed)
    | crashed ->
        List.iter
          (fun (i, detail) ->
            let key_str =
              key ~toolchain ~program ~input jobs_array.(i).build
            in
            quarantine_add t key_str
              (Quarantine.Crashed ("worker: " ^ detail));
            outcomes.(i) <- Some (Worker_crashed detail);
            Telemetry.tick t.telemetry)
          crashed
  in
  if n > 0 then rounds 0 ~chaos:true (List.init n Fun.id);
  Array.map (function Some o -> o | None -> assert false) outcomes

(* The Procpool leg: workers drain one shared cursor; shipments travel
   as plain Marshal frames. *)
let procpool_map t ~chaos ~on_result f items =
  let kill = if chaos then t.kill_workers_after else None in
  Procpool.map ~workers:t.jobs ~on_result ?kill_first_worker_after:kill f
    items

(* The sharded leg: the installed coordinator pre-partitions [items]
   into per-node shards and rebalances by stealing; each shipment's
   cache news crosses the wire as codec v2 frames instead of Marshal,
   transcoded here so the coordinator stays shipment-agnostic. *)
let sharded_map t ~chaos ~on_result f items =
  let m = node_mapper () in
  let kill = if chaos then t.kill_node_after else None in
  let encode item =
    let sh = f item in
    (encode_cache_frames sh.sh_cache, { sh with sh_cache = [] })
  in
  let decode (frames, sh) = { sh with sh_cache = decode_cache_frames frames } in
  let on_result slot r = on_result slot (Stdlib.Result.map decode r) in
  m.map ~nodes:t.nodes ~on_result ?kill_first_node_after:kill encode items
  |> Array.map (Stdlib.Result.map decode)

let process_outcomes t ~toolchain ?outline ~program ~input jobs_array =
  pooled_outcomes t ~pool_map:(procpool_map t) ~toolchain ?outline ~program
    ~input jobs_array

let shard_outcomes t ~toolchain ?outline ~program ~input jobs_array =
  pooled_outcomes t ~pool_map:(sharded_map t) ~toolchain ?outline ~program
    ~input jobs_array

(* -- batch entry points ------------------------------------------------- *)

let measure_batch t ~toolchain ?outline ~program ~input jobs_array =
  match t.backend with
  | Backend.Processes ->
      process_outcomes t ~toolchain ?outline ~program ~input jobs_array
      |> Array.map (function
           | Ok m -> m
           | outcome -> raise (Pool.Worker_failure (Job_failed outcome)))
  | Backend.Sharded ->
      shard_outcomes t ~toolchain ?outline ~program ~input jobs_array
      |> Array.map (function
           | Ok m -> m
           | outcome -> raise (Pool.Worker_failure (Job_failed outcome)))
  | Backend.Domains -> (
      Telemetry.expect t.telemetry (Array.length jobs_array);
      let batch = Trace.batch t.trace ~size:(Array.length jobs_array) in
      try
        Pool.map ~jobs:t.jobs
          (fun (i, job) ->
            Trace.in_job t.trace ~batch ~index:i (fun () ->
                let m = measure_one t ~toolchain ?outline ~program ~input job in
                Telemetry.tick t.telemetry;
                m))
          (Array.mapi (fun i job -> (i, job)) jobs_array)
      with Pool.Worker_failure e when Pool.fatal e -> raise e)

let measure_list t ~toolchain ?outline ~program ~input jobs =
  Array.to_list
    (measure_batch t ~toolchain ?outline ~program ~input (Array.of_list jobs))

let try_measure_batch t ~toolchain ?outline ~program ~input jobs_array =
  match t.backend with
  | Backend.Processes ->
      process_outcomes t ~toolchain ?outline ~program ~input jobs_array
  | Backend.Sharded ->
      shard_outcomes t ~toolchain ?outline ~program ~input jobs_array
  | Backend.Domains ->
      Telemetry.expect t.telemetry (Array.length jobs_array);
      let batch = Trace.batch t.trace ~size:(Array.length jobs_array) in
      (try
         Pool.map_result ~jobs:t.jobs
           (fun (i, job) ->
             Trace.in_job t.trace ~batch ~index:i (fun () ->
                 Fun.protect
                   ~finally:(fun () -> Telemetry.tick t.telemetry)
                   (fun () ->
                     try_measure_one t ~toolchain ?outline ~program ~input job)))
           (Array.mapi (fun i job -> (i, job)) jobs_array)
       with
      (* A fatal exception (cancellation, runtime collapse) must surface
         as itself, not as the pool's wrapper, so the layer that raised
         it — e.g. a server cancelling a search from its progress tick —
         can catch exactly what it threw. *)
      | Pool.Worker_failure e when Pool.fatal e -> raise e)
      |> Array.map (function
           | Stdlib.Ok outcome -> outcome
           | Stdlib.Error e ->
               (* An exception that escaped a worker is indistinguishable
                  from a crashed run as far as the search is concerned;
                  record it so the batch survives. *)
               Crashed (Printexc.to_string e))

let try_measure_list t ~toolchain ?outline ~program ~input jobs =
  Array.to_list
    (try_measure_batch t ~toolchain ?outline ~program ~input
       (Array.of_list jobs))
