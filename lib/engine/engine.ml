module Rng = Ft_util.Rng
module Cv = Ft_flags.Cv
module Platform = Ft_prog.Platform
module Input = Ft_prog.Input
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec
module Outline = Ft_outline.Outline

type build =
  | Uniform of { cv : Cv.t; instrumented : bool }
  | Assigned of { assignment : (string * Cv.t) list; instrumented : bool }

type job = { build : build; rng : Rng.t }

type t = { jobs : int; cache : Cache.t; telemetry : Telemetry.t }

let create ?(jobs = 1) ?cache ?telemetry () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  {
    jobs;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    telemetry =
      (match telemetry with Some t -> t | None -> Telemetry.create ());
  }

let jobs t = t.jobs
let cache t = t.cache
let telemetry t = t.telemetry

let instrumented = function
  | Uniform { instrumented; _ } | Assigned { instrumented; _ } -> instrumented

(* The canonical description digested into a cache key.  Everything that
   determines the produced binary and its noise-free runtime must appear:
   compiler personality, platform, program, input geometry, build kind
   (a whole-program build and a per-module build that happens to assign one
   CV everywhere are different binaries: only the latter is outlined),
   the CV assignment itself and the instrumentation flag.  Assignments are
   sorted by module name so equal assignments written in different orders
   share a key. *)
let canonical_key ~(toolchain : Toolchain.t) ~(program : Ft_prog.Program.t)
    ~(input : Input.t) build =
  let buf = Buffer.create 256 in
  Buffer.add_string buf toolchain.Toolchain.cprofile.Ft_compiler.Cprofile.name;
  Buffer.add_char buf ';';
  Buffer.add_string buf
    (Platform.short_name toolchain.Toolchain.arch.Ft_machine.Arch.platform);
  Buffer.add_char buf ';';
  Buffer.add_string buf program.Ft_prog.Program.name;
  Buffer.add_string buf
    (Printf.sprintf ";size=%h;steps=%d;" input.Input.size input.Input.steps);
  (match build with
  | Uniform { cv; instrumented } ->
      Buffer.add_string buf
        (Printf.sprintf "uniform;instr=%b;%s" instrumented (Cv.to_compact cv))
  | Assigned { assignment; instrumented } ->
      Buffer.add_string buf (Printf.sprintf "assigned;instr=%b" instrumented);
      List.iter
        (fun (m, cv) ->
          Buffer.add_string buf (Printf.sprintf ";%s=%s" m (Cv.to_compact cv)))
        (List.sort (fun (a, _) (b, _) -> String.compare a b) assignment));
  Buffer.contents buf

let key ~toolchain ~program ~input build =
  Cache.digest (canonical_key ~toolchain ~program ~input build)

let compile ~toolchain ?outline ~program build =
  match build with
  | Uniform { cv; instrumented } ->
      Toolchain.compile_uniform toolchain ~cv ~instrumented program
  | Assigned { assignment; instrumented } -> (
      match outline with
      | None ->
          invalid_arg "Engine: a per-module build requires an ?outline"
      | Some o ->
          Outline.compile ~toolchain o
            ~assignment:(fun name ->
              match List.assoc_opt name assignment with
              | Some cv -> cv
              | None ->
                  invalid_arg ("Engine: assignment misses module " ^ name))
            ~instrumented ())

let summary t ~toolchain ?outline ~program ~input build =
  let key = key ~toolchain ~program ~input build in
  match Cache.find t.cache key with
  | Some s ->
      Telemetry.cache_hit t.telemetry;
      s
  | None ->
      Telemetry.cache_miss t.telemetry;
      let binary =
        Telemetry.time t.telemetry "build" (fun () ->
            compile ~toolchain ?outline ~program build)
      in
      Telemetry.build t.telemetry;
      let run =
        Telemetry.time t.telemetry "run" (fun () ->
            Exec.evaluate ~arch:toolchain.Toolchain.arch ~input binary)
      in
      Telemetry.run t.telemetry;
      let s = Exec.summarize run in
      Cache.add t.cache key s;
      s

let evaluate t ~toolchain ?outline ~program ~input build =
  (summary t ~toolchain ?outline ~program ~input build).Exec.sum_total_s

let measure_one t ~toolchain ?outline ~program ~input { build; rng } =
  let s = summary t ~toolchain ?outline ~program ~input build in
  Exec.sample ~rng ~instrumented:(instrumented build) s

let measure_batch t ~toolchain ?outline ~program ~input jobs_array =
  Telemetry.expect t.telemetry (Array.length jobs_array);
  Pool.map ~jobs:t.jobs
    (fun job ->
      let m = measure_one t ~toolchain ?outline ~program ~input job in
      Telemetry.tick t.telemetry;
      m)
    jobs_array

let measure_list t ~toolchain ?outline ~program ~input jobs =
  Array.to_list
    (measure_batch t ~toolchain ?outline ~program ~input (Array.of_list jobs))
