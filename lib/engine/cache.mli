(** Content-addressed measurement cache.

    The engine memoizes the {e noise-free} summary of every binary it has
    evaluated, keyed by a digest of everything that determines the binary
    and its execution: program, platform, compiler vendor, input size and
    steps, the full per-module CV assignment (or the single whole-program
    CV), and the instrumentation flag.  Measurement noise is deliberately
    {e outside} the cache — it is drawn per job from the job's own RNG
    stream — so a cache hit returns bit-identical results to a recompute,
    and warming the cache can never change a search's outcome.

    The table is mutex-protected; concurrent workers racing on one key at
    worst both compute the (identical, pure) summary and one write wins.

    {2 On-disk formats}

    Two formats share the loader, selected by the magic first line:

    - {e binary} (v2, the default writer): {!Cache_codec}'s append-only
      length-prefixed records — the fast path, and the format {!sync}
      appends deltas to;
    - {e text} (v1): one line per entry with floats rendered in
      hexadecimal ([%h]) — human-inspectable, still written under
      [~format:Text].

    Both round-trip floats bit-exactly (text via [%h], binary via the
    IEEE-754 bits themselves), so a re-run of yesterday's experiment, or
    a greedy run sharing a collection with CFR, never re-measures a
    binary it has seen — whichever format wrote the file. *)

type t

type format = Text | Binary

val default_format : format
(** {!Binary}. *)

val format_to_string : format -> string
(** ["text"] / ["binary"] (the [--cache-format] spellings). *)

val format_of_string : string -> format option

val create : unit -> t

val digest : string -> string
(** Digest of a canonical key description (hex MD5); the engine builds the
    canonical string, this fixes the addressing scheme. *)

val find : t -> string -> Ft_machine.Exec.summary option
val add : t -> string -> Ft_machine.Exec.summary -> unit
val length : t -> int

val bindings : t -> (string * Ft_machine.Exec.summary) list
(** All entries, sorted by key (deterministic; used by [save] and tests). *)

val save : ?format:format -> t -> path:string -> unit
(** Write every entry to [path] in [format] (default {!default_format}),
    atomically: the table is written to a temporary file in the same
    directory and renamed over [path], so a crash mid-save can never
    leave a truncated cache on disk ({!Atomic_file}).
    @raise Invalid_argument if a region name cannot be encoded. *)

exception Corrupt of { path : string; line : int; reason : string }
(** Raised by {!load} when the file is not an engine cache at all (missing
    or invalid magic header), with the offending line number. *)

val load : ?warn:(line:int -> reason:string -> unit) -> string -> t
(** [load path] reads a table written by {!save} in {e either} format,
    auto-detected from the magic line.  Malformed entries {e after} a
    valid magic header (torn writes, bit rot) are skipped, reporting each
    to [warn] with its line number — for binary files, the record
    ordinal offset by the header line — and a reason (default: one
    warning line on stderr), rather than aborting the load: a partially
    corrupt cache still resumes everything that survived.  A tail not
    sealed by its commit marker (text: the terminating newline; binary:
    the full length-prefixed frame) is treated as torn and skipped too,
    {e even if it would parse}: a float truncated mid-digits is a
    different valid float, so only fully committed records are trusted.
    Before reading, stale {!Atomic_file} temporaries around [path]
    (orphans of writers SIGKILLed mid-save, older than the grace
    period) are swept under {!with_file_lock} — the lock is only taken
    when litter actually exists.
    @raise Corrupt when the header is missing, wrong or truncated;
    [Sys_error] if the file is unreadable. *)

val merge : t -> from:t -> int
(** Adopt every binding of [from] that [t] lacks (existing keys win —
    values for equal keys are bit-identical by the determinism argument,
    so precedence is moot).  Returns the number adopted. *)

val with_file_lock : path:string -> (unit -> 'a) -> 'a
(** Run [f] holding an exclusive advisory lock on [path ^ ".lock"]
    (created on demand; blocks until granted; released even if [f]
    raises).  The sidecar file, not [path] itself, carries the lock:
    {!save} replaces [path] by rename, which would orphan a lock held on
    the data file's own inode. *)

val sync :
  ?warn:(line:int -> reason:string -> unit) ->
  ?format:format ->
  t ->
  path:string ->
  int
(** Reconcile [t] with the shared file at [path] under {!with_file_lock}:
    adopt every on-disk entry [t] lacks, then make the file hold the
    union.  The primitive behind [--shared-cache] — any number of
    concurrent funcy processes can sync against one file and every
    committed entry survives.  Returns the number of entries adopted
    {e from} the file.

    With [~format:Binary] (the default) this is O(delta), journal-style:
    the first sync against a file reads it once (migrating a v1 text
    file to binary in place); every later sync reads only the bytes
    appended since, truncates any torn tail left by a writer killed
    mid-append (safe under the exclusive lock), and appends only entries
    the file does not already hold, fsyncing before the lock is
    released.  The file is compacted — atomically rewritten with one
    record per key — when a scan finds malformed records or when
    duplicate frames from racing appenders exceed twice the distinct
    keys.  A file replaced or truncated behind our back (the dev/ino
    pair changes, or the size shrinks) is detected and re-read in full.

    With [~format:Text] it is the v1 whole-file read-merge-write, kept
    for golden tests and human-inspectable shared caches.

    Either way the held lock also pays for an {!Atomic_file.sweep}:
    stale temporaries left by SIGKILLed writers are reclaimed on every
    sync.

    @raise Corrupt as {!load}. *)
