(** Content-addressed measurement cache.

    The engine memoizes the {e noise-free} summary of every binary it has
    evaluated, keyed by a digest of everything that determines the binary
    and its execution: program, platform, compiler vendor, input size and
    steps, the full per-module CV assignment (or the single whole-program
    CV), and the instrumentation flag.  Measurement noise is deliberately
    {e outside} the cache — it is drawn per job from the job's own RNG
    stream — so a cache hit returns bit-identical results to a recompute,
    and warming the cache can never change a search's outcome.

    The table is mutex-protected; concurrent workers racing on one key at
    worst both compute the (identical, pure) summary and one write wins.

    [save]/[load] persist the table as a line-oriented text file whose
    floats are rendered in hexadecimal ([%h]), so round-trips are
    bit-exact: a re-run of yesterday's experiment, or a greedy run sharing
    a collection with CFR, never re-measures a binary it has seen. *)

type t

val create : unit -> t

val digest : string -> string
(** Digest of a canonical key description (hex MD5); the engine builds the
    canonical string, this fixes the addressing scheme. *)

val find : t -> string -> Ft_machine.Exec.summary option
val add : t -> string -> Ft_machine.Exec.summary -> unit
val length : t -> int

val bindings : t -> (string * Ft_machine.Exec.summary) list
(** All entries, sorted by key (deterministic; used by [save] and tests). *)

val save : t -> path:string -> unit
(** Write every entry to [path] (bit-exact float encoding), atomically:
    the table is written to a temporary file in the same directory and
    renamed over [path], so a crash mid-save can never leave a truncated
    cache on disk ({!Atomic_file}).
    @raise Invalid_argument if a region name cannot be encoded. *)

exception Corrupt of { path : string; line : int; reason : string }
(** Raised by {!load} when the file is not an engine cache at all (missing
    or invalid magic header), with the offending line number. *)

val load : ?warn:(line:int -> reason:string -> unit) -> string -> t
(** [load path] reads a table written by {!save}.  Malformed entries {e after} a valid
    magic header (torn writes, bit rot) are skipped, reporting each to
    [warn] with its line number and a reason (default: one warning line on
    stderr), rather than aborting the load — a partially corrupt cache
    still resumes everything that survived.  A final line missing its
    terminating newline is treated as torn and skipped too, {e even if it
    would parse}: a float truncated mid-digits is a different valid
    float, so only fully committed lines are trusted.
    @raise Corrupt when the header is missing, wrong or truncated;
    [Sys_error] if the file is unreadable. *)

val merge : t -> from:t -> int
(** Adopt every binding of [from] that [t] lacks (existing keys win —
    values for equal keys are bit-identical by the determinism argument,
    so precedence is moot).  Returns the number adopted. *)

val with_file_lock : path:string -> (unit -> 'a) -> 'a
(** Run [f] holding an exclusive advisory lock on [path ^ ".lock"]
    (created on demand; blocks until granted; released even if [f]
    raises).  The sidecar file, not [path] itself, carries the lock:
    {!save} replaces [path] by rename, which would orphan a lock held on
    the data file's own inode. *)

val sync : ?warn:(line:int -> reason:string -> unit) -> t -> path:string -> int
(** Read-merge-write [path] under {!with_file_lock}: adopt every on-disk
    entry [t] lacks, then atomically save the union back.  The primitive
    behind [--shared-cache] — any number of concurrent funcy processes
    can sync against one file and every committed entry survives.
    Returns the number of entries adopted {e from} the file. *)
