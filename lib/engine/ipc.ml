(* Length-prefixed Marshal framing over pipe file descriptors.

   Every frame is an 8-byte big-endian payload length followed by the
   Marshal bytes of one value.  The reader can therefore always tell a
   clean end-of-stream (EOF exactly on a frame boundary — the peer
   closed its end or exited) from a *torn* frame (EOF or garbage inside
   a frame — the peer died mid-write, or the stream desynchronized),
   which is the distinction the process pool's crash taxonomy needs. *)

type error = [ `Eof | `Torn of string ]

let error_to_string = function
  | `Eof -> "eof"
  | `Torn detail -> "torn frame: " ^ detail

(* A frame larger than this is a protocol error, not a payload: it means
   the length prefix was read out of phase (or the stream is garbage),
   and trying to allocate it would take the parent down with the worker. *)
let max_frame_bytes = 256 * 1024 * 1024

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf ofs len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (ofs + n) (len - n)
  end

let write fd v =
  let payload = Marshal.to_bytes v [] in
  let len = Bytes.length payload in
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 (Int64.of_int len);
  write_all fd header 0 8;
  write_all fd payload 0 len

(* Read exactly [len] bytes, reporting how many arrived before EOF. *)
let really_read fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs >= len then Ok buf
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> Error ofs
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error ofs
  in
  go 0

let read fd =
  match really_read fd 8 with
  | Error 0 -> Error `Eof
  | Error k -> Error (`Torn (Printf.sprintf "short header (%d/8 bytes)" k))
  | Ok header -> (
      let len = Int64.to_int (Bytes.get_int64_be header 0) in
      if len < 0 || len > max_frame_bytes then
        Error (`Torn (Printf.sprintf "implausible frame length %d" len))
      else
        match really_read fd len with
        | Error k ->
            Error (`Torn (Printf.sprintf "short payload (%d/%d bytes)" k len))
        | Ok payload -> (
            match Marshal.from_bytes payload 0 with
            | v -> Ok v
            | exception _ -> Error (`Torn "unmarshalable payload")))
