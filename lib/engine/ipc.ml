(* Marshal framing over the process pool's pipes, as a thin veneer over
   the shared {!Ft_framing.Framing} codec (one length-prefixed frame =
   one Marshal value).  This module only folds the framing layer's
   richer error taxonomy into the two-way distinction Procpool's crash
   handling is written against: a clean end-of-stream versus everything
   that means "the peer must be presumed dead". *)

module Framing = Ft_framing.Framing

type error = [ `Eof | `Torn of string ]

let error_to_string = function
  | `Eof -> "eof"
  | `Torn detail -> "torn frame: " ^ detail

let max_frame_bytes = Framing.default_max_bytes

let write fd v = Framing.write_value fd v

module Writer = struct
  type t = Framing.Writer.t

  let create fd = Framing.Writer.create fd
  let write t v = Framing.Writer.write_value t v
end

let read fd =
  match Framing.read_value ~max_bytes:max_frame_bytes fd with
  | Ok v -> Ok v
  | Error Framing.Eof -> Error `Eof
  | Error (Framing.Torn { context; got; expected }) ->
      Error (`Torn (Printf.sprintf "short %s (%d/%d bytes)" context got expected))
  | Error (Framing.Oversized { claimed; _ }) ->
      Error (`Torn (Printf.sprintf "implausible frame length %d" claimed))
  | Error (Framing.Garbled reason) -> Error (`Torn reason)
