(** Length-prefixed Marshal framing for the process pool's pipes.

    One frame = an 8-byte big-endian payload length + the [Marshal]
    bytes of a single value, on the shared {!Ft_framing.Framing} wire
    format (this module is a veneer over it — the tuning server speaks
    the same frames with JSON payloads).  The explicit length lets
    {!read} distinguish a clean end-of-stream from a {e torn} frame —
    the signature of a peer that died mid-write — which {!Procpool}
    maps into its crash taxonomy.

    Only plain data ever crosses a pipe (job indices, outcomes, trace
    events, telemetry snapshots): the job {e closure} is inherited by
    [fork], never marshalled, so values containing custom blocks
    (mutexes, channels) stay on their side of the pipe by construction. *)

type error = [ `Eof | `Torn of string ]
(** [`Eof]: the stream ended exactly on a frame boundary (peer closed or
    exited cleanly).  [`Torn]: it ended — or desynchronized — inside a
    frame (short header/payload, implausible length, unmarshalable
    bytes): the peer must be presumed dead and the stream unusable. *)

val error_to_string : error -> string

val max_frame_bytes : int
(** Frames above this length are rejected as [`Torn] ("implausible
    frame length"): an out-of-phase length prefix must not become an
    allocation that kills the reader too. *)

val write : Unix.file_descr -> 'a -> unit
(** Marshal one value as a frame.  Short writes and [EINTR] are
    retried; [EPIPE] (peer already dead) escapes as [Unix_error] for
    the caller's crash handling. *)

(** Buffer-reusing writer for a pipe's hot end
    ({!Ft_framing.Framing.Writer} under Ipc's contract): marshals into
    one owned, geometrically grown scratch buffer instead of allocating
    per frame.  One writer per pipe end; error behavior is {!write}'s. *)
module Writer : sig
  type t

  val create : Unix.file_descr -> t
  val write : t -> 'a -> unit
end

val read : Unix.file_descr -> ('a, error) result
(** Read one frame.  The ['a] is the caller's protocol contract, as
    with [Marshal.from_channel]. *)
