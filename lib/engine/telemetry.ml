type snapshot = {
  builds : int;
  runs : int;
  cache_hits : int;
  cache_misses : int;
  retries : int;
  build_failures : int;
  crashes : int;
  wrong_answers : int;
  timeouts : int;
  worker_crashes : int;
  outliers : int;
  quarantined : int;
  quarantine_hits : int;
  timers : (string * float) list;
}

type t = {
  builds : int Atomic.t;
  runs : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  retries : int Atomic.t;
  build_failures : int Atomic.t;
  crashes : int Atomic.t;
  wrong_answers : int Atomic.t;
  timeouts : int Atomic.t;
  worker_crashes : int Atomic.t;
  outliers : int Atomic.t;
  quarantined : int Atomic.t;
  quarantine_hits : int Atomic.t;
  completed : int Atomic.t;
  expected : int Atomic.t;
  timers : (string, float) Hashtbl.t;
  lock : Mutex.t;
  mutable progress : (completed:int -> expected:int -> unit) option;
}

let create () =
  {
    builds = Atomic.make 0;
    runs = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    retries = Atomic.make 0;
    build_failures = Atomic.make 0;
    crashes = Atomic.make 0;
    wrong_answers = Atomic.make 0;
    timeouts = Atomic.make 0;
    worker_crashes = Atomic.make 0;
    outliers = Atomic.make 0;
    quarantined = Atomic.make 0;
    quarantine_hits = Atomic.make 0;
    completed = Atomic.make 0;
    expected = Atomic.make 0;
    timers = Hashtbl.create 8;
    lock = Mutex.create ();
    progress = None;
  }

let reset t =
  Atomic.set t.builds 0;
  Atomic.set t.runs 0;
  Atomic.set t.cache_hits 0;
  Atomic.set t.cache_misses 0;
  Atomic.set t.retries 0;
  Atomic.set t.build_failures 0;
  Atomic.set t.crashes 0;
  Atomic.set t.wrong_answers 0;
  Atomic.set t.timeouts 0;
  Atomic.set t.worker_crashes 0;
  Atomic.set t.outliers 0;
  Atomic.set t.quarantined 0;
  Atomic.set t.quarantine_hits 0;
  Atomic.set t.completed 0;
  Atomic.set t.expected 0;
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.timers)

let bump counter = Atomic.incr counter
let build t = bump t.builds
let run t = bump t.runs
let cache_hit t = bump t.cache_hits
let cache_miss t = bump t.cache_misses
let retry t = bump t.retries
let build_failure t = bump t.build_failures
let crash t = bump t.crashes
let wrong_answer t = bump t.wrong_answers
let timeout t = bump t.timeouts
let worker_crash t = bump t.worker_crashes
let outlier t = bump t.outliers
let quarantine t = bump t.quarantined
let quarantine_hit t = bump t.quarantine_hits

let add_time t phase seconds =
  Mutex.protect t.lock (fun () ->
      let prior = Option.value ~default:0.0 (Hashtbl.find_opt t.timers phase) in
      Hashtbl.replace t.timers phase (prior +. seconds))

let time t phase f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time t phase (Unix.gettimeofday () -. t0)) f

let set_progress t callback = t.progress <- Some callback

let expect t n = ignore (Atomic.fetch_and_add t.expected n)

let completed t = Atomic.get t.completed

let tick t =
  let completed = 1 + Atomic.fetch_and_add t.completed 1 in
  match t.progress with
  | None -> ()
  | Some callback ->
      (* Callbacks run from worker domains; serialize them so user code
         (typically terminal output) never interleaves. *)
      Mutex.protect t.lock (fun () ->
          callback ~completed ~expected:(Atomic.get t.expected))

let snapshot t =
  {
    builds = Atomic.get t.builds;
    runs = Atomic.get t.runs;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    retries = Atomic.get t.retries;
    build_failures = Atomic.get t.build_failures;
    crashes = Atomic.get t.crashes;
    wrong_answers = Atomic.get t.wrong_answers;
    timeouts = Atomic.get t.timeouts;
    worker_crashes = Atomic.get t.worker_crashes;
    outliers = Atomic.get t.outliers;
    quarantined = Atomic.get t.quarantined;
    quarantine_hits = Atomic.get t.quarantine_hits;
    timers =
      Mutex.protect t.lock (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.timers []
          |> List.sort compare);
  }

(* Fold a worker process's shipped snapshot into this telemetry — the
   processes backend's counterpart of workers bumping shared atomics
   directly.  Additive by construction: every counter in a shipment was
   earned by work the parent never saw. *)
let absorb t (s : snapshot) =
  let addc counter n = ignore (Atomic.fetch_and_add counter n) in
  addc t.builds s.builds;
  addc t.runs s.runs;
  addc t.cache_hits s.cache_hits;
  addc t.cache_misses s.cache_misses;
  addc t.retries s.retries;
  addc t.build_failures s.build_failures;
  addc t.crashes s.crashes;
  addc t.wrong_answers s.wrong_answers;
  addc t.timeouts s.timeouts;
  addc t.worker_crashes s.worker_crashes;
  addc t.outliers s.outliers;
  addc t.quarantined s.quarantined;
  addc t.quarantine_hits s.quarantine_hits;
  List.iter (fun (phase, seconds) -> add_time t phase seconds) s.timers

let faults (s : snapshot) =
  s.build_failures + s.crashes + s.wrong_answers + s.timeouts

let render t =
  let s = snapshot t in
  let total_lookups = s.cache_hits + s.cache_misses in
  let hit_pct =
    if total_lookups = 0 then 0.0
    else 100.0 *. float_of_int s.cache_hits /. float_of_int total_lookups
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "engine telemetry:\n";
  Buffer.add_string b
    (Printf.sprintf "  builds      %d\n  runs        %d\n" s.builds s.runs);
  Buffer.add_string b
    (Printf.sprintf "  cache       %d hits / %d misses (%.1f%% hit rate)\n"
       s.cache_hits s.cache_misses hit_pct);
  if s.retries > 0 then
    Buffer.add_string b (Printf.sprintf "  retries     %d\n" s.retries);
  if s.worker_crashes > 0 then
    Buffer.add_string b
      (Printf.sprintf "  workers     %d crashed (isolated and retried)\n"
         s.worker_crashes);
  if faults s > 0 || s.quarantined > 0 || s.outliers > 0 then begin
    Buffer.add_string b
      (Printf.sprintf
         "  faults      %d (%d build failures, %d crashes, %d wrong \
          answers, %d timeouts)\n"
         (faults s) s.build_failures s.crashes s.wrong_answers s.timeouts);
    Buffer.add_string b
      (Printf.sprintf "  quarantine  %d vectors (%d hits avoided re-trying)\n"
         s.quarantined s.quarantine_hits);
    if s.outliers > 0 then
      Buffer.add_string b
        (Printf.sprintf "  outliers    %d injected measurements\n" s.outliers)
  end;
  List.iter
    (fun (phase, seconds) ->
      Buffer.add_string b (Printf.sprintf "  %-11s %.3f s\n" phase seconds))
    s.timers;
  Buffer.contents b
