(** A fixed-size domain worker pool.

    Jobs are claimed from a shared queue by [min jobs n] domains
    ([Domain.spawn], OCaml 5 — no external dependency) and their results
    are written back by {e submission index}, so the output order is always
    the input order no matter which worker finishes first.  With [jobs = 1]
    no domain is spawned at all: the pool degrades to a plain sequential
    [Array.map], which is the default everywhere so single-core behaviour
    and CLI output are unchanged.

    The pool makes no determinism promise by itself — that is the engine's
    job: engine jobs carry their own independent RNG streams, so the
    {e values} computed are identical at any worker count and only the
    completion order varies. *)

exception Worker_failure of exn
(** Raised by {!map}/{!submit} after all workers have joined, wrapping the
    first exception any job raised.  Remaining queued jobs are abandoned. *)

exception Abort of string
(** Deliberate whole-computation cancellation.  Raise it from a job (or
    from a progress callback running inside one) to abandon the batch:
    it is {!fatal}, so {!map_result} will not capture it as a per-item
    [Error]. *)

val fatal : exn -> bool
(** Exceptions no layer may demote to a per-job outcome: [Out_of_memory],
    [Stack_overflow], [Sys.Break] and {!Abort}. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] applies [f] to every element on up to [jobs] workers
    and returns results in submission order.
    @raise Invalid_argument if [jobs < 1]. *)

val submit : jobs:int -> (unit -> 'a) list -> 'a list
(** Thunk-list version of {!map}; results are in submission order. *)

val map_result : jobs:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Partial-results mode: like {!map}, but each job's exception is
    captured in its own slot ([Error e]) instead of aborting the batch, so
    in-flight successes are preserved and ordering stays stable.  Only
    {!fatal} exceptions abort the batch (raising {!Worker_failure} from
    the parallel path, or escaping directly when sequential). *)
