type reason =
  | Build_failed of string
  | Crashed of string
  | Wrong_answer
  | Timed_out of float

let reason_to_string = function
  | Build_failed m -> Printf.sprintf "build-failed(%s)" m
  | Crashed d -> Printf.sprintf "crashed(%s)" d
  | Wrong_answer -> "wrong-answer"
  | Timed_out s -> Printf.sprintf "timed-out(%.1fs)" s

type t = {
  table : (string, reason) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 256; lock = Mutex.create () }

let add t key reason =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table key reason)

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let bindings t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort compare

(* On-disk format: one entry per line, <key> TAB <tag> [TAB <detail>].
   Details are sanitized so they can never smuggle a field separator. *)

let format_magic = "ft-quarantine/1"

let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let entry_line key = function
  | Build_failed m -> Printf.sprintf "%s\tB\t%s" key (sanitize m)
  | Crashed d -> Printf.sprintf "%s\tC\t%s" key (sanitize d)
  | Wrong_answer -> Printf.sprintf "%s\tW" key
  | Timed_out s -> Printf.sprintf "%s\tT\t%h" key s

let parse_entry line =
  match String.split_on_char '\t' line with
  | [ key; "B"; m ] -> Ok (key, Build_failed m)
  | [ key; "C"; d ] -> Ok (key, Crashed d)
  | [ key; "W" ] -> Ok (key, Wrong_answer)
  | [ key; "T"; s ] -> (
      match float_of_string_opt s with
      | Some s -> Ok (key, Timed_out s)
      | None -> Error "unparsable timeout seconds")
  | _ -> Error "unrecognized quarantine entry"

let save t ~path =
  Atomic_file.write ~path (fun oc ->
      output_string oc (format_magic ^ "\n");
      List.iter
        (fun (key, reason) ->
          output_string oc (entry_line key reason);
          output_char oc '\n')
        (bindings t))

exception Corrupt of { path : string; line : int; reason : string }

let default_warn ~path ~line ~reason =
  Printf.eprintf "warning: %s:%d: skipping malformed quarantine entry (%s)\n%!"
    path line reason

let load ?warn path =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | magic when magic = format_magic -> ()
      | _ ->
          raise
            (Corrupt { path; line = 1; reason = "not a quarantine file" })
      | exception End_of_file ->
          raise (Corrupt { path; line = 1; reason = "empty file" }));
      let t = create () in
      let line_no = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if line <> "" then
             match parse_entry line with
             | Ok (key, reason) -> Hashtbl.replace t.table key reason
             | Error reason -> warn ~line:!line_no ~reason
         done
       with End_of_file -> ());
      t)
