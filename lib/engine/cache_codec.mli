(** Binary append-only encoding of cache entries (on-disk format v2).

    A binary cache file is the magic header line {!binary_magic}[ ^ "\n"]
    followed by a sequence of length-prefixed records on the shared
    {!Ft_framing.Framing} wire format (8-byte big-endian payload length,
    then the payload).  One record = one [(key, summary)] binding:

    {v
      u16 BE  key length        | key bytes
      f64 BE  sum_total_s       | IEEE-754 bits, bit-exact by construction
      f64 BE  sum_nonloop_s     |
      u16 BE  loop count
      per loop:  u16 BE name length | name bytes | f64 BE seconds
    v}

    The frame boundary is the commit marker, exactly as a newline is for
    the text format and for the serve journal: a record is trusted only
    once its full frame is on disk, so a crash mid-append tears at most
    the file's tail and {!decode} recovers every committed record.  Later
    records for a key shadow earlier ones (append-only updates); readers
    that merge adopt-if-absent should fold the decoded entries in file
    order through their own precedence rule.

    This module is pure string/bytes transcoding — no I/O, no locking —
    so it can be property-tested exhaustively (see [test/suite_codec.ml]).
    {!Cache} owns files, locks and the delta-[sync] protocol on top. *)

module Exec := Ft_machine.Exec

val binary_magic : string
(** ["ft-engine-cache/2"] — first line of a binary cache file. *)

val text_magic : string
(** ["ft-engine-cache/1"] — first line of a text (v1) cache file; owned
    by {!Cache} but exposed here so format detection lives in one place. *)

val header : string
(** [binary_magic ^ "\n"], the exact byte prefix of a binary file. *)

val detect : string -> [ `Binary | `Text | `Corrupt of string ]
(** Classify file contents by magic line.  A proper prefix of either
    magic header is reported as [`Corrupt "truncated header"] (a torn
    header write), anything else as [`Corrupt "not an engine cache
    file"]. *)

val max_record_bytes : int
(** Ceiling on one record's payload (16 MiB).  A frame claiming more is
    garbage — an out-of-phase length prefix — not a plausible summary. *)

val encode_record : Buffer.t -> string -> Exec.summary -> unit
(** Append one framed record to the buffer.
    @raise Invalid_argument if the key, a loop name, or the loop list
    does not fit the u16 fields (none ever do in practice). *)

val encode_file : (string * Exec.summary) list -> string
(** Header plus one record per binding, in list order: the full contents
    of a binary cache file.  Deterministic (callers pass sorted
    bindings). *)

type decoded = {
  entries : (string * Exec.summary) list;
      (** committed bindings, in file order (later shadows earlier) *)
  committed : int;
      (** byte offset just past the last whole frame — the only safe
          append/truncate point *)
  torn : bool;
      (** the region past [committed] ends mid-frame or holds a garbled
          length prefix: a crashed writer's tail, to be truncated away
          by the next locked sync *)
  skipped : int;
      (** whole frames whose payload was malformed (bit rot, non-finite
          floats): skipped, counted, and compacted away later *)
}

val decode :
  ?warn:(line:int -> reason:string -> unit) ->
  pos:int ->
  string ->
  decoded
(** Decode every record of [contents] from byte offset [pos] (the caller
    strips and checks the header; [pos] may also be a previous
    [committed] offset when reading a delta).  Never raises on any
    input: torn tails and malformed payloads are reported through
    [warn] — [line] is the 1-based record ordinal within this scan, as
    the text loader reports line numbers — and reflected in the result.
    [committed] is relative to the start of [contents], i.e. [>= pos]. *)
