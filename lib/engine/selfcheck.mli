(** Differential checkpoint/resume equivalence oracle.

    The engine's whole restartability story rests on one claim: a search
    killed at {e any} evaluation boundary and resumed from its checkpoint
    reaches exactly the state an uninterrupted run reaches.  This module
    checks the claim instead of assuming it.  For one (search, engine
    configuration) pair it runs:

    + a {b reference} run — fresh stores, no checkpoint, logical trace;
    + for each kill point [n]: a {b doomed} run whose checkpoint is
      flushed at exactly [n] completed evaluations ([--die-after]
      semantics — the run then continues but everything after the flush
      is discarded, which is byte-equivalent on disk to killing the
      process at the flush), followed by a {b resumed} run reloading that
      snapshot through {!Checkpoint.load};
    + a {b cache-merge round-trip}: {!Cache.merge} of the reference and
      resumed caches in both orders.

    It then asserts, for every resume: byte-identical rendered result,
    serialized cache, serialized quarantine, and resume-invariant
    normalized logical trace ({!Ft_obs.Trace.normalized_lines}); and for
    the merge: both orders byte-identical to each other and to the
    reference cache.  Any difference is reported as a structured diff.

    The oracle is parameterized over engine construction and the search
    itself (this library sits below the search layers), so the CLI and
    the test suites supply both. *)

type divergence = {
  stage : string;  (** ["kill\@3"], ["cache-merge"], ... *)
  part : string;
      (** ["result"], ["cache"], ["quarantine"], ["trace"],
          ["checkpoint"] *)
  diff : string list;  (** human-readable diff lines *)
}

type outcome = {
  label : string;
  evaluations : int;  (** engine jobs the reference run completed *)
  kill_points : int list;  (** the boundaries actually exercised *)
  checks : int;  (** equivalence assertions performed *)
  divergences : divergence list;  (** empty iff the oracle passed *)
}

val run :
  ?kill_points:int list ->
  ?format:Cache.format ->
  scratch:string ->
  label:string ->
  make_engine:
    (cache:Cache.t ->
    quarantine:Quarantine.t ->
    checkpoint:Checkpoint.t option ->
    trace:Ft_obs.Trace.t option ->
    Engine.t) ->
  search:(Engine.t -> string) ->
  unit ->
  outcome
(** [run ~scratch ~label ~make_engine ~search ()] executes the oracle.

    [make_engine] must build a fresh engine around the given stores each
    time it is called (same jobs/backend/policy every time); [search] must
    run the {e same} deterministic search on it and render its result as a
    string (bit-exact float formatting, e.g. [%h], so renderings compare
    byte-for-byte).  [scratch] is an existing directory for snapshot and
    serialization files; the caller owns its lifetime.  [kill_points]
    (default: first, middle and last boundary) are clamped to the
    reference run's [1..evaluations] range and deduplicated.  [format]
    (default {!Cache.default_format}) pins the on-disk format of the
    checkpoints the oracle kills and resumes through; the comparison
    artifacts themselves are always rendered as text lines, so the same
    byte-for-byte verdict applies to either format. *)

val passed : outcome -> bool

val render : outcome -> string
(** Multi-line report: one summary line, per-check status, and every
    divergence's diff.  Ends in [PASS] or [FAIL]. *)
