(** Checkpoint/resume for long searches.

    A checkpoint is a pair of atomic snapshots — the measurement {!Cache}
    at [path] and the {!Quarantine} list at [path ^ ".quarantine"] —
    refreshed every [every] state-changing engine events (new summaries
    computed or keys quarantined).  Because every search is a
    deterministic replay from its seed and the cache/quarantine only
    remove redundant work (never change a value), resuming a killed
    [funcy tune --checkpoint] is simply: reload both snapshots, re-run the
    same command, and the search fast-forwards through everything already
    measured to a bit-identical final result.

    Snapshots are written with {!Atomic_file.write}, so a crash mid-save
    leaves the previous snapshot intact. *)

type t

val create : path:string -> ?every:int -> unit -> t
(** [every] (default 64) is the number of recorded events between
    snapshots.  Nothing is written until the first event. *)

val path : t -> string
val quarantine_path : t -> string

val exists : t -> bool
(** Does a cache snapshot already exist on disk (i.e. can we resume)? *)

val load :
  ?warn:(line:int -> reason:string -> unit) ->
  t ->
  (Cache.t * Quarantine.t) option
(** Reload the snapshots, or [None] when there is nothing to resume from.
    A missing quarantine file (e.g. pre-fault checkpoints) yields an empty
    quarantine.  Malformed entries are skipped through [warn].
    @raise Cache.Corrupt / Quarantine.Corrupt if a file exists but is not
    a snapshot at all. *)

val tick : t -> cache:Cache.t -> quarantine:Quarantine.t -> bool
(** Record one state-changing event; saves both snapshots atomically when
    [every] events have accumulated since the last save (returning [true]
    iff this call saved, so the engine can trace the save).
    Thread-safe. *)

val flush : t -> cache:Cache.t -> quarantine:Quarantine.t -> unit
(** Unconditional snapshot (called at the end of a run, and by the
    [--die-after] crash hook just before the simulated kill). *)
