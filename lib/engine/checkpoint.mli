(** Checkpoint/resume for long searches.

    A checkpoint is a pair of atomic snapshots — the measurement {!Cache}
    at [path] and the {!Quarantine} list at [path ^ ".quarantine"] —
    refreshed every [every] state-changing engine events (new summaries
    computed or keys quarantined).  Because every search is a
    deterministic replay from its seed and the cache/quarantine only
    remove redundant work (never change a value), resuming a killed
    [funcy tune --checkpoint] is simply: reload both snapshots, re-run the
    same command, and the search fast-forwards through everything already
    measured to a bit-identical final result.

    {2 Commit protocol}

    Each individual file is written with {!Atomic_file.write}, but a save
    touches {e three} files, so a crash mid-save can still tear the set.
    Saves are therefore one serialized transaction in a fixed order:

    + the quarantine snapshot ([path ^ ".quarantine"]),
    + the cache snapshot ([path]),
    + a commit record ([path ^ ".commit"]) holding the digests of both.

    Quarantine-before-cache is the safe tear direction: a crash between
    the two leaves an {e older} cache with a {e newer} quarantine, and
    deterministic replay re-measures the missing summaries while the
    extra quarantine entries are exactly what re-evaluation would have
    re-derived.  (The opposite order could pair a new cache with a stale
    quarantine and resurrect a condemned configuration.)  {!load} checks
    the snapshots against the commit record and reports any mismatch —
    a torn save, a hand-edited file — through [warn] before resuming. *)

type t

val create :
  path:string ->
  ?every:int ->
  ?format:Cache.format ->
  ?on_write:(string -> unit) ->
  unit ->
  t
(** [every] (default 64) is the number of recorded events between
    snapshots.  Nothing is written until the first event.  [format]
    (default {!Cache.default_format}) pins the cache snapshot's on-disk
    format; {!load} auto-detects either, so resuming a text-era
    checkpoint with a binary writer just migrates it at the next save.
    [on_write] is a test hook, called inside the save transaction after
    each file reaches disk, with the stage name ["quarantine"], ["cache"]
    or ["commit"] — crash-injection tests raise from it to tear a save
    at a chosen point. *)

val path : t -> string
val quarantine_path : t -> string

val commit_path : t -> string
(** The commit record ([path ^ ".commit"]): magic line, then the hex MD5
    of the cache and quarantine snapshot files, written last. *)

val exists : t -> bool
(** Does a cache snapshot already exist on disk (i.e. can we resume)? *)

val load :
  ?warn:(line:int -> reason:string -> unit) ->
  t ->
  (Cache.t * Quarantine.t) option
(** Reload the snapshots, or [None] when there is nothing to resume from.
    A missing quarantine file (e.g. pre-fault checkpoints) yields an empty
    quarantine.  Malformed entries are skipped through [warn].  Commit
    protocol violations — a missing or malformed commit record, or a
    snapshot whose digest does not match it — are also reported through
    [warn] (with [line = 0]); the load still proceeds, because replay
    heals any tear the protocol's write order can produce.
    @raise Cache.Corrupt / Quarantine.Corrupt if a file exists but is not
    a snapshot at all. *)

val tick : t -> cache:Cache.t -> quarantine:Quarantine.t -> bool
(** Record one state-changing event; saves both snapshots (as one commit
    transaction) when [every] events have accumulated since the last save
    (returning [true] iff this call saved, so the engine can trace the
    save).  Thread-safe: the event counter is its own fine-grained lock,
    and concurrent due-savers serialize on a dedicated save lock so
    interleaved writes can never pair a cache from save A with a
    quarantine from save B. *)

val flush : t -> cache:Cache.t -> quarantine:Quarantine.t -> unit
(** Unconditional snapshot (called at the end of a run, and by the
    [--die-after] crash hook just before the simulated kill). *)
