(** The per-CV quarantine list: known-bad builds the engine stops retrying.

    When a build exhausts its retries (or fails in a way retries can never
    fix — an ICE or a miscompile), its cache key is quarantined together
    with the failure that condemned it.  Subsequent jobs on the same key
    return that recorded failure immediately instead of burning more
    attempts.  Because injected faults are a pure function of the fault
    seed and the key ({!Ft_fault.Fault}), a quarantine hit returns exactly
    the outcome a re-evaluation would have computed, so quarantining never
    changes search results — it only removes wasted work.  The table is
    mutex-protected and shared by all worker domains. *)

type reason =
  | Build_failed of string  (** the module whose compilation ICEd *)
  | Crashed of string  (** runtime crash; the payload is a diagnostic *)
  | Wrong_answer  (** output validation failed: miscompiled binary *)
  | Timed_out of float  (** simulated elapsed seconds when killed *)

val reason_to_string : reason -> string
(** Short human-readable rendering, e.g. ["build-failed(mod_3)"]. *)

type t

val create : unit -> t
val add : t -> string -> reason -> unit
val find : t -> string -> reason option
val length : t -> int

val bindings : t -> (string * reason) list
(** Sorted by key, for deterministic persistence and comparison. *)

val save : t -> path:string -> unit
(** Atomic (write-temp-then-rename) line-oriented snapshot. *)

exception Corrupt of { path : string; line : int; reason : string }
(** Raised by {!load} when the file is not a quarantine file at all
    (missing or wrong magic header). *)

val load : ?warn:(line:int -> reason:string -> unit) -> string -> t
(** [load path] reads a snapshot.  Malformed lines after a valid header are skipped
    through [warn] (default: one stderr line each) rather than aborting.
    @raise Corrupt on a missing or invalid magic header. *)
