exception Worker_failure of exn

exception Abort of string

(* Exceptions that must never be demoted to a per-job outcome: the
   asynchronous runtime failures (retrying cannot help and swallowing
   them hides a dying process) and [Abort], the deliberate
   whole-computation cancellation signal. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break | Abort _ -> true
  | _ -> false

let sequential_map f a = Array.map f a

let parallel_map ~workers f a =
  let n = Array.length a in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failed : exn option Atomic.t = Atomic.make None in
  let worker () =
    let rec loop () =
      if Atomic.get failed = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f a.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set failed None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  (match Atomic.get failed with
  | Some e -> raise (Worker_failure e)
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map ~jobs f a =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length a in
  if jobs = 1 || n <= 1 then sequential_map f a
  else parallel_map ~workers:(min jobs n) f a

let submit ~jobs thunks =
  Array.to_list (map ~jobs (fun thunk -> thunk ()) (Array.of_list thunks))

(* Partial-results mode: exceptions are captured per item, so one failed
   job no longer poisons the batch — every other job still runs and keeps
   its slot.  Built on [map] with an infallible wrapper, which also keeps
   the fail-fast path of [map] itself untouched.  Fatal exceptions are
   exempt from capture: they escape (wrapped in [Worker_failure] on the
   parallel path) so cancellation and runtime collapse abort the batch. *)
let map_result ~jobs f a =
  map ~jobs
    (fun x ->
      match f x with v -> Ok v | exception e when not (fatal e) -> Error e)
    a
