exception Worker_failure of exn

exception Abort of string

(* Exceptions that must never be demoted to a per-job outcome: the
   asynchronous runtime failures (retrying cannot help and swallowing
   them hides a dying process) and [Abort], the deliberate
   whole-computation cancellation signal. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break | Abort _ -> true
  | _ -> false

let sequential_map f a = Array.map f a

let parallel_map ~workers f a =
  let n = Array.length a in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failed : exn option Atomic.t = Atomic.make None in
  let worker () =
    let rec loop () =
      if Atomic.get failed = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f a.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set failed None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  (* The calling domain is worker zero: [workers - 1] spawns suffice, and
     a pool clamped to one worker runs the whole batch in place without
     spawning at all — while keeping the parallel path's exception
     envelope ([Worker_failure]). *)
  let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  (match Atomic.get failed with
  | Some e -> raise (Worker_failure e)
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map ~jobs f a =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length a in
  if jobs = 1 || n <= 1 then sequential_map f a
  else
    (* Never oversubscribe the machine: surplus domains add minor-GC
       synchronization stalls without adding parallelism (on a saturated
       core each minor collection waits for every runnable domain to be
       scheduled).  Job values are independent of worker count, so the
       clamp changes wall clock only. *)
    let workers =
      min (min jobs n) (max 1 (Domain.recommended_domain_count ()))
    in
    parallel_map ~workers f a

let submit ~jobs thunks =
  Array.to_list (map ~jobs (fun thunk -> thunk ()) (Array.of_list thunks))

(* Partial-results mode: exceptions are captured per item, so one failed
   job no longer poisons the batch — every other job still runs and keeps
   its slot.  Built on [map] with an infallible wrapper, which also keeps
   the fail-fast path of [map] itself untouched.  Fatal exceptions are
   exempt from capture: they escape (wrapped in [Worker_failure] on the
   parallel path) so cancellation and runtime collapse abort the batch. *)
let map_result ~jobs f a =
  map ~jobs
    (fun x ->
      match f x with v -> Ok v | exception e when not (fatal e) -> Error e)
    a
