module Exec = Ft_machine.Exec

type t = {
  table : (string, Exec.summary) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 1024; lock = Mutex.create () }

let digest canonical = Digest.to_hex (Digest.string canonical)

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let add t key summary =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table key summary)

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let bindings t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort compare

(* On-disk format: one entry per line,
     <key> TAB <total> TAB <nonloop> [TAB <loop-name>=<seconds>]...
   Floats are printed with %h (hexadecimal significand), so a save/load
   round-trip is bit-exact and the determinism guarantee survives
   persistence. *)

let format_magic = "ft-engine-cache/1"

let entry_line key (s : Exec.summary) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf key;
  Buffer.add_string buf (Printf.sprintf "\t%h\t%h" s.Exec.sum_total_s s.Exec.sum_nonloop_s);
  List.iter
    (fun (name, seconds) ->
      if String.contains name '\t' || String.contains name '=' then
        invalid_arg ("Cache.save: unencodable region name " ^ name);
      Buffer.add_string buf (Printf.sprintf "\t%s=%h" name seconds))
    s.Exec.sum_loops;
  Buffer.contents buf

(* A typed parse: every way a line can be malformed is reported as a
   message rather than an exception, so [load] can decide to skip a bad
   entry (corruption after a valid header) instead of aborting the whole
   resume. *)
let parse_entry line =
  match String.split_on_char '\t' line with
  | key :: total :: nonloop :: loops ->
      let float_of what field k =
        match float_of_string_opt field with
        | Some f -> k f
        | None -> Error (Printf.sprintf "unparsable %s %S" what field)
      in
      let rec parse_loops acc = function
        | [] -> Ok (List.rev acc)
        | field :: rest -> (
            match String.index_opt field '=' with
            | Some i ->
                float_of "loop seconds"
                  (String.sub field (i + 1) (String.length field - i - 1))
                  (fun seconds ->
                    parse_loops ((String.sub field 0 i, seconds) :: acc) rest)
            | None -> Error "loop field without '='")
      in
      float_of "total" total (fun sum_total_s ->
          float_of "nonloop" nonloop (fun sum_nonloop_s ->
              match parse_loops [] loops with
              | Ok sum_loops ->
                  Ok (key, { Exec.sum_total_s; sum_nonloop_s; sum_loops })
              | Error _ as e -> e))
  | _ -> Error "truncated entry"

let save t ~path =
  Atomic_file.write ~path (fun oc ->
      output_string oc (format_magic ^ "\n");
      List.iter
        (fun (key, summary) ->
          output_string oc (entry_line key summary);
          output_char oc '\n')
        (bindings t))

exception Corrupt of { path : string; line : int; reason : string }

let default_warn ~path ~line ~reason =
  Printf.eprintf "warning: %s:%d: skipping malformed cache entry (%s)\n%!"
    path line reason

let load ?warn path =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | magic when magic = format_magic -> ()
      | _ ->
          raise
            (Corrupt { path; line = 1; reason = "not an engine cache file" })
      | exception End_of_file ->
          raise (Corrupt { path; line = 1; reason = "empty file" }));
      let t = create () in
      let line_no = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if line <> "" then
             match parse_entry line with
             | Ok (key, summary) -> Hashtbl.replace t.table key summary
             | Error reason -> warn ~line:!line_no ~reason
         done
       with End_of_file -> ());
      t)
