module Exec = Ft_machine.Exec

type t = {
  table : (string, Exec.summary) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 1024; lock = Mutex.create () }

let digest canonical = Digest.to_hex (Digest.string canonical)

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let add t key summary =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table key summary)

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let bindings t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort compare

(* On-disk format: one entry per line,
     <key> TAB <total> TAB <nonloop> [TAB <loop-name>=<seconds>]...
   Floats are printed with %h (hexadecimal significand), so a save/load
   round-trip is bit-exact and the determinism guarantee survives
   persistence. *)

let format_magic = "ft-engine-cache/1"

let entry_line key (s : Exec.summary) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf key;
  Buffer.add_string buf (Printf.sprintf "\t%h\t%h" s.Exec.sum_total_s s.Exec.sum_nonloop_s);
  List.iter
    (fun (name, seconds) ->
      if String.contains name '\t' || String.contains name '=' then
        invalid_arg ("Cache.save: unencodable region name " ^ name);
      Buffer.add_string buf (Printf.sprintf "\t%s=%h" name seconds))
    s.Exec.sum_loops;
  Buffer.contents buf

(* A typed parse: every way a line can be malformed is reported as a
   message rather than an exception, so [load] can decide to skip a bad
   entry (corruption after a valid header) instead of aborting the whole
   resume. *)
let parse_entry line =
  match String.split_on_char '\t' line with
  | key :: total :: nonloop :: loops ->
      let float_of what field k =
        match float_of_string_opt field with
        (* Summaries are noise-free wall seconds, always finite; a "nan"
           or "inf" here is bit rot or a hand-edit, and admitting it would
           poison every Stats reduction downstream.  Skip the entry. *)
        | Some f when Float.is_finite f -> k f
        | Some _ -> Error (Printf.sprintf "non-finite %s %S" what field)
        | None -> Error (Printf.sprintf "unparsable %s %S" what field)
      in
      let rec parse_loops acc = function
        | [] -> Ok (List.rev acc)
        | field :: rest -> (
            match String.index_opt field '=' with
            | Some i ->
                float_of "loop seconds"
                  (String.sub field (i + 1) (String.length field - i - 1))
                  (fun seconds ->
                    parse_loops ((String.sub field 0 i, seconds) :: acc) rest)
            | None -> Error "loop field without '='")
      in
      float_of "total" total (fun sum_total_s ->
          float_of "nonloop" nonloop (fun sum_nonloop_s ->
              match parse_loops [] loops with
              | Ok sum_loops ->
                  Ok (key, { Exec.sum_total_s; sum_nonloop_s; sum_loops })
              | Error _ as e -> e))
  | _ -> Error "truncated entry"

let save t ~path =
  Atomic_file.write ~path (fun oc ->
      output_string oc (format_magic ^ "\n");
      List.iter
        (fun (key, summary) ->
          output_string oc (entry_line key summary);
          output_char oc '\n')
        (bindings t))

exception Corrupt of { path : string; line : int; reason : string }

let default_warn ~path ~line ~reason =
  Printf.eprintf "warning: %s:%d: skipping malformed cache entry (%s)\n%!"
    path line reason

let load ?warn path =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* A line is trusted only once its terminating newline reached the disk:
     truncation can only tear a file's tail, and a torn final line may
     otherwise still parse — a float cut mid-digits is a different, valid
     float.  [input_line] cannot see the missing terminator, hence the
     whole-file read. *)
  if contents = "" then raise (Corrupt { path; line = 1; reason = "empty file" });
  let body_start =
    match String.index_opt contents '\n' with
    | None ->
        let reason =
          if contents = format_magic then "truncated header"
          else "not an engine cache file"
        in
        raise (Corrupt { path; line = 1; reason })
    | Some i ->
        if String.sub contents 0 i <> format_magic then
          raise
            (Corrupt { path; line = 1; reason = "not an engine cache file" });
        i + 1
  in
  let t = create () in
  let body =
    String.sub contents body_start (String.length contents - body_start)
  in
  let lines = String.split_on_char '\n' body in
  (* A newline-terminated body splits into a trailing "" sentinel; any
     other final element is a torn line to be skipped, not parsed. *)
  let last = List.length lines - 1 in
  List.iteri
    (fun idx line ->
      if line <> "" then
        let line_no = idx + 2 in
        if idx = last then
          warn ~line:line_no ~reason:"torn final line (missing newline)"
        else
          match parse_entry line with
          | Ok (key, summary) -> Hashtbl.replace t.table key summary
          | Error reason -> warn ~line:line_no ~reason)
    lines;
  t

(* -- multi-process sharing ---------------------------------------------- *)

let merge t ~from =
  Mutex.protect from.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) from.table [])
  |> List.fold_left
       (fun adopted (k, v) ->
         Mutex.protect t.lock (fun () ->
             if Hashtbl.mem t.table k then adopted
             else begin
               Hashtbl.replace t.table k v;
               adopted + 1
             end))
       0

(* Advisory exclusive lock on a sidecar ([path ^ ".lock"]), not on [path]
   itself: [save] replaces [path] by rename, so a lock on the data file's
   inode would guard a file that no longer exists.  The sidecar is
   stable, empty, and shared by every process syncing against [path]. *)
let with_file_lock ~path f =
  let lock_path = path ^ ".lock" in
  let fd = Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

let sync ?warn t ~path =
  with_file_lock ~path (fun () ->
      let adopted =
        if Sys.file_exists path then merge t ~from:(load ?warn path) else 0
      in
      save t ~path;
      adopted)
