module Exec = Ft_machine.Exec

type format = Text | Binary

let default_format = Binary
let format_to_string = function Text -> "text" | Binary -> "binary"

let format_of_string = function
  | "text" -> Some Text
  | "binary" -> Some Binary
  | _ -> None

(* Per-file delta-sync bookkeeping: what this process last saw on disk
   under the sidecar lock, so the next [sync] can read and append only
   the delta instead of re-parsing the world.  Invalidated whenever the
   file is replaced out from under us (the dev/ino pair changes: an
   atomic save or another process's compaction) or shrinks. *)
type sync_state = {
  mutable s_offset : int;  (* committed bytes: every whole frame *)
  mutable s_records : int;  (* frames on disk, duplicates included *)
  s_known : (string, unit) Hashtbl.t;  (* keys already on disk *)
  mutable s_id : int * int;  (* (st_dev, st_ino) of the synced file *)
}

type t = {
  table : (string, Exec.summary) Hashtbl.t;
  lock : Mutex.t;
  sync_states : (string, sync_state) Hashtbl.t;  (* guarded by [lock] *)
}

let create () =
  {
    table = Hashtbl.create 1024;
    lock = Mutex.create ();
    sync_states = Hashtbl.create 4;
  }

let digest canonical = Digest.to_hex (Digest.string canonical)

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let add t key summary =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table key summary)

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let bindings t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort compare

let drop_sync_state t path =
  Mutex.protect t.lock (fun () -> Hashtbl.remove t.sync_states path)

let set_sync_state t path state =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.sync_states path state)

let get_sync_state t path =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.sync_states path)

(* -- text format (v1) ----------------------------------------------------

   One entry per line,
     <key> TAB <total> TAB <nonloop> [TAB <loop-name>=<seconds>]...
   Floats are printed with %h (hexadecimal significand), so a save/load
   round-trip is bit-exact and the determinism guarantee survives
   persistence.  Still written under [~format:Text] and always readable
   (the header's magic line picks the decoder), so old checkpoints and
   --warm-start files keep working. *)

let format_magic = Cache_codec.text_magic

let entry_line key (s : Exec.summary) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf key;
  Buffer.add_string buf (Printf.sprintf "\t%h\t%h" s.Exec.sum_total_s s.Exec.sum_nonloop_s);
  List.iter
    (fun (name, seconds) ->
      if String.contains name '\t' || String.contains name '=' then
        invalid_arg ("Cache.save: unencodable region name " ^ name);
      Buffer.add_string buf (Printf.sprintf "\t%s=%h" name seconds))
    s.Exec.sum_loops;
  Buffer.contents buf

(* A typed parse: every way a line can be malformed is reported as a
   message rather than an exception, so [load] can decide to skip a bad
   entry (corruption after a valid header) instead of aborting the whole
   resume. *)
let parse_entry line =
  match String.split_on_char '\t' line with
  | key :: total :: nonloop :: loops ->
      let float_of what field k =
        match float_of_string_opt field with
        (* Summaries are noise-free wall seconds, always finite; a "nan"
           or "inf" here is bit rot or a hand-edit, and admitting it would
           poison every Stats reduction downstream.  Skip the entry. *)
        | Some f when Float.is_finite f -> k f
        | Some _ -> Error (Printf.sprintf "non-finite %s %S" what field)
        | None -> Error (Printf.sprintf "unparsable %s %S" what field)
      in
      let rec parse_loops acc = function
        | [] -> Ok (List.rev acc)
        | field :: rest -> (
            match String.index_opt field '=' with
            | Some i ->
                float_of "loop seconds"
                  (String.sub field (i + 1) (String.length field - i - 1))
                  (fun seconds ->
                    parse_loops ((String.sub field 0 i, seconds) :: acc) rest)
            | None -> Error "loop field without '='")
      in
      float_of "total" total (fun sum_total_s ->
          float_of "nonloop" nonloop (fun sum_nonloop_s ->
              match parse_loops [] loops with
              | Ok sum_loops ->
                  Ok (key, { Exec.sum_total_s; sum_nonloop_s; sum_loops })
              | Error _ as e -> e))
  | _ -> Error "truncated entry"

exception Corrupt of { path : string; line : int; reason : string }

let default_warn ~path ~line ~reason =
  Printf.eprintf "warning: %s:%d: skipping malformed cache entry (%s)\n%!"
    path line reason

(* Parse a text-format body (everything after the header newline) into
   entries, newest-wins.  A line is trusted only once its terminating
   newline reached the disk: truncation can only tear a file's tail, and
   a torn final line may otherwise still parse — a float cut mid-digits
   is a different, valid float. *)
let parse_text_body ~warn table body =
  let lines = String.split_on_char '\n' body in
  (* A newline-terminated body splits into a trailing "" sentinel; any
     other final element is a torn line to be skipped, not parsed. *)
  let last = List.length lines - 1 in
  List.iteri
    (fun idx line ->
      if line <> "" then
        let line_no = idx + 2 in
        if idx = last then
          warn ~line:line_no ~reason:"torn final line (missing newline)"
        else
          match parse_entry line with
          | Ok (key, summary) -> Hashtbl.replace table key summary
          | Error reason -> warn ~line:line_no ~reason)
    lines

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Decode any cache file's contents (format auto-detected by magic) into
   a fresh table.  Shared by [load] and the full-pass leg of [sync]. *)
let table_of_contents ~warn ~path contents =
  if contents = "" then raise (Corrupt { path; line = 1; reason = "empty file" });
  let t = create () in
  (match Cache_codec.detect contents with
  | `Corrupt reason -> raise (Corrupt { path; line = 1; reason })
  | `Text ->
      let body_start = String.length format_magic + 1 in
      parse_text_body ~warn t.table
        (String.sub contents body_start (String.length contents - body_start))
  | `Binary ->
      let d =
        Cache_codec.decode
          ~warn:(fun ~line ~reason -> warn ~line:(line + 1) ~reason)
          ~pos:(String.length Cache_codec.header)
          contents
      in
      List.iter (fun (k, v) -> Hashtbl.replace t.table k v) d.entries);
  t

(* Advisory exclusive lock on a sidecar ([path ^ ".lock"]), not on [path]
   itself: the compaction/atomic-save path replaces [path] by rename, so
   a lock on the data file's inode would guard a file that no longer
   exists.  The sidecar is stable, empty, and shared by every process
   syncing against [path]. *)
let with_file_lock ~path f =
  let lock_path = path ^ ".lock" in
  let fd = Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

(* Reclaim orphaned [Atomic_file] temporaries around [path] — litter from
   writers SIGKILLed mid-save.  The lock-free probe keeps the common
   clean-directory case from manufacturing sidecar lock files; actual
   removal happens under the lock so two sweepers (or a sweeper and a
   compacting sync) never race. *)
let sweep_stale_tmp ~path =
  if Atomic_file.stale_tmp_files ~path () <> [] then
    with_file_lock ~path (fun () -> ignore (Atomic_file.sweep ~path ()))

let load ?warn path =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  sweep_stale_tmp ~path;
  table_of_contents ~warn ~path (read_whole path)

let save ?(format = default_format) t ~path =
  (match format with
  | Text ->
      Atomic_file.write ~path (fun oc ->
          output_string oc (format_magic ^ "\n");
          List.iter
            (fun (key, summary) ->
              output_string oc (entry_line key summary);
              output_char oc '\n')
            (bindings t))
  | Binary ->
      Atomic_file.write ~path (fun oc ->
          output_string oc (Cache_codec.encode_file (bindings t))));
  (* The rename put a new inode under [path]; any delta bookkeeping for
     it now describes a dead file. *)
  drop_sync_state t path

(* -- multi-process sharing ---------------------------------------------- *)

let merge t ~from =
  Mutex.protect from.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) from.table [])
  |> List.fold_left
       (fun adopted (k, v) ->
         Mutex.protect t.lock (fun () ->
             if Hashtbl.mem t.table k then adopted
             else begin
               Hashtbl.replace t.table k v;
               adopted + 1
             end))
       0

(* -- delta sync (binary) -------------------------------------------------

   The journal-style protocol behind [--shared-cache] at scale.  Under
   the sidecar lock:

   - first contact with a file (or after it was replaced/shrunk): read
     and decode the whole file once, adopt what we lack, then either
     compact (atomic rewrite: torn tail, skipped records, duplicate
     bloat, or a v1 text file being migrated) or append just our news;
   - every sync after that: read only the bytes past the last committed
     offset we saw, adopt the delta, truncate any torn tail left by a
     writer killed mid-append (safe: we hold the exclusive lock, so no
     live writer can be inside the tail), and append only entries the
     file does not already hold.

   Appends become commits frame-by-frame — a reader never trusts bytes
   past the last whole frame — so a SIGKILL anywhere in this protocol
   loses at most the killed process's own uncommitted tail. *)

let file_id (st : Unix.stats) = (st.Unix.st_dev, st.Unix.st_ino)

let write_all = Ft_framing.Framing.write_all

(* Append [records] at byte offset [at], truncating first: if the file
   tail past [at] is a torn frame this removes it, and when the file
   already ends at [at] the truncate is a no-op. *)
let append_records ~path ~at records =
  let buf = Buffer.create 4096 in
  List.iter (fun (k, s) -> Cache_codec.encode_record buf k s) records;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd at;
      ignore (Unix.lseek fd at Unix.SEEK_SET);
      let b = Buffer.to_bytes buf in
      write_all fd b 0 (Bytes.length b);
      Unix.fsync fd);
  Buffer.length buf

(* Duplicate frames accumulate when several processes race to append the
   same key (benign: values for equal keys are bit-identical).  Compact
   once the frame count is over twice the distinct keys, plus slack so
   small files never bother. *)
let needs_compaction ~records ~distinct = records > (2 * distinct) + 32

(* Atomic whole-file rewrite: one frame per binding, duplicates and torn
   tails gone.  Installs fresh bookkeeping from the file we just wrote. *)
let compact t ~path =
  let bs = bindings t in
  let contents = Cache_codec.encode_file bs in
  Atomic_file.write ~path (fun oc -> output_string oc contents);
  let st = Unix.stat path in
  let s_known = Hashtbl.create (List.length bs) in
  List.iter (fun (k, _) -> Hashtbl.replace s_known k ()) bs;
  set_sync_state t path
    {
      s_offset = String.length contents;
      s_records = List.length bs;
      s_known;
      s_id = file_id st;
    }

(* Keep the on-disk file as-is and append only entries it lacks. *)
let append_news t ~path ~state =
  let news =
    List.filter (fun (k, _) -> not (Hashtbl.mem state.s_known k)) (bindings t)
  in
  let written = append_records ~path ~at:state.s_offset news in
  List.iter (fun (k, _) -> Hashtbl.replace state.s_known k ()) news;
  state.s_offset <- state.s_offset + written;
  state.s_records <- state.s_records + List.length news;
  state.s_id <- file_id (Unix.stat path);
  set_sync_state t path state

(* Adopt decoded entries we lack; returns how many were new to [t]. *)
let adopt t entries =
  List.fold_left
    (fun adopted (k, v) ->
      Mutex.protect t.lock (fun () ->
          if Hashtbl.mem t.table k then adopted
          else begin
            Hashtbl.replace t.table k v;
            adopted + 1
          end))
    0 entries

let full_sync ?warn t ~path =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  if not (Sys.file_exists path) then begin
    compact t ~path;
    0
  end
  else begin
    let contents = read_whole path in
    if contents = "" then
      raise (Corrupt { path; line = 1; reason = "empty file" });
    match Cache_codec.detect contents with
    | `Corrupt reason -> raise (Corrupt { path; line = 1; reason })
    | `Text ->
        (* v1 file: adopt it wholesale and migrate to binary in place. *)
        let disk = create () in
        let body_start = String.length format_magic + 1 in
        parse_text_body ~warn disk.table
          (String.sub contents body_start (String.length contents - body_start));
        let adopted = merge t ~from:disk in
        compact t ~path;
        adopted
    | `Binary ->
        let d =
          Cache_codec.decode
            ~warn:(fun ~line ~reason -> warn ~line:(line + 1) ~reason)
            ~pos:(String.length Cache_codec.header)
            contents
        in
        let adopted = adopt t d.entries in
        let s_known = Hashtbl.create 256 in
        List.iter (fun (k, _) -> Hashtbl.replace s_known k ()) d.entries;
        let records = List.length d.entries + d.skipped in
        if
          d.torn || d.skipped > 0
          || needs_compaction ~records ~distinct:(Hashtbl.length s_known)
        then compact t ~path
        else
          append_news t ~path
            ~state:
              {
                s_offset = d.committed;
                s_records = records;
                s_known;
                s_id = file_id (Unix.stat path);
              };
        adopted
  end

let delta_sync ?warn t ~path ~state ~size =
  let warn =
    match warn with
    | Some w -> w
    | None -> fun ~line ~reason -> default_warn ~path ~line ~reason
  in
  let delta =
    if size = state.s_offset then ""
    else begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          seek_in ic state.s_offset;
          really_input_string ic (size - state.s_offset))
    end
  in
  let d =
    Cache_codec.decode
      ~warn:(fun ~line ~reason ->
        warn ~line:(state.s_records + line + 1) ~reason)
      ~pos:0 delta
  in
  let adopted = adopt t d.entries in
  List.iter (fun (k, _) -> Hashtbl.replace state.s_known k ()) d.entries;
  state.s_offset <- state.s_offset + d.committed;
  state.s_records <- state.s_records + List.length d.entries + d.skipped;
  if
    d.skipped > 0
    || needs_compaction ~records:state.s_records
         ~distinct:(Hashtbl.length state.s_known)
  then compact t ~path
  else
    (* [append_news] truncates to [state.s_offset] first, discarding any
       torn tail [decode] refused to trust. *)
    append_news t ~path ~state;
  adopted

let sync ?warn ?(format = default_format) t ~path =
  with_file_lock ~path (fun () ->
      ignore (Atomic_file.sweep ~path ());
      match format with
      | Text ->
          (* v1 semantics: whole-file read-merge-write, kept for golden
             tests and human-inspectable shared caches. *)
          let adopted =
            if Sys.file_exists path then merge t ~from:(load ?warn path)
            else 0
          in
          save ~format:Text t ~path;
          adopted
      | Binary -> (
          match (get_sync_state t path, Sys.file_exists path) with
          | Some state, true ->
              let st = Unix.stat path in
              if file_id st = state.s_id && st.Unix.st_size >= state.s_offset
              then delta_sync ?warn t ~path ~state ~size:st.Unix.st_size
              else full_sync ?warn t ~path
          | Some _, false | None, _ ->
              drop_sync_state t path;
              full_sync ?warn t ~path))
