module Exec = Ft_machine.Exec

type t = {
  table : (string, Exec.summary) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 1024; lock = Mutex.create () }

let digest canonical = Digest.to_hex (Digest.string canonical)

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let add t key summary =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table key summary)

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let bindings t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort compare

(* On-disk format: one entry per line,
     <key> TAB <total> TAB <nonloop> [TAB <loop-name>=<seconds>]...
   Floats are printed with %h (hexadecimal significand), so a save/load
   round-trip is bit-exact and the determinism guarantee survives
   persistence. *)

let format_magic = "ft-engine-cache/1"

let entry_line key (s : Exec.summary) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf key;
  Buffer.add_string buf (Printf.sprintf "\t%h\t%h" s.Exec.sum_total_s s.Exec.sum_nonloop_s);
  List.iter
    (fun (name, seconds) ->
      if String.contains name '\t' || String.contains name '=' then
        invalid_arg ("Cache.save: unencodable region name " ^ name);
      Buffer.add_string buf (Printf.sprintf "\t%s=%h" name seconds))
    s.Exec.sum_loops;
  Buffer.contents buf

let parse_line line =
  match String.split_on_char '\t' line with
  | key :: total :: nonloop :: loops ->
      let float_of field = float_of_string field in
      let loop field =
        match String.index_opt field '=' with
        | Some i ->
            ( String.sub field 0 i,
              float_of (String.sub field (i + 1) (String.length field - i - 1)) )
        | None -> failwith "loop field without '='"
      in
      ( key,
        {
          Exec.sum_total_s = float_of total;
          sum_nonloop_s = float_of nonloop;
          sum_loops = List.map loop loops;
        } )
  | _ -> failwith "truncated entry"

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (format_magic ^ "\n");
      List.iter
        (fun (key, summary) ->
          output_string oc (entry_line key summary);
          output_char oc '\n')
        (bindings t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | magic when magic = format_magic -> ()
      | _ -> failwith ("Cache.load: not an engine cache file: " ^ path)
      | exception End_of_file ->
          failwith ("Cache.load: empty cache file: " ^ path));
      let t = create () in
      (try
         while true do
           let line = input_line ic in
           if line <> "" then begin
             let key, summary = parse_line line in
             Hashtbl.replace t.table key summary
           end
         done
       with End_of_file -> ());
      t)
