(** Run telemetry for the evaluation engine: counters, per-phase wall-clock
    timers and a progress callback.

    All counters are [Atomic.t] and the timer table is mutex-protected, so
    one telemetry value can be shared by every worker domain of a
    {!Pool}.  Counters are observational only — no search result ever
    depends on them — which is why they are allowed to vary with worker
    scheduling (e.g. two workers racing on the same cache key record one
    hit and one miss in either order) while measured values do not. *)

type snapshot = {
  builds : int;  (** compile+link jobs actually performed (cache misses) *)
  runs : int;  (** binary executions actually performed *)
  cache_hits : int;
  cache_misses : int;
  retries : int;  (** jobs re-submitted after a transient failure *)
  build_failures : int;  (** compile jobs rejected by the compiler (ICEs) *)
  crashes : int;  (** runtime crashes observed (before any retry) *)
  wrong_answers : int;  (** output-validation mismatches (miscompiles) *)
  timeouts : int;  (** runs whose (simulated) elapsed time tripped the budget *)
  worker_crashes : int;
      (** process-backend workers that died mid-job (signal, exit, torn
          frame) — counted per crashed attempt, before any retry *)
  outliers : int;  (** heavy-tailed measurement outliers injected *)
  quarantined : int;  (** configurations added to the quarantine list *)
  quarantine_hits : int;  (** evaluations skipped via the quarantine list *)
  timers : (string * float) list;  (** phase → accumulated wall seconds *)
}

type t

val create : unit -> t
val reset : t -> unit

val build : t -> unit
val run : t -> unit
val cache_hit : t -> unit
val cache_miss : t -> unit
val retry : t -> unit
val build_failure : t -> unit
val crash : t -> unit
val wrong_answer : t -> unit
val timeout : t -> unit
val worker_crash : t -> unit
val outlier : t -> unit
val quarantine : t -> unit
val quarantine_hit : t -> unit

val add_time : t -> string -> float -> unit
(** Accumulate [seconds] onto a named phase timer. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f], accumulating its wall-clock duration onto
    [phase] (even if [f] raises).  Phases timed inside parallel workers
    accumulate CPU-side: their sum may exceed elapsed wall time. *)

val set_progress : t -> (completed:int -> expected:int -> unit) -> unit
(** Install a progress callback, invoked (serialized) after every engine
    job completes. *)

val expect : t -> int -> unit
(** Announce [n] more jobs, so progress callbacks can show a total. *)

val tick : t -> unit
(** Mark one job complete and fire the progress callback, if any. *)

val completed : t -> int
(** Jobs completed so far (the running count {!tick} maintains).  The
    selfcheck oracle reads this off a finished reference run to derive
    its kill points. *)

val snapshot : t -> snapshot

val absorb : t -> snapshot -> unit
(** Add every counter (and timer) of a shipped worker snapshot onto [t].
    The processes backend's merge step: workers count into a private
    telemetry and ship the snapshot home with their result. *)

val faults : snapshot -> int
(** Total injected faults observed: build failures + crashes + wrong
    answers + timeouts (outliers are degraded measurements, not faults). *)

val render : t -> string
(** Multi-line human-readable summary (the [--stats] output).  The fault /
    quarantine block only appears when something actually failed, so
    fault-free runs print exactly what they always did. *)
