(** Run telemetry for the evaluation engine: counters, per-phase wall-clock
    timers and a progress callback.

    All counters are [Atomic.t] and the timer table is mutex-protected, so
    one telemetry value can be shared by every worker domain of a
    {!Pool}.  Counters are observational only — no search result ever
    depends on them — which is why they are allowed to vary with worker
    scheduling (e.g. two workers racing on the same cache key record one
    hit and one miss in either order) while measured values do not. *)

type snapshot = {
  builds : int;  (** compile+link jobs actually performed (cache misses) *)
  runs : int;  (** binary executions actually performed *)
  cache_hits : int;
  cache_misses : int;
  retries : int;  (** jobs re-submitted after a transient failure *)
  timers : (string * float) list;  (** phase → accumulated wall seconds *)
}

type t

val create : unit -> t
val reset : t -> unit

val build : t -> unit
val run : t -> unit
val cache_hit : t -> unit
val cache_miss : t -> unit
val retry : t -> unit

val add_time : t -> string -> float -> unit
(** Accumulate [seconds] onto a named phase timer. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f], accumulating its wall-clock duration onto
    [phase] (even if [f] raises).  Phases timed inside parallel workers
    accumulate CPU-side: their sum may exceed elapsed wall time. *)

val set_progress : t -> (completed:int -> expected:int -> unit) -> unit
(** Install a progress callback, invoked (serialized) after every engine
    job completes. *)

val expect : t -> int -> unit
(** Announce [n] more jobs, so progress callbacks can show a total. *)

val tick : t -> unit
(** Mark one job complete and fire the progress callback, if any. *)

val snapshot : t -> snapshot

val render : t -> string
(** Multi-line human-readable summary (the [--stats] output). *)
