(** Crash-safe file writes for engine persistence.

    [write ~path emit] writes through [emit] into a fresh temporary file in
    the {e same directory} as [path] (so the final rename never crosses a
    filesystem) and atomically renames it over [path].  A crash at any
    point leaves either the previous file intact or the complete new one —
    never a truncated mixture — which is the property {!Cache.save},
    {!Quarantine.save} and {!Checkpoint} snapshots rely on. *)

val write : path:string -> (out_channel -> unit) -> unit
(** @raise Sys_error as [open_out]/[Sys.rename] would; the temporary file
    is removed on any failure. *)
