(** Crash-safe file writes for engine persistence.

    [write ~path emit] writes through [emit] into a fresh temporary file in
    the {e same directory} as [path] (so the final rename never crosses a
    filesystem) and atomically renames it over [path].  A crash at any
    point leaves either the previous file intact or the complete new one —
    never a truncated mixture — which is the property {!Cache.save},
    {!Quarantine.save} and {!Checkpoint} snapshots rely on.

    The one thing a crash {e can} leak is the temporary itself: a writer
    SIGKILLed between creating it and the rename leaves a
    [.<basename><rand>.tmp] orphan that no in-process cleanup will ever
    reclaim.  {!sweep} removes such orphans once they are older than a
    grace period — old enough that no live writer can still own them —
    and {!Cache} runs it under the sidecar lock on [load]/[sync], so
    long-running shared-cache deployments don't accumulate litter. *)

val write : path:string -> (out_channel -> unit) -> unit
(** @raise Sys_error as [open_out]/[Sys.rename] would; the temporary file
    is removed on any failure. *)

val default_grace_s : float
(** 300 s: how old a temporary must be before {!sweep} treats it as
    crash litter rather than a write in flight. *)

val stale_tmp_files : ?grace_s:float -> path:string -> unit -> string list
(** The temporaries of [path] (files named [.<basename>*.tmp] in its
    directory) whose mtime is at least [grace_s] (default
    {!default_grace_s}) in the past.  Read-only: lets callers check for
    litter before taking a lock to remove it. *)

val sweep : ?grace_s:float -> path:string -> unit -> int
(** Remove every {!stale_tmp_files} entry, returning how many were
    removed.  Never touches [path] itself, fresh temporaries, or
    anything not matching the temporary naming pattern; removal races
    are tolerated (the loser counts nothing).  Callers that share [path]
    across processes should hold the sidecar lock, as {!Cache} does. *)
