module Exec = Ft_machine.Exec
module Framing = Ft_framing.Framing

let binary_magic = "ft-engine-cache/2"
let text_magic = "ft-engine-cache/1"
let header = binary_magic ^ "\n"

let detect contents =
  let starts_with prefix =
    String.length contents >= String.length prefix
    && String.sub contents 0 (String.length prefix) = prefix
  in
  let is_prefix_of magic =
    (* A header cut short by a torn write: the contents are a proper
       prefix of what the first line should have been. *)
    String.length contents < String.length magic + 1
    && String.sub magic 0 (String.length contents) = contents
  in
  if starts_with header then `Binary
  else if starts_with (text_magic ^ "\n") then `Text
  else if contents <> "" && (is_prefix_of binary_magic || is_prefix_of text_magic)
  then `Corrupt "truncated header"
  else `Corrupt "not an engine cache file"

(* One summary is a handful of loop timings; 16 MiB of payload can only
   be an out-of-phase length prefix read as a length. *)
let max_record_bytes = 16 * 1024 * 1024

(* -- encoding ------------------------------------------------------------ *)

let add_u16 buf n what =
  if n < 0 || n > 0xffff then
    invalid_arg (Printf.sprintf "Cache_codec: %s (%d) exceeds u16" what n);
  Buffer.add_uint16_be buf n

let add_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)

let add_field buf s what =
  add_u16 buf (String.length s) what;
  Buffer.add_string buf s

let encode_record buf key (s : Exec.summary) =
  let payload = Buffer.create 128 in
  add_field payload key "key length";
  add_float payload s.Exec.sum_total_s;
  add_float payload s.Exec.sum_nonloop_s;
  add_u16 payload (List.length s.Exec.sum_loops) "loop count";
  List.iter
    (fun (name, seconds) ->
      add_field payload name "loop name length";
      add_float payload seconds)
    s.Exec.sum_loops;
  Buffer.add_int64_be buf (Int64.of_int (Buffer.length payload));
  Buffer.add_buffer buf payload

let encode_file bindings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  List.iter (fun (key, summary) -> encode_record buf key summary) bindings;
  Buffer.contents buf

(* -- decoding ------------------------------------------------------------ *)

type decoded = {
  entries : (string * Exec.summary) list;
  committed : int;
  torn : bool;
  skipped : int;
}

(* Payload parsing with an explicit cursor; any overrun or malformed
   field is a typed [Error], never an exception, so one rotted record
   cannot abort a resume. *)
let parse_payload contents ~pos ~len =
  let stop = pos + len in
  let cursor = ref pos in
  let exception Bad of string in
  let need n what =
    if !cursor + n > stop then
      raise (Bad (Printf.sprintf "record ends inside %s" what))
  in
  let u16 what =
    need 2 what;
    let v = String.get_uint16_be contents !cursor in
    cursor := !cursor + 2;
    v
  in
  let field what =
    let n = u16 what in
    need n what;
    let s = String.sub contents !cursor n in
    cursor := !cursor + n;
    s
  in
  let float_of what =
    need 8 what;
    let f = Int64.float_of_bits (String.get_int64_be contents !cursor) in
    cursor := !cursor + 8;
    (* Summaries are noise-free wall seconds, always finite; a non-finite
       value here is bit rot and would poison every Stats reduction. *)
    if not (Float.is_finite f) then
      raise (Bad (Printf.sprintf "non-finite %s" what));
    f
  in
  match
    let key = field "key" in
    let sum_total_s = float_of "total" in
    let sum_nonloop_s = float_of "nonloop" in
    let loops = u16 "loop count" in
    let sum_loops =
      List.init loops (fun _ ->
          let name = field "loop name" in
          let seconds = float_of "loop seconds" in
          (name, seconds))
    in
    if !cursor <> stop then
      raise
        (Bad
           (Printf.sprintf "%d trailing bytes after a valid record"
              (stop - !cursor)));
    (key, { Exec.sum_total_s; sum_nonloop_s; sum_loops })
  with
  | entry -> Ok entry
  | exception Bad reason -> Error reason

let decode ?warn ~pos contents =
  let warn =
    match warn with Some w -> w | None -> fun ~line:_ ~reason:_ -> ()
  in
  let total = String.length contents in
  let rec go ofs record acc skipped =
    if total - ofs < Framing.header_bytes then
      let torn = total > ofs in
      if torn then
        warn ~line:record ~reason:"torn final record (short frame header)";
      { entries = List.rev acc; committed = ofs; torn; skipped }
    else
      let len = Int64.to_int (String.get_int64_be contents ofs) in
      if len < 0 || len > max_record_bytes then begin
        (* An implausible length prefix desynchronizes everything after
           it; stop here and let the next locked sync truncate + compact. *)
        warn ~line:record
          ~reason:(Printf.sprintf "garbled frame length %d" len);
        { entries = List.rev acc; committed = ofs; torn = true; skipped }
      end
      else if total - ofs - Framing.header_bytes < len then begin
        warn ~line:record ~reason:"torn final record (short payload)";
        { entries = List.rev acc; committed = ofs; torn = true; skipped }
      end
      else
        let payload = ofs + Framing.header_bytes in
        let next = payload + len in
        match parse_payload contents ~pos:payload ~len with
        | Ok entry -> go next (record + 1) (entry :: acc) skipped
        | Error reason ->
            warn ~line:record ~reason;
            go next (record + 1) acc (skipped + 1)
  in
  go pos 1 [] 0
