let tmp_prefix path = "." ^ Filename.basename path
let tmp_suffix = ".tmp"

let write ~path emit =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (tmp_prefix path) tmp_suffix in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        emit oc;
        flush oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* A writer SIGKILLed between [Filename.temp_file] and [Sys.rename]
   leaves its temporary behind, and in-process cleanup can never run.
   The grace period is what makes reclaiming them safe: a temporary
   older than it cannot belong to a write still in flight (writes are
   one emit + rename, never minutes), so only crash litter is touched —
   a live writer's fresh temporary and the committed file never are. *)
let default_grace_s = 300.0

let is_tmp_of ~path name =
  let prefix = tmp_prefix path in
  String.length name > String.length prefix + String.length tmp_suffix
  && String.sub name 0 (String.length prefix) = prefix
  && Filename.check_suffix name tmp_suffix

let stale_tmp_files ?(grace_s = default_grace_s) ~path () =
  let dir = Filename.dirname path in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let now = Unix.time () in
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (is_tmp_of ~path name) then None
             else
               let p = Filename.concat dir name in
               match Unix.stat p with
               | exception Unix.Unix_error _ -> None
               | st ->
                   if now -. st.Unix.st_mtime >= grace_s then Some p else None)

let sweep ?grace_s ~path () =
  List.fold_left
    (fun removed p ->
      match Sys.remove p with
      | () -> removed + 1
      | exception Sys_error _ -> removed)
    0
    (stale_tmp_files ?grace_s ~path ())
