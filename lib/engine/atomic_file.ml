let write ~path emit =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
  in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        emit oc;
        flush oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
