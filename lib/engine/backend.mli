(** Which execution substrate runs a batch of engine jobs.

    [Domains] (the default) is the original shared-memory {!Pool}: jobs
    run on OCaml 5 domains inside the engine's process, sharing its
    cache, quarantine, telemetry and trace directly.  [Processes] runs
    each batch on a fixed-size {!Procpool} of forked workers: a crashing
    or leaking evaluation takes down only its worker, never the search —
    the failure surfaces as a typed {!Engine.job_outcome.Worker_crashed}
    and flows through the engine's retry/quarantine machinery.  Both
    backends compute bit-identical results (and byte-identical
    logical-clock traces): the choice trades isolation and address-space
    hygiene against fork/IPC overhead, never outcomes. *)

type t = Domains | Processes

val default : t
(** [Domains] — single-process, so all historical output is unchanged. *)

val all : t list

val to_name : t -> string
(** ["domains"] / ["processes"] (the [--backend] spelling). *)

val of_name : string -> t option

val describe : t -> string
(** One-line human description for banners and [--help]. *)
