(** Which execution substrate runs a batch of engine jobs.

    [Domains] (the default) is the original shared-memory {!Pool}: jobs
    run on OCaml 5 domains inside the engine's process, sharing its
    cache, quarantine, telemetry and trace directly.  [Processes] runs
    each batch on a fixed-size {!Procpool} of forked workers: a crashing
    or leaking evaluation takes down only its worker, never the search —
    the failure surfaces as a typed {!Engine.job_outcome.Worker_crashed}
    and flows through the engine's retry/quarantine machinery.
    [Sharded] is the coordinator/worker topology ([Ft_shard]): the batch
    is pre-partitioned into contiguous shards across [--nodes] forked
    node processes, straggler shards rebalance by work stealing, and
    each node ships its cache deltas home as {!Cache_codec} binary v2
    frames.  All backends compute bit-identical results (and
    byte-identical logical-clock traces): the choice trades isolation,
    address-space hygiene and scheduling topology against fork/IPC
    overhead, never outcomes. *)

type t = Domains | Processes | Sharded

val default : t
(** [Domains] — single-process, so all historical output is unchanged. *)

val all : t list

val to_name : t -> string
(** ["domains"] / ["processes"] / ["sharded"] (the [--backend]
    spelling). *)

val of_name : string -> t option

val describe : t -> string
(** One-line human description for banners and [--help]. *)
