type t = {
  path : string;
  every : int;
  lock : Mutex.t;
  mutable pending : int;
}

let create ~path ?(every = 64) () =
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  { path; every; lock = Mutex.create (); pending = 0 }

let path t = t.path
let quarantine_path t = t.path ^ ".quarantine"
let exists t = Sys.file_exists t.path

let load ?warn t =
  if not (exists t) then None
  else
    let cache = Cache.load ?warn t.path in
    let quarantine =
      if Sys.file_exists (quarantine_path t) then
        Quarantine.load ?warn (quarantine_path t)
      else Quarantine.create ()
    in
    Some (cache, quarantine)

let save t ~cache ~quarantine =
  Cache.save cache ~path:t.path;
  Quarantine.save quarantine ~path:(quarantine_path t)

let flush t ~cache ~quarantine =
  Mutex.protect t.lock (fun () ->
      t.pending <- 0;
      save t ~cache ~quarantine)

let tick t ~cache ~quarantine =
  let due =
    Mutex.protect t.lock (fun () ->
        t.pending <- t.pending + 1;
        if t.pending >= t.every then begin
          t.pending <- 0;
          true
        end
        else false)
  in
  (* Save outside the counter lock: Cache.save takes the cache lock and
     can be slow; other workers may keep recording events meanwhile. *)
  if due then save t ~cache ~quarantine;
  due
