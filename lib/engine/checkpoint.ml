type t = {
  path : string;
  every : int;
  format : Cache.format;
  lock : Mutex.t;
  save_lock : Mutex.t;
  mutable pending : int;
  on_write : (string -> unit) option;
}

let create ~path ?(every = 64) ?(format = Cache.default_format) ?on_write () =
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  {
    path;
    every;
    format;
    lock = Mutex.create ();
    save_lock = Mutex.create ();
    pending = 0;
    on_write;
  }

let path t = t.path
let quarantine_path t = t.path ^ ".quarantine"
let commit_path t = t.path ^ ".commit"
let exists t = Sys.file_exists t.path

let notify t stage =
  match t.on_write with None -> () | Some f -> f stage

(* The commit record: digests of both snapshot files, written last.  A
   checkpoint is "committed" exactly when the record matches what is on
   disk — any crash between the three writes leaves a detectable (and
   survivable) tear instead of a silently inconsistent pair. *)

let commit_magic = "ft-checkpoint-commit/1"

type commit = { cache_digest : string; quarantine_digest : string }

let read_commit t =
  let path = commit_path t in
  if not (Sys.file_exists path) then Ok None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let field expected line =
          match String.split_on_char ' ' line with
          | [ tag; digest ] when tag = expected && String.length digest = 32 ->
              Some digest
          | _ -> None
        in
        match
          let magic = In_channel.input_line ic in
          let cache = In_channel.input_line ic in
          let quarantine = In_channel.input_line ic in
          (magic, cache, quarantine)
        with
        | Some magic, Some c, Some q when magic = commit_magic -> (
            match (field "cache" c, field "quarantine" q) with
            | Some cache_digest, Some quarantine_digest ->
                Ok (Some { cache_digest; quarantine_digest })
            | _ -> Error "malformed commit record")
        | _ -> Error "malformed commit record")

let save t ~cache ~quarantine =
  (* One save transaction at a time: two workers both becoming "due" must
     not interleave their file writes, or the commit record of one could
     describe the snapshots of the other. *)
  Mutex.protect t.save_lock (fun () ->
      (* Quarantine first.  If we crash before the cache is written, the
         survivor pairs an older cache with a newer quarantine — the safe
         tear direction: resuming re-measures the missing summaries
         (deterministically) and the extra quarantine entries are exactly
         what re-evaluation would have re-derived.  The opposite order
         could resurrect a quarantined configuration with a stale verdict. *)
      Quarantine.save quarantine ~path:(quarantine_path t);
      notify t "quarantine";
      Cache.save ~format:t.format cache ~path:t.path;
      notify t "cache";
      Atomic_file.write ~path:(commit_path t) (fun oc ->
          Printf.fprintf oc "%s\ncache %s\nquarantine %s\n" commit_magic
            (Digest.to_hex (Digest.file t.path))
            (Digest.to_hex (Digest.file (quarantine_path t))));
      notify t "commit")

let load ?warn t =
  if not (exists t) then None
  else begin
    let warn_commit reason =
      match warn with
      | Some w -> w ~line:0 ~reason
      | None ->
          Printf.eprintf "warning: %s: %s\n%!" (commit_path t) reason
    in
    (match read_commit t with
    | Error reason -> warn_commit reason
    | Ok None ->
        warn_commit
          "no commit record (snapshot predates the commit protocol); \
           trusting both snapshot files as-is"
    | Ok (Some c) ->
        let check label file expected =
          if not (Sys.file_exists file) then
            warn_commit
              (Printf.sprintf "torn checkpoint: %s snapshot is missing" label)
          else if Digest.to_hex (Digest.file file) <> expected then
            warn_commit
              (Printf.sprintf
                 "torn checkpoint: %s snapshot does not match its commit \
                  record; resuming anyway (deterministic replay re-derives \
                  the difference)"
                 label)
        in
        check "cache" t.path c.cache_digest;
        check "quarantine" (quarantine_path t) c.quarantine_digest);
    let cache = Cache.load ?warn t.path in
    let quarantine =
      if Sys.file_exists (quarantine_path t) then
        Quarantine.load ?warn (quarantine_path t)
      else Quarantine.create ()
    in
    Some (cache, quarantine)
  end

let flush t ~cache ~quarantine =
  Mutex.protect t.lock (fun () -> t.pending <- 0);
  save t ~cache ~quarantine

let tick t ~cache ~quarantine =
  let due =
    Mutex.protect t.lock (fun () ->
        t.pending <- t.pending + 1;
        if t.pending >= t.every then begin
          t.pending <- 0;
          true
        end
        else false)
  in
  (* Save outside the counter lock: Cache.save takes the cache lock and
     can be slow; other workers may keep recording events meanwhile.
     [save] serializes concurrent due-savers on its own lock. *)
  if due then save t ~cache ~quarantine;
  due
