(* A fixed-size pool of forked worker processes.

   [map] forks up to [workers] children *after* the job array and the
   closure exist, so both are inherited through fork-time memory and only
   plain data ever crosses a pipe: the parent feeds job indices
   (length-prefixed Marshal frames, {!Ipc}) and each worker replies with
   [(index, payload)] frames.  Workers are fed one job at a time from a
   shared cursor, so scheduling is dynamic exactly like the domain
   {!Pool}'s queue.

   Crash isolation is the point: a worker that dies — killed by a
   signal, a nonzero exit, or a torn reply frame — loses only its
   in-flight job, which is surfaced as [Error (Crashed _)] in that job's
   slot.  The pool refills itself (bounded respawns) and every other job
   proceeds.  The pool never retries a crashed job itself: retry policy
   belongs to the engine, which re-runs deterministic jobs and gets
   bit-identical values. *)

type crash = { pid : int; detail : string }

type failure =
  | Raised of string
  | Crashed of crash

let crash_to_string { pid; detail } = Printf.sprintf "worker %d %s" pid detail

let failure_to_string = function
  | Raised msg -> "raised " ^ msg
  | Crashed c -> crash_to_string c

(* The one frame type of the parent->worker direction; worker->parent
   frames are [(index, ('b, string) result)].  A [kill] job instructs the
   worker to SIGKILL itself *before* running the job: the deterministic
   chaos hook behind [--kill-workers-after]. *)
type request = { index : int; kill : bool }

type worker = {
  pid : int;
  job_w : Unix.file_descr;
  job_writer : Ipc.Writer.t;  (* scratch-buffer reuse across feeds *)
  res_r : Unix.file_descr;
  mutable inflight : int option;
  mutable fed : int;
  mutable alive : bool;
  chaos_designee : bool;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else Printf.sprintf "signal %d" s

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | _, Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | _, Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)
  | exception Unix.Unix_error _ -> "already reaped"

(* The child side: read index frames until EOF (the parent closed our
   pipe: clean retirement), run the inherited closure, reply.  Exit is
   always [Unix._exit], never [Stdlib.exit]: the child inherited the
   parent's channel buffers at fork and must not flush them a second
   time — stdout byte-identity across backends depends on it. *)
let worker_loop f a job_r res_w =
  (* One reply frame per job: marshal them all through one reusable
     scratch buffer instead of allocating per reply. *)
  let res = Ipc.Writer.create res_w in
  let rec loop () =
    match Ipc.read job_r with
    | Error `Eof -> Unix._exit 0
    | Error (`Torn _) -> Unix._exit 3
    | Ok { index; kill } ->
        if kill then Unix.kill (Unix.getpid ()) Sys.sigkill;
        let payload =
          match f a.(index) with
          | v -> Stdlib.Ok v
          | exception e -> Stdlib.Error (Printexc.to_string e)
        in
        (match Ipc.Writer.write res (index, payload) with
        | () -> ()
        | exception _ -> Unix._exit 2);
        loop ()
  in
  loop ()

let map ~workers ?on_result ?kill_first_worker_after f a =
  if workers < 1 then invalid_arg "Procpool.map: workers must be >= 1";
  let n = Array.length a in
  let results = Array.make n None in
  if n = 0 then [||]
  else begin
    let worker_count = min workers n in
    (* A worker dying between jobs raises EPIPE on the next feed; that
       must reach our crash handling, not kill the parent. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let live = ref [] in
    let chaos_fired = ref false in
    let next = ref 0 in
    let completed = ref 0 in
    let respawns = ref 0 in
    (* Every respawn is paid for by a crash, and every crash consumes its
       in-flight job, so respawns are naturally bounded by [n]; the
       explicit budget only guards the no-in-flight corner (a worker
       dying before its first job was ever fed). *)
    let respawn_budget = (2 * worker_count) + n in
    let finish i r =
      results.(i) <- Some r;
      incr completed;
      match on_result with Some cb -> cb i r | None -> ()
    in
    let spawn ~chaos_designee () =
      let job_r, job_w = Unix.pipe () in
      let res_r, res_w = Unix.pipe () in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          close_noerr job_w;
          close_noerr res_r;
          (* Siblings' parent-side fds were inherited too; holding their
             write ends open would mask a sibling's EOF from the parent. *)
          List.iter
            (fun w ->
              close_noerr w.job_w;
              close_noerr w.res_r)
            !live;
          worker_loop f a job_r res_w
      | pid ->
          close_noerr job_r;
          close_noerr res_w;
          let w =
            { pid; job_w; job_writer = Ipc.Writer.create job_w; res_r;
              inflight = None; fed = 0; alive = true; chaos_designee }
          in
          live := w :: !live
    in
    let mark_dead w ~torn =
      w.alive <- false;
      live := List.filter (fun x -> x != w) !live;
      close_noerr w.job_w;
      close_noerr w.res_r;
      (* A torn frame means the stream is unusable even if the process
         is somehow still running: put it down before reaping. *)
      if torn <> None then (try Unix.kill w.pid Sys.sigkill with _ -> ());
      let status = reap w.pid in
      let detail =
        match torn with Some d -> d ^ "; " ^ status | None -> status
      in
      match w.inflight with
      | Some i ->
          w.inflight <- None;
          finish i (Stdlib.Error (Crashed { pid = w.pid; detail }))
      | None -> ()
    in
    (* While the chaos hook is armed but unfired, non-designees may not
       take the last jobs: the designee needs [k] completions plus one
       more feed for the kill to fire, and under an unlucky scheduler a
       starved designee could otherwise watch its siblings drain the
       whole array — leaving an armed kill that silently never happens
       (and crash-count tests that flake with machine load). *)
    let reserved_for_designee w =
      match kill_first_worker_after with
      | Some k when (not !chaos_fired) && not w.chaos_designee -> (
          match
            List.find_opt (fun x -> x.chaos_designee && x.alive) !live
          with
          | Some d -> max 0 (k + 1 - d.fed)
          | None -> 0)
      | _ -> 0
    in
    let feed w =
      if
        w.alive && w.inflight = None
        && n - !next > reserved_for_designee w
      then begin
        let i = !next in
        incr next;
        let kill =
          match kill_first_worker_after with
          | Some k when w.chaos_designee && (not !chaos_fired) && w.fed >= k ->
              chaos_fired := true;
              true
          | _ -> false
        in
        w.fed <- w.fed + 1;
        w.inflight <- Some i;
        match Ipc.Writer.write w.job_writer { index = i; kill } with
        | () -> ()
        | exception _ ->
            (* Dead before it could read: we cannot know how much of the
               frame it consumed, so the job counts as crashed; the
               engine's retry heals it deterministically. *)
            mark_dead w ~torn:None
      end
    in
    let cleanup () =
      List.iter
        (fun w ->
          close_noerr w.job_w;
          close_noerr w.res_r;
          (try Unix.kill w.pid Sys.sigkill with _ -> ());
          ignore (reap w.pid))
        !live;
      live := [];
      match old_sigpipe with
      | Some h -> (try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    for _ = 1 to worker_count do
      spawn ~chaos_designee:(!live = []) ()
    done;
    while !completed < n do
      (* Keep the pool at its fixed size while unassigned work remains. *)
      while
        List.length !live < worker_count
        && !next < n
        && !respawns < respawn_budget
      do
        incr respawns;
        spawn ~chaos_designee:false ()
      done;
      List.iter feed (List.filter (fun w -> w.inflight = None) !live);
      let watched = List.filter (fun w -> w.inflight <> None) !live in
      if watched = [] then begin
        (* The pool is gone and cannot be refilled; every remaining job
           is unfed.  Fail them rather than spin. *)
        for i = !next to n - 1 do
          finish i
            (Stdlib.Error
               (Crashed
                  {
                    pid = 0;
                    detail = "no live workers (respawn budget exhausted)";
                  }))
        done;
        next := n;
        assert (!completed = n)
      end
      else begin
        let fds = List.map (fun w -> w.res_r) watched in
        let ready =
          match Unix.select fds [] [] (-1.0) with
          | ready, _, _ -> ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.res_r = fd) watched with
            | Some w when w.alive -> (
                match Ipc.read fd with
                | Ok (i, payload) ->
                    w.inflight <- None;
                    finish i
                      (match payload with
                      | Stdlib.Ok v -> Stdlib.Ok v
                      | Stdlib.Error msg -> Stdlib.Error (Raised msg))
                | Error `Eof -> mark_dead w ~torn:None
                | Error (`Torn d) -> mark_dead w ~torn:(Some d))
            | _ -> ())
          ready
      end
    done;
    Array.map (function Some r -> r | None -> assert false) results
  end
