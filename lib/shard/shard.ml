(* Coordinator + forked worker nodes with work stealing.

   [map] is the sharded sibling of {!Ft_engine.Procpool.map}: instead of
   feeding a shared cursor one index at a time, the coordinator
   pre-partitions the job array into contiguous shards — node [k] of [N]
   owns [[k*n/N, (k+1)*n/N)] — and each node drains its own shard.  A
   node that runs dry {e steals} the tail half of the largest live
   backlog (orphaned work from dead nodes first), so a straggler shard
   rebalances across the fleet instead of serializing the round.

   The wire protocol, crash taxonomy and chaos hook are Procpool's,
   deliberately: nodes are forked after the closure and array exist,
   pipes carry only {!Ft_engine.Ipc} frames ([{index; kill}] down,
   [(index, payload)] up), a dead node surfaces its in-flight job as
   [Error (Crashed _)] and is respawned under a bounded budget, and
   [kill_first_node_after] arms node 0 to SIGKILL itself on its
   [(k+1)]-th feed.  Queued (not yet fed) jobs of a dead node are never
   lost — they move to the orphan pool and the next idle node adopts
   them — so only in-flight work ever needs the engine's retry.

   Job-to-node placement is scheduling-dependent and deliberately
   unobservable: results land by submission index, and the engine's
   shipment merge is order-canonical, so any interleaving of healthy and
   stolen work yields byte-identical output. *)

module Ipc = Ft_engine.Ipc
module Procpool = Ft_engine.Procpool

(* Parent->node frames; node->parent frames are
   [(index, ('b, string) result)].  [kill] instructs the node to SIGKILL
   itself before running the job: the chaos hook behind
   [--kill-node-after]. *)
type request = { index : int; kill : bool }

type node = {
  id : int;  (* stable identity for deterministic victim tie-breaks *)
  pid : int;
  job_w : Unix.file_descr;
  job_writer : Ipc.Writer.t;  (* scratch-buffer reuse across feeds *)
  res_r : Unix.file_descr;
  mutable queue : int list;  (* owned shard; head is fed next *)
  mutable inflight : int option;
  mutable fed : int;
  mutable alive : bool;
  chaos_designee : bool;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else Printf.sprintf "signal %d" s

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | _, Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | _, Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)
  | exception Unix.Unix_error _ -> "already reaped"

(* The node child: read request frames until EOF (clean retirement), run
   the inherited closure, reply.  Always [Unix._exit], never
   [Stdlib.exit]: the child inherited the parent's channel buffers at
   fork and must not flush them a second time. *)
let node_loop f a job_r res_w =
  let res = Ipc.Writer.create res_w in
  let rec loop () =
    match Ipc.read job_r with
    | Error `Eof -> Unix._exit 0
    | Error (`Torn _) -> Unix._exit 3
    | Ok { index; kill } ->
        if kill then Unix.kill (Unix.getpid ()) Sys.sigkill;
        let payload =
          match f a.(index) with
          | v -> Stdlib.Ok v
          | exception e -> Stdlib.Error (Printexc.to_string e)
        in
        (match Ipc.Writer.write res (index, payload) with
        | () -> ()
        | exception _ -> Unix._exit 2);
        loop ()
  in
  loop ()

let map ~nodes ?on_result ?kill_first_node_after f a =
  if nodes < 1 then invalid_arg "Shard.map: nodes must be >= 1";
  let n = Array.length a in
  let results = Array.make n None in
  if n = 0 then [||]
  else begin
    let node_count = min nodes n in
    (* A node dying between jobs raises EPIPE on the next feed; that
       must reach our crash handling, not kill the coordinator. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let live = ref [] in
    let orphans = ref [] in  (* unfed jobs inherited from dead nodes *)
    let chaos_fired = ref false in
    let completed = ref 0 in
    let respawns = ref 0 in
    (* Every respawn is paid for by a crash, and every crash consumes at
       most its in-flight job, so respawns are naturally bounded; the
       explicit budget guards the no-in-flight corner (a node dying
       before its first feed). *)
    let respawn_budget = (2 * node_count) + n in
    let next_id = ref node_count in
    let finish i r =
      results.(i) <- Some r;
      incr completed;
      match on_result with Some cb -> cb i r | None -> ()
    in
    (* Contiguous initial partition: node [k] owns [k*n/N, (k+1)*n/N). *)
    let shard k =
      let lo = k * n / node_count and hi = (k + 1) * n / node_count in
      List.init (hi - lo) (fun j -> lo + j)
    in
    let remaining () =
      List.fold_left
        (fun acc w -> acc + List.length w.queue)
        (List.length !orphans) !live
    in
    let spawn ~id ~queue ~chaos_designee () =
      let job_r, job_w = Unix.pipe () in
      let res_r, res_w = Unix.pipe () in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          close_noerr job_w;
          close_noerr res_r;
          (* Siblings' parent-side fds were inherited too; holding their
             write ends open would mask a sibling's EOF. *)
          List.iter
            (fun w ->
              close_noerr w.job_w;
              close_noerr w.res_r)
            !live;
          node_loop f a job_r res_w
      | pid ->
          close_noerr job_r;
          close_noerr res_w;
          let w =
            { id; pid; job_w; job_writer = Ipc.Writer.create job_w; res_r;
              queue; inflight = None; fed = 0; alive = true;
              chaos_designee }
          in
          live := w :: !live
    in
    let mark_dead w ~torn =
      w.alive <- false;
      live := List.filter (fun x -> x != w) !live;
      close_noerr w.job_w;
      close_noerr w.res_r;
      (* Unfed shard of a dead node is intact work, not a casualty: it
         moves to the orphan pool for the next idle node to adopt. *)
      orphans := !orphans @ w.queue;
      w.queue <- [];
      if torn <> None then (try Unix.kill w.pid Sys.sigkill with _ -> ());
      let status = reap w.pid in
      let detail =
        match torn with Some d -> d ^ "; " ^ status | None -> status
      in
      match w.inflight with
      | Some i ->
          w.inflight <- None;
          finish i (Stdlib.Error (Procpool.Crashed { pid = w.pid; detail }))
      | None -> ()
    in
    (* While the chaos hook is armed but unfired, non-designees may not
       drain the last jobs: the designee needs [k] completions plus one
       more feed for the kill to fire, and under an unlucky scheduler
       eager siblings could otherwise steal the whole array out from
       under it — leaving an armed kill that silently never happens. *)
    let reserved_for_designee w =
      match kill_first_node_after with
      | Some k when (not !chaos_fired) && not w.chaos_designee -> (
          match
            List.find_opt (fun x -> x.chaos_designee && x.alive) !live
          with
          | Some d -> max 0 (k + 1 - d.fed)
          | None -> 0)
      | _ -> 0
    in
    (* A dry node adopts the orphan pool outright, else steals the tail
       half of the largest live backlog (smallest node id on ties, so
       victim choice is a pure function of queue state). *)
    let steal w =
      if !orphans <> [] then begin
        w.queue <- !orphans;
        orphans := []
      end
      else
        let victim =
          List.fold_left
            (fun best v ->
              if v == w || v.queue = [] then best
              else
                match best with
                | None -> Some v
                | Some b ->
                    let lb = List.length b.queue
                    and lv = List.length v.queue in
                    if lv > lb || (lv = lb && v.id < b.id) then Some v
                    else best)
            None !live
        in
        match victim with
        | None -> ()
        | Some v ->
            let len = List.length v.queue in
            let keep = len - ((len + 1) / 2) in
            let rec split i l =
              if i = 0 then ([], l)
              else
                match l with
                | [] -> ([], [])
                | x :: rest ->
                    let kept, stolen = split (i - 1) rest in
                    (x :: kept, stolen)
            in
            let kept, stolen = split keep v.queue in
            v.queue <- kept;
            w.queue <- stolen
    in
    let feed w =
      if
        w.alive && w.inflight = None
        && remaining () > reserved_for_designee w
      then begin
        if w.queue = [] then steal w;
        match w.queue with
        | [] -> ()
        | i :: rest ->
            w.queue <- rest;
            let kill =
              match kill_first_node_after with
              | Some k
                when w.chaos_designee && (not !chaos_fired) && w.fed >= k
                ->
                  chaos_fired := true;
                  true
              | _ -> false
            in
            w.fed <- w.fed + 1;
            w.inflight <- Some i;
            (match Ipc.Writer.write w.job_writer { index = i; kill } with
            | () -> ()
            | exception _ ->
                (* Dead before it could read: we cannot know how much of
                   the frame it consumed, so the job counts as crashed;
                   the engine's retry heals it deterministically. *)
                mark_dead w ~torn:None)
      end
    in
    let cleanup () =
      List.iter
        (fun w ->
          close_noerr w.job_w;
          close_noerr w.res_r;
          (try Unix.kill w.pid Sys.sigkill with _ -> ());
          ignore (reap w.pid))
        !live;
      live := [];
      match old_sigpipe with
      | Some h -> (try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    for k = node_count - 1 downto 0 do
      spawn ~id:k ~queue:(shard k) ~chaos_designee:(k = 0) ()
    done;
    while !completed < n do
      (* Keep the fleet at size while unassigned work remains;
         replacements start dry and steal their way back in. *)
      while
        List.length !live < node_count
        && remaining () > 0
        && !respawns < respawn_budget
      do
        incr respawns;
        let id = !next_id in
        incr next_id;
        spawn ~id ~queue:[] ~chaos_designee:false ()
      done;
      List.iter feed (List.filter (fun w -> w.inflight = None) !live);
      let watched = List.filter (fun w -> w.inflight <> None) !live in
      if watched = [] then begin
        (* Nothing in flight and nothing feedable: the fleet is gone and
           cannot be refilled.  Fail the backlog rather than spin. *)
        let detail = "no live nodes (respawn budget exhausted)" in
        let fail_all idxs =
          List.iter
            (fun i ->
              finish i
                (Stdlib.Error (Procpool.Crashed { pid = 0; detail })))
            idxs
        in
        fail_all !orphans;
        orphans := [];
        List.iter
          (fun w ->
            fail_all w.queue;
            w.queue <- [])
          !live;
        assert (!completed = n)
      end
      else begin
        let fds = List.map (fun w -> w.res_r) watched in
        let ready =
          match Unix.select fds [] [] (-1.0) with
          | ready, _, _ -> ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.res_r = fd) watched with
            | Some w when w.alive -> (
                match Ipc.read fd with
                | Ok (i, payload) ->
                    w.inflight <- None;
                    finish i
                      (match payload with
                      | Stdlib.Ok v -> Stdlib.Ok v
                      | Stdlib.Error msg ->
                          Stdlib.Error (Procpool.Raised msg))
                | Error `Eof -> mark_dead w ~torn:None
                | Error (`Torn d) -> mark_dead w ~torn:(Some d))
            | _ -> ())
          ready
      end
    done;
    Array.map (function Some r -> r | None -> assert false) results
  end

let install () =
  Ft_engine.Engine.install_node_mapper
    {
      Ft_engine.Engine.map =
        (fun ~nodes ?on_result ?kill_first_node_after f a ->
          map ~nodes ?on_result ?kill_first_node_after f a);
    }
