(** Coordinator/worker sharded evaluation with work stealing — the
    [--backend sharded] substrate.

    {!map} pre-partitions the job array into contiguous shards across
    [nodes] forked node processes (node [k] of [N] owns
    [[k*n/N, (k+1)*n/N)]); each node drains its own shard, and a node
    that runs dry steals the tail half of the largest remaining backlog
    — orphaned work of dead nodes first — so straggler shards rebalance
    instead of serializing the round.

    Everything else is deliberately {!Ft_engine.Procpool}'s contract:
    nodes fork {e after} the closure and array exist (only plain
    {!Ft_engine.Ipc} frames cross the pipes), a dying node surfaces its
    in-flight job as [Error (Crashed _)] and is replaced under a
    bounded respawn budget, its unfed shard migrates intact to the
    orphan pool, and [kill_first_node_after:k] arms node 0 to SIGKILL
    itself on its [(k+1)]-th feed — the deterministic chaos hook behind
    [--kill-node-after].  Results land by submission index, so
    job-to-node placement (including stealing) is unobservable in the
    output: the engine's determinism contract holds at any node count.

    Like {!Ft_engine.Procpool}, [map] forks — so a process that has ever
    spawned a domain must not call it. *)

val map :
  nodes:int ->
  ?on_result:(int -> ('b, Ft_engine.Procpool.failure) result -> unit) ->
  ?kill_first_node_after:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, Ft_engine.Procpool.failure) result array
(** [map ~nodes f a] runs [f] over [a] on up to [nodes] forked node
    processes (never more than [Array.length a]) and returns per-index
    results in submission order.  [on_result] fires in the coordinator
    once per index as each reply (or crash) arrives.
    @raise Invalid_argument if [nodes < 1]. *)

val install : unit -> unit
(** Register {!map} as {!Ft_engine.Engine}'s node mapper, enabling
    [--backend sharded].  Call once at program start (the indirection
    exists so [ft_engine] does not depend on this library). *)
