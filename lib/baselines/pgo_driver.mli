(** Intel-style profile-guided optimization comparator (§4.2).

    Protocol, as in the paper: build with the PGO-instrumentation
    equivalent of [-qopenmp -fp-model source -prof-gen], run on the tuning
    input to collect trip counts / branch statistics / working sets, then
    rebuild with [-O3 ... -prof-use] and measure.  When the instrumented
    run fails (LULESH, Optewe — §4.2.2 observation 3) the result falls
    back to the plain O3 build, which is what a practitioner ships. *)

type t = {
  succeeded : bool;  (** instrumentation run completed *)
  diagnostic : string option;  (** failure message when it did not *)
  seconds : float;  (** measured runtime of the shipped binary *)
  speedup : float;  (** vs plain O3 (exactly 1.0-ish when PGO failed) *)
}

val run :
  ?trace:Ft_obs.Trace.t ->
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  unit ->
  t
(** With [?trace] the PGO protocol is bracketed in a [search] phase span
    (it bypasses the engine, so no per-job events are recorded). *)

val tuned_binary :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  Ft_compiler.Linker.binary
(** The [-prof-use] build (or the plain O3 build on instrumentation
    failure) — used by the generalization experiments to re-measure the
    same binary on other inputs. *)
