module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec
module Pgo = Ft_compiler.Pgo

type t = {
  succeeded : bool;
  diagnostic : string option;
  seconds : float;
  speedup : float;
}

let tuned_binary ~toolchain ~program ~input =
  match Pgo.collect ~program ~input with
  | Error _ -> Toolchain.compile_uniform toolchain ~cv:Ft_flags.Cv.o3 program
  | Ok db ->
      Toolchain.compile_uniform toolchain ~pgo:(Some db) ~cv:Ft_flags.Cv.o3
        program

let run ?trace ~toolchain ~program ~input ~rng () =
  Ft_obs.Trace.span trace Ft_obs.Event.Search @@ fun () ->
  let baseline =
    Ft_caliper.Profiler.baseline_seconds ~toolchain ~program ~input
  in
  let succeeded, diagnostic =
    match Pgo.collect ~program ~input with
    | Ok _ -> (true, None)
    | Error msg -> (false, Some msg)
  in
  let binary = tuned_binary ~toolchain ~program ~input in
  let seconds =
    (Exec.measure ~arch:toolchain.Toolchain.arch ~input ~rng binary)
      .Exec.elapsed_s
  in
  { succeeded; diagnostic; seconds; speedup = baseline /. seconds }
