(** Optimization-flag elimination algorithms (Pan & Eigenmann, CGO'06 /
    TOPLAS'08) — the per-program comparators of the paper's Fig. 1.

    All three work on on/off switches over the binarized flag space
    (multi-valued flags are allowed exactly two values, as for COBAYN,
    §4.2.1), starting from the baseline B with every flag {e on} and
    using the relative improvement percentage of switching a flag off:

      RIP(f) = (T(B \ f) - T(B)) / T(B)        (negative = removal helps)

    - {b Batch Elimination} (BE): measure all RIPs once, switch off every
      flag with negative RIP in one shot.  Fast, ignores interactions.
    - {b Iterative Elimination} (IE): repeatedly re-measure all RIPs and
      switch off only the single most harmful flag.  Handles interactions,
      O(n²) measurements.
    - {b Combined Elimination} (CE): IE's outer loop, but after removing
      the most harmful flag it also greedily tries the other
      negative-RIP candidates against the {e updated} baseline within the
      same iteration — Pan & Eigenmann's accuracy/cost compromise and the
      algorithm the paper evaluates in Fig. 1.

    The paper's finding: even CE yields no significant improvement over
    O3 for LULESH, Cloverleaf and AMG with either compiler — per-program
    granularity, not search cleverness, is the bottleneck. *)

type step = {
  eliminated : Ft_flags.Flag.id;  (** flag switched back to its default *)
  rip : float;  (** its RIP (negative = removal helped) at that point *)
}

type t = {
  algorithm : string;  (** ["CE"], ["BE"] or ["IE"] *)
  cv : Ft_flags.Cv.t;  (** the final configuration *)
  seconds : float;  (** noise-free runtime of the final configuration *)
  speedup : float;  (** vs the O3 baseline T_O3 *)
  steps : step list;  (** elimination order *)
  evaluations : int;
  failures : int;
      (** evaluations lost to injected faults — CE has no retry or
          quarantine layer, so a faulted configuration simply yields no
          measurement and can never be eliminated on *)
}

val run :
  ?faults:Ft_fault.Fault.t ->
  ?trace:Ft_obs.Trace.t ->
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  unit ->
  t
(** Combined Elimination (the Fig. 1 algorithm).  With [?faults], faulted
    trials are dropped (counted in [failures]); if the all-on baseline
    itself faults, the result degenerates to zero eliminations.  With
    [?trace] the whole elimination is bracketed in a [search] phase span
    (CE bypasses the engine, so no per-job events are recorded). *)

val run_batch :
  ?faults:Ft_fault.Fault.t ->
  ?trace:Ft_obs.Trace.t ->
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  unit ->
  t
(** Batch Elimination. *)

val run_iterative :
  ?faults:Ft_fault.Fault.t ->
  ?trace:Ft_obs.Trace.t ->
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  unit ->
  t
(** Iterative Elimination. *)
