module Flag = Ft_flags.Flag
module Cv = Ft_flags.Cv
module Exec = Ft_machine.Exec
module Toolchain = Ft_machine.Toolchain
module Fault = Ft_fault.Fault

type step = { eliminated : Flag.id; rip : float }

type t = {
  algorithm : string;
  cv : Cv.t;
  seconds : float;
  speedup : float;
  steps : step list;
  evaluations : int;
  failures : int;
}

(* Shared measurement state for all three algorithms. *)
type env = {
  toolchain : Toolchain.t;
  program : Ft_prog.Program.t;
  input : Ft_prog.Input.t;
  rng : Ft_util.Rng.t;
  faults : Fault.t option;
  mutable evaluations : int;
  mutable failures : int;
}

(* CE predates fault-tolerant tuning frameworks, and its reproduction here
   deliberately has no retry/quarantine layer: a configuration that fails
   to build, crashes, hangs or miscompiles simply yields no measurement
   ([None]) and can never look like an improvement.  That asymmetry — the
   engine-backed searches recover, the baseline just loses evaluations —
   is part of what the faults experiment measures. *)
let measure env cv =
  env.evaluations <- env.evaluations + 1;
  let faulted =
    match env.faults with
    | None -> false
    | Some f ->
        let key =
          "ce:" ^ env.program.Ft_prog.Program.name ^ ":" ^ Cv.to_compact cv
        in
        Fault.ice f ~program:env.program.Ft_prog.Program.name
          ~module_name:"<whole-program>" cv
        || Fault.run_fault f ~key ~attempt:0 <> Fault.Run_ok
  in
  if faulted then begin
    env.failures <- env.failures + 1;
    None
  end
  else
    let binary = Toolchain.compile_uniform env.toolchain ~cv env.program in
    Some
      (Exec.measure ~arch:env.toolchain.Toolchain.arch ~input:env.input
         ~rng:env.rng binary)
        .Exec.elapsed_s

let rip_of env bits current_s id =
  let trial = Array.copy bits in
  trial.(Flag.index id) <- false;
  match measure env (Cv.of_bits trial) with
  | Some s -> Some (s, (s -. current_s) /. current_s)
  | None -> None

let finish env ~algorithm ~bits ~steps =
  let baseline_o3 =
    Ft_caliper.Profiler.baseline_seconds ~toolchain:env.toolchain
      ~program:env.program ~input:env.input
  in
  let cv = Cv.of_bits bits in
  let binary = Toolchain.compile_uniform env.toolchain ~cv env.program in
  let seconds =
    (Exec.evaluate ~arch:env.toolchain.Toolchain.arch ~input:env.input binary)
      .Exec.total_s
  in
  {
    algorithm;
    cv;
    seconds;
    speedup = baseline_o3 /. seconds;
    steps = List.rev steps;
    evaluations = env.evaluations;
    failures = env.failures;
  }

let make_env ~toolchain ~program ~input ~rng ~faults =
  { toolchain; program; input; rng; faults; evaluations = 0; failures = 0 }

let on_flags bits =
  Array.to_list Flag.all |> List.filter (fun id -> bits.(Flag.index id))

let run_batch ?faults ?trace ~toolchain ~program ~input ~rng () =
  Ft_obs.Trace.span trace Ft_obs.Event.Search @@ fun () ->
  let env = make_env ~toolchain ~program ~input ~rng ~faults in
  let bits = Array.make Flag.count true in
  match measure env (Cv.of_bits bits) with
  | None ->
      (* The all-on baseline itself faulted: there is nothing to compare
         RIPs against, so no flag can be eliminated. *)
      finish env ~algorithm:"BE" ~bits ~steps:[]
  | Some base_s ->
      let steps =
        on_flags bits
        |> List.filter_map (fun id ->
               match rip_of env bits base_s id with
               | Some (_, rip) when rip < 0.0 ->
                   Some { eliminated = id; rip }
               | Some _ | None -> None)
      in
      List.iter (fun s -> bits.(Flag.index s.eliminated) <- false) steps;
      finish env ~algorithm:"BE" ~bits ~steps:(List.rev steps)

let eliminate ~algorithm ~refine ?faults ?trace ~toolchain ~program ~input
    ~rng () =
  Ft_obs.Trace.span trace Ft_obs.Event.Search @@ fun () ->
  let env = make_env ~toolchain ~program ~input ~rng ~faults in
  let bits = Array.make Flag.count true in
  match measure env (Cv.of_bits bits) with
  | None -> finish env ~algorithm ~bits ~steps:[]
  | Some base_s ->
      let current_s = ref base_s in
      let steps = ref [] in
      let continue = ref true in
      while !continue do
        (* RIPs of all remaining flags against the current baseline;
           unmeasurable candidates (injected faults) drop out here. *)
        let candidates =
          on_flags bits
          |> List.filter_map (fun id ->
                 match rip_of env bits !current_s id with
                 | Some (s, rip) when rip < 0.0 -> Some (id, s, rip)
                 | Some _ | None -> None)
          |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
        in
        match candidates with
        | [] -> continue := false
        | (first, s, rip) :: rest ->
            bits.(Flag.index first) <- false;
            current_s := s;
            steps := { eliminated = first; rip } :: !steps;
            if refine then
              (* ...then re-try the other candidates against the *updated*
                 baseline within the same iteration (the "combined"
                 part). *)
              List.iter
                (fun (id, _, _) ->
                  match rip_of env bits !current_s id with
                  | Some (s', rip') when rip' < 0.0 ->
                      bits.(Flag.index id) <- false;
                      current_s := s';
                      steps := { eliminated = id; rip = rip' } :: !steps
                  | Some _ | None -> ())
                rest
      done;
      finish env ~algorithm ~bits ~steps:!steps

let run_iterative ?faults ?trace ~toolchain ~program ~input ~rng () =
  eliminate ~algorithm:"IE" ~refine:false ?faults ?trace ~toolchain ~program
    ~input ~rng ()

let run ?faults ?trace ~toolchain ~program ~input ~rng () =
  eliminate ~algorithm:"CE" ~refine:true ?faults ?trace ~toolchain ~program
    ~input ~rng ()
