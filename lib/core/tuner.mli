(** The end-to-end FuncyTuner pipeline.

    A {!session} fixes program, platform, input and seed, performs the
    Caliper profiling + outlining step once, and lazily shares the
    K-run per-loop collection between greedy combination and CFR (exactly
    as in the paper, where Fig. 4's collection feeds both §2.2.3 and
    §2.2.4).  [run_all] produces the five Fig. 5 series for one
    (benchmark, platform) cell. *)

type session = {
  ctx : Context.t;
  outline : Ft_outline.Outline.t;
  collection : Collection.t Lazy.t;
}

val make_session :
  ?pool_size:int ->
  ?threshold:float ->
  ?jobs:int ->
  ?backend:Ft_engine.Backend.t ->
  ?engine:Ft_engine.Engine.t ->
  platform:Ft_prog.Platform.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  seed:int ->
  unit ->
  session
(** Profile at O3, outline hot loops (≥ [threshold], default 1 %), prepare
    the CV pool.  The collection happens on first use.  [jobs] (default 1)
    sizes the evaluation engine's worker pool and [backend] (default
    domains) its execution substrate — reports are bit-identical at any
    setting of either; [engine] shares an existing engine (cache +
    telemetry) instead. *)

type report = {
  random : Result.t;
  fr : Result.t;
  greedy : Greedy.t;
  cfr : Result.t;
}

val run_all : ?top_x:int -> session -> report
(** Run all four §2.2 algorithms (sharing one collection for G and CFR). *)

val run_cfr : ?top_x:int -> session -> Result.t
(** Just the collection + CFR (used by the baseline-comparison figures). *)

val evaluate_configuration :
  session ->
  input:Ft_prog.Input.t ->
  rng:Ft_util.Rng.t ->
  Result.configuration ->
  float
(** Re-build a tuned configuration and time it on a (possibly different)
    input — the §4.3 generalization protocol: tune once on the tuning
    input, then measure the tuned binary on small/large/longer inputs. *)

val build_configuration :
  session -> Result.configuration -> Ft_compiler.Linker.binary
(** Rebuild a tuned configuration's binary (whole-program or per-module)
    without running it — used by the Fig. 9 / Table 3 case study, which
    inspects per-region times and post-link decisions. *)

val o3_seconds : session -> input:Ft_prog.Input.t -> float
(** Noise-free O3 baseline on an arbitrary input (denominator for
    generalization speedups). *)
