(** Adaptive (early-stopping) CFR.

    §4.3 of the paper notes that CFR's tuning overhead "may be
    dramatically reduced … by exploiting program-specific CFR convergence
    trends, i.e., CFR finds the best code variant in tens or several
    hundreds of evaluations".  This variant implements that remark: it
    runs CFR's re-sampling loop but stops once no improvement better than
    [min_gain] (relative) has been seen for [patience] consecutive
    evaluations, bounding the budget at the pool size.

    The per-loop collection phase is unchanged (it is the information CFR
    focuses on); only the re-sampling budget adapts.  The harness's
    ablation compares the spent budget and the achieved speedup against
    full CFR. *)

val default_patience : int
(** 150 evaluations without a ≥ min_gain improvement ends the search. *)

val default_min_gain : float
(** 0.002 — half the measurement-noise scale. *)

val run :
  ?top_x:int ->
  ?patience:int ->
  ?min_gain:float ->
  Context.t ->
  Collection.t ->
  Result.t
(** Like {!Cfr.run}, with early stopping; [Result.evaluations] reports the
    budget actually spent — the search-loop measurements plus the final
    confirmation of the winner, so it is always [List.length
    Result.trace + 1] — and the algorithm label is ["CFR-adaptive"]. *)
