module Rng = Ft_util.Rng
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec
module Engine = Ft_engine.Engine
module Trace = Ft_obs.Trace

type t = {
  toolchain : Toolchain.t;
  program : Ft_prog.Program.t;
  input : Ft_prog.Input.t;
  pool : Ft_flags.Cv.t array;
  baseline_s : float;
  rng : Rng.t;
  engine : Engine.t;
}

let make ?(pool_size = 1000) ?jobs ?backend ?engine ~toolchain ~program ~input
    ~seed () =
  let engine =
    match engine with Some e -> e | None -> Engine.create ?jobs ?backend ()
  in
  let rng = Rng.create seed in
  let pool = Ft_flags.Space.sample_pool (Rng.of_label rng "pool") pool_size in
  let baseline_s =
    Trace.span (Engine.trace engine) Ft_obs.Event.Profile (fun () ->
        Ft_caliper.Profiler.baseline_seconds ~toolchain ~program ~input)
  in
  { toolchain; program; input; pool; baseline_s; rng; engine }

let stream t label = Rng.of_label t.rng label
let engine t = t.engine
let telemetry t = Engine.telemetry t.engine
let trace t = Engine.trace t.engine

let measure_uniform t ~rng cv =
  let m =
    Engine.measure_one t.engine ~toolchain:t.toolchain ~program:t.program
      ~input:t.input
      { Engine.build = Engine.Uniform { cv; instrumented = false }; rng }
  in
  m.Exec.elapsed_s

let try_measure_uniform t ~rng cv =
  Engine.try_measure_one t.engine ~toolchain:t.toolchain ~program:t.program
    ~input:t.input
    { Engine.build = Engine.Uniform { cv; instrumented = false }; rng }

let evaluate_uniform t cv =
  Engine.evaluate t.engine ~toolchain:t.toolchain ~program:t.program
    ~input:t.input
    (Engine.Uniform { cv; instrumented = false })

let speedup t seconds = t.baseline_s /. seconds
