(** A tuning session: one program, one platform, one input, one seed.

    Everything the four search algorithms of §2.2 need — the tool-chain,
    the K = 1000 pre-sampled CV pool, the O3 baseline time T_O3 and the
    derived random streams — bundled so algorithm implementations stay
    small and deterministic. *)

type t = {
  toolchain : Ft_machine.Toolchain.t;
  program : Ft_prog.Program.t;
  input : Ft_prog.Input.t;
  pool : Ft_flags.Cv.t array;  (** the pre-sampled CV pool (step 1 of
                                   Figs. 2–4); length = [pool_size] *)
  baseline_s : float;  (** T_O3: noise-free O3 end-to-end runtime *)
  rng : Ft_util.Rng.t;  (** master stream; use {!stream} for children *)
  engine : Ft_engine.Engine.t;
      (** the evaluation engine all of this session's builds and runs go
          through — owns the worker pool, measurement cache and
          telemetry *)
}

val make :
  ?pool_size:int ->
  ?jobs:int ->
  ?backend:Ft_engine.Backend.t ->
  ?engine:Ft_engine.Engine.t ->
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  seed:int ->
  unit ->
  t
(** Build a session.  [pool_size] defaults to 1000 (the paper's K).  The
    pool is drawn from a stream derived from [seed] alone, so two sessions
    with the same seed share the same pool regardless of evaluation
    order.  [jobs] (default 1 = sequential) sizes a fresh engine's worker
    pool and [backend] (default domains) picks its execution substrate;
    pass [engine] instead to share one engine — cache and telemetry
    included — across sessions.  Results are independent of all three. *)

val stream : t -> string -> Ft_util.Rng.t
(** A labelled child stream (e.g. ["fr"], ["cfr:measure"]), independent of
    all other labels. *)

val engine : t -> Ft_engine.Engine.t

val telemetry : t -> Ft_engine.Telemetry.t
(** The session engine's telemetry (the [--stats] source). *)

val trace : t -> Ft_obs.Trace.t option
(** The session engine's trace buffer, if one is attached ([--trace]). *)

val measure_uniform : t -> rng:Ft_util.Rng.t -> Ft_flags.Cv.t -> float
(** Compile the whole program with one CV (traditional model), run it on
    the session input, return noisy end-to-end seconds. *)

val try_measure_uniform :
  t -> rng:Ft_util.Rng.t -> Ft_flags.Cv.t -> Ft_engine.Engine.job_outcome
(** Outcome-typed {!measure_uniform}: under an armed fault model the CV
    may fail to build, crash, miscompile or time out; searches treat any
    non-[Ok] outcome as an unusable configuration rather than an
    exception. *)

val evaluate_uniform : t -> Ft_flags.Cv.t -> float
(** Noise-free runtime of a whole-program build — used to {e report} a
    search's winner: selection happens on noisy measurements (as on real
    hardware), but the figure-of-merit is the re-measured stable time, as
    the paper's 10-run methodology implies. *)

val speedup : t -> float -> float
(** [speedup t seconds] = T_O3 / seconds. *)
