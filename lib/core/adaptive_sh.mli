(** Successive-halving CFR: the flagship adaptive search.

    Where {!Cfr.run} spends one measurement on each of K random draws
    from the pruned per-loop pools and {!Adaptive.run} merely stops the
    same uniform loop early, this search hands a (much smaller) budget
    to the pure {!Allocator} and lets it concentrate measurements on
    the draws that look fastest: a fixed arm set is sampled up front —
    arm 0 is the T-matrix greedy assignment (each module's
    predicted-best CV), the rest are CFR-style draws from the pruned
    pools — and then evaluated rung by rung, each rung one batch
    through the parallel engine, halving the survivor set between
    rungs.  The ROADMAP target this serves: match CFR's final quality
    at a quarter of its evaluations.

    Determinism: arms are drawn on the ["adaptive-sh"] stream,
    measurement noise on per-(arm, repeat) substreams of
    ["adaptive-sh:noise"], and every allocator decision is a pure
    function of the measured times — so results, caches and logical
    traces are bit-identical at any [--jobs] count on either backend,
    and the rung lifecycle events ({!Ft_obs.Event.Rung_opened} et al.)
    survive selfcheck normalization.

    Warm start: pass [?warm] (a previous run's persistent cache) and
    any arm whose assignment is already cached gets its noise-free
    total as an {!Allocator} prior pseudo-score — cache-recalled
    knowledge biases early rankings without costing budget. *)

val default_budget : Context.t -> int
(** [max 2 (pool / 4)] — a quarter of the CFR budget [K], the ROADMAP's
    headline operating point. *)

val default_top_x : int
(** 4 — the arm-sampling focus width, deliberately sharper than
    {!Cfr.default_top_x}: with only ~budget/2 arms, uniform draws from
    top-20 pools rarely include the rare good combinations, while the
    top handful of each module's per-loop ranking concentrates them.
    Measured across the examples corpus this width lets a K/4 budget
    match (usually beat) full-budget CFR; CFR's 20 does not. *)

val run :
  ?top_x:int ->
  ?policy:Allocator.policy ->
  ?budget:int ->
  ?warm:Ft_engine.Cache.t ->
  Context.t ->
  Collection.t ->
  Result.t
(** Collection and pruning are CFR's; only the measurement schedule
    differs.  [Result.evaluations] is the allocator's spend plus the
    final confirmation measurement of the winner; the algorithm label
    is ["CFR-SH"].  If every pull of the winning arm faulted, falls
    back to the all-modules-O3 assignment.

    @raise Invalid_argument if the context pool is empty or [budget]
    is smaller than the arm set (see {!Allocator.create}). *)
