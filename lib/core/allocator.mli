(** Pure, deterministic evaluation-budget allocator over a fixed arm set.

    CFR spends its budget uniformly: every draw from the pruned per-loop
    pools gets exactly one measurement.  This module is the other half of
    the ROADMAP's adaptive-search item — given [arms] candidate
    configurations and a total [budget] of measurements, decide {e which}
    arm to measure next so that most of the budget concentrates on the
    arms that look fastest, while every arm still gets a fair first look.

    Two policies:

    - {b successive halving} ([Successive_halving]): the budget is split
      across a ladder of rungs.  Rung 0 pulls every arm; at each rung
      close the survivors are ranked by mean observed score (lower is
      better, ties broken by arm index) and only the top [ceil (s /
      eta)] are promoted.  The last rung absorbs the integer remainder
      so that a completed run spends {e exactly} its budget.
    - {b UCB} ([Ucb]): after a fill phase that pulls every arm once,
      batches are chosen greedily by the lower confidence bound [mean -
      exploration * sqrt (2 ln t / n)] (minimization form), with
      provisional pull counts inside a batch so one call never stacks
      its whole batch on a single arm.

    The allocator is an explicit state machine — [create] →
    [next_batch] → [observe] → … → [finished] — with {e no} I/O, RNG,
    or wall-clock inputs: every decision is a pure function of the
    policy, the arm count, the budget, the optional priors, and the
    observed scores.  That is what makes the laws in
    [test/suite_core.ml] (budget conservation, fair first look,
    promotion monotonicity, replay determinism) directly checkable, and
    what lets {!Adaptive_sh} batch each rung through the parallel
    engine without the schedule leaking into the decisions — the same
    discipline that keeps [Ft_serve.Scheduler] unit-testable. *)

type policy =
  | Successive_halving of { eta : int }
      (** keep [ceil (survivors / eta)] arms per rung; [eta >= 2] *)
  | Ucb of { exploration : float; batch : int }
      (** lower-confidence-bound batches of [batch >= 1] pulls;
          [exploration >= 0] scales the confidence radius *)

val default_policy : policy
(** [Successive_halving { eta = 2 }] — the flagship schedule. *)

type pull = { arm : int; repeat : int }
(** One requested measurement: pull [arm] for the ([repeat]+1)-th time.
    [repeat] counts that arm's previous pulls across the whole run, so
    [(arm, repeat)] is a stable identity for the measurement — callers
    use it to derive a per-pull RNG label that does not depend on how
    pulls were grouped into batches. *)

type decision =
  | Rung_opened of { rung : int; arms : int; pulls : int }
      (** rung [rung] begins with [arms] survivors and [pulls] total
          measurements scheduled *)
  | Rung_closed of { rung : int; survivors : int }
      (** rung [rung] ended; [survivors] arms were promoted out of it *)
  | Promoted of { rung : int; arm : int }
  | Eliminated of { rung : int; arm : int }
      (** per-arm outcome of a rung close, emitted best-rank first for
          promotions and worst-rank last for eliminations *)

type t
(** Immutable allocator state.  [next_batch]/[observe] return new states;
    old states stay valid (useful for replay in tests). *)

val create : ?policy:policy -> ?priors:float option array -> arms:int -> budget:int -> unit -> t
(** A fresh allocator over arm indices [0 .. arms-1].

    [priors.(a)], when present, is a pseudo-observation for arm [a] —
    typically a warm-start time recalled from a previous run's cache.
    It seeds the arm's running mean with weight 1 but counts as neither
    a pull nor budget spend, so the structural laws are unchanged; it
    only biases early rankings toward (or away from) the arm.

    @raise Invalid_argument if [arms < 1], [budget < arms] (every arm
    is owed one pull), [priors] has the wrong length or a non-finite
    entry, or the policy parameters are out of range. *)

val next_batch : t -> pull list * t
(** The next block of measurements the caller owes the allocator, and
    the state awaiting their scores.  The list is empty iff the
    allocator is finished.  Pulls are ordered by arm index, repeats
    consecutive — the order is part of the deterministic contract but
    carries no priority.

    @raise Invalid_argument if a previous batch is still unobserved. *)

val observe : t -> float list -> t
(** Feed back the scores of the outstanding batch, positionally (score
    [i] answers pull [i]; lower is better; faulted measurements should
    be scored [infinity], never NaN).  Closes the rung (SH) when its
    quota is met, recording promotion/elimination decisions.

    @raise Invalid_argument if no batch is outstanding, the length
    differs from the outstanding batch, or a score is NaN. *)

val finished : t -> bool
(** No pulls remain: the whole budget has been observed. *)

val spent : t -> int
(** Observed pulls so far (excludes the outstanding batch, excludes
    priors).  On a finished allocator, [spent t = budget]. *)

val best : t -> int option
(** The arm with the lowest mean score (ties to the lowest index),
    considering only arms with at least one real observation — [None]
    before any observation.  Priors break ties {e within} an arm's mean
    but an arm never wins on a prior alone. *)

val counts : t -> int array
(** Per-arm observed pull counts (priors excluded). *)

val means : t -> float array
(** Per-arm running mean of observations {e and} prior pseudo-scores;
    [nan] for an arm with neither. *)

val decisions : t -> decision list
(** All rung/promotion decisions so far, in chronological order.  A
    pure function of (policy, arms, budget, priors, scores) — two
    allocators fed identical inputs produce identical lists. *)
