(** Caliper-guided random search — CFR, the paper's headline algorithm
    (§2.2.4, Algorithm 1).

    CFR focuses the per-module search space before re-sampling: for each
    module j it keeps only the top-X pool CVs by collected per-loop time
    T[j][k] (line 11), then draws K per-module assignments from the pruned
    pools, links each into a real executable, measures end-to-end time,
    and returns the fastest (lines 12–23).

    Within the paper's unified framing, G is CFR with X = 1 and FR is CFR
    with X = K; CFR's X with 1 < X << K balances keeping per-loop winners
    against retaining enough diversity to dodge inter-module conflicts
    that the uniform-build measurements cannot reveal. *)

val default_top_x : int
(** 20 — the pruning width used throughout the experiments. *)

val run : ?top_x:int -> Context.t -> Collection.t -> Result.t
(** K assembled-variant evaluations from the pruned space. *)

val pruned_pools :
  ?top_x:int -> Collection.t -> (string * Ft_flags.Cv.t array) list
(** The per-module pruned spaces (module name → top-X CVs, best first);
    exposed for tests and the case-study analysis. *)

val traced_pruned_pools :
  ?top_x:int ->
  Context.t ->
  Collection.t ->
  (string * Ft_flags.Cv.t array) list
(** {!pruned_pools} bracketed in an Algorithm-1 [prune] phase span, with
    one {!Ft_obs.Event.Prune_kept} event per module recording the focused
    pool width.  Identical result; shared by CFR and CFR-adaptive. *)
