module Rng = Ft_util.Rng
module Engine = Ft_engine.Engine
module Cache = Ft_engine.Cache
module Exec = Ft_machine.Exec
module Trace = Ft_obs.Trace

let default_budget (ctx : Context.t) =
  max 2 (Array.length ctx.Context.pool / 4)

(* A quarter of the budget calls for a sharper prune than CFR's top-20:
   with only ~budget/2 arms, draws from wide pools rarely land on the
   rare good combinations, while the top handful of each module's
   ranking concentrates them (measured across the examples corpus: at
   K/4 this width matches or beats full-budget CFR; 20 does not). *)
let default_top_x = 4

(* Mirror one allocator decision into the trace.  Decisions are pure
   functions of deterministic scores, so these events are part of the
   logical byte-identity contract. *)
let emit_decision trace = function
  | Allocator.Rung_opened { rung; arms; pulls } ->
      Trace.rung_opened trace ~rung ~arms ~pulls
  | Allocator.Rung_closed { rung; survivors } ->
      Trace.rung_closed trace ~rung ~survivors
  | Allocator.Promoted { rung; arm } -> Trace.arm_promoted trace ~rung ~arm
  | Allocator.Eliminated { rung; arm } ->
      Trace.arm_eliminated trace ~rung ~arm

let run ?(top_x = default_top_x) ?(policy = Allocator.default_policy)
    ?budget ?warm (ctx : Context.t) (collection : Collection.t) =
  if Array.length ctx.Context.pool = 0 then
    invalid_arg "Adaptive_sh.run: empty pool";
  let outline = collection.Collection.outline in
  let pools = Cfr.traced_pruned_pools ~top_x ctx collection in
  let budget = match budget with Some b -> b | None -> default_budget ctx in
  (* Half the budget buys breadth (distinct arms), the other half buys
     depth (re-measurement of survivors).  Arm 0 is the greedy
     predicted-best combination; the rest re-sample the pruned pools
     exactly as CFR would. *)
  let arms = max 1 (min budget (max 2 (budget / 2))) in
  let rng = Context.stream ctx "adaptive-sh" in
  let assignments =
    Array.init arms (fun i ->
        if i = 0 then
          List.map (fun (m, _) -> (m, Collection.best_cv_for collection m)) pools
        else List.map (fun (m, pool) -> (m, Rng.choose rng pool)) pools)
  in
  let build a = Engine.Assigned { assignment = a; instrumented = false } in
  let priors =
    Option.map
      (fun cache ->
        Array.map
          (fun a ->
            let key =
              Engine.key ~toolchain:ctx.Context.toolchain
                ~program:ctx.Context.program ~input:ctx.Context.input (build a)
            in
            Option.map
              (fun s -> s.Exec.sum_total_s)
              (Cache.find cache key))
          assignments)
      warm
  in
  let alloc = ref (Allocator.create ~policy ?priors ~arms ~budget ()) in
  let emitted = ref 0 in
  let engine = ctx.Context.engine in
  let trace = Context.trace ctx in
  let flush_decisions () =
    let ds = Allocator.decisions !alloc in
    List.iteri (fun i d -> if i >= !emitted then emit_decision trace d) ds;
    emitted := List.length ds
  in
  let noise = Context.stream ctx "adaptive-sh:noise" in
  let times = ref [] in
  Trace.span trace Ft_obs.Event.Search (fun () ->
      Engine.timed engine "adaptive-sh" (fun () ->
          flush_decisions ();
          let rec loop () =
            let pulls, awaiting = Allocator.next_batch !alloc in
            match pulls with
            | [] -> ()
            | pulls ->
                let batch =
                  Array.of_list
                    (List.map
                       (fun { Allocator.arm; repeat } ->
                         {
                           Engine.build = build assignments.(arm);
                           rng =
                             Rng.of_label noise
                               (string_of_int arm ^ ":" ^ string_of_int repeat);
                         })
                       pulls)
                in
                let outcomes =
                  Engine.try_measure_batch engine
                    ~toolchain:ctx.Context.toolchain ~outline
                    ~program:ctx.Context.program ~input:ctx.Context.input batch
                in
                let scores =
                  Array.to_list
                    (Array.map
                       (function
                         | Engine.Ok m -> m.Exec.elapsed_s
                         | _ -> Float.infinity)
                       outcomes)
                in
                times := List.rev_append scores !times;
                alloc := Allocator.observe awaiting scores;
                flush_decisions ();
                loop ()
          in
          loop ()));
  let winner =
    match Allocator.best !alloc with
    | Some a when Float.is_finite (Allocator.means !alloc).(a) ->
        assignments.(a)
    | _ ->
        (* Every pull of every surviving arm faulted: report the O3
           do-nothing assignment, as the other searches do. *)
        Fr.o3_assignment outline
  in
  let best_seconds = Fr.evaluate_assignment ctx outline winner in
  Result.make ~algorithm:"CFR-SH" ~configuration:(Result.Per_module winner)
    ~baseline_s:ctx.Context.baseline_s
    (* The confirmation measurement of the winner is budget spend too. *)
    ~evaluations:(Allocator.spent !alloc + 1)
    ~trace:(Result.best_so_far (List.rev !times))
    ~best_seconds
