module Rng = Ft_util.Rng

let default_top_x = 20

let pruned_pools ?(top_x = default_top_x) (collection : Collection.t) =
  Array.to_list collection.Collection.modules
  |> List.map (fun m -> (m, Collection.top_k_for collection m top_x))

let traced_pruned_pools ?top_x (ctx : Context.t) collection =
  let trace = Context.trace ctx in
  Ft_obs.Trace.span trace Ft_obs.Event.Prune (fun () ->
      let pools = pruned_pools ?top_x collection in
      List.iter
        (fun (m, pool) ->
          Ft_obs.Trace.prune_kept trace ~module_name:m
            ~kept:(Array.length pool))
        pools;
      pools)

let run ?(top_x = default_top_x) (ctx : Context.t)
    (collection : Collection.t) =
  let pools = traced_pruned_pools ~top_x ctx collection in
  (* Line 15: re-sample each module's CV inside its pruned space. *)
  Fr.search_assignments ctx collection.Collection.outline ~algorithm:"CFR"
    ~label:"cfr" ~draw:(fun rng ->
      List.map (fun (m, pool) -> (m, Rng.choose rng pool)) pools)
