module Rng = Ft_util.Rng
module Engine = Ft_engine.Engine
module Exec = Ft_machine.Exec

let default_patience = 150
let default_min_gain = 0.002

let run ?(top_x = Cfr.default_top_x) ?(patience = default_patience)
    ?(min_gain = default_min_gain) (ctx : Context.t)
    (collection : Collection.t) =
  let rng = Context.stream ctx "cfr-adaptive" in
  let pools = Cfr.traced_pruned_pools ~top_x ctx collection in
  let budget = Array.length ctx.Context.pool in
  let best = ref None in
  let times = ref [] in
  let stale = ref 0 in
  let spent = ref 0 in
  Ft_obs.Trace.span (Context.trace ctx) Ft_obs.Event.Search (fun () ->
  while !spent < budget && !stale < patience do
    incr spent;
    let assignment =
      List.map (fun (m, pool) -> (m, Rng.choose rng pool)) pools
    in
    let t =
      match
        Fr.try_measure_assignment ctx collection.Collection.outline ~rng
          assignment
      with
      | Engine.Ok m -> m.Exec.elapsed_s
      | _ -> Float.infinity
    in
    times := t :: !times;
    (match !best with
    | Some (best_t, _) when t < best_t *. (1.0 -. min_gain) ->
        best := Some (t, assignment);
        stale := 0
    | Some (best_t, _) ->
        if t < best_t then best := Some (t, assignment);
        incr stale
    | None ->
        (* A faulted evaluation cannot seed the incumbent: patience must
           start counting only once there is something to improve on. *)
        if Float.is_finite t then best := Some (t, assignment))
  done);
  let best_seconds, configuration =
    match !best with
    | Some (_, a) ->
        ( Fr.evaluate_assignment ctx collection.Collection.outline a,
          Result.Per_module a )
    | None ->
        if budget = 0 then invalid_arg "Adaptive.run: empty pool"
        else
          (* Every attempt faulted: report the O3 do-nothing assignment. *)
          let a = Fr.o3_assignment collection.Collection.outline in
          ( Fr.evaluate_assignment ctx collection.Collection.outline a,
            Result.Per_module a )
  in
  (* +1: the final [evaluate_assignment] confirmation of the winner is
     budget spend like any other measurement (it used to go uncounted,
     under-reporting by one). *)
  Result.make ~algorithm:"CFR-adaptive" ~configuration
    ~baseline_s:ctx.Context.baseline_s ~evaluations:(!spent + 1)
    ~trace:(Result.best_so_far (List.rev !times))
    ~best_seconds
