type configuration =
  | Whole_program of Ft_flags.Cv.t
  | Per_module of (string * Ft_flags.Cv.t) list

type t = {
  algorithm : string;
  configuration : configuration;
  best_seconds : float;
  speedup : float;
  evaluations : int;
  trace : float list;
}

let make ~algorithm ~configuration ~baseline_s ~evaluations ~trace
    ~best_seconds =
  {
    algorithm;
    configuration;
    best_seconds;
    speedup = baseline_s /. best_seconds;
    evaluations;
    trace;
  }

(* The one canonical rendering of a search outcome: `funcy tune` prints
   it, and the tuning server ships the same bytes to every client of a
   coalesced search — byte-identity between a served result and a solo
   run is part of the serve contract, so there must be exactly one
   formatter. *)
let render r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s: speedup %.3f over O3 (%s) after %d evaluations\n"
    r.algorithm r.speedup
    (Ft_util.Table.fmt_pct r.speedup)
    r.evaluations;
  (match r.configuration with
  | Whole_program cv ->
      Printf.bprintf buf "  winning CV: %s\n" (Ft_flags.Cv.render cv)
  | Per_module assignment ->
      Buffer.add_string buf "  winning per-module assignment:\n";
      List.iter
        (fun (m, cv) ->
          Printf.bprintf buf "    %-20s %s\n" m (Ft_flags.Cv.render cv))
        assignment);
  Buffer.contents buf

let best_so_far series =
  let folder (best, acc) x =
    let best' = match best with None -> x | Some b -> Float.min b x in
    (Some best', best' :: acc)
  in
  let _, reversed = List.fold_left folder (None, []) series in
  List.rev reversed

let evaluations_to_best t =
  match t.trace with
  | [] -> 0
  | trace ->
      let final = List.fold_left Float.min infinity trace in
      let threshold = final *. 1.005 in
      let rec find i = function
        | [] -> i (* unreachable for non-empty traces *)
        | x :: rest -> if x <= threshold then i else find (i + 1) rest
      in
      find 1 trace
