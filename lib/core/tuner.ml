module Outline = Ft_outline.Outline
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec

type session = {
  ctx : Context.t;
  outline : Outline.t;
  collection : Collection.t Lazy.t;
}

let make_session ?pool_size ?threshold ?jobs ?backend ?engine ~platform
    ~program ~input ~seed () =
  let toolchain = Toolchain.make platform in
  let ctx =
    Context.make ?pool_size ?jobs ?backend ?engine ~toolchain ~program ~input
      ~seed ()
  in
  let outline =
    Ft_obs.Trace.span (Context.trace ctx) Ft_obs.Event.Profile (fun () ->
        Outline.outline ~toolchain ~program ~input ?threshold
          ~rng:(Context.stream ctx "profile")
          ())
  in
  { ctx; outline; collection = lazy (Collection.collect ctx outline) }

type report = {
  random : Result.t;
  fr : Result.t;
  greedy : Greedy.t;
  cfr : Result.t;
}

let run_all ?top_x session =
  let collection = Lazy.force session.collection in
  {
    random = Random_search.run session.ctx;
    fr = Fr.run session.ctx session.outline;
    greedy = Greedy.run session.ctx collection;
    cfr = Cfr.run ?top_x session.ctx collection;
  }

let run_cfr ?top_x session =
  Cfr.run ?top_x session.ctx (Lazy.force session.collection)

let build_configuration session (configuration : Result.configuration) =
  match configuration with
  | Result.Whole_program cv ->
      Toolchain.compile_uniform session.ctx.Context.toolchain ~cv
        session.ctx.Context.program
  | Result.Per_module assignment ->
      Outline.compile ~toolchain:session.ctx.Context.toolchain session.outline
        ~assignment:(fun name -> List.assoc name assignment)
        ()

let evaluate_configuration session ~input ~rng configuration =
  let binary = build_configuration session configuration in
  let m =
    Exec.measure
      ~arch:session.ctx.Context.toolchain.Toolchain.arch
      ~input ~rng binary
  in
  m.Exec.elapsed_s

let o3_seconds session ~input =
  Ft_caliper.Profiler.baseline_seconds
    ~toolchain:session.ctx.Context.toolchain
    ~program:session.ctx.Context.program ~input
