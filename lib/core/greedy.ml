module Engine = Ft_engine.Engine

type t = {
  realized : Result.t;
  independent_seconds : float;
  independent_speedup : float;
}

let run (ctx : Context.t) (collection : Collection.t) =
  Ft_obs.Trace.span (Context.trace ctx) Ft_obs.Event.Search @@ fun () ->
  let modules = Array.to_list collection.Collection.modules in
  let outline = collection.Collection.outline in
  let combined =
    List.map (fun m -> (m, Collection.best_cv_for collection m)) modules
  in
  (* The per-module winners each survived collection, but their
     combination is a new binary the fault model has never ruled on; under
     an armed fault model, verify it before reporting it.  (Fault-free
     engines skip the probe entirely, keeping the historical behaviour —
     and RNG consumption — bit-identical.) *)
  let combination_faulted =
    match (Engine.policy (Context.engine ctx)).Engine.faults with
    | None -> false
    | Some _ -> (
        match
          Fr.try_measure_assignment ctx outline
            ~rng:(Context.stream ctx "greedy:verify")
            combined
        with
        | Engine.Ok _ -> false
        | _ -> true)
  in
  let assignment =
    if combination_faulted then Fr.o3_assignment outline else combined
  in
  let seconds = Fr.evaluate_assignment ctx outline assignment in
  let realized =
    Result.make ~algorithm:"G.realized"
      ~configuration:(Result.Per_module assignment)
      ~baseline_s:ctx.Context.baseline_s ~evaluations:1 ~trace:[ seconds ]
      ~best_seconds:seconds
  in
  let independent_seconds =
    Array.fold_left
      (fun acc row -> acc +. row.(Ft_util.Stats.argmin row))
      0.0 collection.Collection.times
  in
  {
    realized;
    independent_seconds;
    independent_speedup = ctx.Context.baseline_s /. independent_seconds;
  }
