module Outline = Ft_outline.Outline
module Exec = Ft_machine.Exec
module Rng = Ft_util.Rng
module Engine = Ft_engine.Engine

let measure_assignment (ctx : Context.t) outline ~rng assignment =
  let m =
    Engine.measure_one ctx.Context.engine ~toolchain:ctx.Context.toolchain
      ~outline ~program:ctx.Context.program ~input:ctx.Context.input
      { Engine.build = Engine.Assigned { assignment; instrumented = false }; rng }
  in
  m.Exec.elapsed_s

let try_measure_assignment (ctx : Context.t) outline ~rng assignment =
  Engine.try_measure_one ctx.Context.engine ~toolchain:ctx.Context.toolchain
    ~outline ~program:ctx.Context.program ~input:ctx.Context.input
    { Engine.build = Engine.Assigned { assignment; instrumented = false }; rng }

let evaluate_assignment (ctx : Context.t) outline assignment =
  Engine.evaluate ctx.Context.engine ~toolchain:ctx.Context.toolchain ~outline
    ~program:ctx.Context.program ~input:ctx.Context.input
    (Engine.Assigned { assignment; instrumented = false })

let o3_assignment outline =
  List.map
    (fun m -> (m, Ft_flags.Cv.o3))
    (Outline.module_names outline)

(* Shared skeleton of FR and CFR: sample K per-module assignments from
   [draw] (sequentially, on the search's own stream — sampling is cheap),
   measure them as a batch of independent jobs, keep the earliest best.
   Faulted assignments score infinity, so they can never win; if every
   single assignment faults, the search falls back to all-modules-O3 —
   the configuration the user already had. *)
let search_assignments (ctx : Context.t) outline ~algorithm ~label ~draw =
  let rng = Context.stream ctx label in
  let noise = Context.stream ctx (label ^ ":noise") in
  let k = Array.length ctx.Context.pool in
  let assignments = Array.init k (fun _ -> draw rng) in
  let batch =
    Array.mapi
      (fun i assignment ->
        {
          Engine.build = Engine.Assigned { assignment; instrumented = false };
          rng = Rng.of_label noise (string_of_int i);
        })
      assignments
  in
  let engine = ctx.Context.engine in
  let outcomes =
    Ft_obs.Trace.span (Engine.trace engine) Ft_obs.Event.Search (fun () ->
        Engine.timed engine label (fun () ->
            Engine.try_measure_batch engine ~toolchain:ctx.Context.toolchain
              ~outline ~program:ctx.Context.program ~input:ctx.Context.input
              batch))
  in
  let times =
    Array.map
      (function Engine.Ok m -> m.Exec.elapsed_s | _ -> Float.infinity)
      outcomes
  in
  if k = 0 then invalid_arg (algorithm ^ ": empty pool");
  (* Stats.argmin, not a bare [<] scan: same first-on-ties winner, but a
     NaN sneaking into the times (it cannot, today — faults score
     infinity) fails loudly instead of silently handing index 0 the win. *)
  let best = Ft_util.Stats.argmin times in
  let winner =
    if Float.is_finite times.(best) then assignments.(best)
    else o3_assignment outline
  in
  let configuration = Result.Per_module winner in
  Result.make ~algorithm ~configuration ~baseline_s:ctx.Context.baseline_s
    ~evaluations:k
    ~trace:(Result.best_so_far (Array.to_list times))
    ~best_seconds:(evaluate_assignment ctx outline winner)

let run (ctx : Context.t) outline =
  let modules = Outline.module_names outline in
  search_assignments ctx outline ~algorithm:"FR" ~label:"fr" ~draw:(fun rng ->
      List.map (fun m -> (m, Rng.choose rng ctx.Context.pool)) modules)
