type policy =
  | Successive_halving of { eta : int }
  | Ucb of { exploration : float; batch : int }

let default_policy = Successive_halving { eta = 2 }

type pull = { arm : int; repeat : int }

type decision =
  | Rung_opened of { rung : int; arms : int; pulls : int }
  | Rung_closed of { rung : int; survivors : int }
  | Promoted of { rung : int; arm : int }
  | Eliminated of { rung : int; arm : int }

(* The SH rung schedule, fixed at [create]: sizes.(i) survivors each
   pulled quotas.(i) times, plus [extra] single bonus pulls on the last
   rung (handed to its first survivors in arm order) so that the ladder
   spends exactly [budget] on completion. *)
type sh_plan = { sizes : int array; quotas : int array; extra : int }

type mode =
  | Sh of { plan : sh_plan; rung : int; survivors : int list }
  | Ucb_mode

type t = {
  policy : policy;
  arms : int;
  budget : int;
  counts : int array;  (* observed pulls per arm *)
  sums : float array;  (* observations + prior pseudo-score *)
  weights : int array;  (* counts + (1 if the arm has a prior) *)
  spent : int;
  pending : pull list option;
  decisions_rev : decision list;
  mode : mode;
}

(* Survivor ladder n, ceil(n/eta), ... down to (and including) 1. *)
let ladder ~eta n =
  let rec go s acc =
    if s <= 1 then List.rev (1 :: acc)
    else go ((s + eta - 1) / eta) (s :: acc)
  in
  go n []

let sh_plan ~eta ~arms ~budget =
  let rec prefix acc sum = function
    | s :: rest when sum + s <= budget -> prefix (s :: acc) (sum + s) rest
    | _ -> (List.rev acc, sum)
  in
  (* arms <= budget, so the prefix holds at least rung 0. *)
  let sizes, base = prefix [] 0 (ladder ~eta arms) in
  let p = List.length sizes in
  let sizes = Array.of_list sizes in
  let quotas = Array.make p 1 in
  let committed = ref base in
  let share = budget / p in
  for i = 0 to p - 2 do
    let s = sizes.(i) in
    let want = max 1 (share / s) in
    (* Never commit pulls the remaining rungs' one-each minimum needs:
       [committed] already reserves that minimum, so capping the extra
       by what is left of [budget] preserves it. *)
    let extra = min (want - 1) ((budget - !committed) / s) in
    quotas.(i) <- 1 + extra;
    committed := !committed + (extra * s)
  done;
  let last = sizes.(p - 1) in
  (* [committed] counts one pull for the last rung; everything else of
     the budget is the last rung's to absorb — at least [last]. *)
  let rem = budget - !committed + last in
  quotas.(p - 1) <- rem / last;
  { sizes; quotas; extra = rem mod last }

let create ?(policy = default_policy) ?priors ~arms ~budget () =
  if arms < 1 then invalid_arg "Allocator.create: arms < 1";
  if budget < arms then
    invalid_arg "Allocator.create: budget < arms (every arm is owed one pull)";
  (match policy with
  | Successive_halving { eta } ->
      if eta < 2 then invalid_arg "Allocator.create: eta < 2"
  | Ucb { exploration; batch } ->
      if batch < 1 then invalid_arg "Allocator.create: batch < 1";
      if (not (Float.is_finite exploration)) || exploration < 0.0 then
        invalid_arg "Allocator.create: exploration must be finite and >= 0");
  let sums = Array.make arms 0.0 in
  let weights = Array.make arms 0 in
  (match priors with
  | None -> ()
  | Some p ->
      if Array.length p <> arms then
        invalid_arg "Allocator.create: priors length <> arms";
      Array.iteri
        (fun a -> function
          | None -> ()
          | Some s ->
              if not (Float.is_finite s) then
                invalid_arg "Allocator.create: non-finite prior";
              sums.(a) <- s;
              weights.(a) <- 1)
        p);
  let mode, decisions_rev =
    match policy with
    | Ucb _ -> (Ucb_mode, [])
    | Successive_halving { eta } ->
        let plan = sh_plan ~eta ~arms ~budget in
        ( Sh { plan; rung = 0; survivors = List.init arms Fun.id },
          [
            Rung_opened
              {
                rung = 0;
                arms;
                pulls =
                  (plan.quotas.(0) * plan.sizes.(0))
                  + (if Array.length plan.sizes = 1 then plan.extra else 0);
              };
          ] )
  in
  {
    policy;
    arms;
    budget;
    counts = Array.make arms 0;
    sums;
    weights;
    spent = 0;
    pending = None;
    decisions_rev;
    mode;
  }

let finished t = t.spent >= t.budget
let spent t = t.spent
let counts t = Array.copy t.counts

let mean t a = if t.weights.(a) = 0 then Float.nan else t.sums.(a) /. float_of_int t.weights.(a)

let means t = Array.init t.arms (mean t)

let best t =
  let best = ref None in
  for a = 0 to t.arms - 1 do
    if t.counts.(a) > 0 then
      let m = mean t a in
      match !best with
      | Some (bm, _) when Float.compare m bm >= 0 -> ()
      | _ -> best := Some (m, a)
  done;
  Option.map snd !best

let decisions t = List.rev t.decisions_rev

(* -- batch construction ------------------------------------------------- *)

let sh_batch t plan rung survivors =
  let last = rung = Array.length plan.sizes - 1 in
  let quota = plan.quotas.(rung) in
  List.concat
    (List.mapi
       (fun pos a ->
         let n = quota + if last && pos < plan.extra then 1 else 0 in
         List.init n (fun j -> { arm = a; repeat = t.counts.(a) + j }))
       survivors)

let ucb_batch t ~exploration ~batch =
  let m = min batch (t.budget - t.spent) in
  let pc = Array.copy t.counts in
  let total = ref (Array.fold_left ( + ) 0 pc) in
  let pick () =
    (* Fill first: an arm never pulled (nor picked earlier in this very
       batch) beats any confidence bound. *)
    let unpulled = ref (-1) in
    for a = t.arms - 1 downto 0 do
      if pc.(a) = 0 then unpulled := a
    done;
    if !unpulled >= 0 then !unpulled
    else begin
      (* Lower confidence bound (minimization): mean - c*sqrt(2 ln T / n),
         with provisional counts so a batch spreads instead of stacking.
         Arms with no score yet (in-flight fill pulls) are skipped; if
         no arm has a score, fall back to the least-pulled arm. *)
      let best = ref None in
      for a = 0 to t.arms - 1 do
        if t.weights.(a) > 0 then begin
          let radius =
            exploration
            *. sqrt (2.0 *. log (float_of_int (max 1 !total))
                     /. float_of_int pc.(a))
          in
          let score = mean t a -. radius in
          match !best with
          | Some (bs, _) when Float.compare score bs >= 0 -> ()
          | _ -> best := Some (score, a)
        end
      done;
      match !best with
      | Some (_, a) -> a
      | None ->
          let least = ref 0 in
          for a = 1 to t.arms - 1 do
            if pc.(a) < pc.(!least) then least := a
          done;
          !least
    end
  in
  List.init m (fun _ ->
      let a = pick () in
      let p = { arm = a; repeat = pc.(a) } in
      pc.(a) <- pc.(a) + 1;
      incr total;
      p)

let next_batch t =
  if t.pending <> None then
    invalid_arg "Allocator.next_batch: previous batch not yet observed";
  if finished t then ([], t)
  else
    let pulls =
      match t.mode with
      | Sh { plan; rung; survivors } -> sh_batch t plan rung survivors
      | Ucb_mode -> (
          match t.policy with
          | Ucb { exploration; batch } -> ucb_batch t ~exploration ~batch
          | Successive_halving _ -> assert false)
    in
    (pulls, { t with pending = Some pulls })

(* -- observation and rung close ----------------------------------------- *)

(* Rank survivors best-first: mean ascending, arm index breaking ties.
   Total (Float.compare handles infinities), so promotion is monotone:
   any arm strictly better than a promoted arm outranks it and is
   promoted too. *)
let rank t survivors =
  List.stable_sort
    (fun a b ->
      let c = Float.compare (mean t a) (mean t b) in
      if c <> 0 then c else compare a b)
    survivors

let close_rung t plan rung survivors =
  let p = Array.length plan.sizes in
  if rung = p - 1 then
    (* Ladder exhausted: by construction the budget is exactly spent. *)
    { t with
      decisions_rev =
        Rung_closed { rung; survivors = List.length survivors }
        :: t.decisions_rev;
    }
  else begin
    let keep = plan.sizes.(rung + 1) in
    let ranked = rank t survivors in
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | rest when i = keep -> (List.rev acc, rest)
      | a :: rest -> split (i + 1) (a :: acc) rest
    in
    let promoted, eliminated = split 0 [] ranked in
    let decisions_rev =
      List.fold_left
        (fun acc a -> Promoted { rung; arm = a } :: acc)
        t.decisions_rev promoted
    in
    let decisions_rev =
      List.fold_left
        (fun acc a -> Eliminated { rung; arm = a } :: acc)
        decisions_rev eliminated
    in
    let survivors = List.sort compare promoted in
    let rung = rung + 1 in
    let pulls =
      (plan.quotas.(rung) * plan.sizes.(rung))
      + if rung = p - 1 then plan.extra else 0
    in
    let decisions_rev =
      Rung_opened { rung; arms = List.length survivors; pulls }
      :: Rung_closed { rung = rung - 1; survivors = List.length survivors }
      :: decisions_rev
    in
    { t with
      decisions_rev;
      mode = Sh { plan; rung; survivors };
    }
  end

let observe t scores =
  match t.pending with
  | None -> invalid_arg "Allocator.observe: no batch outstanding"
  | Some pulls ->
      if List.length scores <> List.length pulls then
        invalid_arg "Allocator.observe: score count differs from batch";
      List.iter
        (fun s ->
          if Float.is_nan s then invalid_arg "Allocator.observe: NaN score")
        scores;
      let counts = Array.copy t.counts in
      let sums = Array.copy t.sums in
      let weights = Array.copy t.weights in
      List.iter2
        (fun { arm; repeat = _ } s ->
          counts.(arm) <- counts.(arm) + 1;
          sums.(arm) <- sums.(arm) +. s;
          weights.(arm) <- weights.(arm) + 1)
        pulls scores;
      let t =
        {
          t with
          counts;
          sums;
          weights;
          spent = t.spent + List.length pulls;
          pending = None;
        }
      in
      (match t.mode with
      | Ucb_mode -> t
      | Sh { plan; rung; survivors } ->
          (* A batch is a whole rung, so every observation closes one. *)
          close_rung t plan rung survivors)
