(** FuncyTuner's per-loop runtime collection framework (§2.2.2, Fig. 4).

    The outlined program is compiled K times, each time with {e one} pool
    CV applied to {e every} module (uniform builds — the linker never
    perturbs these), instrumented with Caliper, and executed.  The result
    is the matrix T[j][k]: the runtime of module j under pool CV k, where
    module 0 is the residual module whose time is derived by subtracting
    the hot loops' aggregate from the end-to-end time (§3.3).

    This matrix is the shared substrate of greedy combination (§2.2.3) and
    Caliper-guided random search (§2.2.4). *)

type t = {
  outline : Ft_outline.Outline.t;
  pool : Ft_flags.Cv.t array;  (** the pool the columns index into *)
  modules : string array;  (** row names: residual module first, then the
                               hot loops in outline order *)
  times : float array array;  (** [times.(j).(k)] = T[j][k] in seconds *)
  totals : float array;  (** end-to-end time of uniform build k *)
  valid : bool array;
      (** [valid.(k)] is false when pool CV k faulted during collection
          (failed build, crash, miscompile or timeout); its column is
          [infinity] everywhere so selection helpers ignore it *)
}

val collect : Context.t -> Ft_outline.Outline.t -> t
(** K instrumented runs (one per pool CV).  Under an armed fault model,
    faulted columns are marked invalid instead of aborting the
    collection. *)

val valid_count : t -> int
(** Number of pool CVs that survived collection. *)

val module_index : t -> string -> int option
(** Row of a module name. *)

val best_cv_for : t -> string -> Ft_flags.Cv.t
(** The pool CV minimizing a module's collected time — greedy's per-module
    pick.  @raise Invalid_argument for unknown modules. *)

val top_k_for : t -> string -> int -> Ft_flags.Cv.t array
(** The X pool CVs with the smallest collected times for a module, best
    first — CFR's pruned per-loop space (Algorithm 1, line 11). *)
