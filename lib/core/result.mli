(** Search outcomes, shared by all algorithms.

    An outcome records the winning configuration (a whole-program CV or a
    per-module assignment), its measured runtime, the speedup over T_O3,
    and the best-so-far trace — the paper's §4.3 remark that "CFR finds the
    best code variant in tens or several hundreds of evaluations" is
    checked against that trace in the ablation experiments. *)

type configuration =
  | Whole_program of Ft_flags.Cv.t
      (** traditional model: one CV for every source file *)
  | Per_module of (string * Ft_flags.Cv.t) list
      (** per-module assignment: module name → CV (the residual module
          under {!Ft_outline.Outline.residual_module}) *)

type t = {
  algorithm : string;  (** e.g. ["Random"], ["CFR"] *)
  configuration : configuration;
  best_seconds : float;  (** measured runtime of the winning variant *)
  speedup : float;  (** T_O3 / best_seconds *)
  evaluations : int;  (** timed program runs consumed by the search *)
  trace : float list;
      (** best-so-far seconds after each evaluation, oldest first; length =
          [evaluations] for iterative searches, shorter for one-shot
          constructions *)
}

val make :
  algorithm:string ->
  configuration:configuration ->
  baseline_s:float ->
  evaluations:int ->
  trace:float list ->
  best_seconds:float ->
  t

val render : t -> string
(** The canonical human-readable rendering (headline line plus winning
    configuration), newline-terminated.  [funcy tune] prints exactly
    this, and the tuning server returns exactly this to clients, so a
    served result is byte-identical to a solo run's output. *)

val best_so_far : float list -> float list
(** Prefix-minimum of a measurement series — helper for traces. *)

val evaluations_to_best : t -> int
(** Index (1-based) of the first evaluation whose best-so-far time is
    within 0.5 % of the final best — the paper's convergence metric. *)
