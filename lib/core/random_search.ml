module Exec = Ft_machine.Exec
module Engine = Ft_engine.Engine
module Rng = Ft_util.Rng

let run (ctx : Context.t) =
  let rng = Context.stream ctx "random" in
  let batch =
    Array.mapi
      (fun i cv ->
        {
          Engine.build = Engine.Uniform { cv; instrumented = false };
          rng = Rng.of_label rng (string_of_int i);
        })
      ctx.Context.pool
  in
  let engine = ctx.Context.engine in
  let outcomes =
    Ft_obs.Trace.span (Engine.trace engine) Ft_obs.Event.Search (fun () ->
        Engine.timed engine "random" (fun () ->
            Engine.try_measure_batch engine ~toolchain:ctx.Context.toolchain
              ~program:ctx.Context.program ~input:ctx.Context.input batch))
  in
  let times =
    Array.map
      (function Engine.Ok m -> m.Exec.elapsed_s | _ -> Float.infinity)
      outcomes
  in
  let best = Ft_util.Stats.argmin times in
  (* Every pool CV faulting leaves nothing to pick: fall back to O3, the
     build the user already had. *)
  let winner =
    if Float.is_finite times.(best) then ctx.Context.pool.(best)
    else Ft_flags.Cv.o3
  in
  Result.make ~algorithm:"Random"
    ~configuration:(Result.Whole_program winner)
    ~baseline_s:ctx.Context.baseline_s
    ~evaluations:(Array.length times)
    ~trace:(Result.best_so_far (Array.to_list times))
    ~best_seconds:(Context.evaluate_uniform ctx winner)
