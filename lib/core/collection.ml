module Outline = Ft_outline.Outline
module Exec = Ft_machine.Exec
module Engine = Ft_engine.Engine
module Rng = Ft_util.Rng

type t = {
  outline : Outline.t;
  pool : Ft_flags.Cv.t array;
  modules : string array;
  times : float array array;
  totals : float array;
  valid : bool array;
}

let collect (ctx : Context.t) (outline : Outline.t) =
  let rng = Context.stream ctx "collection" in
  let hot = outline.Outline.hot in
  let module_names = Outline.module_names outline in
  let modules = Array.of_list module_names in
  let k = Array.length ctx.Context.pool in
  let times = Array.make_matrix (Array.length modules) k 0.0 in
  let totals = Array.make k 0.0 in
  let valid = Array.make k true in
  (* Each of the K uniform instrumented builds is an independent job with
     its own noise stream, so the collected matrix does not depend on
     worker count or completion order. *)
  let batch =
    Array.mapi
      (fun i cv ->
        {
          Engine.build =
            Engine.Assigned
              {
                assignment = List.map (fun m -> (m, cv)) module_names;
                instrumented = true;
              };
          rng = Rng.of_label rng (string_of_int i);
        })
      ctx.Context.pool
  in
  let engine = ctx.Context.engine in
  let outcomes =
    Ft_obs.Trace.span (Engine.trace engine) Ft_obs.Event.Collect (fun () ->
        Engine.timed engine "collect" (fun () ->
            Engine.try_measure_batch engine ~toolchain:ctx.Context.toolchain
              ~outline ~program:ctx.Context.program ~input:ctx.Context.input
              batch))
  in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Engine.Ok m ->
          totals.(i) <- m.Exec.elapsed_s;
          (* Only outlined loops carry Caliper annotations; everything else
             is part of the residual, derived by subtraction as in the
             paper. *)
          let hot_sum = ref 0.0 in
          List.iteri
            (fun j name ->
              let s = List.assoc name m.Exec.region_samples in
              times.(j + 1).(i) <- s;
              hot_sum := !hot_sum +. s)
            hot;
          times.(0).(i) <- Float.max 0.0 (m.Exec.elapsed_s -. !hot_sum)
      | _ ->
          (* A faulted collection column contributes nothing: infinite
             times keep the matrix shape (indices still line up with the
             pool) while argmin/top-k sort the column dead last. *)
          valid.(i) <- false;
          totals.(i) <- Float.infinity;
          Array.iter (fun row -> row.(i) <- Float.infinity) times)
    outcomes;
  { outline; pool = ctx.Context.pool; modules; times; totals; valid }

let valid_count t =
  Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 t.valid

let module_index t name =
  let found = ref None in
  Array.iteri (fun j m -> if m = name then found := Some j) t.modules;
  !found

let row t name =
  match module_index t name with
  | Some j -> t.times.(j)
  | None -> invalid_arg ("Collection: unknown module " ^ name)

let best_cv_for t name = t.pool.(Ft_util.Stats.argmin (row t name))

let top_k_for t name x =
  let indices = Ft_util.Stats.top_k_indices x (row t name) in
  Array.of_list (List.map (fun i -> t.pool.(i)) indices)
