(** Per-function random search (§2.2.2, Fig. 3).

    The program is outlined, then 1000 times a CV is drawn {e with
    replacement} from the pre-sampled pool for {e each} module, the
    modules are compiled and linked, and the assembled variant is timed.
    FR exists to test whether per-loop granularity {e alone} — without
    per-loop runtime information — suffices; the paper finds it does not
    (high variance, small gains). *)

val run : Context.t -> Ft_outline.Outline.t -> Result.t
(** K assembled-variant evaluations. *)

val measure_assignment :
  Context.t ->
  Ft_outline.Outline.t ->
  rng:Ft_util.Rng.t ->
  (string * Ft_flags.Cv.t) list ->
  float
(** Compile modules under an explicit module→CV assignment, link, run once
    on the session input; returns noisy seconds.  Shared by FR, greedy
    combination and CFR (they differ only in how assignments are chosen). *)

val try_measure_assignment :
  Context.t ->
  Ft_outline.Outline.t ->
  rng:Ft_util.Rng.t ->
  (string * Ft_flags.Cv.t) list ->
  Ft_engine.Engine.job_outcome
(** Outcome-typed {!measure_assignment} for fault-aware callers. *)

val o3_assignment :
  Ft_outline.Outline.t -> (string * Ft_flags.Cv.t) list
(** Every module at O3 — the do-nothing configuration searches fall back
    to when every candidate they tried faulted. *)

val evaluate_assignment :
  Context.t ->
  Ft_outline.Outline.t ->
  (string * Ft_flags.Cv.t) list ->
  float
(** Noise-free runtime of an assembled assignment (winner reporting).
    Served from the session engine's cache when the binary has been
    evaluated before. *)

val search_assignments :
  Context.t ->
  Ft_outline.Outline.t ->
  algorithm:string ->
  label:string ->
  draw:(Ft_util.Rng.t -> (string * Ft_flags.Cv.t) list) ->
  Result.t
(** The sample-K-assignments-measure-batch skeleton shared by FR and CFR:
    draws K assignments sequentially from a [label]-derived stream, then
    measures them as one engine batch (each job on its own noise stream)
    and keeps the earliest best.  Faulted assignments score infinity and
    can never win; if {e all} K fault, the winner degrades to
    {!o3_assignment}.  @raise Invalid_argument on an empty pool. *)
