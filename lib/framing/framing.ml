(* Length-prefixed framing: 8-byte big-endian payload length, then the
   payload.  See the .mli for the clean-EOF / torn-frame distinction
   this format exists to make. *)

type error =
  | Eof
  | Torn of { context : string; got : int; expected : int }
  | Oversized of { claimed : int; limit : int }
  | Garbled of string

let error_to_string = function
  | Eof -> "eof"
  | Torn { context; got; expected } when expected < 0 ->
      Printf.sprintf "torn frame: stream ended holding %d mid-%s bytes" got
        context
  | Torn { context; got; expected } ->
      Printf.sprintf "torn frame: short %s (%d/%d bytes)" context got expected
  | Oversized { claimed; limit } ->
      Printf.sprintf "oversized frame: %d bytes claimed (limit %d)" claimed
        limit
  | Garbled reason -> "garbled frame: " ^ reason

(* A frame larger than this is a protocol error, not a payload: it means
   the length prefix was read out of phase (or the stream is garbage),
   and trying to allocate it would take the reader down with the peer. *)
let default_max_bytes = 256 * 1024 * 1024

let header_bytes = 8

let rec write_all fd buf ofs len =
  if len > 0 then
    match Unix.write fd buf ofs len with
    | n -> write_all fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf ofs len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* The fd was left nonblocking — the mode [Decoder.pump] already
           expects on the read side.  A full kernel buffer is not an
           error for a framed writer: wait for writability and resume
           mid-frame, otherwise a slow peer kills the caller. *)
        (match Unix.select [] [ fd ] [] (-1.0) with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        write_all fd buf ofs len

let write_bytes fd payload =
  let len = Bytes.length payload in
  let header = Bytes.create header_bytes in
  Bytes.set_int64_be header 0 (Int64.of_int len);
  write_all fd header 0 header_bytes;
  write_all fd payload 0 len

(* Read exactly [len] bytes, reporting how many arrived before EOF. *)
let really_read fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs >= len then Ok buf
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> Error ofs
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error ofs
  in
  go 0

let check_length ~limit len =
  if len < 0 then
    Error (Garbled (Printf.sprintf "negative frame length %d" len))
  else if len > limit then Error (Oversized { claimed = len; limit })
  else Ok len

let read_bytes ?(max_bytes = default_max_bytes) fd =
  match really_read fd header_bytes with
  | Error 0 -> Error Eof
  | Error k -> Error (Torn { context = "header"; got = k; expected = header_bytes })
  | Ok header -> (
      match
        check_length ~limit:max_bytes
          (Int64.to_int (Bytes.get_int64_be header 0))
      with
      | Error _ as e -> e
      | Ok len -> (
          match really_read fd len with
          | Error k -> Error (Torn { context = "payload"; got = k; expected = len })
          | Ok payload -> Ok payload))

let write_value fd v = write_bytes fd (Marshal.to_bytes v [])

module Writer = struct
  type t = { fd : Unix.file_descr; mutable scratch : Bytes.t }

  let create ?(initial_bytes = 64 * 1024) fd =
    { fd; scratch = Bytes.create (max initial_bytes (header_bytes + 64)) }

  let fd t = t.fd

  (* [Marshal.to_buffer] raises [Failure] when the value does not fit;
     doubling converges in O(log size) attempts and the buffer then
     serves every subsequent frame allocation-free. *)
  let rec marshal_into t v =
    match
      Marshal.to_buffer t.scratch header_bytes
        (Bytes.length t.scratch - header_bytes) v []
    with
    | len -> len
    | exception Failure _ ->
        t.scratch <- Bytes.create (2 * Bytes.length t.scratch);
        marshal_into t v

  let write_value t v =
    let len = marshal_into t v in
    Bytes.set_int64_be t.scratch 0 (Int64.of_int len);
    write_all t.fd t.scratch 0 (header_bytes + len)
end

let read_value ?max_bytes fd =
  match read_bytes ?max_bytes fd with
  | Error _ as e -> e
  | Ok payload -> (
      match Marshal.from_bytes payload 0 with
      | v -> Ok v
      | exception _ -> Error (Garbled "unmarshalable payload"))

module Decoder = struct
  type t = {
    max_bytes : int;
    buf : Buffer.t;  (* raw accumulated bytes, frames not yet extracted *)
  }

  let create ?(max_bytes = default_max_bytes) () =
    { max_bytes; buf = Buffer.create 4096 }

  let buffered t = Buffer.length t.buf

  type pumped = {
    frames : bytes list;
    state : [ `Open | `Closed | `Error of error ];
  }

  (* Extract every complete frame from the buffer, keeping the tail. *)
  let extract t =
    let data = Buffer.to_bytes t.buf in
    let total = Bytes.length data in
    let rec go ofs acc =
      if total - ofs < header_bytes then Ok (ofs, List.rev acc)
      else
        match
          check_length ~limit:t.max_bytes
            (Int64.to_int (Bytes.get_int64_be data ofs))
        with
        | Error e -> Error (List.rev acc, e)
        | Ok len ->
            if total - ofs - header_bytes < len then Ok (ofs, List.rev acc)
            else
              go
                (ofs + header_bytes + len)
                (Bytes.sub data (ofs + header_bytes) len :: acc)
    in
    match go 0 [] with
    | Ok (consumed, frames) ->
        Buffer.clear t.buf;
        Buffer.add_subbytes t.buf data consumed (total - consumed);
        Ok frames
    | Error _ as e ->
        Buffer.clear t.buf;
        e

  let chunk_bytes = 65536

  let pump t fd =
    let scratch = Bytes.create chunk_bytes in
    match Unix.read fd scratch 0 chunk_bytes with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        { frames = []; state = `Open }
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        let held = buffered t in
        if held = 0 then { frames = []; state = `Closed }
        else
          {
            frames = [];
            state =
              `Error (Torn { context = "payload"; got = held; expected = -1 });
          }
    | 0 ->
        (* EOF: clean only if no partial frame is held back. *)
        let held = buffered t in
        if held = 0 then { frames = []; state = `Closed }
        else
          {
            frames = [];
            state =
              `Error (Torn { context = "frame"; got = held; expected = -1 });
          }
    | n -> (
        Buffer.add_subbytes t.buf scratch 0 n;
        match extract t with
        | Ok frames -> { frames; state = `Open }
        | Error (frames, e) -> { frames; state = `Error e })
end
