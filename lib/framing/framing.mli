(** Length-prefixed framing over file descriptors.

    One frame = an 8-byte big-endian payload length + the payload bytes.
    The explicit length lets every reader distinguish a {e clean}
    end-of-stream (EOF exactly on a frame boundary: the peer closed or
    exited) from a {e torn} frame (EOF — or desynchronization — inside a
    frame: the peer died mid-write), the distinction both the process
    pool's crash taxonomy ({!Ft_engine.Procpool} via {!Ft_engine.Ipc})
    and the tuning server's protocol layer ({!Ft_serve.Protocol}) are
    built on.

    Two payload disciplines share the same wire format:

    - {!write_bytes}/{!read_bytes} move opaque byte payloads — the
      server's JSONL protocol frames;
    - {!write_value}/{!read_value} move [Marshal]-encoded OCaml values —
      the process pool's pipes, where both ends are the same binary.

    [Marshal] payloads must never be read from an untrusted peer; the
    server protocol therefore uses byte payloads and parses them as JSON
    above this module.

    {!Decoder} is the incremental face of the same parser: feed it
    whatever a non-blocking read returned and it hands back every
    completed frame, so a slow (or malicious) client that stops
    mid-frame can never block a select loop. *)

type error =
  | Eof  (** stream ended exactly on a frame boundary (clean close) *)
  | Torn of { context : string; got : int; expected : int }
      (** stream ended {e inside} a frame — short header or short
          payload; the peer must be presumed dead mid-write *)
  | Oversized of { claimed : int; limit : int }
      (** the length prefix claims more than [max_bytes]: an
          out-of-phase or hostile prefix, rejected before it becomes an
          allocation that kills the reader too *)
  | Garbled of string
      (** the frame arrived whole but its payload is unusable (e.g. a
          negative length word, or unmarshalable bytes in
          {!read_value}) *)

val error_to_string : error -> string

val default_max_bytes : int
(** Default frame-size ceiling (256 MiB), sized for the process pool's
    Marshal traffic; protocol layers pass a far smaller [?max_bytes]. *)

val header_bytes : int
(** Length of the frame header (8: one big-endian [int64]).  Exposed for
    codecs that walk framed bytes in memory (e.g.
    [Ft_engine.Cache_codec]). *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** [write_all fd buf ofs len]: write exactly [len] bytes.  Short writes
    and [EINTR] are retried; [EAGAIN]/[EWOULDBLOCK] (the fd was left
    nonblocking, e.g. a server socket the {!Decoder} side reads in
    nonblocking mode) waits for writability and resumes rather than
    escaping mid-frame.  [EPIPE] (peer already dead) escapes as
    [Unix_error] for the caller's crash handling.  Exposed for writers
    that append framed bytes outside this module (e.g.
    [Ft_engine.Cache]'s locked appends). *)

val write_bytes : Unix.file_descr -> bytes -> unit
(** Write one frame (header then payload, each via {!write_all}). *)

val read_bytes : ?max_bytes:int -> Unix.file_descr -> (bytes, error) result
(** Blocking read of one frame's payload ([max_bytes] defaults to
    {!default_max_bytes}). *)

val write_value : Unix.file_descr -> 'a -> unit
(** Marshal one value as a frame ({!write_bytes} of [Marshal.to_bytes]). *)

(** Frame writer with a reusable scratch buffer.

    {!write_value} above allocates a fresh [Marshal] byte string and a
    header per frame; on the process pool's hot reply path (one frame
    per job, each carrying summaries, journal deltas, trace batches)
    that churn is measurable.  A [Writer] marshals directly into one
    owned buffer — header and payload contiguous, grown geometrically
    and then reused forever — and emits the frame with a single
    [write].  Not thread-safe: one writer per producing thread/process
    end, which is how {!Ft_engine.Procpool} uses it. *)
module Writer : sig
  type t

  val create : ?initial_bytes:int -> Unix.file_descr -> t
  (** [initial_bytes] (default 64 KiB) sizes the scratch buffer; it
      doubles on demand and never shrinks. *)

  val fd : t -> Unix.file_descr

  val write_value : t -> 'a -> unit
  (** Exactly {!Framing.write_value}'s wire format and error behavior
      ([EPIPE] escapes as [Unix_error]), minus the per-frame
      allocations. *)
end

val read_value : ?max_bytes:int -> Unix.file_descr -> ('a, error) result
(** Read one Marshal frame.  The ['a] is the caller's protocol contract,
    as with [Marshal.from_channel]; only use on trusted peers. *)

(** Incremental frame extraction for non-blocking readers.

    A decoder owns a reassembly buffer.  {!pump} performs one
    [Unix.read] and returns every frame the accumulated bytes complete;
    a frame split across any number of reads is reassembled, and bytes
    beyond a frame boundary are retained for the next call. *)
module Decoder : sig
  type t

  val create : ?max_bytes:int -> unit -> t
  (** [max_bytes] (default {!default_max_bytes}) bounds both the claimed
      frame length and the reassembly buffer. *)

  val buffered : t -> int
  (** Bytes currently held mid-frame (0 on a frame boundary). *)

  type pumped = {
    frames : bytes list;  (** completed frame payloads, in wire order *)
    state : [ `Open | `Closed | `Error of error ];
        (** [`Open]: more may come (includes [EAGAIN] on a non-blocking
            fd).  [`Closed]: clean EOF on a frame boundary.  [`Error]:
            torn mid-frame EOF, oversized prefix, or a read error — the
            connection is unusable (but [frames] completed before the
            fault are still delivered). *)
  }

  val pump : t -> Unix.file_descr -> pumped
  (** One read step: a single [Unix.read] into the buffer, then frame
      extraction.  [EINTR]/[EAGAIN]/[EWOULDBLOCK] are not errors — they
      return [{ frames = []; state = `Open }]. *)
end
