external raw_monotonic_s : unit -> float = "ft_clock_monotonic_s"

let monotonize ~last now = if now > last then now else last

(* Process-global ratchet over the raw reading.  CLOCK_MONOTONIC is
   already non-decreasing; the ratchet guards the gettimeofday fallback
   (and any hypothetical per-CPU skew) so [now] is non-decreasing by
   construction.  The unsynchronized read-modify-write is benign: the
   underlying clock is shared and (virtually) monotonic, so a racing
   domain can at worst publish an equally valid recent reading. *)
let last = ref 0.0

let now () =
  let t = monotonize ~last:!last (raw_monotonic_s ()) in
  last := t;
  t

let wall = Unix.gettimeofday
