(** Deterministic splittable pseudo-random number generator.

    The whole reproduction is driven by a single experiment seed; every
    stochastic component (CV sampling, measurement noise, search algorithms,
    corpus generation) derives its own independent stream with {!split} or
    {!of_label}, so results are bit-for-bit reproducible and independent of
    evaluation order elsewhere.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
    state advanced by a Weyl constant and finalized with a variant of the
    MurmurHash3 finalizer.  It is not cryptographic, but it is fast, has a
    full 2^64 period, and passes BigCrush — more than enough for Monte-Carlo
    search over compiler flags. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** The current 64-bit state word — the {e whole} generator.  Persist it
    (e.g. in a checkpoint) and {!of_state} resumes the exact stream:
    [of_state (state t)] produces the same outputs as [t] forever after. *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} snapshot.  Unlike {!create}, the
    argument is used verbatim, not re-mixed. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val of_label : t -> string -> t
(** [of_label t label] derives a child generator from [t]'s {e current seed}
    and [label] without advancing [t].  Two distinct labels give independent
    streams; the same label always gives the same stream.  This is the
    preferred way to hand sub-seeds to named experiment components. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val gauss : t -> mu:float -> sigma:float -> float
(** One draw from a normal distribution (Box–Muller, fresh pair per call). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on [||]. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0, n).  @raise Invalid_argument if [k > n] or [k < 0]. *)

val hash_string : string -> int
(** The label hash used by {!of_label}, exposed for deterministic
    model perturbations keyed by structural names. *)
