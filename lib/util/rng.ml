type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Variant 13 of the MurmurHash3 64-bit finalizer, as used by SplitMix64. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let state t = t.state
let of_state s = { state = s }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = int64 t in
  { state = child_seed }

let hash_string s =
  (* FNV-1a over bytes, folded to a non-negative OCaml int. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let of_label t label =
  let mixed =
    mix64 (Int64.logxor t.state (Int64.of_int (hash_string label)))
  in
  { state = mixed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: bounds are tiny vs 2^62, modulo bias
     is below 2^-50 and irrelevant for Monte-Carlo search.  The masking
     keeps the value within OCaml's non-negative int range (63-bit ints:
     Int64.to_int alone could land on the native sign bit). *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let gauss t ~mu ~sigma =
  (* Box–Muller; draw until u1 is nonzero to keep log finite. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then
    invalid_arg "Rng.sample_without_replacement: need 0 <= k <= n";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
