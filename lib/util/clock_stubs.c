/* Monotonic clock for Ft_util.Clock.

   CLOCK_MONOTONIC never steps backward under NTP adjustments or
   manual clock changes, which is what every elapsed/deadline
   computation needs.  Platforms without it (none we build on, but the
   fallback keeps the stub portable) degrade to gettimeofday, which the
   OCaml side ratchets into monotonicity. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value ft_clock_monotonic_s(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
