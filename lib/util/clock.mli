(** Monotonic time for elapsed/deadline arithmetic.

    Every duration in the codebase — connect-retry deadlines, request
    deadlines, backoff waits, latency percentiles — must be computed
    from a clock that cannot step backward when NTP slews or an operator
    resets the date.  [Unix.gettimeofday] is that wall clock and is kept
    {e only} for timestamps that leave the process (journal records,
    wall-clock trace stamps); all elapsed computations go through
    {!now}. *)

val now : unit -> float
(** Seconds on the process's monotonic clock ([clock_gettime
    (CLOCK_MONOTONIC)]).  Non-decreasing across calls; the epoch is
    arbitrary (boot time on Linux), so values are only meaningful as
    differences within one process — never persist them. *)

val wall : unit -> float
(** [Unix.gettimeofday]: wall-clock epoch seconds, for timestamps that
    must survive the process (journals, traces).  Subject to clock
    steps — never subtract two of these to measure elapsed time. *)

val monotonize : last:float -> float -> float
(** [monotonize ~last reading] is the pure ratchet {!now} folds raw
    clock readings through: the reading itself if it advanced past
    [last], else [last].  Exposed so the never-goes-backward property
    can be tested over simulated clock-step sequences. *)
