(** Summary statistics used throughout the harness.

    The paper reports geometric-mean speedups (Figs. 5–8), per-run standard
    deviations (§4.1) and best-of-K selections; these helpers implement those
    reductions once, with explicit behaviour on empty input.

    Every reduction that orders or averages floats rejects NaN with
    [Invalid_argument]: NaN loses every [<] comparison and sorts below
    [-infinity] under [Float.compare], so letting one in (e.g. from a torn
    measurement line) would silently poison medians, percentiles and
    argmins.  Infinities are legitimate inputs (faulted evaluations score
    [infinity]) and order as usual. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on empty or NaN input. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values, computed in log space so
    K = 1000 products do not overflow.
    @raise Invalid_argument on empty input, NaN, or any value [<= 0]. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator; 0 for singletons).
    @raise Invalid_argument on empty input. *)

val median : float list -> float
(** Median (mean of middle pair for even lengths), ordered by
    [Float.compare].  @raise Invalid_argument on empty or NaN input. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], nearest-rank with linear
    interpolation.  @raise Invalid_argument on empty input, NaN, or p
    outside [0,100]. *)

val min_by : ('a -> float) -> 'a list -> 'a
(** Element minimizing the key; first winner on ties.
    @raise Invalid_argument on empty input or a NaN key. *)

val max_by : ('a -> float) -> 'a list -> 'a
(** Element maximizing the key; first winner on ties.
    @raise Invalid_argument on empty input or a NaN key. *)

val argmin : float array -> int
(** Index of the smallest element; first on ties.
    @raise Invalid_argument on empty or NaN input. *)

val top_k_indices : int -> float array -> int list
(** [top_k_indices k costs] are the indices of the [k] smallest costs in
    ascending cost order (ties broken by index).  [k] is clamped to the
    array length.  This is the space-focusing primitive of CFR
    (Algorithm 1, line 11).  @raise Invalid_argument on NaN input. *)

val robust_representative : float array -> int
(** Index of a robust representative of repeated measurements of one
    quantity: the sample closest to the median among those within 3
    median-absolute-deviations of it (lowest index on ties).  At least
    half the samples are always within one MAD of the median, so a
    survivor always exists; heavy-tailed outliers are rejected whenever
    a majority of samples are honest.  Deterministic — no RNG.
    @raise Invalid_argument on empty input. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a float into a closed interval. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] = [baseline /. t] — the paper's figure-of-merit,
    runtime of the O3 build over runtime of the tuned build. *)
