let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty input")
  | _ -> ()

(* NaN is rejected, never ordered: under [<] it silently loses every
   comparison (poisoning argmin/min_by towards whatever came first) and
   under [Float.compare] it sorts below -infinity (poisoning medians and
   percentiles towards the NaN).  A NaN reaching a reduction is always an
   upstream bug — e.g. a torn measurement line — so fail loudly. *)
let require_not_nan name x =
  if Float.is_nan x then invalid_arg (name ^ ": NaN input")

let require_no_nan name xs = List.iter (require_not_nan name) xs

let mean xs =
  require_nonempty "Stats.mean" xs;
  require_no_nan "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  require_nonempty "Stats.geomean" xs;
  require_no_nan "Stats.geomean" xs;
  let add_log acc x =
    if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
    else acc +. log x
  in
  exp (List.fold_left add_log 0.0 xs /. float_of_int (List.length xs))

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  require_no_nan "Stats.stddev" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

(* [Float.compare], not the polymorphic [compare]: a total order on
   floats by specification, rather than by accident of representation. *)
let sorted xs = List.sort Float.compare xs

let median xs =
  require_nonempty "Stats.median" xs;
  require_no_nan "Stats.median" xs;
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  require_nonempty "Stats.percentile" xs;
  require_no_nan "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then a.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. a.(lo)) +. (w *. a.(hi))

let min_by key = function
  | [] -> invalid_arg "Stats.min_by: empty input"
  | x :: xs ->
      let checked_key c =
        let k = key c in
        require_not_nan "Stats.min_by" k;
        k
      in
      let better best candidate =
        if Float.compare (checked_key candidate) (key best) < 0 then candidate
        else best
      in
      ignore (checked_key x);
      List.fold_left better x xs

let max_by key = function
  | [] -> invalid_arg "Stats.max_by: empty input"
  | x :: xs ->
      let checked_key c =
        let k = key c in
        require_not_nan "Stats.max_by" k;
        k
      in
      let better best candidate =
        if Float.compare (checked_key candidate) (key best) > 0 then candidate
        else best
      in
      ignore (checked_key x);
      List.fold_left better x xs

let argmin a =
  if Array.length a = 0 then invalid_arg "Stats.argmin: empty input";
  require_not_nan "Stats.argmin" a.(0);
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    require_not_nan "Stats.argmin" a.(i);
    if Float.compare a.(i) a.(!best) < 0 then best := i
  done;
  !best

let top_k_indices k costs =
  Array.iter (require_not_nan "Stats.top_k_indices") costs;
  let n = Array.length costs in
  let k = max 0 (min k n) in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      match Float.compare costs.(i) costs.(j) with 0 -> compare i j | c -> c)
    idx;
  Array.to_list (Array.sub idx 0 k)

let robust_representative a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.robust_representative: empty input";
  if n = 1 then 0
  else begin
    let xs = Array.to_list a in
    let med = median xs in
    if not (Float.is_finite med) then argmin a
    else begin
    let mad = median (List.map (fun x -> Float.abs (x -. med)) xs) in
    (* 3 median-absolute-deviations ≈ 4.5 σ for Gaussian noise: generous
       enough never to clip honest jitter, tight enough to shed Pareto
       tails.  A zero MAD (half the samples are identical) degrades to
       "closest to the median", which those identical samples win. *)
    let cutoff = 3.0 *. mad in
    let best = ref (-1) in
    let best_dist = ref infinity in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. med) in
        if d <= cutoff && d < !best_dist then begin
          best := i;
          best_dist := d
        end)
      a;
    if !best < 0 then argmin a else !best
    end
  end

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let speedup ~baseline t = baseline /. t
