module Rng = Ft_util.Rng
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec
module Context = Funcytuner.Context
module Result = Funcytuner.Result

type t = {
  variant : Features.variant;
  mean : float array;  (* feature normalization *)
  std : float array;
  mixture : Em.t;  (* EM-fitted Gaussian mixture over program features *)
  networks : Chow_liu.t array;
}

let variant t = t.variant
let cluster_count t = Em.components t.mixture

(* --- feature normalization ------------------------------------------ *)

let normalize ~mean ~std v =
  Array.mapi (fun i x -> (x -. mean.(i)) /. std.(i)) v

let fit_normalization rows =
  let dims = Array.length (List.hd rows) in
  let n = float_of_int (List.length rows) in
  let mean = Array.make dims 0.0 in
  List.iter (fun r -> Array.iteri (fun i x -> mean.(i) <- mean.(i) +. x) r) rows;
  Array.iteri (fun i x -> mean.(i) <- x /. n) mean;
  let std = Array.make dims 0.0 in
  List.iter
    (fun r -> Array.iteri (fun i x -> std.(i) <- std.(i) +. ((x -. mean.(i)) ** 2.0)) r)
    rows;
  Array.iteri (fun i x -> std.(i) <- Float.max 1e-9 (sqrt (x /. n))) std;
  (mean, std)

(* --- training --------------------------------------------------------- *)

let good_configurations ~toolchain ~rng ~samples ~top program =
  let input = Corpus.input_for program in
  let measured =
    List.init samples (fun _ ->
        let cv = Ft_flags.Space.sample_binary rng in
        let binary = Toolchain.compile_uniform toolchain ~cv program in
        let s =
          (Exec.measure ~arch:toolchain.Toolchain.arch ~input ~rng binary)
            .Exec.elapsed_s
        in
        (cv, s))
  in
  List.sort (fun (_, a) (_, b) -> compare a b) measured
  |> List.filteri (fun i _ -> i < top)
  |> List.filter_map (fun (cv, _) -> Cv.to_bits cv)

let train ~toolchain ~variant ?(clusters = 3) ?(corpus_seed = 2019)
    ?(top = 100) ?(samples_per_program = 1000) () =
  let rng = Rng.create (corpus_seed + 7919) in
  let programs = Corpus.programs ~seed:corpus_seed in
  let raw_features = List.map (Features.extract variant) programs in
  let mean, std = fit_normalization raw_features in
  let rows = List.map (normalize ~mean ~std) raw_features in
  (* EM-fitted Gaussian mixture over program features, as in the COBAYN
     paper; programs are hard-assigned to their most responsible
     component. *)
  let mixture = Em.fit ~k:clusters ~rng rows in
  let assignment = Array.of_list (List.map (Em.assign mixture) rows) in
  let good =
    List.map
      (good_configurations ~toolchain ~rng ~samples:samples_per_program ~top)
      programs
  in
  let networks =
    Array.init (Em.components mixture) (fun c ->
        let member_samples =
          List.concat (List.filteri (fun i _ -> assignment.(i) = c) good)
        in
        let member_samples =
          (* An empty component would be degenerate; fall back to the
             whole corpus. *)
          if member_samples = [] then List.concat good else member_samples
        in
        Chow_liu.fit ~dims:Flag.count member_samples)
  in
  { variant; mean; std; mixture; networks }

(* --- inference -------------------------------------------------------- *)

let nearest_cluster t program =
  let v = normalize ~mean:t.mean ~std:t.std (Features.extract t.variant program) in
  Em.assign t.mixture v

let sample_cv t ~cluster rng = Cv.of_bits (Chow_liu.sample t.networks.(cluster) rng)

let tune t (ctx : Context.t) =
  let cluster = nearest_cluster t ctx.Context.program in
  let rng = Context.stream ctx ("cobayn:" ^ Features.variant_name t.variant) in
  let k = Array.length ctx.Context.pool in
  let times =
    Ft_obs.Trace.span (Context.trace ctx) Ft_obs.Event.Search (fun () ->
        Array.init k (fun _ ->
            let cv = sample_cv t ~cluster rng in
            match Context.try_measure_uniform ctx ~rng cv with
            | Ft_engine.Engine.Ok m -> (cv, m.Ft_machine.Exec.elapsed_s)
            | _ -> (cv, Float.infinity)))
  in
  let best_cv, best_t = Array.to_list times |> Ft_util.Stats.min_by snd in
  (* All K samples faulting leaves nothing learned: report O3. *)
  let best_cv = if Float.is_finite best_t then best_cv else Cv.o3 in
  let best_seconds = Context.evaluate_uniform ctx best_cv in
  Result.make
    ~algorithm:(Printf.sprintf "COBAYN(%s)" (Features.variant_name t.variant))
    ~configuration:(Result.Whole_program best_cv)
    ~baseline_s:ctx.Context.baseline_s ~evaluations:k
    ~trace:(Result.best_so_far (Array.to_list (Array.map snd times)))
    ~best_seconds
