type t = int array
(* Invariant: length = Flag.count and every slot is within its flag's
   domain.  Enforced by every constructor; never mutated after creation. *)

let check id v =
  if v < 0 || v >= Flag.arity id then
    invalid_arg
      (Printf.sprintf "Cv: value %d out of domain for %s" v (Flag.name id))

let make f =
  Array.map
    (fun id ->
      let v = f id in
      check id v;
      v)
    Flag.all

let o3 = make Flag.default_o3
let o2 = make Flag.default_o2
let get t id = t.(Flag.index id)

let set t id v =
  check id v;
  let t' = Array.copy t in
  t'.(Flag.index id) <- v;
  t'

let value_name t id = (Flag.values id).(get t id)
let equal = ( = )
let compare = compare

let hash t =
  (* Order-dependent polynomial fold; stable across runs (no generic
     Hashtbl.hash, whose behaviour could change between compiler
     versions). *)
  Array.fold_left (fun acc v -> (acc * 31) + v + 17) 1469598103 t

let render_flag id v =
  let value = (Flag.values id).(v) in
  match id with
  | Flag.Base_opt -> "-O" ^ value
  | _ -> Flag.name id ^ "=" ^ value

let render t =
  let differing =
    Array.to_list Flag.all
    |> List.filter_map (fun id ->
           let v = get t id in
           if id = Flag.Base_opt || v <> Flag.default_o3 id then
             Some (render_flag id v)
           else None)
  in
  String.concat " " differing

let render_full t =
  Array.to_list Flag.all
  |> List.map (fun id -> render_flag id (get t id))
  |> String.concat " "

let add_compact buf t =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf '.';
      (* Every domain has arity <= 9, so values are single digits; the
         general path keeps [of_compact] round-trips total anyway. *)
      if v >= 0 && v < 10 then Buffer.add_char buf (Char.chr (Char.code '0' + v))
      else Buffer.add_string buf (string_of_int v))
    t

let to_compact t =
  let buf = Buffer.create (2 * Array.length t) in
  add_compact buf t;
  Buffer.contents buf

let of_compact s =
  let parts = String.split_on_char '.' s in
  if List.length parts <> Flag.count then None
  else
    match List.map int_of_string_opt parts with
    | exception _ -> None
    | ints ->
        if List.exists (fun v -> v = None) ints then None
        else
          let values = Array.of_list (List.map Option.get ints) in
          let ok = ref true in
          Array.iteri
            (fun i id ->
              let v = values.(i) in
              if v < 0 || v >= Flag.arity id then ok := false)
            Flag.all;
          if !ok then Some values else None

type simd_pref = Width_auto | Width_128 | Width_256
type three_level = Level_low | Level_default | Level_high
type streaming = Stream_auto | Stream_always | Stream_never
type isel = Isel_default | Isel_advanced | Isel_size
type code_layout = Layout_default | Layout_hot | Layout_size

let base_opt_level t = get t Base_opt + 1
let bool_of t id = get t id = 1
let vec_enabled t = bool_of t Vec

let simd_pref t =
  match get t Simd_width with
  | 0 -> Width_auto
  | 1 -> Width_128
  | _ -> Width_256

let unroll_bound t =
  match get t Unroll with
  | 0 -> None
  | 1 -> Some 0
  | 2 -> Some 2
  | 3 -> Some 4
  | 4 -> Some 8
  | _ -> Some 16

let unroll_aggressive t = bool_of t Unroll_aggressive
let ipo t = bool_of t Ipo

let inline_factor t =
  match get t Inline_threshold with
  | 0 -> 25
  | 1 -> 50
  | 2 -> 100
  | 3 -> 200
  | _ -> 400

let ansi_alias t = bool_of t Ansi_alias

let streaming_stores t =
  match get t Streaming_stores with
  | 0 -> Stream_auto
  | 1 -> Stream_always
  | _ -> Stream_never

let prefetch_level t = get t Prefetch

let prefetch_distance t =
  match get t Prefetch_distance with
  | 0 -> None
  | 1 -> Some Level_low
  | 2 -> Some Level_default
  | _ -> Some Level_high

let fma t = bool_of t Fma
let interchange t = bool_of t Interchange
let fusion t = bool_of t Fusion
let distribution t = bool_of t Distribution

let tile_size t =
  match get t Tile with
  | 0 -> None
  | 1 -> Some 8
  | 2 -> Some 16
  | 3 -> Some 32
  | _ -> Some 64

let three_level_of = function
  | 0 -> Level_low
  | 1 -> Level_default
  | _ -> Level_high

let sched t = three_level_of (get t Sched)

let isel t =
  match get t Isel with
  | 0 -> Isel_default
  | 1 -> Isel_advanced
  | _ -> Isel_size

let regalloc_aggressive t = bool_of t Regalloc
let spill_opt t = bool_of t Spill_opt
let align_loops t = bool_of t Align_loops
let pad_arrays t = bool_of t Pad
let branch_conv t = bool_of t Branch_conv
let cmov t = bool_of t Cmov
let scalar_rep t = bool_of t Scalar_rep
let gvn t = bool_of t Gvn
let licm t = bool_of t Licm
let func_split t = bool_of t Func_split
let jump_tables t = bool_of t Jump_tables
let dep_analysis t = three_level_of (get t Dep_analysis)

let code_layout t =
  match get t Code_layout with
  | 0 -> Layout_default
  | 1 -> Layout_hot
  | _ -> Layout_size

let vector_cost t = three_level_of (get t Vector_cost)
let heap_arrays t = bool_of t Heap_arrays

(* The designated two-value view of each flag ("allowing it to have two
   values", paper 4.2.1).  Multi-valued flags binarize to their natural
   on/off reading (e.g. prefetching: default level vs disabled), not to a
   hand-picked best setting — the binarized searchers (CE, COBAYN) only
   see this reduced space. *)
let binary_alternative (id : Flag.id) =
  match id with
  | Base_opt -> 1 (* O2 *)
  | Vec -> 0 (* off *)
  | Simd_width -> 2 (* 256 *)
  | Unroll -> 4 (* 8 *)
  | Unroll_aggressive -> 1
  | Ipo -> 1
  | Inline_threshold -> 4 (* 400 *)
  | Ansi_alias -> 0
  | Streaming_stores -> 1 (* always *)
  | Prefetch -> 0 (* off *)
  | Prefetch_distance -> 1 (* near *)
  | Fma -> 0
  | Interchange -> 0
  | Fusion -> 0
  | Distribution -> 1
  | Tile -> 3 (* 32 *)
  | Sched -> 0 (* conservative *)
  | Isel -> 2 (* size *)
  | Regalloc -> 1
  | Spill_opt -> 0
  | Align_loops -> 0
  | Pad -> 1
  | Branch_conv -> 0
  | Cmov -> 0
  | Scalar_rep -> 0
  | Gvn -> 0
  | Licm -> 0
  | Func_split -> 1
  | Jump_tables -> 0
  | Dep_analysis -> 2 (* aggressive *)
  | Code_layout -> 1 (* hot *)
  | Vector_cost -> 2 (* unlimited *)
  | Heap_arrays -> 1

let of_bits bits =
  if Array.length bits <> Flag.count then
    invalid_arg "Cv.of_bits: wrong number of bits";
  make (fun id ->
      if bits.(Flag.index id) then binary_alternative id
      else Flag.default_o3 id)

let to_bits t =
  let bits = Array.make Flag.count false in
  let ok = ref true in
  Array.iter
    (fun id ->
      let v = get t id in
      if v = Flag.default_o3 id then bits.(Flag.index id) <- false
      else if v = binary_alternative id then bits.(Flag.index id) <- true
      else ok := false)
    Flag.all;
  if !ok then Some bits else None
