(** Compilation vectors (CVs).

    A CV is one point of the compiler optimization space: an instantiated
    value for each of the 33 flags (§2.1 of the paper).  CVs are immutable;
    [set] returns a fresh vector.  The typed accessors below are the only
    interface the simulated compiler's heuristics use, so flag semantics are
    encoded once, here. *)

type t
(** An immutable assignment of a value index to every {!Flag.id}. *)

val o3 : t
(** The paper's baseline: [-O3 -qopenmp -fp-model source]. *)

val o2 : t
(** The simulated [-O2] reference point. *)

val make : (Flag.id -> int) -> t
(** [make f] builds a CV taking value [f id] for each flag.
    @raise Invalid_argument if any value is outside the flag's domain. *)

val get : t -> Flag.id -> int
(** Raw value index of a flag. *)

val set : t -> Flag.id -> int -> t
(** Functional update.  @raise Invalid_argument on out-of-domain values. *)

val value_name : t -> Flag.id -> string
(** Printable value, e.g. [value_name o3 Flag.Unroll = "auto"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, stable across runs (used for deterministic link-time
    perturbations keyed on module→CV assignments). *)

val render : t -> string
(** Human-readable command line showing only flags that differ from O3,
    e.g. ["-O3 -unroll=4 -qopt-streaming-stores=always"].  [render o3] is
    ["-O3"]. *)

val render_full : t -> string
(** Full command line with every flag spelled out. *)

val to_compact : t -> string
(** Compact machine-readable encoding (dot-separated value indices). *)

val add_compact : Buffer.t -> t -> unit
(** Append exactly {!to_compact} to a buffer without building the
    intermediate string (cache-key construction is an evaluation hot
    path). *)

val of_compact : string -> t option
(** Inverse of {!to_compact}; [None] on malformed or out-of-domain input. *)

(** {1 Typed flag semantics} *)

type simd_pref = Width_auto | Width_128 | Width_256
type three_level = Level_low | Level_default | Level_high
type streaming = Stream_auto | Stream_always | Stream_never
type isel = Isel_default | Isel_advanced | Isel_size
type code_layout = Layout_default | Layout_hot | Layout_size

val base_opt_level : t -> int
(** 1, 2 or 3. *)

val vec_enabled : t -> bool
val simd_pref : t -> simd_pref

val unroll_bound : t -> int option
(** [None] = compiler decides; [Some n] forces an unroll bound of
    n ∈ {0 (disable), 2, 4, 8, 16}. *)

val unroll_aggressive : t -> bool
val ipo : t -> bool

val inline_factor : t -> int
(** Inliner budget in percent of default: 25, 50, 100, 200 or 400. *)

val ansi_alias : t -> bool
val streaming_stores : t -> streaming

val prefetch_level : t -> int
(** 0 (off) .. 4 (most aggressive). *)

val prefetch_distance : t -> three_level option
(** [None] = auto. *)

val fma : t -> bool
val interchange : t -> bool
val fusion : t -> bool
val distribution : t -> bool

val tile_size : t -> int option
(** [None] = no tiling, otherwise 8, 16, 32 or 64. *)

val sched : t -> three_level
(** Instruction-scheduling effort — the paper's "IO" (instruction
    reordering) knob in Table 3. *)

val isel : t -> isel
(** Instruction selection — the paper's "IS" knob in Table 3. *)

val regalloc_aggressive : t -> bool
val spill_opt : t -> bool
val align_loops : t -> bool
val pad_arrays : t -> bool
val branch_conv : t -> bool
val cmov : t -> bool
val scalar_rep : t -> bool
val gvn : t -> bool
val licm : t -> bool
val func_split : t -> bool
val jump_tables : t -> bool

val dep_analysis : t -> three_level
(** Dependence-analysis precision; [Level_high] can prove more loops
    vectorizable but may mis-speculate. *)

val code_layout : t -> code_layout
val vector_cost : t -> three_level
val heap_arrays : t -> bool

(** {1 Binarized view}

    COBAYN can only infer binary flags, and Combined Elimination operates on
    on/off switches; the paper binarizes each multi-valued ICC flag by
    allowing it exactly two values (§4.2.1).  [binary_alternative] designates
    the non-default value used for that purpose. *)

val binary_alternative : Flag.id -> int
(** The designated alternative value index (≠ the O3 default). *)

val of_bits : bool array -> t
(** [of_bits b] maps each flag to its O3 default when [b.(i)] is false and
    to its {!binary_alternative} when true.
    @raise Invalid_argument unless [Array.length b = Flag.count]. *)

val to_bits : t -> bool array option
(** Inverse of {!of_bits}; [None] if some flag holds a value that is neither
    the default nor the alternative. *)
