module Rng = Ft_util.Rng
module Clock = Ft_util.Clock

type failure =
  | Rejected of Protocol.reject_reason
  | Server_error of string
  | Transport of string
  | Protocol_violation of string

let failure_to_string = function
  | Rejected reason -> "rejected: " ^ Protocol.reject_reason_to_string reason
  | Server_error msg -> "server error: " ^ msg
  | Transport msg -> "transport: " ^ msg
  | Protocol_violation msg -> "protocol violation: " ^ msg

(* Connect retry backoff: capped exponential with deterministic seeded
   jitter.  Attempt k sleeps base·2^k scaled by a uniform factor in
   [0.5, 1.5), clamped to cap — the jitter de-synchronizes a herd of
   clients all waiting for one daemon to (re)bind its socket, and the
   seed keeps any one client's schedule reproducible. *)
let backoff_base_s = 0.01
let backoff_cap_s = 0.5

let backoff_delay rng attempt =
  let exp = backoff_base_s *. (2.0 ** float_of_int attempt) in
  Float.min backoff_cap_s (exp *. (0.5 +. Rng.float rng 1.0))

let backoff_schedule ~seed n =
  let rng = Rng.create seed in
  List.init n (fun k -> backoff_delay rng k)

let connect ?(retry_for = 0.0) ?(seed = 0) socket_path =
  (* Monotonic, not wall: a clock step during the retry window must not
     silently stretch or collapse it. *)
  let deadline = Clock.now () +. retry_for in
  let rng = Rng.create seed in
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok fd
    | exception Unix.Unix_error (((ECONNREFUSED | ENOENT) as e), _, _) ->
        Unix.close fd;
        if Clock.now () < deadline then begin
          ignore (Unix.select [] [] [] (backoff_delay rng attempt));
          go (attempt + 1)
        end
        else Error (Transport (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Transport (Unix.error_message e))
  in
  go 0

let read_one fd =
  match Protocol.read_response fd with
  | Ok resp -> Ok resp
  | Error (`Framing e) ->
      Error (Transport (Ft_framing.Framing.error_to_string e))
  | Error (`Decode e) ->
      Error (Protocol_violation (Protocol.decode_error_to_string e))

let with_connection ?retry_for ?seed socket_path f =
  match connect ?retry_for ?seed socket_path with
  | Error _ as e -> e
  | Ok fd ->
      (* A daemon that dies under us (crash, supervised respawn) must
         surface as EPIPE on the next write — caught below as a
         [Transport] failure the persistent path retries — not as a
         process-killing SIGPIPE. *)
      let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      Fun.protect ~finally:(fun () ->
          Sys.set_signal Sys.sigpipe prev_pipe;
          try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () -> (
      try f fd
      with Unix.Unix_error (e, _, _) -> Error (Transport (Unix.error_message e)))

let tune ?retry_for ?seed ?deadline_ms ?(on_event = fun _ -> ()) ~socket_path
    ~id ~tenant spec =
  with_connection ?retry_for ?seed socket_path @@ fun fd ->
  Protocol.write_request fd (Protocol.Tune { id; tenant; spec; deadline_ms });
  let rec await () =
    match read_one fd with
    | Error _ as e -> e
    | Ok ((Protocol.Admitted _ | Coalesced _ | Started _ | Progress _) as ev) ->
        on_event ev;
        await ()
    | Ok (Protocol.Result payload) -> Ok payload
    | Ok (Protocol.Rejected { reason; _ }) -> Error (Rejected reason)
    | Ok (Protocol.Server_error { message; _ }) -> Error (Server_error message)
    | Ok (Protocol.Pong | Stats_reply _ | Bye) ->
        Error (Protocol_violation "non-tune response to a tune request")
  in
  await ()

(* Reconnect-and-resume: request ids are idempotent against the daemon's
   journal and memo, so after a transport failure (daemon crashed, or
   its supervisor is still respawning it) simply resending the same id
   either joins the replayed ghost group or collects the memoized
   result.  Only [Transport] failures are retried — a typed rejection or
   server error is an answer. *)
let tune_persistent ?(attempts = 8) ?(retry_for = 5.0) ?seed ?deadline_ms
    ?on_event ~socket_path ~id ~tenant spec =
  let rec go remaining =
    match tune ~retry_for ?seed ?deadline_ms ?on_event ~socket_path ~id ~tenant
            spec
    with
    | Error (Transport _) when remaining > 1 -> go (remaining - 1)
    | result -> result
  in
  if attempts < 1 then invalid_arg "Client.tune_persistent: attempts < 1";
  go attempts

let simple ?retry_for ~socket_path request ~expect =
  with_connection ?retry_for socket_path @@ fun fd ->
  Protocol.write_request fd request;
  match read_one fd with Error _ as e -> e | Ok resp -> expect resp

let ping ?retry_for socket_path =
  simple ?retry_for ~socket_path Protocol.Ping ~expect:(function
    | Protocol.Pong -> Ok ()
    | _ -> Error (Protocol_violation "expected pong"))

let stats ?retry_for socket_path =
  simple ?retry_for ~socket_path Protocol.Stats ~expect:(function
    | Protocol.Stats_reply counters -> Ok counters
    | _ -> Error (Protocol_violation "expected stats_reply"))

let shutdown ?retry_for socket_path =
  simple ?retry_for ~socket_path Protocol.Shutdown ~expect:(function
    | Protocol.Bye -> Ok ()
    | _ -> Error (Protocol_violation "expected bye"))
