(** Blocking client for the tuning service.

    One connection per call: connect, send the request, read responses
    until the terminal one.  [retry_for] retries a refused/absent
    socket for that many seconds (the daemon may still be binding) —
    the connection itself, once made, is never retried. *)

type failure =
  | Rejected of Protocol.reject_reason  (** server said no (typed) *)
  | Server_error of string  (** the search itself failed server-side *)
  | Transport of string  (** connect/read/write failure, torn frame *)
  | Protocol_violation of string  (** peer spoke something else *)

val failure_to_string : failure -> string

val tune :
  ?retry_for:float ->
  ?on_event:(Protocol.response -> unit) ->
  socket_path:string ->
  id:string ->
  tenant:string ->
  Protocol.tune_spec ->
  (Protocol.result_payload, failure) result
(** Submit one tune request; [on_event] observes each non-terminal
    response ([Admitted]/[Coalesced]/[Started]/[Progress]) as it
    streams in. *)

val ping : ?retry_for:float -> string -> (unit, failure) result
val stats : ?retry_for:float -> string -> ((string * int) list, failure) result

val shutdown : ?retry_for:float -> string -> (unit, failure) result
(** Ask the daemon to drain and exit (acknowledged with [Bye] before
    the drain completes). *)
