(** Blocking client for the tuning service.

    One connection per call: connect, send the request, read responses
    until the terminal one.  [retry_for] retries a refused/absent
    socket for that many seconds (the daemon may still be binding or a
    supervisor may be respawning it) under capped exponential backoff
    with deterministic seeded jitter — attempt [k] sleeps
    [min cap (base·2^k·(0.5 + u))] with [u] uniform in [[0,1)] drawn
    from a {!Ft_util.Rng} seeded by [seed], so a herd of waiting
    clients spreads out while any one client's schedule stays
    reproducible.  The connection itself, once made, is never
    retried. *)

type failure =
  | Rejected of Protocol.reject_reason  (** server said no (typed) *)
  | Server_error of string  (** the search itself failed server-side *)
  | Transport of string  (** connect/read/write failure, torn frame *)
  | Protocol_violation of string  (** peer spoke something else *)

val failure_to_string : failure -> string

val backoff_schedule : seed:int -> int -> float list
(** The first [n] connect-retry delays a client with this [seed] would
    sleep, in order — exposed so the backoff law (exponential growth,
    cap, jitter bounds, determinism) is unit-testable without a
    socket. *)

val tune :
  ?retry_for:float ->
  ?seed:int ->
  ?deadline_ms:int ->
  ?on_event:(Protocol.response -> unit) ->
  socket_path:string ->
  id:string ->
  tenant:string ->
  Protocol.tune_spec ->
  (Protocol.result_payload, failure) result
(** Submit one tune request; [on_event] observes each non-terminal
    response ([Admitted]/[Coalesced]/[Started]/[Progress]) as it
    streams in.  [deadline_ms] asks the server to answer within that
    many milliseconds or reject with [Deadline_exceeded] (protocol
    v2). *)

val tune_persistent :
  ?attempts:int ->
  ?retry_for:float ->
  ?seed:int ->
  ?deadline_ms:int ->
  ?on_event:(Protocol.response -> unit) ->
  socket_path:string ->
  id:string ->
  tenant:string ->
  Protocol.tune_spec ->
  (Protocol.result_payload, failure) result
(** {!tune}, but a [Transport] failure (daemon crashed mid-stream, or
    connect kept failing) reconnects and resends the {e same} [id] — up
    to [attempts] times, each connect waiting up to [retry_for] seconds
    (default 8 × 5s).  Request ids are idempotent against the daemon's
    journal: the resend joins the replayed group or collects the
    memoized result, so the delivered bytes match what an uninterrupted
    daemon would have sent.  Typed rejections and server errors are
    answers, never retried.
    @raise Invalid_argument if [attempts < 1]. *)

val ping : ?retry_for:float -> string -> (unit, failure) result
val stats : ?retry_for:float -> string -> ((string * int) list, failure) result

val shutdown : ?retry_for:float -> string -> (unit, failure) result
(** Ask the daemon to drain and exit (acknowledged with [Bye] before
    the drain completes). *)
