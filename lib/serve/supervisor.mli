(** The daemon's crash monitor: fork, wait, respawn.

    [funcy serve --supervise] runs the real daemon in a forked child and
    watches it.  A child that exits 0 (clean drain) ends the supervisor;
    any other death — non-zero exit, SIGKILL from the chaos hook or the
    OS — is respawned with capped exponential backoff and deterministic
    seeded jitter, up to [respawn_budget] respawns.  Combined with the
    {!Journal} (replayed at every boot) and per-fingerprint checkpoints
    ({!Runner.make_durable}), a respawned daemon resumes exactly where
    the dead one stopped.

    State machine: [spawn(gen) → wait → exit 0 ⇒ done(clean)] /
    [abnormal ⇒ gen < budget ? backoff; spawn(gen+1) : done(budget
    exhausted)].  SIGTERM/SIGINT to the supervisor are forwarded to the
    live child (which drains and exits 0).

    Fork-legality: the supervisor parent must not have spawned domains
    — build engines {e inside} the daemon callback, never before
    {!run}. *)

type config = {
  respawn_budget : int;  (** respawns allowed after the first launch *)
  backoff_base_s : float;
  backoff_cap_s : float;
  seed : int;  (** jitter stream seed (deterministic schedule) *)
}

val default_config : config
(** budget 16, base 0.05 s, cap 2 s, seed 0. *)

type exit_status = Exited of int | Signalled of int

val exit_status_to_string : exit_status -> string

type outcome = {
  generations : int;  (** children launched in total *)
  last : exit_status;
  clean : bool;  (** the last child drained and exited 0 *)
}

val delays : config -> int -> float list
(** The deterministic backoff schedule: the sleep before respawn [k],
    for [k = 0 .. n-1] — [min cap (base·2^k·u_k)], [u_k ~ U[0.5, 1.5)]
    seeded by [config.seed].  Exposed for property tests. *)

val run :
  ?on_exit:(generation:int -> exit_status -> unit) ->
  config ->
  (generation:int -> int) ->
  outcome
(** [run config daemon] forks [daemon ~generation] (its return value is
    the child's exit code; an escaping exception exits 125) and
    supervises it as above.  [on_exit] observes every child death.
    @raise Invalid_argument if [respawn_budget < 0]. *)
