(** The tuning service's wire protocol, version 2 (v1 still accepted).

    Requests and responses are single JSON objects (the JSONL schema of
    the trace subsystem, {!Ft_obs.Json}), carried one-per-frame on the
    {!Ft_framing.Framing} wire format.  Every message carries a ["v"]
    version field; a server receiving a version outside
    {!accepted_versions} answers with a typed {!response.Rejected}
    rather than guessing.  v2 adds an optional per-request
    ["deadline_ms"] and the [deadline_exceeded]/[poisoned] reject
    reasons; a v1 message is exactly a v2 message without the optional
    fields, which is why both versions are accepted in both directions.

    {2 Grammar}

    Requests (client → server, one per connection for [tune]):
    {v
    {"v":2,"kind":"tune","id":ID,"tenant":T,
     "benchmark":B,"platform":P,"algorithm":A,"seed":N,"pool":K
     [,"top_x":X][,"deadline_ms":MS]}
    {"v":2,"kind":"ping"}
    {"v":2,"kind":"stats"}
    {"v":2,"kind":"shutdown"}
    v}

    Responses (server → client; a [tune] request streams zero or more
    non-terminal events and exactly one terminal):
    {v
    non-terminal: {"v":2,"kind":"admitted","id":ID,"queue_depth":N}
                  {"v":2,"kind":"coalesced","id":ID,"leader":LID}
                  {"v":2,"kind":"started","id":ID}
                  {"v":2,"kind":"progress","id":ID,"ticks":N}
    terminal:     {"v":2,"kind":"result","id":ID,"fingerprint":F,
                   "origin":"fresh"|"coalesced"|"cached","group_size":N,
                   "speedup":S,"evaluations":E,"run_s":R,"text":TEXT}
                  {"v":2,"kind":"rejected","id":ID,"reason":REASON[,...]}
                  {"v":2,"kind":"error","id":ID,"message":M}
                  {"v":2,"kind":"pong"} {"v":2,"kind":"stats_reply",...}
                  {"v":2,"kind":"bye"}
    v} *)

val version : int
(** The protocol version this build speaks (and writes): 2. *)

val accepted_versions : int list
(** Versions decoded without a [Version_mismatch]: [[1; 2]]. *)

type tune_spec = {
  benchmark : string;  (** suite benchmark name, e.g. ["swim"] *)
  platform : string;  (** platform short name: ["opteron"|"snb"|"bdw"] *)
  algorithm : string;
      (** ["cfr"|"cfr-adaptive"|"adaptive-sh"|"fr"|"random"] *)
  seed : int;
  pool : int;  (** CV pool size / evaluation budget *)
  top_x : int option;  (** CFR space-focusing width (algorithm default) *)
}

val fingerprint : tune_spec -> string
(** Content-addressed identity of the search a spec denotes (hex digest
    of the canonical spec encoding, via {!Ft_engine.Cache.digest}).
    Equal fingerprints ⇒ byte-identical results, by the engine's
    determinism contract — which is what makes single-flight coalescing
    and result memoization sound.  Per-request fields that cannot affect
    the result — the deadline — are excluded. *)

type request =
  | Tune of {
      id : string;
      tenant : string;
      spec : tune_spec;
      deadline_ms : int option;
          (** v2: give up after this many milliseconds from acceptance
              (answered with [Rejected Deadline_exceeded]) *)
    }
  | Ping
  | Stats
  | Shutdown  (** stop accepting, drain the queue, exit *)

type reject_reason =
  | Queue_full of { limit : int }  (** admission control: backpressure *)
  | Draining  (** server is shutting down *)
  | Unsupported of string  (** unknown benchmark/platform/algorithm/... *)
  | Bad_version of { got : int }  (** request spoke another protocol version *)
  | Malformed of string  (** frame was not a well-formed request *)
  | Deadline_exceeded  (** v2: the request's [deadline_ms] elapsed first *)
  | Poisoned of { crashes : int }
      (** v2: this spec crashed the daemon [crashes] times and is
          crash-quarantined in the journal *)

val reject_reason_to_string : reject_reason -> string
(** Stable wire encoding, e.g. ["queue_full"], ["bad_version 2"],
    ["unsupported: unknown benchmark 'x'"] — also the trace payload. *)

type origin = Fresh | Coalesced_with of string | Cached

val origin_to_string : origin -> string
(** ["fresh"] / ["coalesced"] / ["cached"] (the leader id travels in a
    separate field). *)

type result_payload = {
  id : string;
  fingerprint : string;
  origin : origin;
  group_size : int;  (** requests that shared this search's one execution *)
  speedup : float;
  evaluations : int;
  run_s : float;  (** search wall seconds (0 for [Cached]) *)
  text : string;  (** the result block, byte-identical to solo [funcy tune] *)
}

type response =
  | Admitted of { id : string; queue_depth : int }
  | Coalesced of { id : string; leader : string }
  | Started of { id : string }
  | Progress of { id : string; ticks : int }
      (** engine jobs completed so far on this request's search *)
  | Result of result_payload
  | Rejected of { id : string; reason : reject_reason }
  | Server_error of { id : string; message : string }
  | Pong
  | Stats_reply of (string * int) list  (** server counters, fixed order *)
  | Bye  (** shutdown acknowledged *)

type decode_error =
  | Version_mismatch of { got : int }
  | Malformed_frame of string

val decode_error_to_string : decode_error -> string

(* -- JSON codecs -------------------------------------------------------- *)

val request_to_json : request -> Ft_obs.Json.t
val request_of_json : Ft_obs.Json.t -> (request, decode_error) result
val response_to_json : response -> Ft_obs.Json.t
val response_of_json : Ft_obs.Json.t -> (response, decode_error) result

val spec_fields : tune_spec -> (string * Ft_obs.Json.t) list
(** The spec's canonical field encoding, shared with the request codec —
    {!Journal} embeds it in [accepted] records. *)

val spec_of_json : Ft_obs.Json.t -> (tune_spec, decode_error) result
(** Inverse of {!spec_fields} over an object containing them. *)

(* -- framed transport --------------------------------------------------- *)

val max_frame_bytes : int
(** Protocol frames are small (requests ~200 B, results a few KiB); this
    1 MiB ceiling rejects out-of-phase or hostile length prefixes long
    before {!Ft_framing.Framing.default_max_bytes} would. *)

val request_of_frame : bytes -> (request, decode_error) result
val response_of_frame : bytes -> (response, decode_error) result

val write_request : Unix.file_descr -> request -> unit
(** One request as one frame.  Raises [Unix_error] if the peer is gone. *)

val write_response : Unix.file_descr -> response -> unit

val read_response :
  Unix.file_descr ->
  (response, [ `Framing of Ft_framing.Framing.error | `Decode of decode_error ]) result
(** Blocking read of one response frame (the client side's loop). *)
