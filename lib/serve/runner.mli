(** The server's bridge to the tuning engine.

    A runner validates specs against the suite catalog and executes
    searches through one shared {!Ft_engine.Engine} — shared cache and
    telemetry across requests is sound because the engine's determinism
    contract makes search outcomes independent of cache warmth, so a
    served result is byte-identical to a solo [funcy tune] run of the
    same spec.  Tests substitute a fake runner to exercise the server's
    coalescing and fairness without real searches. *)

type t = {
  validate : Protocol.tune_spec -> (unit, string) result;
      (** Cheap admission check: the failure string becomes the
          {!Protocol.Unsupported} reject reason. *)
  run :
    Protocol.tune_spec -> tick:(unit -> unit) -> (Scheduler.outcome, string) result;
      (** Execute one search.  [tick] is invoked after every completed
          engine job — the server's window for draining sockets mid-run,
          which is what makes in-flight coalescing real. *)
}

val algorithms : string list
(** Specs the service accepts: the searches whose solo [funcy tune]
    output is exactly {!Ft_core.Result.render} — ["cfr"],
    ["cfr-adaptive"], ["fr"], ["random"]. *)

val make : engine:Ft_engine.Engine.t -> t
(** A real runner over [engine].  [run] installs a telemetry progress
    callback for the duration of each search (restoring none after) and
    renders outcomes with {!Ft_core.Result.render}.  Search exceptions
    are caught and surfaced as [Error]. *)
