(** The server's bridge to the tuning engine.

    A runner validates specs against the suite catalog and executes
    searches.  Two flavours:

    - {!make}: one shared {!Ft_engine.Engine} across requests (sound
      because the determinism contract makes search outcomes independent
      of cache warmth) — the lightweight mode used when the daemon has
      no durable state directory.
    - {!make_durable}: a fresh engine {e per search}, wired to a
      per-fingerprint {!Ft_engine.Checkpoint} under the daemon's state
      directory.  A daemon killed mid-search leaves the search's last
      committed snapshot behind; the restarted daemon's re-run of the
      same fingerprint loads it and fast-forwards to a byte-identical
      result instead of starting over (the PR 5 commit protocol).

    Tests substitute a fake runner to exercise the server's coalescing,
    recovery and cancellation without real searches. *)

exception Cancelled of string
(** The cancellation signal — an alias of {!Ft_engine.Pool.Abort} (the
    implementation rebinds it, so catching either name works).  The
    server raises it from inside [tick] when a running group has no
    subscribers left; it is {!Ft_engine.Pool.fatal}, so every engine
    layer lets it unwind — a run is cancelled, never recorded as a
    per-job crash. *)

type t = {
  validate : Protocol.tune_spec -> (unit, string) result;
      (** Cheap admission check: the failure string becomes the
          {!Protocol.Unsupported} reject reason. *)
  run :
    Protocol.tune_spec ->
    fingerprint:string ->
    tick:(unit -> unit) ->
    (Scheduler.outcome, string) result;
      (** Execute one search.  [tick] is invoked after every completed
          engine job — the server's window for draining sockets,
          sweeping deadlines and cancelling abandoned runs mid-search.
          Per-spec failures are [Error]; fatal exceptions (including
          {!Cancelled}) propagate. *)
}

val algorithms : string list
(** Specs the service accepts: the searches whose solo [funcy tune]
    output is exactly {!Ft_core.Result.render} — ["cfr"],
    ["cfr-adaptive"], ["adaptive-sh"], ["fr"], ["random"]. *)

val make : engine:Ft_engine.Engine.t -> t
(** A shared-engine runner.  [run] installs a telemetry progress
    callback for the duration of each search (restoring none after) and
    renders outcomes with {!Ft_core.Result.render}. *)

val make_durable :
  make_engine:
    (?cache:Ft_engine.Cache.t ->
    ?quarantine:Ft_engine.Quarantine.t ->
    ?checkpoint:Ft_engine.Checkpoint.t ->
    unit ->
    Ft_engine.Engine.t) ->
  state_dir:string ->
  ?checkpoint_every:int ->
  ?cache_format:Ft_engine.Cache.format ->
  unit ->
  t
(** A crash-safe runner: each [run] builds a fresh engine through
    [make_engine] with a checkpoint at
    [state_dir/<fingerprint>.snap] saving every [checkpoint_every]
    (default 32) state-changing events, resuming from an existing
    snapshot first.  [cache_format] (default
    {!Ft_engine.Cache.default_format}) pins the snapshots' cache
    format; either format resumes.  Snapshot files are removed once the
    search completes (the journal's [completed] record is the durable
    result — see {!Journal}). *)
