module Engine = Ft_engine.Engine
module Telemetry = Ft_engine.Telemetry
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner

type t = {
  validate : Protocol.tune_spec -> (unit, string) result;
  run :
    Protocol.tune_spec ->
    tick:(unit -> unit) ->
    (Scheduler.outcome, string) result;
}

let algorithms = [ "cfr"; "cfr-adaptive"; "fr"; "random" ]

let validate (spec : Protocol.tune_spec) =
  if Ft_suite.Suite.find spec.benchmark = None then
    Error (Printf.sprintf "unknown benchmark '%s'" spec.benchmark)
  else if Ft_prog.Platform.of_short_name spec.platform = None then
    Error (Printf.sprintf "unknown platform '%s'" spec.platform)
  else if not (List.mem spec.algorithm algorithms) then
    Error (Printf.sprintf "unknown algorithm '%s'" spec.algorithm)
  else if spec.pool < 1 then
    Error (Printf.sprintf "pool must be positive, got %d" spec.pool)
  else
    match spec.top_x with
    | Some x when x < 1 -> Error (Printf.sprintf "top_x must be positive, got %d" x)
    | _ -> Ok ()

let search ~engine (spec : Protocol.tune_spec) =
  let program = Option.get (Ft_suite.Suite.find spec.benchmark) in
  let platform = Option.get (Ft_prog.Platform.of_short_name spec.platform) in
  let session =
    Tuner.make_session ~pool_size:spec.pool ~engine ~platform ~program
      ~input:(Ft_suite.Suite.tuning_input platform program)
      ~seed:spec.seed ()
  in
  let top_x = Option.value ~default:Funcytuner.Cfr.default_top_x spec.top_x in
  match spec.algorithm with
  | "cfr" -> Tuner.run_cfr ~top_x session
  | "cfr-adaptive" ->
      Funcytuner.Adaptive.run ~top_x session.Tuner.ctx
        (Lazy.force session.Tuner.collection)
  | "fr" -> Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline
  | "random" -> Funcytuner.Random_search.run session.Tuner.ctx
  | other ->
      (* unreachable behind [validate] *)
      invalid_arg ("Runner.search: unsupported algorithm " ^ other)

let make ~engine =
  let telemetry = Engine.telemetry engine in
  let run spec ~tick =
    Telemetry.set_progress telemetry (fun ~completed:_ ~expected:_ -> tick ());
    Fun.protect ~finally:(fun () ->
        Telemetry.set_progress telemetry (fun ~completed:_ ~expected:_ -> ()))
    @@ fun () ->
    match search ~engine spec with
    | result ->
        Ok
          {
            Scheduler.text = Result.render result;
            speedup = result.Result.speedup;
            evaluations = result.Result.evaluations;
          }
    | exception exn -> Error (Printexc.to_string exn)
  in
  { validate; run }
