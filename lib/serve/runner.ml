module Engine = Ft_engine.Engine
module Pool = Ft_engine.Pool
module Telemetry = Ft_engine.Telemetry
module Checkpoint = Ft_engine.Checkpoint
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner

exception Cancelled = Ft_engine.Pool.Abort

type t = {
  validate : Protocol.tune_spec -> (unit, string) result;
  run :
    Protocol.tune_spec ->
    fingerprint:string ->
    tick:(unit -> unit) ->
    (Scheduler.outcome, string) result;
}

let algorithms = [ "cfr"; "cfr-adaptive"; "adaptive-sh"; "fr"; "random" ]

let validate (spec : Protocol.tune_spec) =
  if Ft_suite.Suite.find spec.benchmark = None then
    Error (Printf.sprintf "unknown benchmark '%s'" spec.benchmark)
  else if Ft_prog.Platform.of_short_name spec.platform = None then
    Error (Printf.sprintf "unknown platform '%s'" spec.platform)
  else if not (List.mem spec.algorithm algorithms) then
    Error (Printf.sprintf "unknown algorithm '%s'" spec.algorithm)
  else if spec.pool < 1 then
    Error (Printf.sprintf "pool must be positive, got %d" spec.pool)
  else
    match spec.top_x with
    | Some x when x < 1 -> Error (Printf.sprintf "top_x must be positive, got %d" x)
    | _ -> Ok ()

let search ~engine (spec : Protocol.tune_spec) =
  let program = Option.get (Ft_suite.Suite.find spec.benchmark) in
  let platform = Option.get (Ft_prog.Platform.of_short_name spec.platform) in
  let session =
    Tuner.make_session ~pool_size:spec.pool ~engine ~platform ~program
      ~input:(Ft_suite.Suite.tuning_input platform program)
      ~seed:spec.seed ()
  in
  (* [spec.top_x] stays optional all the way down so each algorithm
     applies its own default width (20 for cfr/cfr-adaptive, 4 for
     adaptive-sh) — exactly as the solo [funcy tune] CLI does, which
     the byte-identity contract depends on. *)
  match spec.algorithm with
  | "cfr" -> Tuner.run_cfr ?top_x:spec.top_x session
  | "cfr-adaptive" ->
      Funcytuner.Adaptive.run ?top_x:spec.top_x session.Tuner.ctx
        (Lazy.force session.Tuner.collection)
  | "adaptive-sh" ->
      Funcytuner.Adaptive_sh.run ?top_x:spec.top_x session.Tuner.ctx
        (Lazy.force session.Tuner.collection)
  | "fr" -> Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline
  | "random" -> Funcytuner.Random_search.run session.Tuner.ctx
  | other ->
      (* unreachable behind [validate] *)
      invalid_arg ("Runner.search: unsupported algorithm " ^ other)

(* One search on [engine], progress callback installed for its duration.
   Per-spec failures become [Error]; fatal exceptions — the runtime
   dying, or [Cancelled] raised by the server from inside [tick] —
   propagate, so the supervisor (and the journal's crash accounting)
   sees a real crash and a cancellation unwinds to its catcher. *)
let run_search ~engine spec ~tick =
  let telemetry = Engine.telemetry engine in
  Telemetry.set_progress telemetry (fun ~completed:_ ~expected:_ -> tick ());
  Fun.protect ~finally:(fun () ->
      Telemetry.set_progress telemetry (fun ~completed:_ ~expected:_ -> ()))
  @@ fun () ->
  match search ~engine spec with
  | result ->
      Ok
        {
          Scheduler.text = Result.render result;
          speedup = result.Result.speedup;
          evaluations = result.Result.evaluations;
        }
  | exception exn when not (Pool.fatal exn) -> Error (Printexc.to_string exn)

let make ~engine =
  let run spec ~fingerprint:_ ~tick = run_search ~engine spec ~tick in
  { validate; run }

let snapshot_path ~state_dir fingerprint =
  Filename.concat state_dir (fingerprint ^ ".snap")

let make_durable
    ~(make_engine :
        ?cache:Ft_engine.Cache.t ->
        ?quarantine:Ft_engine.Quarantine.t ->
        ?checkpoint:Ft_engine.Checkpoint.t ->
        unit ->
        Engine.t) ~state_dir ?(checkpoint_every = 32) ?cache_format () =
  let run spec ~fingerprint ~tick =
    let path = snapshot_path ~state_dir fingerprint in
    let checkpoint =
      Checkpoint.create ~path ~every:checkpoint_every ?format:cache_format ()
    in
    let engine =
      if Checkpoint.exists checkpoint then begin
        match Checkpoint.load checkpoint with
        | Some (cache, quarantine) ->
            Printf.eprintf "serve: resuming %s from checkpoint (%d entries)\n%!"
              fingerprint
              (Ft_engine.Cache.length cache);
            make_engine ~cache ~quarantine ~checkpoint ()
        | None -> make_engine ~checkpoint ()
      end
      else make_engine ~checkpoint ()
    in
    let result = run_search ~engine spec ~tick in
    (match result with
    | Ok _ ->
        (* The outcome is durable in the journal's [completed] record;
           the half-search snapshots have served their purpose. *)
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [
            path;
            Checkpoint.quarantine_path checkpoint;
            Checkpoint.commit_path checkpoint;
          ]
    | Error _ -> ());
    result
  in
  { validate; run }
