module Framing = Ft_framing.Framing
module Trace = Ft_obs.Trace
module Telemetry = Ft_engine.Telemetry

type config = {
  socket_path : string;
  max_queue : int;
  backlog : int;
  progress_every : int;
}

let default_config ~socket_path =
  { socket_path; max_queue = 256; backlog = 64; progress_every = 25 }

type conn = {
  fd : Unix.file_descr;
  decoder : Framing.Decoder.t;
  mutable waiting : (string * string) option;  (* fingerprint, request id *)
  mutable alive : bool;
}

type state = {
  config : config;
  runner : Runner.t;
  trace : Trace.t option;
  telemetry : Telemetry.t option;
  listener : Unix.file_descr;
  sched : conn Scheduler.t;
  mutable conns : conn list;
  mutable stop : bool;
  mutable running_fp : string option;
  mutable run_ticks : int;
  (* Engine progress callbacks may fire from worker domains, and the
     tick-driven socket drain runs inside them; one lock serializes all
     connection and scheduler mutation. *)
  lock : Mutex.t;
}

let with_lock st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let timed st name f =
  match st.telemetry with None -> f () | Some t -> Telemetry.time t name f

(* -- connection bookkeeping (callers hold the lock) --------------------- *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    st.conns <- List.filter (fun c -> c != conn) st.conns;
    (match conn.waiting with
    | Some (fingerprint, id) ->
        conn.waiting <- None;
        Scheduler.drop_member st.sched ~fingerprint ~id
    | None -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Responses block until written: payloads are tiny and clients read
   eagerly, so this cannot stall the loop in practice, and it spares the
   loop a per-connection outbound queue.  A vanished peer just drops the
   member. *)
let write_resp st conn resp =
  conn.alive
  &&
  try
    Unix.clear_nonblock conn.fd;
    Protocol.write_response conn.fd resp;
    Unix.set_nonblock conn.fd;
    true
  with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) ->
    close_conn st conn;
    false

let respond_and_close st conn resp =
  ignore (write_resp st conn resp);
  close_conn st conn

(* -- request handling --------------------------------------------------- *)

let reject st conn ~id reason =
  ignore (Scheduler.refuse st.sched reason);
  Trace.request_rejected st.trace ~id
    ~reason:(Protocol.reject_reason_to_string reason);
  respond_and_close st conn (Protocol.Rejected { id; reason })

let handle_tune st conn ~id ~tenant spec =
  let fingerprint = Protocol.fingerprint spec in
  Trace.request_received st.trace ~id ~tenant ~fingerprint;
  let verdict =
    match st.runner.Runner.validate spec with
    | Error msg -> Scheduler.refuse st.sched (Protocol.Unsupported msg)
    | Ok () ->
        Scheduler.submit st.sched ~spec ~fingerprint
          { Scheduler.id; tenant; payload = conn }
  in
  match verdict with
  | Scheduler.Fresh ->
      conn.waiting <- Some (fingerprint, id);
      let queue_depth = Scheduler.queue_depth st.sched in
      Trace.request_admitted st.trace ~id ~queue_depth;
      ignore (write_resp st conn (Protocol.Admitted { id; queue_depth }))
  | Scheduler.Joined { leader } ->
      conn.waiting <- Some (fingerprint, id);
      Trace.request_coalesced st.trace ~id ~leader;
      if write_resp st conn (Protocol.Coalesced { id; leader }) then
        if st.running_fp = Some fingerprint then
          ignore (write_resp st conn (Protocol.Started { id }))
  | Scheduler.Memoized { text; speedup; evaluations } ->
      Trace.request_cached st.trace ~id;
      respond_and_close st conn
        (Protocol.Result
           {
             id;
             fingerprint;
             origin = Protocol.Cached;
             group_size = 1;
             speedup;
             evaluations;
             run_s = 0.0;
             text;
           })
  | Scheduler.Refused reason ->
      Trace.request_rejected st.trace ~id
        ~reason:(Protocol.reject_reason_to_string reason);
      respond_and_close st conn (Protocol.Rejected { id; reason })

let handle_frame st conn frame =
  match Protocol.request_of_frame frame with
  | Error (Protocol.Version_mismatch { got }) ->
      reject st conn ~id:"?" (Protocol.Bad_version { got })
  | Error (Protocol.Malformed_frame reason) ->
      reject st conn ~id:"?" (Protocol.Malformed reason)
  | Ok Protocol.Ping -> ignore (write_resp st conn Protocol.Pong)
  | Ok Protocol.Stats ->
      ignore
        (write_resp st conn (Protocol.Stats_reply (Scheduler.counters st.sched)))
  | Ok Protocol.Shutdown ->
      st.stop <- true;
      Scheduler.drain st.sched;
      respond_and_close st conn Protocol.Bye
  | Ok (Protocol.Tune { id; tenant; spec }) -> handle_tune st conn ~id ~tenant spec

let pump_conn st conn =
  let { Framing.Decoder.frames; state } =
    Framing.Decoder.pump conn.decoder conn.fd
  in
  List.iter (fun f -> if conn.alive then handle_frame st conn f) frames;
  match state with
  | `Open -> ()
  | `Closed -> close_conn st conn
  | `Error e ->
      if conn.alive then
        reject st conn ~id:"?" (Protocol.Malformed (Framing.error_to_string e))

let accept_new st =
  let rec loop () =
    match Unix.accept ~cloexec:true st.listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <-
          {
            fd;
            decoder = Framing.Decoder.create ~max_bytes:Protocol.max_frame_bytes ();
            waiting = None;
            alive = true;
          }
          :: st.conns;
        loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

(* One drain step: wait up to [timeout] for socket activity, accept
   every pending connection, pump every readable one.  Callers hold the
   lock. *)
let drain_sockets st ~timeout =
  let conns = st.conns in
  let fds = st.listener :: List.map (fun c -> c.fd) conns in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | readable, _, _ ->
      if List.memq st.listener readable then accept_new st;
      List.iter
        (fun c -> if c.alive && List.memq c.fd readable then pump_conn st c)
        conns

(* -- group execution ---------------------------------------------------- *)

let run_group st (spec, fingerprint) =
  with_lock st (fun () ->
      st.running_fp <- Some fingerprint;
      st.run_ticks <- 0;
      let members = Scheduler.members st.sched ~fingerprint in
      Trace.group_started st.trace ~fingerprint ~members:(List.length members);
      List.iter
        (fun (m : conn Scheduler.member) ->
          ignore (write_resp st m.payload (Protocol.Started { id = m.Scheduler.id })))
        members);
  let tick () =
    with_lock st @@ fun () ->
    st.run_ticks <- st.run_ticks + 1;
    if st.run_ticks mod st.config.progress_every = 0 then
      List.iter
        (fun (m : conn Scheduler.member) ->
          ignore
            (write_resp st m.payload
               (Protocol.Progress { id = m.Scheduler.id; ticks = st.run_ticks })))
        (Scheduler.members st.sched ~fingerprint);
    drain_sockets st ~timeout:0.0
  in
  let t0 = Unix.gettimeofday () in
  let result = timed st "serve.run" (fun () -> st.runner.Runner.run spec ~tick) in
  let run_s = Unix.gettimeofday () -. t0 in
  with_lock st @@ fun () ->
  st.running_fp <- None;
  match result with
  | Ok outcome ->
      let members = Scheduler.complete st.sched ~fingerprint outcome in
      let group_size = List.length members in
      Trace.group_finished st.trace ~fingerprint ~members:group_size ~run_s;
      let leader =
        match members with m :: _ -> m.Scheduler.id | [] -> ""
      in
      List.iteri
        (fun i (m : conn Scheduler.member) ->
          let origin =
            if i = 0 then Protocol.Fresh else Protocol.Coalesced_with leader
          in
          m.payload.waiting <- None;
          respond_and_close st m.payload
            (Protocol.Result
               {
                 id = m.Scheduler.id;
                 fingerprint;
                 origin;
                 group_size;
                 speedup = outcome.Scheduler.speedup;
                 evaluations = outcome.Scheduler.evaluations;
                 run_s;
                 text = outcome.Scheduler.text;
               }))
        members
  | Error message ->
      let members = Scheduler.fail st.sched ~fingerprint in
      Trace.group_finished st.trace ~fingerprint
        ~members:(List.length members) ~run_s;
      List.iter
        (fun (m : conn Scheduler.member) ->
          m.payload.waiting <- None;
          respond_and_close st m.payload
            (Protocol.Server_error { id = m.Scheduler.id; message }))
        members

(* -- lifecycle ---------------------------------------------------------- *)

let serve ?trace ?telemetry ?on_ready config runner =
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener config.backlog;
  Unix.set_nonblock listener;
  let st =
    {
      config;
      runner;
      trace;
      telemetry;
      listener;
      sched = Scheduler.create ~max_queue:config.max_queue;
      conns = [];
      stop = false;
      running_fp = None;
      run_ticks = 0;
      lock = Mutex.create ();
    }
  in
  let stop_now _ =
    st.stop <- true;
    Scheduler.drain st.sched
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_now) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_now) in
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.conns;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove config.socket_path with Sys_error _ -> ())
  @@ fun () ->
  (match on_ready with Some f -> f () | None -> ());
  let rec loop () =
    match with_lock st (fun () -> Scheduler.next st.sched) with
    | Some group ->
        run_group st group;
        loop ()
    | None ->
        if st.stop && with_lock st (fun () -> Scheduler.idle st.sched) then ()
        else begin
          timed st "serve.wait" (fun () ->
              with_lock st (fun () -> drain_sockets st ~timeout:0.2));
          loop ()
        end
  in
  loop ();
  Scheduler.counters st.sched
