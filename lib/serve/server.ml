module Framing = Ft_framing.Framing
module Trace = Ft_obs.Trace
module Telemetry = Ft_engine.Telemetry
module Clock = Ft_util.Clock

type config = {
  socket_path : string;
  max_queue : int;
  backlog : int;
  progress_every : int;
  state_dir : string option;
  die_after_requests : int option;
  poison_threshold : int;
}

let default_config ~socket_path =
  {
    socket_path;
    max_queue = 256;
    backlog = 64;
    progress_every = 25;
    state_dir = None;
    die_after_requests = None;
    poison_threshold = 3;
  }

type conn = {
  fd : Unix.file_descr;
  decoder : Framing.Decoder.t;
  mutable waiting : (string * string) option;  (* fingerprint, request id *)
  mutable alive : bool;
}

(* A group member's payload: its client connection, or [None] for a
   ghost — a request replayed from the journal whose client is not
   connected right now.  Ghosts receive no stream, but they hold their
   group open so replayed work is neither lost nor cancelled; their
   client collects the result from the memo on reconnect. *)
type payload = conn option

type state = {
  config : config;
  runner : Runner.t;
  trace : Trace.t option;
  telemetry : Telemetry.t option;
  listener : Unix.file_descr;
  sched : payload Scheduler.t;
  journal : Journal.t option;
  poisoned : (string, int) Hashtbl.t;  (* fingerprint → crash count *)
  mutable restarts : int;  (* prior incarnations (journal boots) *)
  mutable replayed : int;  (* ghosts re-enqueued at this boot *)
  mutable accepted_this_boot : int;  (* the chaos hook's counter *)
  mutable conns : conn list;
  mutable stop : bool;
  mutable running_fp : string option;
  mutable run_ticks : int;
  (* Engine progress callbacks may fire from worker domains, and the
     tick-driven socket drain runs inside them; one lock serializes all
     connection and scheduler mutation. *)
  lock : Mutex.t;
}

let with_lock st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let timed st name f =
  match st.telemetry with None -> f () | Some t -> Telemetry.time t name f

let journal st record =
  match st.journal with None -> () | Some j -> Journal.append j record

let counters st =
  Scheduler.counters st.sched
  @ [
      ("restarts", st.restarts);
      ("replayed", st.replayed);
      ("poisoned", Hashtbl.length st.poisoned);
    ]

(* -- connection bookkeeping (callers hold the lock) --------------------- *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    st.conns <- List.filter (fun c -> c != conn) st.conns;
    (match conn.waiting with
    | Some (fingerprint, id) ->
        conn.waiting <- None;
        (* The journal must stop owing this request: its client is gone,
           so a restart should not replay it as a ghost. *)
        journal st (Journal.Dropped { id });
        Scheduler.drop_member st.sched ~fingerprint ~id
    | None -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Responses block until written: payloads are tiny and clients read
   eagerly, so this cannot stall the loop in practice, and it spares the
   loop a per-connection outbound queue.  A vanished peer just drops the
   member. *)
let write_resp st conn resp =
  conn.alive
  &&
  try
    Unix.clear_nonblock conn.fd;
    Protocol.write_response conn.fd resp;
    Unix.set_nonblock conn.fd;
    true
  with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) ->
    close_conn st conn;
    false

let respond_and_close st conn resp =
  ignore (write_resp st conn resp);
  close_conn st conn

(* Ghost-aware variants: a [None] payload has nobody to talk to. *)
let notify st (m : payload Scheduler.member) resp =
  match m.payload with Some conn -> ignore (write_resp st conn resp) | None -> ()

let answer st (m : payload Scheduler.member) resp =
  match m.payload with Some conn -> respond_and_close st conn resp | None -> ()

(* -- request handling --------------------------------------------------- *)

let reject st conn ~id reason =
  ignore (Scheduler.refuse st.sched reason);
  Trace.request_rejected st.trace ~id
    ~reason:(Protocol.reject_reason_to_string reason);
  respond_and_close st conn (Protocol.Rejected { id; reason })

(* The deterministic chaos hook: SIGKILL ourselves the instant the Nth
   accepted request of this boot has been acknowledged.  Under the
   supervisor this is a scripted crash at a request boundary — the
   journal holds the accepted-but-unanswered request, and the oracle
   requires its eventual answer to be byte-identical. *)
let chaos_tick st =
  st.accepted_this_boot <- st.accepted_this_boot + 1;
  match st.config.die_after_requests with
  | Some n when st.accepted_this_boot >= n ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

let handle_tune st conn ~id ~tenant ~deadline_ms spec =
  let fingerprint = Protocol.fingerprint spec in
  Trace.request_received st.trace ~id ~tenant ~fingerprint;
  (* Scheduler members carry monotonic deadlines (a wall-clock step must
     not expire — or resurrect — queued requests); the journal persists
     the wall-clock equivalent, the only clock that survives a restart. *)
  let now = Clock.now () in
  let deadline =
    Option.map (fun ms -> now +. (float_of_int ms /. 1000.0)) deadline_ms
  in
  let wall_deadline =
    Option.map
      (fun ms -> Clock.wall () +. (float_of_int ms /. 1000.0))
      deadline_ms
  in
  match Hashtbl.find_opt st.poisoned fingerprint with
  | Some crashes -> reject st conn ~id (Protocol.Poisoned { crashes })
  | None ->
      if deadline_ms <> None && Option.get deadline <= now then
        reject st conn ~id Protocol.Deadline_exceeded
      else
        let verdict =
          match st.runner.Runner.validate spec with
          | Error msg -> Scheduler.refuse st.sched (Protocol.Unsupported msg)
          | Ok () ->
              Scheduler.submit st.sched ~spec ~fingerprint
                { Scheduler.id; tenant; deadline; payload = Some conn }
        in
        (match verdict with
        | Scheduler.Fresh ->
            conn.waiting <- Some (fingerprint, id);
            (* Write-ahead: the journal knows the request before the
               client does, so an acknowledged request can always be
               replayed. *)
            journal st
              (Journal.Accepted
                 { id; tenant; fingerprint; spec; deadline = wall_deadline });
            let queue_depth = Scheduler.queue_depth st.sched in
            Trace.request_admitted st.trace ~id ~queue_depth;
            ignore (write_resp st conn (Protocol.Admitted { id; queue_depth }));
            chaos_tick st
        | Scheduler.Joined { leader } ->
            conn.waiting <- Some (fingerprint, id);
            journal st
              (Journal.Accepted
                 { id; tenant; fingerprint; spec; deadline = wall_deadline });
            Trace.request_coalesced st.trace ~id ~leader;
            (if write_resp st conn (Protocol.Coalesced { id; leader }) then
               if st.running_fp = Some fingerprint then
                 ignore (write_resp st conn (Protocol.Started { id })));
            chaos_tick st
        | Scheduler.Memoized { text; speedup; evaluations } ->
            Trace.request_cached st.trace ~id;
            respond_and_close st conn
              (Protocol.Result
                 {
                   id;
                   fingerprint;
                   origin = Protocol.Cached;
                   group_size = 1;
                   speedup;
                   evaluations;
                   run_s = 0.0;
                   text;
                 })
        | Scheduler.Refused reason ->
            Trace.request_rejected st.trace ~id
              ~reason:(Protocol.reject_reason_to_string reason);
            respond_and_close st conn (Protocol.Rejected { id; reason }))

let handle_frame st conn frame =
  match Protocol.request_of_frame frame with
  | Error (Protocol.Version_mismatch { got }) ->
      reject st conn ~id:"?" (Protocol.Bad_version { got })
  | Error (Protocol.Malformed_frame reason) ->
      reject st conn ~id:"?" (Protocol.Malformed reason)
  | Ok Protocol.Ping -> ignore (write_resp st conn Protocol.Pong)
  | Ok Protocol.Stats ->
      ignore (write_resp st conn (Protocol.Stats_reply (counters st)))
  | Ok Protocol.Shutdown ->
      st.stop <- true;
      Scheduler.drain st.sched;
      respond_and_close st conn Protocol.Bye
  | Ok (Protocol.Tune { id; tenant; spec; deadline_ms }) ->
      handle_tune st conn ~id ~tenant ~deadline_ms spec

let pump_conn st conn =
  let { Framing.Decoder.frames; state } =
    Framing.Decoder.pump conn.decoder conn.fd
  in
  List.iter (fun f -> if conn.alive then handle_frame st conn f) frames;
  match state with
  | `Open -> ()
  | `Closed -> close_conn st conn
  | `Error e ->
      if conn.alive then
        reject st conn ~id:"?" (Protocol.Malformed (Framing.error_to_string e))

let accept_new st =
  let rec loop () =
    match Unix.accept ~cloexec:true st.listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <-
          {
            fd;
            decoder = Framing.Decoder.create ~max_bytes:Protocol.max_frame_bytes ();
            waiting = None;
            alive = true;
          }
          :: st.conns;
        loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

(* Sweep deadline-expired members: each gets the typed rejection, and
   the journal stops owing it.  Callers hold the lock. *)
let sweep_deadlines st =
  match Scheduler.expire st.sched ~now:(Clock.now ()) with
  | [] -> ()
  | gone ->
      List.iter
        (fun (_fp, (m : payload Scheduler.member)) ->
          Trace.request_expired st.trace ~id:m.Scheduler.id;
          journal st (Journal.Dropped { id = m.Scheduler.id });
          (match m.payload with
          | Some conn -> conn.waiting <- None
          | None -> ());
          answer st m
            (Protocol.Rejected
               { id = m.Scheduler.id; reason = Protocol.Deadline_exceeded }))
        gone

(* One drain step: wait up to [timeout] for socket activity, accept
   every pending connection, pump every readable one.  Callers hold the
   lock. *)
let drain_sockets st ~timeout =
  let conns = st.conns in
  let fds = st.listener :: List.map (fun c -> c.fd) conns in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | readable, _, _ ->
      if List.memq st.listener readable then accept_new st;
      List.iter
        (fun c -> if c.alive && List.memq c.fd readable then pump_conn st c)
        conns

(* -- group execution ---------------------------------------------------- *)

let cancel_group st ~fingerprint =
  let members = Scheduler.cancel st.sched ~fingerprint in
  journal st (Journal.Cancelled { fingerprint });
  Trace.group_cancelled st.trace ~fingerprint;
  (* Normally empty — cancellation fires because everyone left — but any
     racer gets a clean terminal rather than silence. *)
  List.iter
    (fun (m : payload Scheduler.member) ->
      (match m.payload with Some c -> c.waiting <- None | None -> ());
      answer st m
        (Protocol.Server_error { id = m.Scheduler.id; message = "cancelled" }))
    members

let run_group st (spec, fingerprint) =
  let proceed =
    with_lock st (fun () ->
        sweep_deadlines st;
        match Scheduler.members st.sched ~fingerprint with
        | [] ->
            (* Everyone expired or vanished while it was queued. *)
            cancel_group st ~fingerprint;
            false
        | members ->
            st.running_fp <- Some fingerprint;
            st.run_ticks <- 0;
            journal st (Journal.Started { fingerprint });
            Trace.group_started st.trace ~fingerprint
              ~members:(List.length members);
            List.iter
              (fun (m : payload Scheduler.member) ->
                notify st m (Protocol.Started { id = m.Scheduler.id }))
              members;
            true)
  in
  if proceed then begin
    let tick () =
      with_lock st @@ fun () ->
      st.run_ticks <- st.run_ticks + 1;
      if st.run_ticks mod st.config.progress_every = 0 then
        List.iter
          (fun (m : payload Scheduler.member) ->
            notify st m
              (Protocol.Progress { id = m.Scheduler.id; ticks = st.run_ticks }))
          (Scheduler.members st.sched ~fingerprint);
      sweep_deadlines st;
      drain_sockets st ~timeout:0.0;
      (* Nobody left waiting (and no ghost holding the group open):
         abandon the search at this evaluation boundary. *)
      if Scheduler.members st.sched ~fingerprint = [] then
        raise (Runner.Cancelled fingerprint)
    in
    let t0 = Clock.now () in
    let result =
      match
        timed st "serve.run" (fun () ->
            st.runner.Runner.run spec ~fingerprint ~tick)
      with
      | result -> `Finished result
      | exception Runner.Cancelled _ -> `Cancelled
    in
    let run_s = Clock.now () -. t0 in
    with_lock st @@ fun () ->
    st.running_fp <- None;
    match result with
    | `Cancelled -> cancel_group st ~fingerprint
    | `Finished (Ok outcome) ->
        (* Durability order: journal first, then answer — a client may
           never hold a result the journal could fail to replay. *)
        journal st (Journal.Completed { fingerprint; outcome });
        let members = Scheduler.complete st.sched ~fingerprint outcome in
        let group_size = List.length members in
        Trace.group_finished st.trace ~fingerprint ~members:group_size ~run_s;
        let leader =
          match members with m :: _ -> m.Scheduler.id | [] -> ""
        in
        List.iteri
          (fun i (m : payload Scheduler.member) ->
            let origin =
              if i = 0 then Protocol.Fresh else Protocol.Coalesced_with leader
            in
            (match m.payload with Some c -> c.waiting <- None | None -> ());
            answer st m
              (Protocol.Result
                 {
                   id = m.Scheduler.id;
                   fingerprint;
                   origin;
                   group_size;
                   speedup = outcome.Scheduler.speedup;
                   evaluations = outcome.Scheduler.evaluations;
                   run_s;
                   text = outcome.Scheduler.text;
                 }))
          members
    | `Finished (Error message) ->
        journal st (Journal.Failed { fingerprint });
        let members = Scheduler.fail st.sched ~fingerprint in
        Trace.group_finished st.trace ~fingerprint
          ~members:(List.length members) ~run_s;
        List.iter
          (fun (m : payload Scheduler.member) ->
            (match m.payload with Some c -> c.waiting <- None | None -> ());
            answer st m
              (Protocol.Server_error { id = m.Scheduler.id; message }))
          members
  end

(* -- startup: socket claim and journal recovery ------------------------- *)

(* A crashed daemon leaves its socket file behind; a live one answers on
   it.  Probe before unlinking: refused/dead ⇒ stale, reclaim; answered
   ⇒ another daemon is serving and clobbering its socket would orphan
   its clients. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
        Unix.close fd;
        failwith
          (Printf.sprintf "Server.serve: %s is in use by a live daemon" path)
    | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ())
  end

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let journal_path state_dir = Filename.concat state_dir "journal"

(* Boot-time recovery: replay the journal, seed the durable memo, mark
   poisoned fingerprints (appending the quarantine record for newly
   condemned ones), and re-enqueue every unfinished request as a ghost
   member.  Returns after appending this boot's [Boot] record. *)
let recover st (replay : Journal.replay) =
  List.iter
    (fun (fingerprint, outcome) -> Scheduler.remember st.sched ~fingerprint outcome)
    replay.Journal.memo;
  List.iter
    (fun (fp, crashes) -> Hashtbl.replace st.poisoned fp crashes)
    replay.Journal.poisoned;
  List.iter
    (fun (fp, crashes) ->
      if crashes >= st.config.poison_threshold && not (Hashtbl.mem st.poisoned fp)
      then begin
        Hashtbl.replace st.poisoned fp crashes;
        journal st (Journal.Poisoned { fingerprint = fp; crashes })
      end)
    replay.Journal.crashes;
  List.iter
    (fun (p : Journal.pending) ->
      if Hashtbl.mem st.poisoned p.Journal.p_fingerprint then
        (* Its client learns the verdict on reconnect; the journal stops
           owing the stream. *)
        journal st (Journal.Dropped { id = p.Journal.p_id })
      else
        match
          Scheduler.submit st.sched ~spec:p.Journal.p_spec
            ~fingerprint:p.Journal.p_fingerprint
            {
              Scheduler.id = p.Journal.p_id;
              tenant = p.Journal.p_tenant;
              (* Journaled deadlines are wall-clock; members carry
                 monotonic ones.  Re-base the remaining budget onto the
                 monotonic clock at replay time. *)
              deadline =
                Option.map
                  (fun d -> Clock.now () +. (d -. Clock.wall ()))
                  p.Journal.p_deadline;
              payload = None;
            }
        with
        | Scheduler.Fresh | Scheduler.Joined _ ->
            st.replayed <- st.replayed + 1;
            Trace.request_replayed st.trace ~id:p.Journal.p_id
              ~fingerprint:p.Journal.p_fingerprint
        | Scheduler.Memoized _ | Scheduler.Refused _ ->
            (* Already answerable (or inadmissible): nothing to re-run. *)
            journal st (Journal.Dropped { id = p.Journal.p_id }))
    replay.Journal.pending;
  st.restarts <- replay.Journal.boots;
  journal st Journal.Boot;
  if st.journal <> None then
    Trace.server_recovered st.trace ~restarts:st.restarts ~replayed:st.replayed
      ~poisoned:(Hashtbl.length st.poisoned);
  if st.restarts > 0 || st.replayed > 0 then
    Printf.eprintf "serve: recovered journal (boot %d, %d replayed, %d poisoned)\n%!"
      (st.restarts + 1) st.replayed
      (Hashtbl.length st.poisoned)

(* -- lifecycle ---------------------------------------------------------- *)

let serve ?trace ?telemetry ?on_ready config runner =
  claim_socket config.socket_path;
  let journal_handle, replay =
    match config.state_dir with
    | None -> (None, Journal.empty_replay)
    | Some dir ->
        mkdir_p dir;
        let path = journal_path dir in
        let warn ~line ~reason =
          Printf.eprintf "serve: journal %s line %d: %s\n%!" path line reason
        in
        let replay = Journal.load ~warn path in
        (Some (Journal.open_ path), replay)
  in
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener config.backlog;
  Unix.set_nonblock listener;
  let st =
    {
      config;
      runner;
      trace;
      telemetry;
      listener;
      sched = Scheduler.create ~max_queue:config.max_queue;
      journal = journal_handle;
      poisoned = Hashtbl.create 4;
      restarts = 0;
      replayed = 0;
      accepted_this_boot = 0;
      conns = [];
      stop = false;
      running_fp = None;
      run_ticks = 0;
      lock = Mutex.create ();
    }
  in
  recover st replay;
  let stop_now _ =
    st.stop <- true;
    Scheduler.drain st.sched
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_now) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_now) in
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.conns;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (match st.journal with Some j -> Journal.close j | None -> ());
      try Sys.remove config.socket_path with Sys_error _ -> ())
  @@ fun () ->
  (match on_ready with Some f -> f () | None -> ());
  let rec loop () =
    match with_lock st (fun () -> Scheduler.next st.sched) with
    | Some group ->
        run_group st group;
        loop ()
    | None ->
        if st.stop && with_lock st (fun () -> Scheduler.idle st.sched) then ()
        else begin
          timed st "serve.wait" (fun () ->
              with_lock st (fun () ->
                  sweep_deadlines st;
                  drain_sockets st ~timeout:0.2));
          loop ()
        end
  in
  loop ();
  counters st
