(** The tuning-as-a-service daemon.

    One single-threaded event loop over a Unix-domain socket: clients
    speak {!Protocol} (v1 or v2) in {!Ft_framing.Framing} frames,
    requests coalesce in a {!Scheduler}, and searches execute one at a
    time through a {!Runner}.  Sockets are drained both between groups
    and {e during} a search — the runner's [tick] callback re-enters the
    drain (serialized by a mutex, since engine progress callbacks may
    arrive from worker domains) — so a request arriving mid-search for
    the in-flight fingerprint still joins that search's group.

    Lifecycle per tune request:
    receive → [Admitted]/[Coalesced]/[Result (cached)]/[Rejected] →
    [Started] when its group is picked → [Progress] heartbeats →
    terminal [Result] (or [Server_error]).  A client that disconnects
    while waiting is dropped from its group.

    {2 Crash safety}

    With [state_dir] set, the daemon keeps a write-ahead {!Journal}
    there: every [Fresh]/[Joined] request is journalled {e before} its
    acknowledgement is written, group completions are journalled before
    results are delivered, and on boot the journal is replayed —
    completed outcomes seed the scheduler memo, unfinished requests are
    re-enqueued as {e ghost} members (no live socket; they hold their
    group open so the work runs to completion, and their clients collect
    the result from the memo by resending the same request), and a
    fingerprint whose run crashed the daemon [poison_threshold] times is
    quarantined: all later submissions get the typed
    {!Protocol.Poisoned} rejection instead of crashing the daemon again.
    Pair [state_dir] with {!Runner.make_durable} and a restarted daemon
    additionally resumes a half-finished search from its last
    checkpointed evaluation.

    {2 Deadlines and cancellation}

    A v2 request may carry [deadline_ms]; an expired member is answered
    with {!Protocol.Deadline_exceeded} at the next sweep (every tick and
    every idle-loop turn).  A group whose members {e all} disconnected
    or expired is abandoned at the next evaluation boundary
    ({!Runner.Cancelled}) rather than searched to completion.

    Shutdown: a [Shutdown] request (answered with [Bye]) or
    SIGTERM/SIGINT puts the scheduler into draining — new work is
    refused, queued groups run to completion — then the loop exits. *)

type config = {
  socket_path : string;
  max_queue : int;  (** admission bound on waiting requests *)
  backlog : int;  (** [Unix.listen] backlog *)
  progress_every : int;
      (** engine jobs between [Progress] heartbeats (and socket drains
          are attempted on every job regardless) *)
  state_dir : string option;
      (** where the write-ahead journal lives (created if absent);
          [None] runs without durability *)
  die_after_requests : int option;
      (** deterministic chaos hook: SIGKILL the process the moment the
          Nth accepted request of this boot has been acknowledged *)
  poison_threshold : int;
      (** journalled daemon crashes during one fingerprint's run before
          that fingerprint is quarantined *)
}

val default_config : socket_path:string -> config
(** [max_queue] 256, [backlog] 64, [progress_every] 25, no [state_dir],
    no chaos, [poison_threshold] 3. *)

val serve :
  ?trace:Ft_obs.Trace.t ->
  ?telemetry:Ft_engine.Telemetry.t ->
  ?on_ready:(unit -> unit) ->
  config ->
  Runner.t ->
  (string * int) list
(** Bind, listen, recover the journal, run to shutdown, unlink the
    socket, and return the scheduler's lifetime counters plus the
    recovery counters [restarts], [replayed] and [poisoned].  An
    existing socket file is probed first: a dead one is reclaimed, a
    {e live} daemon answering on it makes [serve] fail rather than
    orphan that daemon's clients.  [on_ready] fires once the socket is
    accepting — the hook tests and scripts use instead of polling.
    [telemetry] accumulates [serve.wait] (blocked in select) and
    [serve.run] (searching) timers; [trace] records the request
    lifecycle events. *)
