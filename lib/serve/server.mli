(** The tuning-as-a-service daemon.

    One single-threaded event loop over a Unix-domain socket: clients
    speak {!Protocol} v1 in {!Ft_framing.Framing} frames, requests
    coalesce in a {!Scheduler}, and searches execute one at a time
    through a {!Runner}.  Sockets are drained both between groups and
    {e during} a search — the runner's [tick] callback re-enters the
    drain (serialized by a mutex, since engine progress callbacks may
    arrive from worker domains) — so a request arriving mid-search for
    the in-flight fingerprint still joins that search's group.

    Lifecycle per tune request:
    receive → [Admitted]/[Coalesced]/[Result (cached)]/[Rejected] →
    [Started] when its group is picked → [Progress] heartbeats →
    terminal [Result] (or [Server_error]).  A client that disconnects
    while waiting is dropped from its group.

    Shutdown: a [Shutdown] request (answered with [Bye]) or
    SIGTERM/SIGINT puts the scheduler into draining — new work is
    refused, queued groups run to completion — then the loop exits. *)

type config = {
  socket_path : string;
  max_queue : int;  (** admission bound on waiting requests *)
  backlog : int;  (** [Unix.listen] backlog *)
  progress_every : int;
      (** engine jobs between [Progress] heartbeats (and socket drains
          are attempted on every job regardless) *)
}

val default_config : socket_path:string -> config
(** [max_queue] 256, [backlog] 64, [progress_every] 25. *)

val serve :
  ?trace:Ft_obs.Trace.t ->
  ?telemetry:Ft_engine.Telemetry.t ->
  ?on_ready:(unit -> unit) ->
  config ->
  Runner.t ->
  (string * int) list
(** Bind (replacing a stale socket file), listen, run to shutdown,
    unlink the socket, and return the scheduler's lifetime counters.
    [on_ready] fires once the socket is accepting — the hook tests and
    scripts use instead of polling.  [telemetry] accumulates
    [serve.wait] (blocked in select) and [serve.run] (searching)
    timers; [trace] records the request lifecycle events. *)
