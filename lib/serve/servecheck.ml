(* The kill-restart equivalence oracle for the daemon.  See the .mli for
   the legs; the implementation is one fork-heavy driver, so it must run
   before the calling process spawns any domain (the solo reference
   searches — the only engine work done in this process — run after
   every fork). *)

type leg_report = {
  leg : string;
  generations : int;
  failures : string list;
}

type outcome = {
  requests : int;
  legs : leg_report list;
}

let passed o = List.for_all (fun l -> l.failures = []) o.legs

let render o =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "servecheck: %d requests per leg\n" o.requests;
  List.iter
    (fun l ->
      Printf.bprintf buf "  %-28s %d generation%s: %s\n" l.leg l.generations
        (if l.generations = 1 then "" else "s")
        (if l.failures = [] then "OK" else "FAILED");
      List.iter (fun f -> Printf.bprintf buf "    - %s\n" f) l.failures)
    o.legs;
  Buffer.contents buf

(* -- one supervised daemon in a forked process --------------------------- *)

(* Chaos knobs for one leg's daemon.  [die_after] and [die_at_tick] arm
   only in generation 0 (the equivalence legs kill once, then let the
   respawn finish the work); [poison_fp] kills in every generation (the
   poison leg needs the crash loop). *)
type chaos = {
  die_after : int option;  (* SIGKILL after Nth accepted ack *)
  die_at_tick : int option;  (* SIGKILL at Nth engine job of a run *)
  poison_fp : string option;  (* SIGKILL whenever this fingerprint runs *)
}

let no_chaos = { die_after = None; die_at_tick = None; poison_fp = None }

let suicide () = Unix.kill (Unix.getpid ()) Sys.sigkill

let wrap_runner chaos ~generation (r : Runner.t) =
  let run spec ~fingerprint ~tick =
    if chaos.poison_fp = Some fingerprint then suicide ();
    let ticks = ref 0 in
    let tick () =
      incr ticks;
      (match chaos.die_at_tick with
      | Some t when generation = 0 && !ticks = t -> suicide ()
      | _ -> ());
      tick ()
    in
    r.Runner.run spec ~fingerprint ~tick
  in
  { r with Runner.run }

let rec waitpid pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (EINTR, _, _) -> waitpid pid

(* Fork a supervised daemon.  The child process runs the supervisor; the
   supervisor forks the daemon generations; engines are built only inside
   those grandchildren (via [make_runner]), keeping every forking process
   domain-free.  The child exits 0 iff the last daemon drained cleanly. *)
let fork_daemon ~socket_path ~state_dir ~make_runner chaos =
  match Unix.fork () with
  | 0 ->
      let code =
        try
          let daemon ~generation =
            let runner = wrap_runner chaos ~generation (make_runner ~state_dir) in
            let config =
              {
                (Server.default_config ~socket_path) with
                state_dir = Some state_dir;
                die_after_requests =
                  (if generation = 0 then chaos.die_after else None);
              }
            in
            ignore (Server.serve config runner);
            0
          in
          let sup =
            { Supervisor.default_config with respawn_budget = 24; seed = 11 }
          in
          let outcome = Supervisor.run sup daemon in
          if outcome.Supervisor.clean then 0 else 1
        with exn ->
          Printf.eprintf "servecheck daemon: %s\n%!" (Printexc.to_string exn);
          125
      in
      Unix._exit code
  | pid -> pid

(* -- one leg: drive the request list against a supervised daemon -------- *)

let fresh_dir scratch name =
  let dir = Filename.concat scratch name in
  Unix.mkdir dir 0o700;
  dir

(* Send every request in order with reconnect-and-resume, then shut the
   daemon down and reap the supervisor.  Returns per-id terminal
   outcomes: [Ok text] or the typed failure. *)
let drive ~scratch ~make_runner ~specs ~leg chaos =
  let dir = fresh_dir scratch leg in
  let socket_path = Filename.concat dir "sock" in
  let state_dir = Filename.concat dir "state" in
  let pid = fork_daemon ~socket_path ~state_dir ~make_runner chaos in
  let results =
    List.map
      (fun (id, tenant, spec) ->
        let r =
          Client.tune_persistent ~attempts:30 ~retry_for:20.0 ~seed:5
            ~socket_path ~id ~tenant spec
        in
        (id, Stdlib.Result.map (fun p -> p.Protocol.text) r))
      specs
  in
  (match Client.shutdown ~retry_for:20.0 socket_path with
  | Stdlib.Ok () -> ()
  | Stdlib.Error _ -> Unix.kill pid Sys.sigterm);
  let status = waitpid pid in
  let generations =
    (* The journal is the daemon's boot ledger; one Boot per generation. *)
    (Journal.load (Filename.concat state_dir "journal")).Journal.boots
  in
  (results, status, generations)

let describe = function
  | Stdlib.Ok _ -> "result"
  | Stdlib.Error f -> Client.failure_to_string f

let compare_leg ~reference (results, status, generations) ~leg =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "supervisor exited %d" n
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> fail "supervisor killed by signal %d" s);
  List.iter2
    (fun (id, got) (id', want) ->
      assert (id = id');
      match (got, want) with
      | Stdlib.Ok g, Stdlib.Ok w ->
          if g <> w then fail "%s: delivered bytes diverge from reference" id
      | got, want ->
          if describe got <> describe want then
            fail "%s: got %s, reference got %s" id (describe got)
              (describe want))
    results reference;
  { leg; generations; failures = List.rev !failures }

(* -- the oracle ---------------------------------------------------------- *)

let run ?kill_points ?(mid_run_tick = 5) ~scratch ~make_runner ~specs
    ?poison () =
  let n = List.length specs in
  let kill_points =
    match kill_points with
    | Some ps -> List.filter (fun p -> p >= 1 && p <= n) ps
    | None -> List.init n (fun i -> i + 1)
  in
  (* Reference: an unkilled supervised daemon (generation 0 drains). *)
  let ref_results, ref_status, ref_gens =
    drive ~scratch ~make_runner ~specs ~leg:"reference" no_chaos
  in
  let ref_report =
    compare_leg ~reference:ref_results
      (ref_results, ref_status, ref_gens)
      ~leg:"reference"
  in
  (* Kill at every requested ack boundary. *)
  let kill_reports =
    List.map
      (fun p ->
        let leg = Printf.sprintf "kill at ack %d" p in
        compare_leg ~reference:ref_results
          (drive ~scratch ~make_runner ~specs ~leg:(Printf.sprintf "ack%d" p)
             { no_chaos with die_after = Some p })
          ~leg)
      kill_points
  in
  (* Kill mid-search: the daemon dies between evaluations of the first
     request's run, exercising checkpoint resume on restart. *)
  let midrun_report =
    compare_leg ~reference:ref_results
      (drive ~scratch ~make_runner ~specs ~leg:"midrun"
         { no_chaos with die_at_tick = Some mid_run_tick })
      ~leg:(Printf.sprintf "kill at engine job %d" mid_run_tick)
  in
  (* Poison: a spec that kills the daemon on every attempt must end as a
     typed rejection after the crash-count threshold, with the daemon
     still healthy for the good specs that follow it. *)
  let poison_reports =
    match poison with
    | None -> []
    | Some (pid_, ptenant, pspec) ->
        let poison_fp = Protocol.fingerprint pspec in
        let all = ((pid_, ptenant, pspec) :: specs : (string * string * Protocol.tune_spec) list) in
        let results, status, generations =
          drive ~scratch ~make_runner ~specs:all ~leg:"poison"
            { no_chaos with poison_fp = Some poison_fp }
        in
        let failures = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> failures := s :: !failures) fmt
        in
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ -> fail "supervisor did not exit cleanly");
        (match results with
        | (id, first) :: rest ->
            (match first with
            | Stdlib.Error (Client.Rejected (Protocol.Poisoned { crashes }))
              ->
                if crashes < 3 then
                  fail "%s: poisoned after only %d crashes" id crashes
            | other ->
                fail "%s: expected a poisoned rejection, got %s" id
                  (describe other));
            List.iter2
              (fun (id, got) (id', want) ->
                assert (id = id');
                match (got, want) with
                | Stdlib.Ok g, Stdlib.Ok w ->
                    if g <> w then
                      fail "%s: bytes diverge from reference after poisoning"
                        id
                | got, want ->
                    if describe got <> describe want then
                      fail "%s: got %s, reference got %s" id (describe got)
                        (describe want))
              rest ref_results
        | [] -> fail "poison leg produced no results");
        [ { leg = "poison quarantine"; generations; failures = List.rev !failures } ]
  in
  (* Solo ground truth: the served bytes must equal a direct in-process
     search (runs after every fork above, so domains are safe now). *)
  let solo_runner = make_runner ~state_dir:(fresh_dir scratch "solo") in
  let solo_failures =
    List.filter_map
      (fun (id, _tenant, spec) ->
        let fingerprint = Protocol.fingerprint spec in
        match solo_runner.Runner.run spec ~fingerprint ~tick:(fun () -> ()) with
        | Stdlib.Ok o -> (
            match List.assoc id ref_results with
            | Stdlib.Ok text when text = o.Scheduler.text -> None
            | Stdlib.Ok _ -> Some (id ^ ": served bytes diverge from solo run")
            | Stdlib.Error f ->
                Some
                  (Printf.sprintf "%s: solo run succeeded but service said %s"
                     id (Client.failure_to_string f)))
        | Stdlib.Error e ->
            Some (Printf.sprintf "%s: solo run failed: %s" id e))
      specs
  in
  let solo_report =
    { leg = "solo equivalence"; generations = 0; failures = solo_failures }
  in
  {
    requests = n;
    legs =
      (ref_report :: kill_reports)
      @ [ midrun_report ] @ poison_reports @ [ solo_report ];
  }
