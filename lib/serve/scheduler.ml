type outcome = { text : string; speedup : float; evaluations : int }

type 'a member = {
  id : string;
  tenant : string;
  deadline : float option;  (* absolute Ft_util.Clock.now seconds *)
  payload : 'a;
}

type state = Queued | Running

type 'a group = {
  spec : Protocol.tune_spec;
  leader : string;
  mutable state : state;
  mutable members_rev : 'a member list;
}

type 'a t = {
  max_queue : int;
  groups : (string, 'a group) Hashtbl.t;  (* fingerprint → live group *)
  pending : (string, string Queue.t) Hashtbl.t;  (* tenant → queued fps *)
  mutable ring : string list;  (* tenants in first-seen order, oldest first *)
  mutable cursor : int;  (* ring index served next *)
  memo : (string, outcome) Hashtbl.t;
  mutable is_draining : bool;
  mutable waiting : int;
  mutable received : int;
  mutable admitted : int;
  mutable coalesced : int;
  mutable memoized : int;
  mutable rejected : int;
  mutable completed : int;
  mutable expired : int;
  mutable cancelled : int;
}

let create ~max_queue =
  if max_queue < 1 then
    invalid_arg "Scheduler.create: max_queue must be positive";
  {
    max_queue;
    groups = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    ring = [];
    cursor = 0;
    memo = Hashtbl.create 64;
    is_draining = false;
    waiting = 0;
    received = 0;
    admitted = 0;
    coalesced = 0;
    memoized = 0;
    rejected = 0;
    completed = 0;
    expired = 0;
    cancelled = 0;
  }

type verdict =
  | Fresh
  | Joined of { leader : string }
  | Memoized of outcome
  | Refused of Protocol.reject_reason

let tenant_queue t tenant =
  match Hashtbl.find_opt t.pending tenant with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.pending tenant q;
      t.ring <- t.ring @ [ tenant ];
      q

let submit t ~spec ~fingerprint member =
  t.received <- t.received + 1;
  if t.is_draining then (
    t.rejected <- t.rejected + 1;
    Refused Protocol.Draining)
  else
    match Hashtbl.find_opt t.memo fingerprint with
    | Some outcome ->
        t.memoized <- t.memoized + 1;
        Memoized outcome
    | None ->
        if t.waiting >= t.max_queue then (
          t.rejected <- t.rejected + 1;
          Refused (Protocol.Queue_full { limit = t.max_queue }))
        else (
          t.waiting <- t.waiting + 1;
          match Hashtbl.find_opt t.groups fingerprint with
          | Some group ->
              group.members_rev <- member :: group.members_rev;
              t.coalesced <- t.coalesced + 1;
              Joined { leader = group.leader }
          | None ->
              Hashtbl.replace t.groups fingerprint
                {
                  spec;
                  leader = member.id;
                  state = Queued;
                  members_rev = [ member ];
                };
              Queue.push fingerprint (tenant_queue t member.tenant);
              t.admitted <- t.admitted + 1;
              Fresh)

let refuse t reason =
  t.received <- t.received + 1;
  t.rejected <- t.rejected + 1;
  Refused reason

let remember t ~fingerprint outcome = Hashtbl.replace t.memo fingerprint outcome
let known t ~fingerprint = Hashtbl.find_opt t.memo fingerprint

let members t ~fingerprint =
  match Hashtbl.find_opt t.groups fingerprint with
  | None -> []
  | Some group -> List.rev group.members_rev

(* Oldest still-queued group of a tenant.  Cancelled groups (last member
   dropped) leave stale fingerprints behind; they are skipped here. *)
let rec pop_queued t q =
  match Queue.take_opt q with
  | None -> None
  | Some fp -> (
      match Hashtbl.find_opt t.groups fp with
      | Some group when group.state = Queued -> Some (fp, group)
      | _ -> pop_queued t q)

let next t =
  let tenants = Array.of_list t.ring in
  let n = Array.length tenants in
  let rec scan step =
    if step >= n then None
    else
      let i = (t.cursor + step) mod n in
      match Hashtbl.find_opt t.pending tenants.(i) with
      | None -> scan (step + 1)
      | Some q -> (
          match pop_queued t q with
          | None -> scan (step + 1)
          | Some (fp, group) ->
              group.state <- Running;
              t.cursor <- (i + 1) mod n;
              Some (group.spec, fp))
  in
  if n = 0 then None else scan 0

let take_members t fingerprint =
  match Hashtbl.find_opt t.groups fingerprint with
  | None -> []
  | Some group ->
      Hashtbl.remove t.groups fingerprint;
      let members = List.rev group.members_rev in
      t.waiting <- t.waiting - List.length members;
      members

let complete t ~fingerprint outcome =
  Hashtbl.replace t.memo fingerprint outcome;
  t.completed <- t.completed + 1;
  take_members t fingerprint

let fail t ~fingerprint = take_members t fingerprint

(* Sweep every group for members whose deadline has passed, removing
   them (the server answers each with a typed rejection).  A queued
   group emptied by the sweep is dropped like [drop_member] would; a
   running group emptied here is the server's business to cancel at its
   next tick. *)
let expire t ~now =
  let gone = ref [] in
  Hashtbl.iter
    (fun fp group ->
      let expired, kept =
        List.partition
          (fun m ->
            match m.deadline with Some d -> d <= now | None -> false)
          group.members_rev
      in
      if expired <> [] then begin
        group.members_rev <- kept;
        t.waiting <- t.waiting - List.length expired;
        t.expired <- t.expired + List.length expired;
        List.iter (fun m -> gone := (fp, m) :: !gone) expired;
        if kept = [] && group.state = Queued then Hashtbl.remove t.groups fp
      end)
    (Hashtbl.copy t.groups);
  !gone

(* Abandon a group on purpose (every subscriber disconnected or
   expired): no memo entry — nobody saw a result — and any stragglers
   are returned so the server can forget them. *)
let cancel t ~fingerprint =
  t.cancelled <- t.cancelled + 1;
  take_members t fingerprint

let drop_member t ~fingerprint ~id =
  match Hashtbl.find_opt t.groups fingerprint with
  | None -> ()
  | Some group ->
      let before = List.length group.members_rev in
      group.members_rev <-
        List.filter (fun m -> m.id <> id) group.members_rev;
      let dropped = before - List.length group.members_rev in
      t.waiting <- t.waiting - dropped;
      if group.members_rev = [] && group.state = Queued then
        Hashtbl.remove t.groups fingerprint

let drain t = t.is_draining <- true
let draining t = t.is_draining
let queue_depth t = t.waiting
let idle t = Hashtbl.length t.groups = 0

let counters t =
  [
    ("received", t.received);
    ("admitted", t.admitted);
    ("coalesced", t.coalesced);
    ("memoized", t.memoized);
    ("rejected", t.rejected);
    ("groups_completed", t.completed);
    ("queue_depth", t.waiting);
    ("expired", t.expired);
    ("cancelled", t.cancelled);
  ]
