module Rng = Ft_util.Rng

type config = {
  respawn_budget : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  seed : int;
}

let default_config =
  { respawn_budget = 16; backoff_base_s = 0.05; backoff_cap_s = 2.0; seed = 0 }

type exit_status = Exited of int | Signalled of int

let exit_status_to_string = function
  | Exited code -> Printf.sprintf "exit %d" code
  | Signalled s -> Printf.sprintf "signal %d" s

type outcome = { generations : int; last : exit_status; clean : bool }

(* Capped exponential backoff with deterministic jitter: respawn [k]
   waits [min cap (base·2^k·u)] where [u] ~ U[0.5, 1.5) from a generator
   seeded by [config.seed] — the same schedule every run, but spread so
   a fleet of supervisors sharing a seed base does not thunder. *)
let delay config rng k =
  let base = config.backoff_base_s *. (2.0 ** float_of_int k) in
  Float.min config.backoff_cap_s (base *. (0.5 +. Rng.float rng 1.0))

let delays config n =
  let rng = Rng.create config.seed in
  List.init n (fun k -> delay config rng k)

let wait_child pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED code -> Exited code
    | _, Unix.WSIGNALED s -> Signalled s
    | _, Unix.WSTOPPED _ -> go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let run ?(on_exit = fun ~generation:_ _ -> ()) config daemon =
  if config.respawn_budget < 0 then
    invalid_arg "Supervisor.run: respawn_budget must be >= 0";
  let rng = Rng.create config.seed in
  let child = ref None in
  let forward signal _ =
    match !child with Some pid -> (try Unix.kill pid signal with Unix.Unix_error _ -> ()) | None -> ()
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint)) in
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
  @@ fun () ->
  let rec spawn generation =
    match Unix.fork () with
    | 0 ->
        (* The child must never return into the supervisor loop. *)
        let code =
          try daemon ~generation
          with exn ->
            Printf.eprintf "serve[gen %d]: uncaught %s\n%!" generation
              (Printexc.to_string exn);
            125
        in
        Unix._exit code
    | pid ->
        child := Some pid;
        let status = wait_child pid in
        child := None;
        on_exit ~generation status;
        let generations = generation + 1 in
        if status = Exited 0 then { generations; last = status; clean = true }
        else if generation >= config.respawn_budget then
          { generations; last = status; clean = false }
        else begin
          ignore (Unix.select [] [] [] (delay config rng generation));
          spawn (generation + 1)
        end
  in
  spawn 0
