module Json = Ft_obs.Json

let format_magic = "ft-serve-journal/1"

type record =
  | Boot
  | Accepted of {
      id : string;
      tenant : string;
      fingerprint : string;
      spec : Protocol.tune_spec;
      deadline : float option;
    }
  | Started of { fingerprint : string }
  | Completed of { fingerprint : string; outcome : Scheduler.outcome }
  | Failed of { fingerprint : string }
  | Cancelled of { fingerprint : string }
  | Dropped of { id : string }
  | Poisoned of { fingerprint : string; crashes : int }

(* -- encoding ----------------------------------------------------------- *)

let obj kind fields = Json.Obj (("kind", Json.String kind) :: fields)

let record_to_json = function
  | Boot -> obj "boot" []
  | Accepted { id; tenant; fingerprint; spec; deadline } ->
      obj "accepted"
        ([
           ("id", Json.String id);
           ("tenant", Json.String tenant);
           ("fingerprint", Json.String fingerprint);
         ]
        @ Protocol.spec_fields spec
        @
        match deadline with
        | None -> []
        | Some d -> [ ("deadline", Json.Float d) ])
  | Started { fingerprint } ->
      obj "started" [ ("fingerprint", Json.String fingerprint) ]
  | Completed { fingerprint; outcome } ->
      obj "completed"
        [
          ("fingerprint", Json.String fingerprint);
          ("text", Json.String outcome.Scheduler.text);
          ("speedup", Json.Float outcome.Scheduler.speedup);
          ("evaluations", Json.Int outcome.Scheduler.evaluations);
        ]
  | Failed { fingerprint } ->
      obj "failed" [ ("fingerprint", Json.String fingerprint) ]
  | Cancelled { fingerprint } ->
      obj "cancelled" [ ("fingerprint", Json.String fingerprint) ]
  | Dropped { id } -> obj "dropped" [ ("id", Json.String id) ]
  | Poisoned { fingerprint; crashes } ->
      obj "poisoned"
        [ ("fingerprint", Json.String fingerprint); ("crashes", Json.Int crashes) ]

(* -- decoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let str json field =
  match Option.bind (Json.member field json) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field '%s'" field)

let int json field =
  match Option.bind (Json.member field json) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing int field '%s'" field)

let num json field =
  match Option.bind (Json.member field json) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing number field '%s'" field)

let record_of_json json =
  let* kind = str json "kind" in
  match kind with
  | "boot" -> Ok Boot
  | "accepted" ->
      let* id = str json "id" in
      let* tenant = str json "tenant" in
      let* fingerprint = str json "fingerprint" in
      let* spec =
        Result.map_error
          (fun e -> Protocol.decode_error_to_string e)
          (Protocol.spec_of_json json)
      in
      let deadline = Option.bind (Json.member "deadline" json) Json.to_float in
      Ok (Accepted { id; tenant; fingerprint; spec; deadline })
  | "started" ->
      let* fingerprint = str json "fingerprint" in
      Ok (Started { fingerprint })
  | "completed" ->
      let* fingerprint = str json "fingerprint" in
      let* text = str json "text" in
      let* speedup = num json "speedup" in
      let* evaluations = int json "evaluations" in
      Ok (Completed { fingerprint; outcome = { Scheduler.text; speedup; evaluations } })
  | "failed" ->
      let* fingerprint = str json "fingerprint" in
      Ok (Failed { fingerprint })
  | "cancelled" ->
      let* fingerprint = str json "fingerprint" in
      Ok (Cancelled { fingerprint })
  | "dropped" ->
      let* id = str json "id" in
      Ok (Dropped { id })
  | "poisoned" ->
      let* fingerprint = str json "fingerprint" in
      let* crashes = int json "crashes" in
      Ok (Poisoned { fingerprint; crashes })
  | kind -> Error (Printf.sprintf "unknown record kind '%s'" kind)

let record_of_line line =
  match Json.of_string line with
  | Error e -> Error ("not a JSON object: " ^ e)
  | Ok json -> record_of_json json

(* -- the append-only file ----------------------------------------------- *)

type t = { path : string; fd : Unix.file_descr }

let open_ path =
  let existed = Sys.file_exists path in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  if not existed then begin
    let header = Bytes.of_string (format_magic ^ "\n") in
    ignore (Unix.write fd header 0 (Bytes.length header));
    Unix.fsync fd
  end;
  { path; fd }

let path t = t.path

(* One record = one newline-terminated line in one [write] call.  O_APPEND
   makes the write atomic with respect to position, and the trailing
   newline is the commit marker [load] trusts: a line the crash tore in
   half has no newline and is discarded as the torn tail. *)
let append t record =
  let line =
    Bytes.of_string (Json.to_string (record_to_json record) ^ "\n")
  in
  let n = Unix.write t.fd line 0 (Bytes.length line) in
  if n <> Bytes.length line then
    failwith ("Journal.append: short write to " ^ t.path);
  Unix.fsync t.fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* -- torn-tail-safe load ------------------------------------------------ *)

exception Corrupt of { path : string; reason : string }

let read_records ?(warn = fun ~line:_ ~reason:_ -> ()) path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* Only newline-terminated lines are trusted: a crash mid-append leaves
     a torn final line, which is reported and skipped — the longest valid
     prefix survives, exactly like [Cache.load]. *)
  let lines = String.split_on_char '\n' contents in
  let rec complete acc n = function
    | [] -> List.rev acc
    | [ last ] ->
        if last <> "" then
          warn ~line:n ~reason:"truncated final line discarded";
        List.rev acc
    | line :: rest -> complete ((n, line) :: acc) (n + 1) rest
  in
  match complete [] 1 lines with
  | [] -> raise (Corrupt { path; reason = "empty file (missing magic header)" })
  | (_, header) :: body ->
      if header <> format_magic then
        raise
          (Corrupt
             { path; reason = Printf.sprintf "bad magic header %S" header });
      List.filter_map
        (fun (n, line) ->
          match record_of_line line with
          | Ok r -> Some r
          | Error reason ->
              warn ~line:n ~reason;
              None)
        body

(* -- replay ------------------------------------------------------------- *)

type pending = {
  p_id : string;
  p_tenant : string;
  p_spec : Protocol.tune_spec;
  p_fingerprint : string;
  p_deadline : float option;
}

type replay = {
  pending : pending list;
  memo : (string * Scheduler.outcome) list;
  crashes : (string * int) list;
  poisoned : (string * int) list;
  boots : int;
}

let replay_records records =
  let pending : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let memo : (string, Scheduler.outcome) Hashtbl.t = Hashtbl.create 16 in
  let crashes : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let poisoned : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let in_flight : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let boots = ref 0 in
  let crash fp =
    Hashtbl.replace crashes fp
      (1 + Option.value ~default:0 (Hashtbl.find_opt crashes fp))
  in
  let remove_pending_fp fp =
    Hashtbl.iter
      (fun id p -> if p.p_fingerprint = fp then Hashtbl.remove pending id)
      (Hashtbl.copy pending)
  in
  let terminal fp = Hashtbl.remove in_flight fp in
  List.iter
    (function
      | Boot ->
          incr boots;
          Hashtbl.iter (fun fp () -> crash fp) (Hashtbl.copy in_flight);
          Hashtbl.reset in_flight
      | Accepted { id; tenant; fingerprint; spec; deadline } ->
          if not (Hashtbl.mem pending id) then order := id :: !order;
          Hashtbl.replace pending id
            {
              p_id = id;
              p_tenant = tenant;
              p_spec = spec;
              p_fingerprint = fingerprint;
              p_deadline = deadline;
            }
      | Started { fingerprint } -> Hashtbl.replace in_flight fingerprint ()
      | Completed { fingerprint; outcome } ->
          Hashtbl.replace memo fingerprint outcome;
          terminal fingerprint;
          remove_pending_fp fingerprint
      | Failed { fingerprint } ->
          terminal fingerprint;
          remove_pending_fp fingerprint
      | Cancelled { fingerprint } ->
          terminal fingerprint;
          remove_pending_fp fingerprint
      | Dropped { id } -> Hashtbl.remove pending id
      | Poisoned { fingerprint; crashes = n } ->
          Hashtbl.replace poisoned fingerprint n;
          terminal fingerprint;
          remove_pending_fp fingerprint)
    records;
  (* We are loading because the previous process is gone: anything still
     in flight at the end of the log crashed with it, even though no
     later Boot record witnessed the death yet. *)
  Hashtbl.iter (fun fp () -> crash fp) in_flight;
  {
    pending =
      List.filter_map (Hashtbl.find_opt pending) (List.rev !order);
    memo =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) memo []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    crashes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) crashes []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    poisoned =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) poisoned []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    boots = !boots;
  }

let empty_replay =
  { pending = []; memo = []; crashes = []; poisoned = []; boots = 0 }

let load ?warn path =
  if Sys.file_exists path then replay_records (read_records ?warn path)
  else empty_replay
