module Json = Ft_obs.Json
module Framing = Ft_framing.Framing

let version = 2
let accepted_versions = [ 1; 2 ]

type tune_spec = {
  benchmark : string;
  platform : string;
  algorithm : string;
  seed : int;
  pool : int;
  top_x : int option;
}

(* The canonical string a spec's fingerprint digests.  Every field that
   determines the search result appears exactly once, in fixed order.
   The result format has not changed since v1 and v1 requests are still
   served, so the digest keeps the v1 tag: a v1 and a v2 request for the
   same spec coalesce onto the same memo entry.  Per-request fields that
   do not affect the result (the deadline) are deliberately absent. *)
let fingerprint spec =
  Ft_engine.Cache.digest
    (Printf.sprintf "serve/v%d|bench=%s|plat=%s|algo=%s|seed=%d|pool=%d|topx=%s"
       1 spec.benchmark spec.platform spec.algorithm spec.seed spec.pool
       (match spec.top_x with None -> "default" | Some x -> string_of_int x))

type request =
  | Tune of {
      id : string;
      tenant : string;
      spec : tune_spec;
      deadline_ms : int option;
    }
  | Ping
  | Stats
  | Shutdown

type reject_reason =
  | Queue_full of { limit : int }
  | Draining
  | Unsupported of string
  | Bad_version of { got : int }
  | Malformed of string
  | Deadline_exceeded
  | Poisoned of { crashes : int }

let reject_reason_to_string = function
  | Queue_full _ -> "queue_full"
  | Draining -> "draining"
  | Unsupported what -> "unsupported: " ^ what
  | Bad_version { got } -> Printf.sprintf "bad_version %d" got
  | Malformed what -> "malformed: " ^ what
  | Deadline_exceeded -> "deadline_exceeded"
  | Poisoned _ -> "poisoned"

type origin = Fresh | Coalesced_with of string | Cached

let origin_to_string = function
  | Fresh -> "fresh"
  | Coalesced_with _ -> "coalesced"
  | Cached -> "cached"

type result_payload = {
  id : string;
  fingerprint : string;
  origin : origin;
  group_size : int;
  speedup : float;
  evaluations : int;
  run_s : float;
  text : string;
}

type response =
  | Admitted of { id : string; queue_depth : int }
  | Coalesced of { id : string; leader : string }
  | Started of { id : string }
  | Progress of { id : string; ticks : int }
  | Result of result_payload
  | Rejected of { id : string; reason : reject_reason }
  | Server_error of { id : string; message : string }
  | Pong
  | Stats_reply of (string * int) list
  | Bye

type decode_error =
  | Version_mismatch of { got : int }
  | Malformed_frame of string

let decode_error_to_string = function
  | Version_mismatch { got } ->
      Printf.sprintf "protocol version mismatch: peer speaks v%d, we speak v%d"
        got version
  | Malformed_frame reason -> "malformed frame: " ^ reason

(* -- encoding ----------------------------------------------------------- *)

let obj kind fields =
  Json.Obj (("v", Json.Int version) :: ("kind", Json.String kind) :: fields)

let spec_fields spec =
  [
    ("benchmark", Json.String spec.benchmark);
    ("platform", Json.String spec.platform);
    ("algorithm", Json.String spec.algorithm);
    ("seed", Json.Int spec.seed);
    ("pool", Json.Int spec.pool);
  ]
  @ match spec.top_x with None -> [] | Some x -> [ ("top_x", Json.Int x) ]

let request_to_json = function
  | Tune { id; tenant; spec; deadline_ms } ->
      obj "tune"
        (("id", Json.String id) :: ("tenant", Json.String tenant)
        :: (spec_fields spec
           @
           match deadline_ms with
           | None -> []
           | Some ms -> [ ("deadline_ms", Json.Int ms) ]))
  | Ping -> obj "ping" []
  | Stats -> obj "stats" []
  | Shutdown -> obj "shutdown" []

let reject_fields = function
  | Queue_full { limit } -> [ ("limit", Json.Int limit) ]
  | Bad_version { got } -> [ ("got", Json.Int got) ]
  | Poisoned { crashes } -> [ ("crashes", Json.Int crashes) ]
  | Draining | Unsupported _ | Malformed _ | Deadline_exceeded -> []

let response_to_json = function
  | Admitted { id; queue_depth } ->
      obj "admitted"
        [ ("id", Json.String id); ("queue_depth", Json.Int queue_depth) ]
  | Coalesced { id; leader } ->
      obj "coalesced" [ ("id", Json.String id); ("leader", Json.String leader) ]
  | Started { id } -> obj "started" [ ("id", Json.String id) ]
  | Progress { id; ticks } ->
      obj "progress" [ ("id", Json.String id); ("ticks", Json.Int ticks) ]
  | Result r ->
      obj "result"
        [
          ("id", Json.String r.id);
          ("fingerprint", Json.String r.fingerprint);
          ("origin", Json.String (origin_to_string r.origin));
          ( "leader",
            match r.origin with
            | Coalesced_with leader -> Json.String leader
            | Fresh | Cached -> Json.Null );
          ("group_size", Json.Int r.group_size);
          ("speedup", Json.Float r.speedup);
          ("evaluations", Json.Int r.evaluations);
          ("run_s", Json.Float r.run_s);
          ("text", Json.String r.text);
        ]
  | Rejected { id; reason } ->
      obj "rejected"
        (("id", Json.String id)
        :: ("reason", Json.String (reject_reason_to_string reason))
        :: reject_fields reason)
  | Server_error { id; message } ->
      obj "error" [ ("id", Json.String id); ("message", Json.String message) ]
  | Pong -> obj "pong" []
  | Stats_reply counters ->
      obj "stats_reply"
        [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)) ]
  | Bye -> obj "bye" []

(* -- decoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let str json field =
  match Option.bind (Json.member field json) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Malformed_frame (Printf.sprintf "missing string field '%s'" field))

let int json field =
  match Option.bind (Json.member field json) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Malformed_frame (Printf.sprintf "missing int field '%s'" field))

let num json field =
  match Option.bind (Json.member field json) Json.to_float with
  | Some f -> Ok f
  | None ->
      Error (Malformed_frame (Printf.sprintf "missing number field '%s'" field))

(* Version gate shared by both directions: absent ⇒ malformed (the peer
   is not speaking this protocol at all), present-but-unknown ⇒ the
   typed mismatch a server answers with [Rejected (Bad_version _)].
   v1 is still accepted: every v1 message is a valid v2 message without
   the optional v2 fields. *)
let versioned json k =
  match Option.bind (Json.member "v" json) Json.to_int with
  | None -> Error (Malformed_frame "missing protocol version field 'v'")
  | Some v when not (List.mem v accepted_versions) ->
      Error (Version_mismatch { got = v })
  | Some _ -> k ()

let spec_of_json json =
  let* benchmark = str json "benchmark" in
  let* platform = str json "platform" in
  let* algorithm = str json "algorithm" in
  let* seed = int json "seed" in
  let* pool = int json "pool" in
  let top_x = Option.bind (Json.member "top_x" json) Json.to_int in
  Ok { benchmark; platform; algorithm; seed; pool; top_x }

let request_of_json json =
  versioned json @@ fun () ->
  let* kind = str json "kind" in
  match kind with
  | "tune" ->
      let* id = str json "id" in
      let* tenant = str json "tenant" in
      let* spec = spec_of_json json in
      let deadline_ms = Option.bind (Json.member "deadline_ms" json) Json.to_int in
      Ok (Tune { id; tenant; spec; deadline_ms })
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | kind -> Error (Malformed_frame (Printf.sprintf "unknown request kind '%s'" kind))

(* The wire reason string round-trips into the typed reason where the
   payload survives; free-text reasons keep their text. *)
let reject_reason_of json reason =
  if reason = "queue_full" then
    Queue_full { limit = Option.value ~default:0 (Option.bind (Json.member "limit" json) Json.to_int) }
  else if reason = "draining" then Draining
  else if reason = "deadline_exceeded" then Deadline_exceeded
  else if reason = "poisoned" then
    Poisoned
      {
        crashes =
          Option.value ~default:0
            (Option.bind (Json.member "crashes" json) Json.to_int);
      }
  else
    match String.index_opt reason ' ' with
    | _ when String.length reason >= 13 && String.sub reason 0 13 = "unsupported: " ->
        Unsupported (String.sub reason 13 (String.length reason - 13))
    | _ when String.length reason >= 11 && String.sub reason 0 11 = "malformed: " ->
        Malformed (String.sub reason 11 (String.length reason - 11))
    | _ when String.length reason >= 12 && String.sub reason 0 12 = "bad_version " -> (
        match int_of_string_opt (String.sub reason 12 (String.length reason - 12)) with
        | Some got -> Bad_version { got }
        | None -> Malformed reason)
    | _ -> Malformed reason

let response_of_json json =
  versioned json @@ fun () ->
  let* kind = str json "kind" in
  match kind with
  | "admitted" ->
      let* id = str json "id" in
      let* queue_depth = int json "queue_depth" in
      Ok (Admitted { id; queue_depth })
  | "coalesced" ->
      let* id = str json "id" in
      let* leader = str json "leader" in
      Ok (Coalesced { id; leader })
  | "started" ->
      let* id = str json "id" in
      Ok (Started { id })
  | "progress" ->
      let* id = str json "id" in
      let* ticks = int json "ticks" in
      Ok (Progress { id; ticks })
  | "result" ->
      let* id = str json "id" in
      let* fingerprint = str json "fingerprint" in
      let* origin_s = str json "origin" in
      let* origin =
        match origin_s with
        | "fresh" -> Ok Fresh
        | "cached" -> Ok Cached
        | "coalesced" -> (
            match Option.bind (Json.member "leader" json) Json.to_str with
            | Some leader -> Ok (Coalesced_with leader)
            | None -> Error (Malformed_frame "coalesced result without leader"))
        | o -> Error (Malformed_frame (Printf.sprintf "unknown origin '%s'" o))
      in
      let* group_size = int json "group_size" in
      let* speedup = num json "speedup" in
      let* evaluations = int json "evaluations" in
      let* run_s = num json "run_s" in
      let* text = str json "text" in
      Ok
        (Result
           { id; fingerprint; origin; group_size; speedup; evaluations; run_s; text })
  | "rejected" ->
      let* id = str json "id" in
      let* reason = str json "reason" in
      Ok (Rejected { id; reason = reject_reason_of json reason })
  | "error" ->
      let* id = str json "id" in
      let* message = str json "message" in
      Ok (Server_error { id; message })
  | "pong" -> Ok Pong
  | "stats_reply" -> (
      match Json.member "counters" json with
      | Some (Json.Obj fields) ->
          let* counters =
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match Json.to_int v with
                | Some n -> Ok ((k, n) :: acc)
                | None ->
                    Error (Malformed_frame ("non-integer counter '" ^ k ^ "'")))
              (Ok []) fields
          in
          Ok (Stats_reply (List.rev counters))
      | _ -> Error (Malformed_frame "stats_reply without counters object"))
  | "bye" -> Ok Bye
  | kind ->
      Error (Malformed_frame (Printf.sprintf "unknown response kind '%s'" kind))

(* -- framed transport --------------------------------------------------- *)

let max_frame_bytes = 1024 * 1024

let of_frame decode frame =
  match Json.of_string (Bytes.to_string frame) with
  | Error e -> Error (Malformed_frame e)
  | Ok json -> decode json

let request_of_frame frame = of_frame request_of_json frame
let response_of_frame frame = of_frame response_of_json frame

let write_json fd json = Framing.write_bytes fd (Bytes.of_string (Json.to_string json))

let write_request fd req = write_json fd (request_to_json req)
let write_response fd resp = write_json fd (response_to_json resp)

let read_response fd =
  match Framing.read_bytes ~max_bytes:max_frame_bytes fd with
  | Error e -> Error (`Framing e)
  | Ok frame -> (
      match response_of_frame frame with
      | Error e -> Error (`Decode e)
      | Ok resp -> Ok resp)
