(** The daemon's durable write-ahead request journal.

    Every accepted [tune] request is appended here {e before} the client
    sees its acknowledgement, so a daemon killed at any instant can
    reconstruct exactly what it owed: which requests were accepted but
    not yet answered, which fingerprints already completed (and with
    what outcome — the durable result memo), which specs keep crashing
    the process, and how many times it has been (re)booted.

    {2 File format}

    A magic header line ([ft-serve-journal/1]) followed by one JSON
    object per line.  Appends are single [O_APPEND] [write]s followed by
    [fsync]: the trailing newline is the commit marker, so a crash can
    only ever tear the {e final} line, and {!load} (whole-file read,
    torn tail discarded with a warning — the same discipline as
    {!Ft_engine.Cache.load}) always recovers the longest valid prefix.
    Malformed interior lines are skipped through [warn] rather than
    aborting recovery.

    {2 Crash accounting}

    [Started fp] marks a search in flight; a terminal record
    ([Completed]/[Failed]/[Cancelled]/[Poisoned]) clears it.  At replay,
    every [Started] not cleared before the next [Boot] (or before the
    end of the log — the load itself witnesses the death) counts one
    crash against its fingerprint.  The server quarantines fingerprints
    whose count reaches its poison threshold. *)

type record =
  | Boot  (** a daemon (re)start; written once per [serve] *)
  | Accepted of {
      id : string;
      tenant : string;
      fingerprint : string;
      spec : Protocol.tune_spec;
      deadline : float option;  (** absolute epoch seconds, if any *)
    }  (** written before the request is acknowledged *)
  | Started of { fingerprint : string }  (** search execution began *)
  | Completed of { fingerprint : string; outcome : Scheduler.outcome }
      (** the durable result memo: restart answers this fingerprint
          without re-running the search *)
  | Failed of { fingerprint : string }  (** search returned an error *)
  | Cancelled of { fingerprint : string }
      (** abandoned on purpose (all subscribers gone) — terminal, so a
          cancellation never counts as a crash *)
  | Dropped of { id : string }
      (** one request's client vanished or expired; replay skips it *)
  | Poisoned of { fingerprint : string; crashes : int }
      (** crash-quarantined: replay never re-runs this fingerprint *)

type t
(** An open journal (append handle). *)

val open_ : string -> t
(** Open for appending, creating the file (with its magic header) if
    absent.  @raise Unix.Unix_error on filesystem failure. *)

val path : t -> string

val append : t -> record -> unit
(** Durably append one record: a single [O_APPEND] write of one
    newline-terminated line, then [fsync]. *)

val close : t -> unit

exception Corrupt of { path : string; reason : string }
(** Raised by {!load} when the file exists but is not a journal at all
    (missing or wrong magic header). *)

type pending = {
  p_id : string;
  p_tenant : string;
  p_spec : Protocol.tune_spec;
  p_fingerprint : string;
  p_deadline : float option;
}
(** An accepted request the previous incarnation never answered. *)

type replay = {
  pending : pending list;  (** unfinished requests, in acceptance order *)
  memo : (string * Scheduler.outcome) list;
      (** completed fingerprints (sorted), the durable result memo *)
  crashes : (string * int) list;
      (** per-fingerprint in-flight-at-death counts (sorted) *)
  poisoned : (string * int) list;  (** already-quarantined fingerprints *)
  boots : int;  (** [Boot] records seen (prior incarnations) *)
}

val empty_replay : replay

val load : ?warn:(line:int -> reason:string -> unit) -> string -> replay
(** Replay the journal at [path] into recovery state; {!empty_replay}
    when the file does not exist.  Torn or malformed lines are reported
    through [warn] (1-based record line numbers, the header is line 0)
    and skipped.
    @raise Corrupt if the file exists but lacks the magic header. *)

(**/**)

(* Exposed for the truncation property tests. *)
val record_to_json : record -> Ft_obs.Json.t
val record_of_line : string -> (record, string) result
val format_magic : string
