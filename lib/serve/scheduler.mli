(** Single-flight coalescing and per-tenant fair scheduling.

    The scheduler is the server's pure core: it never touches sockets,
    which is what makes coalescing and fairness unit-testable without a
    daemon.  Members are tagged with an arbitrary payload (the server
    uses the client connection; tests use unit).

    {2 Semantics}

    - {b Coalescing}: requests are keyed by their spec's
      {!Protocol.fingerprint}.  The first submitter of a fingerprint
      opens a {e group} and becomes its leader; later submitters join
      the group — whether it is still queued or already running — and
      all members receive the one search's result.  Soundness rests on
      the engine's determinism contract (equal spec ⇒ byte-identical
      result), so sharing is observationally equivalent to running each
      request alone.
    - {b Memoization}: a completed group's outcome is remembered, so a
      resubmitted fingerprint is answered without queueing at all.
    - {b Fairness}: each group is owned by its leader's tenant.
      {!next} serves tenants round-robin (oldest pending group of the
      next tenant in the ring), so a tenant flooding the queue cannot
      starve another tenant's single request.
    - {b Admission control}: the total number of waiting members (every
      submitted-but-unanswered request, across queued and running
      groups) is bounded by [max_queue]; beyond it, {!submit} refuses
      with {!Protocol.Queue_full}.  After {!drain}, every submission is
      refused with {!Protocol.Draining}. *)

type outcome = { text : string; speedup : float; evaluations : int }
(** What a finished search hands back to every group member —
    [text] is the {!Ft_core.Result.render} block. *)

type 'a member = {
  id : string;
  tenant : string;
  deadline : float option;
      (** absolute expiry on the monotonic clock ({!Ft_util.Clock.now}
          seconds — a wall-clock step must not expire or resurrect
          members); [None] waits forever.  The journal persists the
          wall-clock equivalent; the server converts at the boundary. *)
  payload : 'a;
}

type 'a t

val create : max_queue:int -> 'a t
(** @raise Invalid_argument if [max_queue < 1]. *)

type verdict =
  | Fresh  (** opened a new group; the member is its leader *)
  | Joined of { leader : string }  (** coalesced onto an existing group *)
  | Memoized of outcome  (** answered from the completed-result memo *)
  | Refused of Protocol.reject_reason

val submit :
  'a t -> spec:Protocol.tune_spec -> fingerprint:string -> 'a member -> verdict
(** Admit, coalesce, memo-answer or refuse one request.  On [Fresh] and
    [Joined] the member waits in its group until {!complete} or
    {!fail}; on [Memoized] and [Refused] it is already answered and the
    scheduler retains nothing. *)

val refuse : 'a t -> Protocol.reject_reason -> verdict
(** Count a rejection the server detected before the scheduler could
    (validation failure, malformed frame, wrong protocol version), so
    {!counters} reflects every request seen.  Returns [Refused]. *)

val remember : 'a t -> fingerprint:string -> outcome -> unit
(** Seed the result memo without a submission — restart recovery feeds
    the journal's durable [completed] outcomes back in, so resubmitted
    fingerprints are answered without re-running their searches. *)

val known : 'a t -> fingerprint:string -> outcome option
(** The memoized outcome for a fingerprint, if any. *)

val next : 'a t -> (Protocol.tune_spec * string) option
(** Pick the next group to run — round-robin over tenants, oldest
    pending group within the tenant — and mark it running.  Returns the
    group's spec and fingerprint; [None] when no group is queued.
    Members keep joining a running group until it completes. *)

val members : 'a t -> fingerprint:string -> 'a member list
(** A live group's members so far, in submission order (leader first);
    [[]] for unknown fingerprints.  The server uses this for [Started]
    and [Progress] fan-out while the group keeps gaining members. *)

val complete : 'a t -> fingerprint:string -> outcome -> 'a member list
(** Finish a running group: memoize its outcome and return the members
    in submission order (leader first).  The group is gone afterwards. *)

val fail : 'a t -> fingerprint:string -> 'a member list
(** Abort a running group {e without} memoizing (the error is not a
    result), returning its members for error delivery. *)

val expire : 'a t -> now:float -> (string * 'a member) list
(** Remove every member whose [deadline] is at or before [now], across
    all groups, returning [(fingerprint, member)] pairs so the server
    can answer each with {!Protocol.Deadline_exceeded}.  Queued groups
    emptied by the sweep are dropped; a {e running} group emptied here
    stays until the server notices ({!members} = [[]]) and calls
    {!cancel}. *)

val cancel : 'a t -> fingerprint:string -> 'a member list
(** Abandon a group deliberately (all subscribers disconnected or
    expired): like {!fail} — no memo entry — but counted as [cancelled]
    rather than failed. *)

val drop_member : 'a t -> fingerprint:string -> id:string -> unit
(** Forget one waiting member (its client vanished).  A queued group
    whose last member is dropped is cancelled outright. *)

val drain : 'a t -> unit
(** Stop admitting: every later {!submit} is [Refused Draining].
    Queued and running groups still run to completion. *)

val draining : 'a t -> bool

val queue_depth : 'a t -> int
(** Waiting members right now (the quantity [max_queue] bounds). *)

val idle : 'a t -> bool
(** No group queued or running. *)

val counters : 'a t -> (string * int) list
(** Lifetime counters in a fixed, documented order — the payload of
    {!Protocol.Stats_reply}: [received], [admitted] (fresh groups),
    [coalesced], [memoized], [rejected], [groups_completed],
    [queue_depth], [expired] (deadline-swept members), [cancelled]
    (abandoned groups).  The server appends its own recovery counters
    ([restarts], [replayed], [poisoned]) after these. *)
