(** The kill-restart equivalence oracle ([funcy selfcheck --serve]).

    Claim under test: a supervised daemon with a durable journal can be
    SIGKILLed at {e any} request boundary — or in the middle of a search
    — and every client still receives byte-for-byte the result an
    unkilled daemon (and a solo [funcy tune]) would have delivered.

    Legs:

    - {b reference}: an unkilled supervised daemon plays the request
      list; its per-id result bytes are the baseline.
    - {b kill at ack N} (for each boundary): the generation-0 daemon
      SIGKILLs itself the instant the Nth accepted request is
      acknowledged; clients reconnect-and-resume (same ids — idempotent
      against the journal) against the respawned daemon.
    - {b kill mid-run}: the generation-0 daemon SIGKILLs itself at a
      fixed engine-job boundary inside the first search, so the respawn
      exercises checkpoint resume, not just journal replay.
    - {b poison quarantine}: a designated spec SIGKILLs the daemon in
      {e every} generation.  Journal crash accounting must quarantine
      its fingerprint after the poison threshold, answer it with the
      typed {!Protocol.Poisoned} rejection, and leave the daemon healthy
      for the good specs that follow.
    - {b solo equivalence}: every reference result must equal the bytes
      of a direct in-process run of the same spec.

    Fork-legality: call {!run} before the process spawns any domain —
    the solo searches (the only in-process engine work) run after every
    fork. *)

type leg_report = {
  leg : string;
  generations : int;  (** daemon boots the leg's journal recorded *)
  failures : string list;  (** empty = the leg held *)
}

type outcome = { requests : int; legs : leg_report list }

val run :
  ?kill_points:int list ->
  ?mid_run_tick:int ->
  scratch:string ->
  make_runner:(state_dir:string -> Runner.t) ->
  specs:(string * string * Protocol.tune_spec) list ->
  ?poison:string * string * Protocol.tune_spec ->
  unit ->
  outcome
(** [run ~scratch ~make_runner ~specs ()] drives every leg.  [specs] is
    the request list as [(id, tenant, spec)], played in order by one
    reconnecting client per request.  [kill_points] defaults to every
    ack boundary [1..length specs]; [mid_run_tick] (default 5) is the
    engine-job boundary for the mid-run kill; [poison] enables the
    poison leg with the given request.  [make_runner] is invoked inside
    each forked daemon (build engines there, never before [run]) and
    once afterwards for the solo leg; [scratch] must be an existing
    directory the oracle may fill with per-leg sockets and state. *)

val passed : outcome -> bool

val render : outcome -> string
