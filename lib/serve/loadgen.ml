module Rng = Ft_util.Rng
module Stats = Ft_util.Stats
module Clock = Ft_util.Clock
module Framing = Ft_framing.Framing

type config = {
  socket_path : string;
  clients : int;
  concurrency : int;
  tenants : int;
  zipf_s : float;
  seed : int;
  benchmarks : string list;
  seeds_per_benchmark : int;
  algorithm : string;
  platform : string;
  pool : int;
  reconnect : bool;
  max_attempts : int;
}

let default_config ~socket_path =
  {
    socket_path;
    clients = 200;
    concurrency = 64;
    tenants = 4;
    zipf_s = 1.1;
    seed = 7;
    benchmarks = [];
    seeds_per_benchmark = 3;
    algorithm = "cfr-adaptive";
    platform = "bdw";
    pool = 60;
    reconnect = false;
    max_attempts = 10;
  }

type outcome = {
  completed : int;
  fresh : int;
  coalesced : int;
  cached : int;
  rejected : int;
  errors : int;
  reconnects : int;
  inconsistent : int;
  distinct_fingerprints : int;
  wall_s : float;
  throughput : float;
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  coalesce_rate : float;
}

let catalog config =
  let benchmarks =
    match config.benchmarks with
    | [] -> List.map (fun p -> p.Ft_prog.Program.name) Ft_suite.Suite.all
    | l -> l
  in
  List.concat_map
    (fun benchmark ->
      List.init config.seeds_per_benchmark (fun seed ->
          {
            Protocol.benchmark;
            platform = config.platform;
            algorithm = config.algorithm;
            seed;
            pool = config.pool;
            top_x = None;
          }))
    benchmarks

(* Cumulative zipf weights over catalog ranks: rank r gets 1/(r+1)^s. *)
let zipf_cdf ~s n =
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cdf.(r) <- !total
  done;
  cdf

let pick rng cdf catalog =
  let u = Rng.float rng cdf.(Array.length cdf - 1) in
  let rec find i = if cdf.(i) > u then i else find (i + 1) in
  catalog.(find 0)

(* -- one in-flight synthetic client ------------------------------------- *)

type flight = {
  fd : Unix.file_descr;
  decoder : Framing.Decoder.t;
  id : string;
  tenant : string;
  spec : Protocol.tune_spec;
  fp : string;
  t0 : float;
  attempts : int;
  mutable terminal : bool;
}

(* A request whose stream broke, waiting to be resent (same id). *)
type retry = {
  r_id : string;
  r_tenant : string;
  r_spec : Protocol.tune_spec;
  r_t0 : float;
  r_attempts : int;
  r_at : float;  (* monotonic time before which we don't retry *)
}

type tally = {
  mutable completed : int;
  mutable fresh : int;
  mutable coalesced : int;
  mutable cached : int;
  mutable rejected : int;
  mutable errors : int;
  mutable reconnects : int;
  mutable inconsistent : int;
  mutable latencies : float list;
  mutable retries : retry list;
  texts : (string, string) Hashtbl.t;  (* fingerprint → first result text *)
}

let finish flight =
  flight.terminal <- true;
  try Unix.close flight.fd with Unix.Unix_error _ -> ()

let retry_delay attempts =
  Float.min 0.5 (0.05 *. (2.0 ** float_of_int attempts))

(* The stream died without a terminal response.  Under [reconnect] that
   is the expected signature of a daemon crash: resend the same id after
   a short backoff (ids are idempotent against the daemon's journal).
   Otherwise it is a protocol error. *)
let broken config tally flight =
  if config.reconnect && flight.attempts + 1 < config.max_attempts then begin
    tally.reconnects <- tally.reconnects + 1;
    tally.retries <-
      {
        r_id = flight.id;
        r_tenant = flight.tenant;
        r_spec = flight.spec;
        r_t0 = flight.t0;
        r_attempts = flight.attempts + 1;
        r_at = Clock.now () +. retry_delay flight.attempts;
      }
      :: tally.retries
  end
  else tally.errors <- tally.errors + 1;
  finish flight

let handle_response tally flight = function
  | Protocol.Admitted _ | Coalesced _ | Started _ | Progress _ -> ()
  | Protocol.Result payload ->
      tally.completed <- tally.completed + 1;
      (match payload.Protocol.origin with
      | Protocol.Fresh -> tally.fresh <- tally.fresh + 1
      | Protocol.Coalesced_with _ -> tally.coalesced <- tally.coalesced + 1
      | Protocol.Cached -> tally.cached <- tally.cached + 1);
      tally.latencies <- (Clock.now () -. flight.t0) :: tally.latencies;
      (match Hashtbl.find_opt tally.texts flight.fp with
      | None -> Hashtbl.add tally.texts flight.fp payload.Protocol.text
      | Some first ->
          if first <> payload.Protocol.text then
            tally.inconsistent <- tally.inconsistent + 1);
      finish flight
  | Protocol.Rejected _ ->
      tally.rejected <- tally.rejected + 1;
      finish flight
  | Protocol.Server_error _ | Pong | Stats_reply _ | Bye ->
      tally.errors <- tally.errors + 1;
      finish flight

let pump config tally flight =
  let { Framing.Decoder.frames; state } =
    Framing.Decoder.pump flight.decoder flight.fd
  in
  List.iter
    (fun frame ->
      if not flight.terminal then
        match Protocol.response_of_frame frame with
        | Ok resp -> handle_response tally flight resp
        | Error _ ->
            tally.errors <- tally.errors + 1;
            finish flight)
    frames;
  if not flight.terminal then
    match state with
    | `Open -> ()
    | `Closed | `Error _ -> broken config tally flight

let send config tally ~id ~tenant ~t0 ~attempts spec =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX config.socket_path);
    Protocol.write_request fd
      (Protocol.Tune { id; tenant; spec; deadline_ms = None })
  with
  | () ->
      Unix.set_nonblock fd;
      Some
        {
          fd;
          decoder = Framing.Decoder.create ~max_bytes:Protocol.max_frame_bytes ();
          id;
          tenant;
          spec;
          fp = Protocol.fingerprint spec;
          t0;
          attempts;
          terminal = false;
        }
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if config.reconnect && attempts + 1 < config.max_attempts then begin
        tally.reconnects <- tally.reconnects + 1;
        tally.retries <-
          {
            r_id = id;
            r_tenant = tenant;
            r_spec = spec;
            r_t0 = t0;
            r_attempts = attempts + 1;
            r_at = Clock.now () +. retry_delay attempts;
          }
          :: tally.retries
      end
      else tally.errors <- tally.errors + 1;
      None

let launch config tally rng cdf catalog n =
  let spec = pick rng cdf catalog in
  let tenant = "t" ^ string_of_int (Rng.int rng config.tenants) in
  let id = Printf.sprintf "r%05d" n in
  send config tally ~id ~tenant ~t0:(Clock.now ()) ~attempts:0 spec

let run config =
  if config.clients < 0 || config.concurrency < 1 then
    invalid_arg "Loadgen.run: clients must be >= 0, concurrency >= 1";
  (* A daemon killed mid-request (the --supervise chaos path) must
     surface as EPIPE on our next write — which [send] catches and turns
     into a reconnect retry — not as a fatal SIGPIPE. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_pipe)
  @@ fun () ->
  let rng = Rng.create config.seed in
  let catalog = Array.of_list (catalog config) in
  let cdf = zipf_cdf ~s:config.zipf_s (Array.length catalog) in
  let tally =
    {
      completed = 0;
      fresh = 0;
      coalesced = 0;
      cached = 0;
      rejected = 0;
      errors = 0;
      reconnects = 0;
      inconsistent = 0;
      latencies = [];
      retries = [];
      texts = Hashtbl.create 64;
    }
  in
  let launched = ref 0 in
  let in_flight = ref [] in
  let t_start = Clock.now () in
  while !launched < config.clients || !in_flight <> [] || tally.retries <> [] do
    while
      List.length !in_flight < config.concurrency && !launched < config.clients
    do
      incr launched;
      match launch config tally rng cdf catalog !launched with
      | Some flight -> in_flight := flight :: !in_flight
      | None -> ()
    done;
    (* Resend every broken request whose backoff has elapsed. *)
    let now = Clock.now () in
    let due, not_due = List.partition (fun r -> r.r_at <= now) tally.retries in
    tally.retries <- not_due;
    List.iter
      (fun r ->
        match
          send config tally ~id:r.r_id ~tenant:r.r_tenant ~t0:r.r_t0
            ~attempts:r.r_attempts r.r_spec
        with
        | Some flight -> in_flight := flight :: !in_flight
        | None -> ())
      due;
    if !in_flight <> [] then begin
      let fds = List.map (fun f -> f.fd) !in_flight in
      let timeout = if tally.retries <> [] then 0.05 else 0.5 in
      (match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun f ->
              if (not f.terminal) && List.memq f.fd readable then
                pump config tally f)
            !in_flight);
      in_flight := List.filter (fun f -> not f.terminal) !in_flight
    end
    else if tally.retries <> [] then ignore (Unix.select [] [] [] 0.05)
  done;
  let wall_s = Clock.now () -. t_start in
  let pct p =
    match tally.latencies with [] -> 0.0 | l -> Stats.percentile p l
  in
  {
    completed = tally.completed;
    fresh = tally.fresh;
    coalesced = tally.coalesced;
    cached = tally.cached;
    rejected = tally.rejected;
    errors = tally.errors;
    reconnects = tally.reconnects;
    inconsistent = tally.inconsistent;
    distinct_fingerprints = Hashtbl.length tally.texts;
    wall_s;
    throughput = (if wall_s > 0.0 then float_of_int tally.completed /. wall_s else 0.0);
    latency_p50 = pct 50.0;
    latency_p90 = pct 90.0;
    latency_p99 = pct 99.0;
    latency_max = pct 100.0;
    coalesce_rate =
      (if tally.completed = 0 then 0.0
       else float_of_int (tally.coalesced + tally.cached) /. float_of_int tally.completed);
  }

let passed (o : outcome) = o.errors = 0 && o.inconsistent = 0

let render (o : outcome) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "loadgen: %d results in %.2f s (%.1f req/s)\n"
    o.completed o.wall_s o.throughput;
  Printf.bprintf buf
    "  fresh %d  coalesced %d  cached %d  rejected %d  errors %d\n" o.fresh
    o.coalesced o.cached o.rejected o.errors;
  if o.reconnects > 0 then
    Printf.bprintf buf "  reconnects %d (daemon restarts survived)\n"
      o.reconnects;
  Printf.bprintf buf "  coalesce rate %.1f%% across %d distinct fingerprints\n"
    (100.0 *. o.coalesce_rate) o.distinct_fingerprints;
  Printf.bprintf buf
    "  latency p50 %.3f s  p90 %.3f s  p99 %.3f s  max %.3f s\n" o.latency_p50
    o.latency_p90 o.latency_p99 o.latency_max;
  Printf.bprintf buf "  consistency: %s\n"
    (if o.inconsistent = 0 then "OK (coalesced results byte-identical)"
     else Printf.sprintf "FAILED (%d divergent results)" o.inconsistent);
  Buffer.contents buf
