(** Synthetic load for the tuning daemon.

    Plays [clients] one-shot tune requests against a running server,
    keeping up to [concurrency] connections in flight from a single
    event loop (no threads — the generator multiplexes its own
    non-blocking sockets, so hundreds of clients fit in one process).

    Program popularity is zipfian: the request stream samples a ranked
    catalog of (benchmark, seed) pairs with weight [1/(rank+1)^zipf_s],
    so a skewed workload hammers a few hot fingerprints — exactly the
    regime single-flight coalescing exists for.  Tenants are assigned
    uniformly.  The whole stream is deterministic in [seed].

    Every completed request is checked against the first result text
    seen for its fingerprint; any byte difference counts as
    [inconsistent] — the generator doubles as a consistency oracle. *)

type config = {
  socket_path : string;
  clients : int;  (** total requests to play *)
  concurrency : int;  (** in-flight window (select-loop bound: keep < 1000) *)
  tenants : int;
  zipf_s : float;  (** skew exponent; 0 = uniform *)
  seed : int;
  benchmarks : string list;  (** catalog rows ([[]] = whole suite) *)
  seeds_per_benchmark : int;  (** catalog columns: tune seeds 0.. *)
  algorithm : string;
  platform : string;
  pool : int;
  reconnect : bool;
      (** resume a request whose stream died without a terminal
          response (or whose connect was refused) by resending the
          {e same} id after a short backoff — ids are idempotent
          against the daemon's journal, so this rides out supervised
          daemon restarts; off, a broken stream counts as an error *)
  max_attempts : int;  (** sends per request under [reconnect] *)
}

val default_config : socket_path:string -> config
(** 200 clients, concurrency 64, 4 tenants, zipf 1.1, seed 7, whole
    suite × 3 seeds, cfr-adaptive on bdw with pool 60, no reconnect
    (max 10 attempts when enabled). *)

type outcome = {
  completed : int;  (** requests that got a [Result] *)
  fresh : int;
  coalesced : int;
  cached : int;
  rejected : int;  (** typed server rejections (admission control) *)
  errors : int;  (** transport/protocol failures — must be 0 *)
  reconnects : int;
      (** broken streams resumed by resending their id ([reconnect]) *)
  inconsistent : int;  (** results diverging per fingerprint — must be 0 *)
  distinct_fingerprints : int;
  wall_s : float;
  throughput : float;  (** completed per wall second *)
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  coalesce_rate : float;
      (** share of completed requests that did not pay for their own
          search: (coalesced + cached) / completed *)
}

val run : config -> outcome

val passed : outcome -> bool
(** Zero [errors] and zero [inconsistent]: every request either
    completed or was rejected in a typed way, and every coalesced
    result matched its group byte-for-byte. *)

val render : outcome -> string
(** Human-readable block: mix, coalesce rate, throughput, latency
    percentiles. *)
