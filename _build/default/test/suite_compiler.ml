(* Tests for ft_compiler: heuristics (including the Table 3 O3 decision
   row), PGO, the linker's determinism and perturbation rules. *)

open Ft_prog
open Ft_compiler
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag

let icc = Cprofile.icc
let bdw = Target.for_platform Platform.Broadwell
let opteron = Target.for_platform Platform.Opteron

let decide ?(profile = icc) ?(target = bdw) ?(language = Program.C)
    ?(cv = Cv.o3) features =
  fst (Heuristics.decide ~profile ~target ~language ~cv features)

let cl name =
  (Option.get (Program.find_loop Ft_suite.Cloverleaf.program name)).Loop.features

(* --- Table 3's O3 row, verbatim --------------------------------------- *)

let test_o3_dt () =
  let d = decide (cl "dt") in
  Alcotest.(check string) "dt: S, unroll2" "S, unroll2" (Decision.summary d)

let test_o3_cell3 () =
  let d = decide (cl "cell3") in
  Alcotest.(check bool) "cell3 scalar" true (d.Decision.width = Decision.Scalar)

let test_o3_cell7 () =
  let d = decide (cl "cell7") in
  Alcotest.(check bool) "cell7 scalar" true (d.Decision.width = Decision.Scalar)

let test_o3_mom9 () =
  let d = decide (cl "mom9") in
  Alcotest.(check bool) "mom9 128-bit" true (d.Decision.width = Decision.W128)

let test_o3_acc () =
  let d = decide (cl "acc") in
  Alcotest.(check string) "acc: S, unroll3" "S, unroll3" (Decision.summary d)

(* --- vectorization legality and profitability -------------------------- *)

let clean_loop =
  { Feature.default with Feature.alias_ambiguity = 0.1; divergence = 0.0 }

let test_novec_flag () =
  let cv = Cv.set Cv.o3 Flag.Vec 0 in
  let d = decide ~cv clean_loop in
  Alcotest.(check bool) "-no-vec forces scalar" true
    (d.Decision.width = Decision.Scalar)

let test_clean_loop_vectorizes () =
  let d = decide clean_loop in
  Alcotest.(check bool) "O3 vectorizes clean code" true
    (d.Decision.width <> Decision.Scalar)

let test_forced_width () =
  let cv = Cv.set Cv.o3 Flag.Simd_width 1 in
  let d = decide ~cv clean_loop in
  Alcotest.(check bool) "forced 128" true (d.Decision.width = Decision.W128)

let test_opteron_clamps_256 () =
  let cv = Cv.set Cv.o3 Flag.Simd_width 2 in
  let d = decide ~target:opteron ~cv clean_loop in
  Alcotest.(check bool) "no 256-bit units on Opteron" true
    (d.Decision.width = Decision.W128)

let test_alias_blocks_vectorization () =
  let locked = { clean_loop with Feature.alias_ambiguity = 0.7 } in
  let d = decide locked in
  Alcotest.(check bool) "ambiguous C pointers block SIMD" true
    (d.Decision.width = Decision.Scalar);
  let unlocked = Cv.set Cv.o3 Flag.Dep_analysis 2 in
  let d' = decide ~cv:unlocked locked in
  Alcotest.(check bool) "aggressive dependence analysis unlocks" true
    (d'.Decision.width <> Decision.Scalar)

let test_fortran_alias_free () =
  let locked = { clean_loop with Feature.alias_ambiguity = 0.95 } in
  let d = decide ~language:Program.Fortran locked in
  Alcotest.(check bool) "Fortran aliasing is precise" true
    (d.Decision.width <> Decision.Scalar)

let test_alias_provable_monotone_in_precision () =
  let f = { clean_loop with Feature.alias_ambiguity = 0.5 } in
  let at level = Cv.set Cv.o3 Flag.Dep_analysis level in
  let provable cv =
    Heuristics.alias_provable ~profile:icc ~language:Program.C ~cv f
  in
  Alcotest.(check bool) "basic fails at 0.5" false (provable (at 0));
  Alcotest.(check bool) "advanced proves 0.5" true (provable (at 1));
  Alcotest.(check bool) "aggressive proves 0.5" true (provable (at 2))

let test_dep_chain_blocks_vectorization () =
  let recurrence = { clean_loop with Feature.dep_chain = 4.0 } in
  let d = decide recurrence in
  Alcotest.(check bool) "loop-carried recurrence stays scalar" true
    (d.Decision.width = Decision.Scalar);
  let reduction = { recurrence with Feature.reduction = true } in
  let d' = decide reduction in
  Alcotest.(check bool) "clean reductions may vectorize" true
    (d'.Decision.width <> Decision.Scalar)

let test_divergent_reduction_veto () =
  let f =
    {
      clean_loop with
      Feature.dep_chain = 4.0;
      reduction = true;
      divergence = 0.5;
    }
  in
  let d = decide f in
  Alcotest.(check bool) "cost model refuses masked divergent reductions"
    true
    (d.Decision.width = Decision.Scalar);
  let unlimited = Cv.set Cv.o3 Flag.Vector_cost 2 in
  let d' = decide ~cv:unlimited f in
  Alcotest.(check bool) "unlimited cost model overrides" true
    (d'.Decision.width <> Decision.Scalar)

let test_internal_estimate_shape () =
  (* The quadratic width-cost belief: moderately strided loops estimate
     better at 128 than at 256 (why ICC picks 128 for mom9). *)
  let est w = Heuristics.internal_vector_estimate ~profile:icc (cl "mom9") w in
  Alcotest.(check bool) "est(128) > est(256) for mom9" true
    (est Decision.W128 > est Decision.W256);
  let est_clean w = Heuristics.internal_vector_estimate ~profile:icc clean_loop w in
  Alcotest.(check bool) "est(256) > est(128) for clean code" true
    (est_clean Decision.W256 > est_clean Decision.W128);
  Alcotest.(check (float 1e-9)) "scalar estimate is 1" 1.0
    (Heuristics.internal_vector_estimate ~profile:icc clean_loop Decision.Scalar)

(* --- unrolling ---------------------------------------------------------- *)

let test_unroll_flag_respected () =
  let at idx = Cv.set (Cv.set Cv.o3 Flag.Vec 0) Flag.Unroll idx in
  let body = { clean_loop with Feature.body_insns = 100 } in
  Alcotest.(check int) "-unroll=0 disables" 1
    (decide ~cv:(at 1) body).Decision.unroll;
  Alcotest.(check int) "-unroll=8" 8 (decide ~cv:(at 4) body).Decision.unroll;
  Alcotest.(check int) "-unroll=16" 16 (decide ~cv:(at 5) body).Decision.unroll

let test_unroll_aggressive_doubles () =
  let cv = Cv.set (Cv.set Cv.o3 Flag.Vec 0) Flag.Unroll_aggressive 1 in
  let body = { clean_loop with Feature.body_insns = 100 } in
  let base = (decide ~cv:(Cv.set Cv.o3 Flag.Vec 0) body).Decision.unroll in
  Alcotest.(check int) "doubled" (base * 2) (decide ~cv body).Decision.unroll

let test_unroll_trip_cap () =
  let tiny =
    { clean_loop with Feature.trip_count = 8.0; body_insns = 100 }
  in
  let cv = Cv.set (Cv.set Cv.o3 Flag.Vec 0) Flag.Unroll 5 (* 16 *) in
  Alcotest.(check bool) "unroll capped by trip count" true
    ((decide ~cv tiny).Decision.unroll <= 2)

let test_o1_disables () =
  let cv = Cv.set Cv.o3 Flag.Base_opt 0 in
  let d = decide ~cv clean_loop in
  Alcotest.(check bool) "O1 scalar" true (d.Decision.width = Decision.Scalar);
  Alcotest.(check int) "O1 no unroll" 1 d.Decision.unroll;
  Alcotest.(check bool) "O1 slower code" true (d.Decision.redundancy > 1.1)

(* --- streaming stores / prefetch ---------------------------------------- *)

let streamy =
  {
    clean_loop with
    Feature.write_bytes = 48.0;
    read_bytes = 48.0;
    trip_count = 1.0e6;
  }

let test_streaming_auto () =
  Alcotest.(check bool) "auto streams wide vector writes" true
    (decide streamy).Decision.streaming;
  let tiny = { streamy with Feature.trip_count = 64.0 } in
  Alcotest.(check bool) "auto skips short trips" false
    (decide tiny).Decision.streaming

let test_streaming_always_never () =
  let always = Cv.set Cv.o3 Flag.Streaming_stores 1 in
  let never = Cv.set Cv.o3 Flag.Streaming_stores 2 in
  Alcotest.(check bool) "always" true (decide ~cv:always streamy).Decision.streaming;
  Alcotest.(check bool) "never" false (decide ~cv:never streamy).Decision.streaming;
  let no_writes = { streamy with Feature.write_bytes = 0.0 } in
  Alcotest.(check bool) "no writes, nothing to stream" false
    (decide ~cv:always no_writes).Decision.streaming

let test_prefetch_levels () =
  Alcotest.(check int) "O3 default level" 2 (decide clean_loop).Decision.prefetch;
  let cv = Cv.set Cv.o3 Flag.Prefetch 4 in
  Alcotest.(check int) "level 4" 4 (decide ~cv clean_loop).Decision.prefetch;
  let far = Cv.set Cv.o3 Flag.Prefetch_distance 3 in
  Alcotest.(check bool) "far distance" true
    (decide ~cv:far clean_loop).Decision.prefetch_far

(* --- inlining ------------------------------------------------------------ *)

let cally = { clean_loop with Feature.calls_per_iter = 2.0 }

let test_inlining () =
  let d, f = Heuristics.decide ~profile:icc ~target:bdw ~language:Program.C
      ~cv:Cv.o3 cally
  in
  Alcotest.(check bool) "default budget inlines" true d.Decision.inlined;
  Alcotest.(check (float 1e-9)) "calls gone" 0.0 f.Feature.calls_per_iter;
  Alcotest.(check bool) "body grew" true
    (f.Feature.body_insns > cally.Feature.body_insns);
  let stingy = Cv.set Cv.o3 Flag.Inline_threshold 0 in
  let d', f' = Heuristics.decide ~profile:icc ~target:bdw ~language:Program.C
      ~cv:stingy cally
  in
  Alcotest.(check bool) "tiny budget does not inline" false d'.Decision.inlined;
  Alcotest.(check (float 1e-9)) "calls remain" 2.0 f'.Feature.calls_per_iter

(* --- FMA / if-conversion -------------------------------------------------- *)

let test_fma_needs_target () =
  let f = { clean_loop with Feature.fma_fraction = 0.5 } in
  Alcotest.(check bool) "BDW contracts" true (decide f).Decision.fma_used;
  Alcotest.(check bool) "Opteron cannot" false
    (decide ~target:opteron f).Decision.fma_used;
  let off = Cv.set Cv.o3 Flag.Fma 0 in
  Alcotest.(check bool) "flag off" false (decide ~cv:off f).Decision.fma_used

let test_vector_if_conversion_mandatory () =
  let divergent =
    { clean_loop with Feature.divergence = 0.3; branch_predictability = 0.99 }
  in
  let forced = Cv.set Cv.o3 Flag.Simd_width 2 in
  let d = decide ~cv:forced divergent in
  Alcotest.(check bool) "vector implies masked" true d.Decision.if_converted

let test_scalar_if_conversion_predictability () =
  let novec = Cv.set Cv.o3 Flag.Vec 0 in
  let unpredictable =
    { clean_loop with Feature.divergence = 0.5; branch_predictability = 0.5 }
  in
  Alcotest.(check bool) "mispredicting branches get cmov" true
    (decide ~cv:novec unpredictable).Decision.if_converted;
  let predictable =
    { unpredictable with Feature.branch_predictability = 0.97 }
  in
  Alcotest.(check bool) "predictable branches stay branches" false
    (decide ~cv:novec predictable).Decision.if_converted

(* --- code size / decision hash -------------------------------------------- *)

let test_code_size_monotone_in_unroll () =
  let at idx = Cv.set (Cv.set Cv.o3 Flag.Vec 0) Flag.Unroll idx in
  let small = (decide ~cv:(at 2) clean_loop).Decision.code_bytes in
  let big = (decide ~cv:(at 4) clean_loop).Decision.code_bytes in
  Alcotest.(check bool) "more unroll, more code" true (big > small)

let test_decision_hash () =
  let d1 = decide clean_loop and d2 = decide clean_loop in
  Alcotest.(check int) "equal decisions hash equal" (Decision.hash d1)
    (Decision.hash d2);
  let d3 = decide ~cv:(Cv.set Cv.o3 Flag.Unroll 4) clean_loop in
  Alcotest.(check bool) "different decisions differ" true
    (Decision.hash d1 <> Decision.hash d3)

let test_decision_summary_notation () =
  let d =
    {
      (decide clean_loop) with
      Decision.width = Decision.W256;
      unroll = 2;
      isel_quality = 1.04;
      sched_quality = 1.07;
      spills = 0.5;
    }
  in
  Alcotest.(check string) "table 3 notation" "256, unroll2, IS, IO, RS"
    (Decision.summary d)

(* --- PGO ------------------------------------------------------------------- *)

let test_pgo_collect () =
  let program = Ft_suite.Cloverleaf.program in
  let input = Input.make ~size:2000.0 ~steps:10 () in
  match Pgo.collect ~program ~input with
  | Error e -> Alcotest.fail e
  | Ok db ->
      Alcotest.(check int) "every region profiled"
        (Program.loop_count program + 1)
        (Pgo.region_count db);
      (match Pgo.lookup db "dt" with
      | Some p ->
          Alcotest.(check bool) "trip counts recorded" true
            (p.Pgo.trip_count > 0.0)
      | None -> Alcotest.fail "dt missing from profile")

let test_pgo_fails_for_lulesh_and_optewe () =
  let check name =
    let program = Option.get (Ft_suite.Suite.find name) in
    let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
    match Pgo.collect ~program ~input with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ " should refuse instrumentation")
  in
  check "LULESH";
  check "Optewe"

let test_pgo_improves_decisions () =
  let f = { streamy with Feature.trip_count = 100.0; working_set_kb = 50_000.0 } in
  let pgo =
    Some { Pgo.trip_count = 100.0; predictability = 0.9; working_set_kb = 50_000.0 }
  in
  let d, _ =
    Heuristics.decide ~profile:icc ~target:bdw ~language:Program.C ~pgo
      ~cv:Cv.o3 f
  in
  Alcotest.(check bool) "profile-guided" true d.Decision.profile_guided;
  let d0 = decide f in
  Alcotest.(check bool) "baseline is not" false d0.Decision.profile_guided

(* --- linker ------------------------------------------------------------------ *)

let toolchain = Ft_machine.Toolchain.make Platform.Broadwell

let test_uniform_builds_never_perturbed () =
  let rng = Ft_util.Rng.create 31 in
  for _ = 1 to 20 do
    let cv = Ft_flags.Space.sample rng in
    let binary =
      Ft_machine.Toolchain.compile_uniform toolchain ~cv
        Ft_suite.Cloverleaf.program
    in
    Alcotest.(check bool) "uniform" true binary.Linker.uniform;
    Alcotest.(check (float 1e-12)) "no link luck" 1.0
      binary.Linker.link_luck;
    List.iter
      (fun (r : Linker.region) ->
        Alcotest.(check bool) "decision preserved" true
          (Decision.equal r.Linker.cunit.Cunit.decision r.Linker.final))
      binary.Linker.regions
  done

let mixed_binary seed =
  let rng = Ft_util.Rng.create seed in
  let pool = Ft_flags.Space.sample_pool rng 40 in
  Ft_machine.Toolchain.compile_assigned toolchain
    ~cv_of:(fun name -> pool.(Ft_util.Rng.hash_string name mod 40))
    Ft_suite.Cloverleaf.program

let test_link_deterministic () =
  let b1 = mixed_binary 5 and b2 = mixed_binary 5 in
  Alcotest.(check (float 1e-12)) "same luck" b1.Linker.link_luck
    b2.Linker.link_luck;
  List.iter2
    (fun (r1 : Linker.region) (r2 : Linker.region) ->
      Alcotest.(check bool) "same final decisions" true
        (Decision.equal r1.Linker.final r2.Linker.final))
    b1.Linker.regions b2.Linker.regions

let test_mixed_builds_perturbed_somewhere () =
  (* Over several assignments, at least one region must differ from its
     compiled decision (the LTO interference the paper documents). *)
  let any_changed = ref false in
  for seed = 1 to 10 do
    let b = mixed_binary seed in
    if
      List.exists
        (fun (r : Linker.region) ->
          not (Decision.equal r.Linker.cunit.Cunit.decision r.Linker.final))
        b.Linker.regions
    then any_changed := true
  done;
  Alcotest.(check bool) "link-time optimizer interferes" true !any_changed

let test_link_luck_positive () =
  for seed = 1 to 10 do
    let b = mixed_binary seed in
    Alcotest.(check bool) "luck >= 1" true (b.Linker.link_luck >= 1.0)
  done

let test_link_validates_units () =
  let program = Ft_suite.Cloverleaf.program in
  Alcotest.check_raises "unit set checked"
    (Invalid_argument "Linker.link: units do not match the program's regions")
    (fun () ->
      ignore (Linker.link ~target:bdw ~program []))

let test_fingerprint_tracks_decisions_not_flags () =
  (* Changing a flag that changes no decision must not change the link. *)
  let program = Ft_suite.Cloverleaf.program in
  let units cv_dt =
    Cunit.compile_program ~profile:icc ~target:bdw
      ~cv_of:(fun name -> if name = "dt" then cv_dt else Cv.o3)
      program
  in
  let base = Cv.set Cv.o3 Flag.Ipo 1 in
  (* Jump_tables does not affect any decision field for dt. *)
  let cosmetic = Cv.set base Flag.Jump_tables 0 in
  Alcotest.(check int) "cosmetic flag, same fingerprint"
    (Linker.assignment_fingerprint (units base))
    (Linker.assignment_fingerprint (units cosmetic))

let suite =
  ( "compiler",
    [
      Alcotest.test_case "table3 O3: dt" `Quick test_o3_dt;
      Alcotest.test_case "table3 O3: cell3" `Quick test_o3_cell3;
      Alcotest.test_case "table3 O3: cell7" `Quick test_o3_cell7;
      Alcotest.test_case "table3 O3: mom9" `Quick test_o3_mom9;
      Alcotest.test_case "table3 O3: acc" `Quick test_o3_acc;
      Alcotest.test_case "-no-vec" `Quick test_novec_flag;
      Alcotest.test_case "clean code vectorizes" `Quick
        test_clean_loop_vectorizes;
      Alcotest.test_case "forced width" `Quick test_forced_width;
      Alcotest.test_case "opteron clamps 256" `Quick test_opteron_clamps_256;
      Alcotest.test_case "aliasing blocks SIMD" `Quick
        test_alias_blocks_vectorization;
      Alcotest.test_case "fortran alias-free" `Quick test_fortran_alias_free;
      Alcotest.test_case "alias precision monotone" `Quick
        test_alias_provable_monotone_in_precision;
      Alcotest.test_case "recurrences stay scalar" `Quick
        test_dep_chain_blocks_vectorization;
      Alcotest.test_case "divergent reduction veto" `Quick
        test_divergent_reduction_veto;
      Alcotest.test_case "internal estimate shape" `Quick
        test_internal_estimate_shape;
      Alcotest.test_case "unroll flag" `Quick test_unroll_flag_respected;
      Alcotest.test_case "unroll aggressive" `Quick
        test_unroll_aggressive_doubles;
      Alcotest.test_case "unroll trip cap" `Quick test_unroll_trip_cap;
      Alcotest.test_case "O1 semantics" `Quick test_o1_disables;
      Alcotest.test_case "streaming auto" `Quick test_streaming_auto;
      Alcotest.test_case "streaming always/never" `Quick
        test_streaming_always_never;
      Alcotest.test_case "prefetch levels" `Quick test_prefetch_levels;
      Alcotest.test_case "inlining" `Quick test_inlining;
      Alcotest.test_case "fma needs target" `Quick test_fma_needs_target;
      Alcotest.test_case "vector if-conversion" `Quick
        test_vector_if_conversion_mandatory;
      Alcotest.test_case "scalar if-conversion" `Quick
        test_scalar_if_conversion_predictability;
      Alcotest.test_case "code size vs unroll" `Quick
        test_code_size_monotone_in_unroll;
      Alcotest.test_case "decision hash" `Quick test_decision_hash;
      Alcotest.test_case "decision notation" `Quick
        test_decision_summary_notation;
      Alcotest.test_case "pgo collect" `Quick test_pgo_collect;
      Alcotest.test_case "pgo fails (lulesh/optewe)" `Quick
        test_pgo_fails_for_lulesh_and_optewe;
      Alcotest.test_case "pgo informs decisions" `Quick
        test_pgo_improves_decisions;
      Alcotest.test_case "uniform never perturbed" `Quick
        test_uniform_builds_never_perturbed;
      Alcotest.test_case "link deterministic" `Quick test_link_deterministic;
      Alcotest.test_case "mixed builds perturbed" `Quick
        test_mixed_builds_perturbed_somewhere;
      Alcotest.test_case "link luck >= 1" `Quick test_link_luck_positive;
      Alcotest.test_case "link validates units" `Quick
        test_link_validates_units;
      Alcotest.test_case "fingerprint keyed on code" `Quick
        test_fingerprint_tracks_decisions_not_flags;
    ] )
