(* Tests for ft_caliper (annotation API, reports, profiler) and
   ft_outline (hot-loop detection and module partitioning). *)

open Ft_prog
module Annotation = Ft_caliper.Annotation
module Report = Ft_caliper.Report
module Profiler = Ft_caliper.Profiler
module Outline = Ft_outline.Outline
module Toolchain = Ft_machine.Toolchain

let toolchain = Toolchain.make Platform.Broadwell
let program = Ft_suite.Cloverleaf.program
let input = Ft_suite.Suite.tuning_input Platform.Broadwell program

(* --- Annotation --------------------------------------------------------- *)

let test_annotation_basic () =
  let ctx = Annotation.create () in
  Annotation.begin_region ctx "outer";
  Annotation.advance ctx 1.0;
  Annotation.begin_region ctx "inner";
  Annotation.advance ctx 2.0;
  Annotation.end_region ctx "inner";
  Annotation.advance ctx 0.5;
  Annotation.end_region ctx "outer";
  Alcotest.(check (float 1e-9)) "inclusive outer" 3.5
    (Annotation.inclusive_s ctx "outer");
  Alcotest.(check (float 1e-9)) "inclusive inner" 2.0
    (Annotation.inclusive_s ctx "inner");
  Alcotest.(check (float 1e-9)) "unknown region 0" 0.0
    (Annotation.inclusive_s ctx "nope")

let test_annotation_nesting_checked () =
  let ctx = Annotation.create () in
  Annotation.begin_region ctx "a";
  Annotation.begin_region ctx "b";
  Alcotest.check_raises "mismatched end"
    (Invalid_argument
       "Annotation.end_region: expected innermost region \"b\", got \"a\"")
    (fun () -> Annotation.end_region ctx "a");
  Annotation.end_region ctx "b";
  Annotation.end_region ctx "a";
  Alcotest.check_raises "no open region"
    (Invalid_argument "Annotation.end_region: no open region") (fun () ->
      Annotation.end_region ctx "a")

let test_annotation_with_region_exception_safe () =
  let ctx = Annotation.create () in
  (try
     Annotation.with_region ctx "risky" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (list string)) "stack unwound" []
    (Annotation.open_regions ctx)

let test_annotation_negative_rejected () =
  let ctx = Annotation.create () in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Annotation.advance: negative duration") (fun () ->
      Annotation.advance ctx (-1.0))

let test_annotation_to_report () =
  let ctx = Annotation.create () in
  Annotation.with_region ctx "hot" (fun () -> Annotation.advance ctx 9.0);
  let report = Annotation.to_report ~total_s:10.0 ctx in
  Alcotest.(check (float 1e-9)) "loop time" 9.0
    (Option.get (Report.loop_time report "hot"));
  Alcotest.(check (float 1e-9)) "derived other" 1.0 (Report.other_s report)

(* --- Report -------------------------------------------------------------- *)

let sample_report =
  { Report.total_s = 10.0; loop_s = [ ("a", 4.0); ("b", 0.5); ("c", 0.05) ] }

let test_report_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.4
    (Option.get (Report.ratio sample_report "a"));
  Alcotest.(check bool) "missing" true (Report.ratio sample_report "z" = None)

let test_report_hot_loops () =
  Alcotest.(check (list string)) "1% threshold, hottest first" [ "a"; "b" ]
    (Report.hot_loops ~threshold:0.01 sample_report);
  Alcotest.(check (list string)) "higher threshold" [ "a" ]
    (Report.hot_loops ~threshold:0.2 sample_report)

let test_report_other_clamped () =
  let r = { Report.total_s = 1.0; loop_s = [ ("a", 1.2) ] } in
  Alcotest.(check (float 1e-9)) "subtraction clamped at 0" 0.0
    (Report.other_s r)

let test_profiler_run () =
  let report =
    Profiler.run ~toolchain ~program ~input ~rng:(Ft_util.Rng.create 1) ()
  in
  Alcotest.(check int) "every loop sampled" (Program.loop_count program)
    (List.length report.Report.loop_s);
  Alcotest.(check bool) "derived residual is large for Cloverleaf" true
    (Report.other_s report /. report.Report.total_s > 0.3)

let test_baseline_seconds_in_band () =
  List.iter
    (fun (p : Program.t) ->
      List.iter
        (fun platform ->
          let tc = Toolchain.make platform in
          let i = Ft_suite.Suite.tuning_input platform p in
          let t = Profiler.baseline_seconds ~toolchain:tc ~program:p ~input:i in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: %.1f s within the paper's <40s rule"
               p.Program.name (Platform.short_name platform) t)
            true
            (t > 3.0 && t < 40.0))
        Platform.all)
    Ft_suite.Suite.all

(* --- Outline --------------------------------------------------------------- *)

let outline () =
  Outline.outline ~toolchain ~program ~input ~rng:(Ft_util.Rng.create 2) ()

let test_outline_threshold () =
  let o = outline () in
  (* update_halo was calibrated to ~0.7% — below the 1% rule. *)
  Alcotest.(check bool) "update_halo stays cold" true
    (List.mem "update_halo" o.Outline.cold);
  Alcotest.(check bool) "dt outlined" true (List.mem "dt" o.Outline.hot);
  Alcotest.(check int) "partition covers all loops"
    (Program.loop_count program)
    (List.length o.Outline.hot + List.length o.Outline.cold)

let test_outline_module_names () =
  let o = outline () in
  let names = Outline.module_names o in
  Alcotest.(check bool) "residual first" true
    (List.hd names = Outline.residual_module);
  Alcotest.(check int) "J+1 modules" (List.length o.Outline.hot + 1)
    (Outline.module_count o)

let test_outline_cv_routing () =
  let o = outline () in
  let special = Ft_flags.Cv.set Ft_flags.Cv.o3 Ft_flags.Flag.Unroll 3 in
  let assignment name =
    if name = "dt" then special else Ft_flags.Cv.o3
  in
  Alcotest.(check bool) "hot loop uses its own module's CV" true
    (Ft_flags.Cv.equal (Outline.cv_for_region o ~assignment "dt") special);
  Alcotest.(check bool) "cold loop uses the residual CV" true
    (Ft_flags.Cv.equal
       (Outline.cv_for_region o ~assignment "update_halo")
       Ft_flags.Cv.o3)

let test_outline_of_report_custom_threshold () =
  let o = Outline.of_report ~program ~threshold:0.05 (
    Profiler.run ~toolchain ~program ~input ~rng:(Ft_util.Rng.create 3) ())
  in
  (* Only dt exceeds 5% of Cloverleaf's runtime. *)
  Alcotest.(check (list string)) "only dt above 5%" [ "dt" ] o.Outline.hot

let test_outline_compile_links_whole_program () =
  let o = outline () in
  let binary =
    Outline.compile ~toolchain o ~assignment:(fun _ -> Ft_flags.Cv.o3) ()
  in
  Alcotest.(check bool) "uniform assignment links uniformly" true
    binary.Ft_compiler.Linker.uniform

let suite =
  ( "caliper+outline",
    [
      Alcotest.test_case "annotation basics" `Quick test_annotation_basic;
      Alcotest.test_case "annotation nesting" `Quick
        test_annotation_nesting_checked;
      Alcotest.test_case "annotation exception-safety" `Quick
        test_annotation_with_region_exception_safe;
      Alcotest.test_case "annotation negative time" `Quick
        test_annotation_negative_rejected;
      Alcotest.test_case "annotation to report" `Quick
        test_annotation_to_report;
      Alcotest.test_case "report ratios" `Quick test_report_ratio;
      Alcotest.test_case "hot loop selection" `Quick test_report_hot_loops;
      Alcotest.test_case "residual clamped" `Quick test_report_other_clamped;
      Alcotest.test_case "profiler run" `Quick test_profiler_run;
      Alcotest.test_case "O3 runtimes within 40s (all cells)" `Slow
        test_baseline_seconds_in_band;
      Alcotest.test_case "1% outlining threshold" `Quick
        test_outline_threshold;
      Alcotest.test_case "module naming" `Quick test_outline_module_names;
      Alcotest.test_case "cv routing" `Quick test_outline_cv_routing;
      Alcotest.test_case "custom threshold" `Quick
        test_outline_of_report_custom_threshold;
      Alcotest.test_case "outlined compile" `Quick
        test_outline_compile_links_whole_program;
    ] )
