(* Per-benchmark behavioural regressions: each of the seven models was
   calibrated to carry a specific optimization story (which loops O3 gets
   wrong and why).  These tests pin those stories so future model changes
   cannot silently erase the headroom structure the paper's results rest
   on. *)

open Ft_prog
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag
module Exec = Ft_machine.Exec
module Decision = Ft_compiler.Decision
module Toolchain = Ft_machine.Toolchain

let toolchain = Toolchain.make Platform.Broadwell

let run ?(cv = Cv.o3) name =
  let program = Option.get (Ft_suite.Suite.find name) in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  Exec.evaluate ~arch:toolchain.Toolchain.arch ~input
    (Toolchain.compile_uniform toolchain ~cv program)

let region (r : Exec.run) name =
  List.find (fun (x : Exec.region_report) -> x.Exec.name = name) r.Exec.loops

let seconds r name = (region r name).Exec.seconds
let width r name = (region r name).Exec.width

(* --- AMG: sparse kernels wrongly vectorized at O3 ------------------------- *)

let test_amg_matvec_wrongly_vectorized () =
  let o3 = run "AMG" in
  Alcotest.(check bool) "O3 vectorizes the CSR matvec" true
    (width o3 "matvec_fine" <> Decision.Scalar);
  let novec = run ~cv:(Cv.set Cv.o3 Flag.Vec 0) "AMG" in
  Alcotest.(check bool)
    "-no-vec makes matvec faster (the O3 decision was a mistake)" true
    (seconds novec "matvec_fine" < seconds o3 "matvec_fine")

let test_amg_interp_needs_vectorization () =
  (* interp is the counterweight: the clean FMA kernel that -no-vec
     sacrifices, which is why per-program search stalls on AMG. *)
  let o3 = run "AMG" in
  let novec = run ~cv:(Cv.set Cv.o3 Flag.Vec 0) "AMG" in
  Alcotest.(check bool) "interp vectorized at O3" true
    (width o3 "interp" <> Decision.Scalar);
  Alcotest.(check bool) "-no-vec costs interp dearly" true
    (seconds novec "interp" > seconds o3 "interp" *. 1.15)

let test_amg_relax_recurrence_scalar () =
  let o3 = run "AMG" in
  Alcotest.(check bool) "Gauss-Seidel recurrence cannot vectorize" true
    (width o3 "relax_fine" = Decision.Scalar)

(* --- LULESH: eos branches, hourglass spills -------------------------------- *)

let test_lulesh_eos_cmov_tradeoff () =
  (* eos has highly biased branches: O3's if-conversion pays both paths;
     keeping the branches (cmov off) is faster. *)
  let o3 = run "LULESH" in
  let branchy =
    run ~cv:(Cv.set (Cv.set Cv.o3 Flag.Cmov 0) Flag.Branch_conv 0) "LULESH"
  in
  Alcotest.(check bool) "branchy eos beats if-converted eos" true
    (seconds branchy "eos" < seconds o3 "eos")

let test_lulesh_hourglass_spills_at_o3 () =
  let o3 = run "LULESH" in
  Alcotest.(check bool) "big FMA body spills at O3" true
    ((region o3 "hourglass_force").Exec.decision.Decision.spills > 0.05);
  (* Aggressive register allocation shrinks the spill count (the runtime
     effect is muted while the loop rides the memory roofline, so the
     check is on the decision, not the seconds). *)
  let relieved = run ~cv:(Cv.set Cv.o3 Flag.Regalloc 1) "LULESH" in
  Alcotest.(check bool) "regalloc=aggressive reduces spills" true
    ((region relieved "hourglass_force").Exec.decision.Decision.spills
    < (region o3 "hourglass_force").Exec.decision.Decision.spills)

(* --- Cloverleaf: the Table 3 stories (beyond the O3 decision row) ---------- *)

let test_cloverleaf_acc_unlock () =
  let o3 = run "Cloverleaf" in
  let unlocked =
    run
      ~cv:(Cv.set (Cv.set Cv.o3 Flag.Dep_analysis 2) Flag.Simd_width 2)
      "Cloverleaf"
  in
  Alcotest.(check bool) "acc scalar at O3 (alias-blocked)" true
    (width o3 "acc" = Decision.Scalar);
  Alcotest.(check bool) "unlocked acc vectorizes" true
    (width unlocked "acc" = Decision.W256);
  Alcotest.(check bool) "and wins >25%" true
    (seconds o3 "acc" /. seconds unlocked "acc" > 1.25)

let test_cloverleaf_dt_deep_unroll () =
  let o3 = run "Cloverleaf" in
  let tuned =
    run
      ~cv:
        (Cv.set
           (Cv.set (Cv.set Cv.o3 Flag.Vec 0) Flag.Unroll 4 (* 8 *))
           Flag.Sched 2)
      "Cloverleaf"
  in
  Alcotest.(check bool) "deep unrolling breaks dt's dependence chain" true
    (seconds o3 "dt" /. seconds tuned "dt" > 1.25)

let test_cloverleaf_forced_256_loses_on_gather_kernels () =
  let o3 = run "Cloverleaf" in
  let forced =
    run
      ~cv:(Cv.set (Cv.set Cv.o3 Flag.Simd_width 2) Flag.Vector_cost 2)
      "Cloverleaf"
  in
  List.iter
    (fun kernel ->
      Alcotest.(check bool)
        (kernel ^ ": 256-bit slower than O3 scalar")
        true
        (seconds forced kernel > seconds o3 kernel))
    [ "cell3"; "cell7" ]

(* --- Optewe: stress unlock, stencil strides -------------------------------- *)

let test_optewe_stress_update_unlock () =
  let o3 = run "Optewe" in
  let unlocked = run ~cv:(Cv.set Cv.o3 Flag.Dep_analysis 2) "Optewe" in
  Alcotest.(check bool) "stress_update alias-blocked at O3" true
    (width o3 "stress_update" = Decision.Scalar);
  Alcotest.(check bool) "unlock vectorizes it" true
    (width unlocked "stress_update" <> Decision.Scalar);
  Alcotest.(check bool) "unlock pays" true
    (seconds unlocked "stress_update" < seconds o3 "stress_update")

let test_optewe_interchange_matters_for_y_stencil () =
  (* stencil_y's strided sweeps are rescued by loop interchange (on at
     O3); without it the SIMD lanes fight shuffles.  The end-to-end time
     barely moves while the loop rides the memory roofline, so the check
     targets the compute component directly. *)
  let o3 = run "Optewe" in
  let no_interchange = run ~cv:(Cv.set Cv.o3 Flag.Interchange 0) "Optewe" in
  Alcotest.(check bool) "interchange off inflates stencil_y's compute side"
    true
    ((region no_interchange "stencil_y").Exec.compute_s
    > (region o3 "stencil_y").Exec.compute_s *. 1.3)

(* --- bwaves: Fortran means aliasing is free -------------------------------- *)

let test_bwaves_everything_parallel_vectorizes () =
  let o3 = run "351.bwaves" in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " vectorized (Fortran aliasing)") true
        (width o3 name <> Decision.Scalar))
    [ "jacobian"; "flux"; "update" ]

let test_bwaves_jacobian_spills () =
  let o3 = run "351.bwaves" in
  Alcotest.(check bool) "130-insn body spills at O3" true
    ((region o3 "jacobian").Exec.decision.Decision.spills > 0.05)

(* --- swim: the memory system is the whole game ------------------------------ *)

let test_swim_streams_at_o3 () =
  let o3 = run "363.swim" in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " uses non-temporal stores at O3") true
        (region o3 name).Exec.decision.Decision.streaming)
    [ "calc1"; "calc2"; "calc3" ]

let test_swim_streaming_backfires_in_cache () =
  (* The §4.3 pathology: on the tiny "test" input the working set fits the
     LLC, and forced streaming stores cause reloads. *)
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let small = Ft_suite.Suite.small_input program in
  let always = Cv.set Cv.o3 Flag.Streaming_stores 1 in
  let at cv =
    (Exec.evaluate ~arch:toolchain.Toolchain.arch ~input:small
       (Toolchain.compile_uniform toolchain ~cv program))
      .Exec.total_s
  in
  Alcotest.(check bool) "forced streaming slower on the cache-resident input"
    true
    (at always > at (Cv.set Cv.o3 Flag.Streaming_stores 2))

let test_swim_memory_bound () =
  let o3 = run "363.swim" in
  List.iter
    (fun e ->
      if List.mem e.Ft_machine.Explain.region [ "calc1"; "calc2"; "calc3" ]
      then
        Alcotest.(check bool)
          (e.Ft_machine.Explain.region ^ " memory-bound")
          true
          (e.Ft_machine.Explain.boundedness = Ft_machine.Explain.Memory_bound))
    (Ft_machine.Explain.of_run o3)

(* --- fma3d: modest headroom -------------------------------------------------- *)

let test_fma3d_contact_divergent_gathers () =
  let o3 = run "362.fma3d" in
  let forced = run ~cv:(Cv.set Cv.o3 Flag.Simd_width 2) "362.fma3d" in
  (* Forcing SIMD on the divergent contact search must not help much (and
     usually hurts): masked execution touches both branch paths. *)
  Alcotest.(check bool) "forced SIMD no miracle on contact_search" true
    (seconds forced "contact_search" > seconds o3 "contact_search" *. 0.95)

let suite =
  ( "benchmarks",
    [
      Alcotest.test_case "AMG: matvec wrongly vectorized" `Quick
        test_amg_matvec_wrongly_vectorized;
      Alcotest.test_case "AMG: interp needs SIMD" `Quick
        test_amg_interp_needs_vectorization;
      Alcotest.test_case "AMG: relax recurrence" `Quick
        test_amg_relax_recurrence_scalar;
      Alcotest.test_case "LULESH: eos cmov trade-off" `Quick
        test_lulesh_eos_cmov_tradeoff;
      Alcotest.test_case "LULESH: hourglass spills" `Quick
        test_lulesh_hourglass_spills_at_o3;
      Alcotest.test_case "CL: acc alias unlock" `Quick
        test_cloverleaf_acc_unlock;
      Alcotest.test_case "CL: dt deep unroll" `Quick
        test_cloverleaf_dt_deep_unroll;
      Alcotest.test_case "CL: forced 256 loses" `Quick
        test_cloverleaf_forced_256_loses_on_gather_kernels;
      Alcotest.test_case "Optewe: stress unlock" `Quick
        test_optewe_stress_update_unlock;
      Alcotest.test_case "Optewe: interchange" `Quick
        test_optewe_interchange_matters_for_y_stencil;
      Alcotest.test_case "bwaves: Fortran vectorizes" `Quick
        test_bwaves_everything_parallel_vectorizes;
      Alcotest.test_case "bwaves: jacobian spills" `Quick
        test_bwaves_jacobian_spills;
      Alcotest.test_case "swim: streams at O3" `Quick test_swim_streams_at_o3;
      Alcotest.test_case "swim: streaming backfires in cache" `Quick
        test_swim_streaming_backfires_in_cache;
      Alcotest.test_case "swim: memory-bound" `Quick test_swim_memory_bound;
      Alcotest.test_case "fma3d: contact divergence" `Quick
        test_fma3d_contact_divergent_gathers;
    ] )
