(* Tests for ft_baselines: Combined Elimination and the PGO driver. *)

open Ft_prog
module Ce = Ft_baselines.Ce
module Pgo_driver = Ft_baselines.Pgo_driver
module Toolchain = Ft_machine.Toolchain
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag

let toolchain = Toolchain.make Platform.Broadwell
let swim = Option.get (Ft_suite.Suite.find "363.swim")
let swim_input = Ft_suite.Suite.tuning_input Platform.Broadwell swim

let ce_result =
  lazy
    (Ce.run ~toolchain ~program:swim ~input:swim_input
       ~rng:(Ft_util.Rng.create 51) ())

let test_ce_terminates_in_binary_space () =
  let r = Lazy.force ce_result in
  Alcotest.(check bool) "final CV is binarized" true
    (Cv.to_bits r.Ce.cv <> None);
  Alcotest.(check bool) "used a plausible number of evaluations" true
    (r.Ce.evaluations > Flag.count && r.Ce.evaluations < 20 * Flag.count)

let test_ce_steps_negative_rips () =
  let r = Lazy.force ce_result in
  List.iter
    (fun s ->
      Alcotest.(check bool) "every elimination helped" true (s.Ce.rip < 0.0))
    r.Ce.steps

let test_ce_eliminations_are_off () =
  let r = Lazy.force ce_result in
  List.iter
    (fun s ->
      Alcotest.(check int)
        ("eliminated flag back at default: " ^ Flag.name s.Ce.eliminated)
        (Flag.default_o3 s.Ce.eliminated)
        (Cv.get r.Ce.cv s.Ce.eliminated))
    r.Ce.steps

let test_ce_speedup_sane () =
  let r = Lazy.force ce_result in
  Alcotest.(check bool) "not a catastrophe, not a miracle" true
    (r.Ce.speedup > 0.8 && r.Ce.speedup < 1.4)

let test_ce_deterministic () =
  let r1 = Lazy.force ce_result in
  let r2 =
    Ce.run ~toolchain ~program:swim ~input:swim_input
      ~rng:(Ft_util.Rng.create 51) ()
  in
  Alcotest.(check (float 1e-12)) "same seed, same result" r1.Ce.speedup
    r2.Ce.speedup

let test_be_single_pass () =
  let r =
    Ce.run_batch ~toolchain ~program:swim ~input:swim_input
      ~rng:(Ft_util.Rng.create 54) ()
  in
  Alcotest.(check string) "label" "BE" r.Ce.algorithm;
  (* BE measures B once plus one RIP per flag: exactly 34 evaluations. *)
  Alcotest.(check int) "one RIP measurement per flag"
    (1 + Ft_flags.Flag.count) r.Ce.evaluations;
  Alcotest.(check bool) "binarized" true (Cv.to_bits r.Ce.cv <> None)

let test_ie_more_expensive_than_ce () =
  let ie =
    Ce.run_iterative ~toolchain ~program:swim ~input:swim_input
      ~rng:(Ft_util.Rng.create 55) ()
  in
  let ce = Lazy.force ce_result in
  Alcotest.(check string) "label" "IE" ie.Ce.algorithm;
  Alcotest.(check string) "ce label" "CE" ce.Ce.algorithm;
  (* IE re-measures every remaining flag per elimination; CE folds several
     eliminations into one sweep — with any eliminations at all, IE pays
     at least as many evaluations per elimination. *)
  Alcotest.(check bool) "IE uses a full sweep per elimination" true
    (List.length ie.Ce.steps = 0
    || ie.Ce.evaluations / max 1 (List.length ie.Ce.steps)
       >= ce.Ce.evaluations / max 1 (List.length ce.Ce.steps))

let test_variants_comparable_quality () =
  let be =
    Ce.run_batch ~toolchain ~program:swim ~input:swim_input
      ~rng:(Ft_util.Rng.create 56) ()
  in
  let ce = Lazy.force ce_result in
  Alcotest.(check bool) "both in a plausible band" true
    (be.Ce.speedup > 0.8 && be.Ce.speedup < 1.4 && ce.Ce.speedup > 0.8)

(* --- PGO -------------------------------------------------------------- *)

let test_pgo_success_path () =
  let r =
    Pgo_driver.run ~toolchain ~program:swim ~input:swim_input
      ~rng:(Ft_util.Rng.create 52) ()
  in
  Alcotest.(check bool) "swim instruments fine" true r.Pgo_driver.succeeded;
  Alcotest.(check bool) "no diagnostic" true (r.Pgo_driver.diagnostic = None);
  Alcotest.(check bool) "PGO helps a little" true (r.Pgo_driver.speedup > 0.97)

let test_pgo_failure_path () =
  let lulesh = Option.get (Ft_suite.Suite.find "LULESH") in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell lulesh in
  let r =
    Pgo_driver.run ~toolchain ~program:lulesh ~input
      ~rng:(Ft_util.Rng.create 53) ()
  in
  Alcotest.(check bool) "LULESH instrumentation fails" false
    r.Pgo_driver.succeeded;
  Alcotest.(check bool) "diagnostic explains" true
    (r.Pgo_driver.diagnostic <> None);
  (* The shipped binary is then plain O3: speedup ~1 up to noise. *)
  Alcotest.(check bool) "falls back to O3" true
    (Float.abs (r.Pgo_driver.speedup -. 1.0) < 0.05)

let test_pgo_binary_is_profile_guided () =
  let binary = Pgo_driver.tuned_binary ~toolchain ~program:swim ~input:swim_input in
  List.iter
    (fun (r : Ft_compiler.Linker.region) ->
      Alcotest.(check bool) "regions carry profile info" true
        r.Ft_compiler.Linker.final.Ft_compiler.Decision.profile_guided)
    binary.Ft_compiler.Linker.regions

let suite =
  ( "baselines",
    [
      Alcotest.test_case "CE stays binarized" `Quick
        test_ce_terminates_in_binary_space;
      Alcotest.test_case "CE negative RIPs" `Quick test_ce_steps_negative_rips;
      Alcotest.test_case "CE eliminations applied" `Quick
        test_ce_eliminations_are_off;
      Alcotest.test_case "CE sane speedup" `Quick test_ce_speedup_sane;
      Alcotest.test_case "CE deterministic" `Quick test_ce_deterministic;
      Alcotest.test_case "BE single pass" `Quick test_be_single_pass;
      Alcotest.test_case "IE vs CE cost" `Quick test_ie_more_expensive_than_ce;
      Alcotest.test_case "variant quality band" `Quick
        test_variants_comparable_quality;
      Alcotest.test_case "PGO success" `Quick test_pgo_success_path;
      Alcotest.test_case "PGO failure (LULESH)" `Quick test_pgo_failure_path;
      Alcotest.test_case "PGO binary profile-guided" `Quick
        test_pgo_binary_is_profile_guided;
    ] )
