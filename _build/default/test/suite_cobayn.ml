(* Tests for ft_cobayn: feature extraction, the synthetic cBench corpus,
   Chow–Liu tree learning, and the trained model. *)

open Ft_prog
module Features = Ft_cobayn.Features
module Corpus = Ft_cobayn.Corpus
module Chow_liu = Ft_cobayn.Chow_liu
module Model = Ft_cobayn.Model
module Rng = Ft_util.Rng

(* --- features ------------------------------------------------------------ *)

let test_feature_dimensions () =
  let p = Ft_suite.Cloverleaf.program in
  Alcotest.(check int) "static dims" Features.static_dims
    (Array.length (Features.static_features p));
  Alcotest.(check int) "dynamic dims" Features.dynamic_dims
    (Array.length (Features.dynamic_features p));
  Alcotest.(check int) "hybrid = static + dynamic"
    (Features.static_dims + Features.dynamic_dims)
    (Array.length (Features.extract Features.Hybrid p))

let test_feature_finiteness () =
  List.iter
    (fun p ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "finite feature" true (Float.is_finite v))
        (Features.extract Features.Hybrid p))
    Ft_suite.Suite.all

let test_features_discriminate () =
  let a = Features.static_features Ft_suite.Cloverleaf.program in
  let b = Features.static_features Ft_suite.Swim.program in
  Alcotest.(check bool) "different programs, different features" true (a <> b)

let test_dynamic_features_serial_blindness () =
  (* For an OpenMP program the dynamic features come from the serial
     regions only; they must therefore be identical for two programs that
     share serial code but have wildly different parallel loops. *)
  let serial = { Feature.default with Feature.parallel = false } in
  let mk name hot_loop =
    Program.make ~name ~language:Program.C ~loc:1 ~domain:"d"
      ~reference_size:1.0
      ~nonloop:(Loop.make "<nl>" serial)
      [ Loop.make "hot" hot_loop ]
  in
  let p1 = mk "p1" { Feature.default with Feature.flops_per_iter = 200.0 } in
  let p2 = mk "p2" { Feature.default with Feature.gather_bytes = 64.0 } in
  Alcotest.(check bool) "MICA sees only serial code" true
    (Features.dynamic_features p1 = Features.dynamic_features p2);
  Alcotest.(check bool) "static features do differ" true
    (Features.static_features p1 <> Features.static_features p2)

let test_variant_names () =
  Alcotest.(check string) "static" "static" (Features.variant_name Features.Static);
  Alcotest.(check string) "dynamic" "dynamic"
    (Features.variant_name Features.Dynamic);
  Alcotest.(check string) "hybrid" "hybrid" (Features.variant_name Features.Hybrid)

(* --- corpus --------------------------------------------------------------- *)

let corpus = lazy (Corpus.programs ~seed:2019)

let test_corpus_size_and_names () =
  let c = Lazy.force corpus in
  Alcotest.(check int) "30 cBench programs" 30 (List.length c);
  Alcotest.(check bool) "bitcount present" true
    (List.exists (fun (p : Program.t) -> p.Program.name = "bitcount") c)

let test_corpus_serial () =
  List.iter
    (fun (p : Program.t) ->
      List.iter
        (fun (l : Loop.t) ->
          Alcotest.(check bool)
            (p.Program.name ^ " is serial")
            false l.Loop.features.Feature.parallel)
        p.Program.loops)
    (Lazy.force corpus)

let test_corpus_deterministic () =
  let c1 = Lazy.force corpus and c2 = Corpus.programs ~seed:2019 in
  List.iter2
    (fun (a : Program.t) (b : Program.t) ->
      Alcotest.(check string) "same name" a.Program.name b.Program.name;
      Alcotest.(check int) "same loop count" (Program.loop_count a)
        (Program.loop_count b))
    c1 c2;
  let c3 = Corpus.programs ~seed:7 in
  let loops c =
    List.map (fun (p : Program.t) ->
        List.map (fun (l : Loop.t) -> l.Loop.features.Feature.flops_per_iter)
          p.Program.loops) c
  in
  Alcotest.(check bool) "different seed, different corpus" true
    (loops c1 <> loops c3)

(* --- Chow-Liu --------------------------------------------------------------- *)

let test_mutual_information_properties () =
  let rng = Rng.create 71 in
  (* x0 random; x1 = x0 (fully dependent); x2 independent. *)
  let samples =
    List.init 400 (fun _ ->
        let a = Rng.bool rng and c = Rng.bool rng in
        [| a; a; c |])
  in
  let mi01 = Chow_liu.mutual_information samples 0 1 in
  let mi02 = Chow_liu.mutual_information samples 0 2 in
  Alcotest.(check bool) "dependent pair has higher MI" true (mi01 > mi02);
  Alcotest.(check bool) "MI near ln 2 for a copy" true
    (mi01 > 0.5 && mi01 < 0.75);
  Alcotest.(check bool) "independent MI near 0" true (Float.abs mi02 < 0.05)

let test_chow_liu_recovers_structure () =
  let rng = Rng.create 72 in
  (* chain: x0 -> x1 -> x2 with strong correlations. *)
  let flip p v = if Rng.float rng 1.0 < p then not v else v in
  let samples =
    List.init 600 (fun _ ->
        let a = Rng.bool rng in
        let b = flip 0.1 a in
        let c = flip 0.1 b in
        [| a; b; c |])
  in
  let tree = Chow_liu.fit ~dims:3 samples in
  let edges = Chow_liu.edges tree in
  Alcotest.(check int) "tree has dims-1 edges" 2 (List.length edges);
  let connected a b =
    List.mem (a, b) edges || List.mem (b, a) edges
  in
  Alcotest.(check bool) "0-1 edge kept" true (connected 0 1);
  Alcotest.(check bool) "1-2 edge kept" true (connected 1 2);
  Alcotest.(check bool) "no direct 0-2 shortcut" false (connected 0 2)

let test_chow_liu_sampling_matches_marginals () =
  let rng = Rng.create 73 in
  let samples =
    List.init 500 (fun _ -> [| Rng.float rng 1.0 < 0.8; Rng.bool rng |])
  in
  let tree = Chow_liu.fit ~dims:2 samples in
  let draw_rng = Rng.create 74 in
  let n = 2000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if (Chow_liu.sample tree draw_rng).(0) then incr ones
  done;
  Alcotest.(check bool) "sampled marginal ~0.8" true
    (let p = float_of_int !ones /. float_of_int n in
     p > 0.74 && p < 0.86)

let test_chow_liu_log_likelihood () =
  let rng = Rng.create 75 in
  let samples = List.init 300 (fun _ -> [| Rng.float rng 1.0 < 0.9; true |]) in
  let tree = Chow_liu.fit ~dims:2 samples in
  let common = Chow_liu.log_likelihood tree [| true; true |] in
  let rare = Chow_liu.log_likelihood tree [| false; false |] in
  Alcotest.(check bool) "frequent assignment more likely" true (common > rare)

let test_chow_liu_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Chow_liu.fit: no samples")
    (fun () -> ignore (Chow_liu.fit ~dims:3 []));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Chow_liu.fit: ragged sample rows") (fun () ->
      ignore (Chow_liu.fit ~dims:3 [ [| true |] ]))

(* --- EM mixtures --------------------------------------------------------- *)

let test_em_separates_clusters () =
  let rng = Rng.create 81 in
  (* Two well-separated blobs in 2-D. *)
  let blob cx cy n =
    List.init n (fun _ ->
        [| cx +. Rng.gauss rng ~mu:0.0 ~sigma:0.2;
           cy +. Rng.gauss rng ~mu:0.0 ~sigma:0.2 |])
  in
  let a = blob 0.0 0.0 40 and b = blob 5.0 5.0 40 in
  let m = Ft_cobayn.Em.fit ~k:2 ~rng (a @ b) in
  Alcotest.(check int) "two components" 2 (Ft_cobayn.Em.components m);
  let ca = Ft_cobayn.Em.assign m [| 0.1; -0.1 |] in
  let cb = Ft_cobayn.Em.assign m [| 4.9; 5.2 |] in
  Alcotest.(check bool) "blobs assigned to distinct components" true (ca <> cb);
  (* Points are assigned consistently with their own blob. *)
  List.iter
    (fun x -> Alcotest.(check int) "blob a member" ca (Ft_cobayn.Em.assign m x))
    a

let test_em_responsibilities_sum_to_one () =
  let rng = Rng.create 82 in
  let samples = List.init 30 (fun _ -> [| Rng.float rng 4.0; Rng.float rng 4.0 |]) in
  let m = Ft_cobayn.Em.fit ~k:3 ~rng samples in
  List.iter
    (fun x ->
      let r = Ft_cobayn.Em.responsibilities m x in
      let sum = Array.fold_left ( +. ) 0.0 r in
      Alcotest.(check (float 1e-6)) "posterior sums to 1" 1.0 sum)
    samples

let test_em_likelihood_ranks_points () =
  let rng = Rng.create 83 in
  let samples = List.init 60 (fun _ -> [| Rng.gauss rng ~mu:1.0 ~sigma:0.3 |]) in
  let m = Ft_cobayn.Em.fit ~k:1 ~rng samples in
  Alcotest.(check bool) "points near the mean are likelier" true
    (Ft_cobayn.Em.log_likelihood m [| 1.0 |]
    > Ft_cobayn.Em.log_likelihood m [| 8.0 |])

let test_em_weights_normalized () =
  let rng = Rng.create 84 in
  let samples = List.init 20 (fun _ -> [| Rng.float rng 1.0 |]) in
  let m = Ft_cobayn.Em.fit ~k:2 ~rng samples in
  let sum = Array.fold_left ( +. ) 0.0 (Ft_cobayn.Em.weights m) in
  Alcotest.(check (float 1e-6)) "mixing weights sum to 1" 1.0 sum

let test_em_input_validation () =
  let rng = Rng.create 85 in
  Alcotest.check_raises "empty" (Invalid_argument "Em.fit: no samples")
    (fun () -> ignore (Ft_cobayn.Em.fit ~k:2 ~rng []));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Em.fit: ragged sample rows") (fun () ->
      ignore (Ft_cobayn.Em.fit ~k:2 ~rng [ [| 1.0 |]; [| 1.0; 2.0 |] ]))

(* --- model (small training run) ---------------------------------------------- *)

let small_model =
  lazy
    (Model.train
       ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
       ~variant:Features.Static ~corpus_seed:2019 ~top:20
       ~samples_per_program:100 ())

let test_model_training () =
  let m = Lazy.force small_model in
  Alcotest.(check bool) "clusters exist" true (Model.cluster_count m >= 1);
  Alcotest.(check bool) "variant remembered" true
    (Model.variant m = Features.Static)

let test_model_sampling_binarized () =
  let m = Lazy.force small_model in
  let rng = Rng.create 76 in
  for _ = 1 to 50 do
    let cv = Model.sample_cv m ~cluster:0 rng in
    Alcotest.(check bool) "samples live in the binarized space" true
      (Ft_flags.Cv.to_bits cv <> None)
  done

let test_model_nearest_cluster_in_range () =
  let m = Lazy.force small_model in
  List.iter
    (fun p ->
      let c = Model.nearest_cluster m p in
      Alcotest.(check bool) "valid cluster" true
        (c >= 0 && c < Model.cluster_count m))
    Ft_suite.Suite.all

let test_model_tune_smoke () =
  let m = Lazy.force small_model in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let ctx =
    Funcytuner.Context.make ~pool_size:60
      ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
      ~program
      ~input:(Ft_suite.Suite.tuning_input Platform.Broadwell program)
      ~seed:77 ()
  in
  let r = Model.tune m ctx in
  Alcotest.(check string) "algorithm label" "COBAYN(static)"
    r.Funcytuner.Result.algorithm;
  Alcotest.(check int) "budget = pool" 60 r.Funcytuner.Result.evaluations;
  Alcotest.(check bool) "plausible result" true
    (r.Funcytuner.Result.speedup > 0.9)

let suite =
  ( "cobayn",
    [
      Alcotest.test_case "feature dimensions" `Quick test_feature_dimensions;
      Alcotest.test_case "feature finiteness" `Quick test_feature_finiteness;
      Alcotest.test_case "features discriminate" `Quick
        test_features_discriminate;
      Alcotest.test_case "MICA serial blindness" `Quick
        test_dynamic_features_serial_blindness;
      Alcotest.test_case "variant names" `Quick test_variant_names;
      Alcotest.test_case "corpus size" `Quick test_corpus_size_and_names;
      Alcotest.test_case "corpus serial" `Quick test_corpus_serial;
      Alcotest.test_case "corpus determinism" `Quick test_corpus_deterministic;
      Alcotest.test_case "mutual information" `Quick
        test_mutual_information_properties;
      Alcotest.test_case "chow-liu structure" `Quick
        test_chow_liu_recovers_structure;
      Alcotest.test_case "chow-liu sampling" `Quick
        test_chow_liu_sampling_matches_marginals;
      Alcotest.test_case "chow-liu likelihood" `Quick
        test_chow_liu_log_likelihood;
      Alcotest.test_case "chow-liu input checks" `Quick
        test_chow_liu_rejects_bad_input;
      Alcotest.test_case "EM separates clusters" `Quick
        test_em_separates_clusters;
      Alcotest.test_case "EM posteriors normalized" `Quick
        test_em_responsibilities_sum_to_one;
      Alcotest.test_case "EM likelihood ranking" `Quick
        test_em_likelihood_ranks_points;
      Alcotest.test_case "EM weights normalized" `Quick
        test_em_weights_normalized;
      Alcotest.test_case "EM input validation" `Quick test_em_input_validation;
      Alcotest.test_case "model training" `Quick test_model_training;
      Alcotest.test_case "model samples binarized" `Quick
        test_model_sampling_binarized;
      Alcotest.test_case "nearest cluster" `Quick
        test_model_nearest_cluster_in_range;
      Alcotest.test_case "model tune smoke" `Quick test_model_tune_smoke;
    ] )
