(* Tests for ft_opentuner: each search technique against synthetic
   objectives, the AUC bandit's credit assignment, and the ensemble. *)

open Ft_prog
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag
module Technique = Ft_opentuner.Technique
module Bandit = Ft_opentuner.Bandit

(* A smooth synthetic objective over CVs: squared distance of the relaxed
   point to a known optimum — every technique should make progress on
   it. *)
let synthetic_objective target cv =
  let p = Ft_flags.Space.to_point cv in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. target.(i)) ** 2.0)) p;
  !acc

let drive technique objective budget =
  let best = ref infinity in
  for _ = 1 to budget do
    let cv = technique.Technique.propose () in
    let cost = objective cv in
    technique.Technique.feedback cv cost;
    if cost < !best then best := cost
  done;
  !best

let target = Array.init Ft_flags.Space.dimensions (fun i ->
    0.1 +. (0.8 *. float_of_int (i mod 5) /. 5.0))

let random_baseline budget seed =
  let rng = Ft_util.Rng.create seed in
  let best = ref infinity in
  for _ = 1 to budget do
    let cost = synthetic_objective target (Ft_flags.Space.sample rng) in
    if cost < !best then best := cost
  done;
  !best

let improves name make =
  let technique = make ~rng:(Ft_util.Rng.create 60) () in
  let found = drive technique (synthetic_objective target) 400 in
  let baseline = random_baseline 400 61 in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%.3f) at least matches random (%.3f)" name found
       baseline)
    true
    (found <= baseline *. 1.15)

let test_de () = improves "DE" (fun ~rng () -> Ft_opentuner.De.create ~rng ())

let test_nelder_mead () =
  (* Nelder-Mead is known to struggle in 33 dimensions (which is exactly
     why OpenTuner runs it under a bandit); require sanity, not victory. *)
  let technique = Ft_opentuner.Nelder_mead.create ~rng:(Ft_util.Rng.create 60) () in
  let found = drive technique (synthetic_objective target) 400 in
  let baseline = random_baseline 400 61 in
  Alcotest.(check bool)
    (Printf.sprintf "NelderMead (%.3f) lands within 1.5x of random (%.3f)"
       found baseline)
    true
    (found <= baseline *. 1.5)

let test_torczon () =
  improves "Torczon" (fun ~rng () -> Ft_opentuner.Torczon.create ~rng ())

let test_ga () = improves "GA" (fun ~rng () -> Ft_opentuner.Ga.create ~rng ())

let test_pso () =
  improves "PSO" (fun ~rng () -> Ft_opentuner.Pso.create ~rng ())

let test_annealing () =
  improves "SimulatedAnnealing" (fun ~rng () ->
      Ft_opentuner.Annealing.create ~rng ())

let test_techniques_propose_valid_cvs () =
  List.iter
    (fun (make : rng:Ft_util.Rng.t -> unit -> Technique.t) ->
      let t = make ~rng:(Ft_util.Rng.create 62) () in
      for _ = 1 to 50 do
        let cv = t.Technique.propose () in
        t.Technique.feedback cv 1.0;
        Array.iter
          (fun id ->
            let v = Cv.get cv id in
            Alcotest.(check bool) "valid CV" true (v >= 0 && v < Flag.arity id))
          Flag.all
      done)
    [
      (fun ~rng () -> Ft_opentuner.De.create ~rng ());
      (fun ~rng () -> Ft_opentuner.Nelder_mead.create ~rng ());
      (fun ~rng () -> Ft_opentuner.Torczon.create ~rng ());
      (fun ~rng () -> Ft_opentuner.Ga.create ~rng ());
      (fun ~rng () -> Ft_opentuner.Pso.create ~rng ());
      (fun ~rng () -> Ft_opentuner.Annealing.create ~rng ());
    ]

(* --- bandit -------------------------------------------------------------- *)

let test_bandit_tries_everything_first () =
  let b = Bandit.create [ "a"; "b"; "c" ] in
  let first_three =
    List.init 3 (fun _ ->
        let arm = Bandit.select b in
        Bandit.reward b arm false;
        arm)
  in
  Alcotest.(check int) "all arms visited" 3
    (List.length (List.sort_uniq compare first_three))

let test_bandit_prefers_successful_arm () =
  let b = Bandit.create ~exploration:0.2 [ "good"; "bad" ] in
  for _ = 1 to 30 do
    let arm = Bandit.select b in
    Bandit.reward b arm (arm = "good")
  done;
  Alcotest.(check bool) "credit flows to the improving arm" true
    (Bandit.uses b "good" > Bandit.uses b "bad")

let test_bandit_auc_recency () =
  let b = Bandit.create [ "x" ] in
  (* Same number of successes, but recent ones weigh more. *)
  Bandit.reward b "x" false;
  Bandit.reward b "x" true;
  let recent_heavy = Bandit.auc b "x" in
  let b2 = Bandit.create [ "x" ] in
  Bandit.reward b2 "x" true;
  Bandit.reward b2 "x" false;
  Alcotest.(check bool) "recency weighting" true
    (recent_heavy > Bandit.auc b2 "x")

let test_bandit_unknown_arm () =
  let b = Bandit.create [ "a" ] in
  Alcotest.check_raises "unknown arm" (Invalid_argument "Bandit: unknown arm z")
    (fun () -> Bandit.reward b "z" true)

(* --- ensemble -------------------------------------------------------------- *)

let test_ensemble_on_benchmark () =
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let ctx =
    Funcytuner.Context.make ~pool_size:80
      ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
      ~program
      ~input:(Ft_suite.Suite.tuning_input Platform.Broadwell program)
      ~seed:63 ()
  in
  let o = Ft_opentuner.Ensemble.run ~budget:80 ctx in
  let r = o.Ft_opentuner.Ensemble.result in
  Alcotest.(check string) "name" "OpenTuner" r.Funcytuner.Result.algorithm;
  Alcotest.(check int) "budget respected" 80 r.Funcytuner.Result.evaluations;
  Alcotest.(check int) "seven techniques" 7
    (List.length o.Ft_opentuner.Ensemble.technique_uses);
  Alcotest.(check int) "usage adds to budget" 80
    (List.fold_left (fun acc (_, u) -> acc + u) 0
       o.Ft_opentuner.Ensemble.technique_uses);
  Alcotest.(check bool) "found something reasonable" true
    (r.Funcytuner.Result.speedup > 0.95)

let suite =
  ( "opentuner",
    [
      Alcotest.test_case "differential evolution" `Quick test_de;
      Alcotest.test_case "nelder-mead" `Quick test_nelder_mead;
      Alcotest.test_case "torczon pattern search" `Quick test_torczon;
      Alcotest.test_case "genetic algorithm" `Quick test_ga;
      Alcotest.test_case "particle swarm" `Quick test_pso;
      Alcotest.test_case "simulated annealing" `Quick test_annealing;
      Alcotest.test_case "valid proposals" `Quick
        test_techniques_propose_valid_cvs;
      Alcotest.test_case "bandit initial sweep" `Quick
        test_bandit_tries_everything_first;
      Alcotest.test_case "bandit credit" `Quick
        test_bandit_prefers_successful_arm;
      Alcotest.test_case "bandit AUC recency" `Quick test_bandit_auc_recency;
      Alcotest.test_case "bandit unknown arm" `Quick test_bandit_unknown_arm;
      Alcotest.test_case "ensemble end-to-end" `Quick test_ensemble_on_benchmark;
    ] )
