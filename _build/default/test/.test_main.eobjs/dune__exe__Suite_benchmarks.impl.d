test/suite_benchmarks.ml: Alcotest Ft_compiler Ft_flags Ft_machine Ft_prog Ft_suite List Option Platform
