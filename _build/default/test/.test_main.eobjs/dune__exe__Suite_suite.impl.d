test/suite_suite.ml: Alcotest Astring_contains Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Input List Option Platform Printf Program
