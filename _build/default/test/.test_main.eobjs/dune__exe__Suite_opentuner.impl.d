test/suite_opentuner.ml: Alcotest Array Ft_flags Ft_machine Ft_opentuner Ft_prog Ft_suite Ft_util Funcytuner List Option Platform Printf
