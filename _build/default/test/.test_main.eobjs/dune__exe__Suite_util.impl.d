test/suite_util.ml: Alcotest Array Astring_contains Float Ft_util Gen List QCheck QCheck_alcotest String
