test/suite_caliper_outline.ml: Alcotest Ft_caliper Ft_compiler Ft_flags Ft_machine Ft_outline Ft_prog Ft_suite Ft_util List Option Platform Printf Program
