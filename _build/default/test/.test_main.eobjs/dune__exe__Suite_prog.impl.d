test/suite_prog.ml: Alcotest Feature Ft_prog Input List Loop Platform Program
