test/suite_machine.ml: Alcotest Array Astring_contains Float Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Input List Platform Printf Program QCheck QCheck_alcotest
