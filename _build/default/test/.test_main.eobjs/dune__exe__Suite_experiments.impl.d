test/suite_experiments.ml: Alcotest Astring_contains Ft_experiments Ft_prog Ft_suite Ft_util Funcytuner Lazy List Option Platform Program String
