test/suite_compiler.ml: Alcotest Array Cprofile Cunit Decision Feature Ft_compiler Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Heuristics Input Linker List Loop Option Pgo Platform Program Target
