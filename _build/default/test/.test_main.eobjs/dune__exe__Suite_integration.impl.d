test/suite_integration.ml: Alcotest Feature Ft_caliper Ft_compiler Ft_flags Ft_machine Ft_outline Ft_prog Ft_suite Funcytuner Input List Loop Option Platform Program
