test/suite_baselines.ml: Alcotest Float Ft_baselines Ft_compiler Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Lazy List Option Platform
