test/suite_core.ml: Alcotest Array Float Ft_flags Ft_machine Ft_outline Ft_prog Ft_suite Ft_util Funcytuner Lazy List Platform Printf
