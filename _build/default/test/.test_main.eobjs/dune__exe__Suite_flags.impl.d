test/suite_flags.ml: Alcotest Array Ft_flags Ft_util List Printf QCheck QCheck_alcotest String
