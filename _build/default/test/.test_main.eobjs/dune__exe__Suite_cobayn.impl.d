test/suite_cobayn.ml: Alcotest Array Feature Float Ft_cobayn Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Funcytuner Lazy List Loop Option Platform Program
