(* End-to-end integration tests: the whole pipeline on secondary
   benchmarks/platforms, cross-input consistency, and failure injection
   (invalid configurations must be rejected loudly, never mis-tuned
   silently). *)

open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result
module Outline = Ft_outline.Outline
module Toolchain = Ft_machine.Toolchain
module Cv = Ft_flags.Cv

(* --- full pipeline on a second platform ---------------------------------- *)

let test_pipeline_on_opteron () =
  let program = Option.get (Ft_suite.Suite.find "AMG") in
  let input = Ft_suite.Suite.tuning_input Platform.Opteron program in
  let session =
    Tuner.make_session ~pool_size:80 ~platform:Platform.Opteron ~program
      ~input ~seed:31 ()
  in
  let cfr = Tuner.run_cfr ~top_x:8 session in
  Alcotest.(check bool) "AMG tunes on Opteron" true (cfr.Result.speedup > 1.0);
  (* The Opteron target has no 256-bit units: no tuned module may carry a
     256-bit decision. *)
  let binary = Tuner.build_configuration session cfr.Result.configuration in
  List.iter
    (fun (r : Ft_compiler.Linker.region) ->
      Alcotest.(check bool) "no 256-bit code on Opteron" true
        (r.Ft_compiler.Linker.final.Ft_compiler.Decision.width
        <> Ft_compiler.Decision.W256))
    binary.Ft_compiler.Linker.regions

let test_pipeline_on_fortran_benchmark () =
  (* bwaves is Fortran: aliasing never blocks vectorization, so every hot
     loop without a recurrence should end up vectorized at O3. *)
  let program = Option.get (Ft_suite.Suite.find "351.bwaves") in
  let toolchain = Toolchain.make Platform.Broadwell in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let run =
    Ft_machine.Exec.evaluate ~arch:toolchain.Toolchain.arch ~input
      (Toolchain.compile_uniform toolchain ~cv:Cv.o3 program)
  in
  let find name =
    List.find (fun (r : Ft_machine.Exec.region_report) ->
        r.Ft_machine.Exec.name = name)
      run.Ft_machine.Exec.loops
  in
  Alcotest.(check bool) "flux vectorized at O3" true
    ((find "flux").Ft_machine.Exec.width <> Ft_compiler.Decision.Scalar);
  Alcotest.(check bool) "solver recurrence stays scalar" true
    ((find "solver_sweep").Ft_machine.Exec.width = Ft_compiler.Decision.Scalar)

let test_tuned_config_rebuilds_identically () =
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let session =
    Tuner.make_session ~pool_size:60 ~platform:Platform.Broadwell ~program
      ~input ~seed:32 ()
  in
  let cfr = Tuner.run_cfr ~top_x:8 session in
  let t1 =
    (Ft_machine.Exec.evaluate
       ~arch:(Ft_machine.Arch.of_platform Platform.Broadwell)
       ~input
       (Tuner.build_configuration session cfr.Result.configuration))
      .Ft_machine.Exec.total_s
  in
  Alcotest.(check (float 1e-12))
    "rebuilding the winner reproduces its reported time" cfr.Result.best_seconds
    t1

(* --- failure injection ----------------------------------------------------- *)

let test_balance_rejects_bad_shares () =
  let toolchain = Toolchain.make Platform.Broadwell in
  let program = Ft_suite.Cloverleaf.program in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  Alcotest.check_raises "unknown loop name"
    (Invalid_argument "Balance.calibrate: unknown loop nope") (fun () ->
      ignore
        (Ft_suite.Balance.calibrate ~toolchain ~input ~total_s:10.0
           ~shares:[ ("nope", 0.5) ]
           program));
  Alcotest.check_raises "shares above 1"
    (Invalid_argument "Balance.calibrate: loop shares must sum below 1")
    (fun () ->
      ignore
        (Ft_suite.Balance.calibrate ~toolchain ~input ~total_s:10.0
           ~shares:[ ("dt", 0.6); ("acc", 0.6) ]
           program))

let test_assignment_must_cover_modules () =
  (* A per-module assignment missing a module must fail at build time, not
     silently fall back. *)
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let session =
    Tuner.make_session ~pool_size:40 ~platform:Platform.Broadwell ~program
      ~input ~seed:33 ()
  in
  match
    Tuner.build_configuration session
      (Result.Per_module [ ("calc1", Cv.o3) ])
  with
  | exception Not_found -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "incomplete assignment accepted"

let test_empty_pool_rejected () =
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let ctx =
    Funcytuner.Context.make ~pool_size:0
      ~toolchain:(Toolchain.make Platform.Broadwell)
      ~program ~input ~seed:34 ()
  in
  match Funcytuner.Random_search.run ctx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-budget search should not produce a result"

(* --- cross-input consistency ------------------------------------------------ *)

let test_fig8_inputs_scale_linearly () =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let toolchain = Toolchain.make Platform.Broadwell in
  let tuning = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let at steps =
    Ft_caliper.Profiler.baseline_seconds ~toolchain ~program
      ~input:(Input.with_steps tuning steps)
  in
  let t100 = at 100 and t800 = at 800 in
  Alcotest.(check (float 0.4)) "8x steps ~ 8x runtime" 8.0 (t800 /. t100)

let test_quickstart_shape () =
  (* The README quickstart, condensed: the whole public API path works on
     a fresh custom program. *)
  let loop = Loop.make "kernel" Feature.default in
  let nonloop =
    Loop.make "<nl>" { Feature.default with Feature.parallel = false }
  in
  let program =
    Program.make ~name:"mini" ~language:Program.C ~loc:100 ~domain:"demo"
      ~reference_size:1.0 ~nonloop [ loop ]
  in
  let input = Input.make ~size:1.0 ~steps:5 () in
  let session =
    Tuner.make_session ~pool_size:30 ~platform:Platform.Broadwell ~program
      ~input ~seed:35 ()
  in
  let report = Tuner.run_all ~top_x:5 session in
  Alcotest.(check bool) "pipeline completes" true
    (report.Tuner.cfr.Result.speedup > 0.0)

let suite =
  ( "integration",
    [
      Alcotest.test_case "full pipeline on Opteron" `Quick
        test_pipeline_on_opteron;
      Alcotest.test_case "fortran benchmark semantics" `Quick
        test_pipeline_on_fortran_benchmark;
      Alcotest.test_case "winner rebuild identical" `Quick
        test_tuned_config_rebuilds_identically;
      Alcotest.test_case "balance failure injection" `Quick
        test_balance_rejects_bad_shares;
      Alcotest.test_case "incomplete assignment rejected" `Quick
        test_assignment_must_cover_modules;
      Alcotest.test_case "empty pool rejected" `Quick test_empty_pool_rejected;
      Alcotest.test_case "time-step scaling" `Quick
        test_fig8_inputs_scale_linearly;
      Alcotest.test_case "quickstart shape" `Quick test_quickstart_shape;
    ] )
