(* Tests for ft_prog: features, loops, programs, inputs, platforms. *)

open Ft_prog

let check_float = Alcotest.(check (float 1e-9))

let test_feature_default_valid () =
  Alcotest.(check bool) "default validates" true
    (Feature.validate Feature.default = Ok ())

let test_feature_validation_catches () =
  let bad field mutate =
    match Feature.validate (mutate Feature.default) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("validation missed " ^ field)
  in
  bad "divergence" (fun f -> { f with Feature.divergence = 1.5 });
  bad "fma" (fun f -> { f with Feature.fma_fraction = -0.1 });
  bad "trip_count" (fun f -> { f with Feature.trip_count = 0.0 });
  bad "body_insns" (fun f -> { f with Feature.body_insns = 0 });
  bad "read_bytes" (fun f -> { f with Feature.read_bytes = -1.0 });
  bad "alias" (fun f -> { f with Feature.alias_ambiguity = 2.0 })

let test_bytes_per_iter () =
  let f =
    {
      Feature.default with
      Feature.read_bytes = 10.0;
      write_bytes = 5.0;
      strided_bytes = 3.0;
      gather_bytes = 2.0;
    }
  in
  check_float "sum of stream classes" 20.0 (Feature.bytes_per_iter f)

let test_vector_hostility_ordering () =
  let clean = { Feature.default with Feature.divergence = 0.0 } in
  let hostile =
    {
      Feature.default with
      Feature.divergence = 0.6;
      gather_bytes = 40.0;
      dep_chain = 8.0;
    }
  in
  Alcotest.(check bool) "hostile scores higher" true
    (Feature.vector_hostility hostile > Feature.vector_hostility clean)

let test_loop_scaling () =
  let l =
    Loop.make ~trip_exponent:2.0 ~ws_exponent:3.0 "l"
      { Feature.default with Feature.trip_count = 100.0; working_set_kb = 8.0 }
  in
  let f = Loop.features_at ~scale:2.0 l in
  check_float "trips scale^2" 400.0 f.Feature.trip_count;
  check_float "ws scale^3" 64.0 f.Feature.working_set_kb;
  let same = Loop.features_at ~scale:1.0 l in
  check_float "identity at scale 1" 100.0 same.Feature.trip_count

let test_loop_rejects_invalid () =
  Alcotest.check_raises "invalid features rejected"
    (Invalid_argument "Loop.make bad: trip_count must be positive") (fun () ->
      ignore
        (Loop.make "bad" { Feature.default with Feature.trip_count = 0.0 }))

let dummy_loop name = Loop.make name Feature.default

let test_program_construction () =
  let p =
    Program.make ~name:"p" ~language:Program.C ~loc:100 ~domain:"d"
      ~reference_size:10.0 ~nonloop:(dummy_loop "<nl>")
      [ dummy_loop "a"; dummy_loop "b" ]
  in
  Alcotest.(check int) "loop count" 2 (Program.loop_count p);
  Alcotest.(check bool) "find loop" true (Program.find_loop p "a" <> None);
  Alcotest.(check bool) "find nonloop" true (Program.find_loop p "<nl>" <> None);
  Alcotest.(check bool) "missing loop" true (Program.find_loop p "zzz" = None);
  Alcotest.(check bool) "not fortran" false (Program.fortran p)

let test_program_rejects_duplicates () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Program.make: duplicate loop names") (fun () ->
      ignore
        (Program.make ~name:"p" ~language:Program.C ~loc:1 ~domain:"d"
           ~reference_size:1.0 ~nonloop:(dummy_loop "<nl>")
           [ dummy_loop "a"; dummy_loop "a" ]))

let test_program_rejects_empty () =
  Alcotest.check_raises "no loops" (Invalid_argument "Program.make: no loops")
    (fun () ->
      ignore
        (Program.make ~name:"p" ~language:Program.C ~loc:1 ~domain:"d"
           ~reference_size:1.0 ~nonloop:(dummy_loop "<nl>") []))

let test_language_names () =
  Alcotest.(check string) "C" "C" (Program.language_name Program.C);
  Alcotest.(check string) "C++" "C++" (Program.language_name Program.Cpp);
  Alcotest.(check string) "Fortran" "Fortran"
    (Program.language_name Program.Fortran)

let test_input () =
  let i = Input.make ~size:100.0 ~steps:10 () in
  check_float "scale" 2.0 (Input.scale ~reference:50.0 i);
  let i' = Input.with_steps i 99 in
  Alcotest.(check int) "with_steps" 99 i'.Input.steps;
  check_float "size preserved" 100.0 i'.Input.size;
  Alcotest.check_raises "bad size"
    (Invalid_argument "Input.make: size must be positive") (fun () ->
      ignore (Input.make ~size:0.0 ~steps:1 ()));
  Alcotest.check_raises "bad steps"
    (Invalid_argument "Input.make: steps must be positive") (fun () ->
      ignore (Input.make ~size:1.0 ~steps:0 ()))

let test_platforms () =
  Alcotest.(check int) "three platforms" 3 (List.length Platform.all);
  List.iter
    (fun p ->
      Alcotest.(check bool) "short name roundtrip" true
        (Platform.of_short_name (Platform.short_name p) = Some p))
    Platform.all;
  Alcotest.(check string) "bdw flag" "-xCORE-AVX2"
    (Platform.processor_flag Platform.Broadwell);
  Alcotest.(check string) "opteron flag" "default"
    (Platform.processor_flag Platform.Opteron);
  Alcotest.(check bool) "unknown" true (Platform.of_short_name "vax" = None)

let suite =
  ( "prog",
    [
      Alcotest.test_case "feature default valid" `Quick
        test_feature_default_valid;
      Alcotest.test_case "feature validation" `Quick
        test_feature_validation_catches;
      Alcotest.test_case "bytes per iter" `Quick test_bytes_per_iter;
      Alcotest.test_case "vector hostility" `Quick
        test_vector_hostility_ordering;
      Alcotest.test_case "loop scaling" `Quick test_loop_scaling;
      Alcotest.test_case "loop validation" `Quick test_loop_rejects_invalid;
      Alcotest.test_case "program construction" `Quick
        test_program_construction;
      Alcotest.test_case "duplicate loops rejected" `Quick
        test_program_rejects_duplicates;
      Alcotest.test_case "empty programs rejected" `Quick
        test_program_rejects_empty;
      Alcotest.test_case "language names" `Quick test_language_names;
      Alcotest.test_case "inputs" `Quick test_input;
      Alcotest.test_case "platforms" `Quick test_platforms;
    ] )
