(* Tests for the funcytuner core: contexts, the per-loop collection, and
   the four §2.2 search algorithms on reduced budgets. *)

open Ft_prog
module Context = Funcytuner.Context
module Collection = Funcytuner.Collection
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner
module Cfr = Funcytuner.Cfr
module Outline = Ft_outline.Outline
module Toolchain = Ft_machine.Toolchain

let program = Ft_suite.Cloverleaf.program
let platform = Platform.Broadwell
let input = Ft_suite.Suite.tuning_input platform program

(* One shared small session: profiling + outlining + a 120-CV collection. *)
let session =
  lazy
    (Tuner.make_session ~pool_size:120 ~platform ~program ~input ~seed:1234 ())

let collection () = Lazy.force (Lazy.force session).Tuner.collection

(* --- Context -------------------------------------------------------------- *)

let test_context_pool_and_baseline () =
  let ctx = (Lazy.force session).Tuner.ctx in
  Alcotest.(check int) "pool size" 120 (Array.length ctx.Context.pool);
  Alcotest.(check bool) "baseline positive" true (ctx.Context.baseline_s > 0.0);
  Alcotest.(check (float 1e-9)) "speedup identity" 1.0
    (Context.speedup ctx ctx.Context.baseline_s)

let test_context_pool_deterministic () =
  let make () =
    Context.make ~pool_size:10 ~toolchain:(Toolchain.make platform) ~program
      ~input ~seed:99 ()
  in
  let a = make () and b = make () in
  Array.iteri
    (fun i cv ->
      Alcotest.(check bool) "same pool for same seed" true
        (Ft_flags.Cv.equal cv b.Context.pool.(i)))
    a.Context.pool

let test_context_evaluate_vs_measure () =
  let ctx = (Lazy.force session).Tuner.ctx in
  let truth = Context.evaluate_uniform ctx Ft_flags.Cv.o3 in
  let noisy =
    Context.measure_uniform ctx ~rng:(Ft_util.Rng.create 5) Ft_flags.Cv.o3
  in
  Alcotest.(check bool) "noise small" true
    (Float.abs (noisy -. truth) /. truth < 0.05);
  Alcotest.(check (float 1e-9)) "evaluate matches baseline" ctx.Context.baseline_s truth

(* --- Collection ------------------------------------------------------------ *)

let test_collection_dimensions () =
  let c = collection () in
  let modules = Array.length c.Collection.modules in
  Alcotest.(check int) "rows = J+1"
    (Outline.module_count (Lazy.force session).Tuner.outline)
    modules;
  Array.iter
    (fun row -> Alcotest.(check int) "K columns" 120 (Array.length row))
    c.Collection.times;
  Alcotest.(check int) "K totals" 120 (Array.length c.Collection.totals)

let test_collection_times_positive () =
  let c = collection () in
  Array.iter
    (Array.iter (fun t ->
         Alcotest.(check bool) "T[j][k] >= 0" true (t >= 0.0)))
    c.Collection.times

let test_collection_rows_sum_to_totals () =
  (* Residual is derived by subtraction, so each column must re-add to the
     end-to-end time. *)
  let c = collection () in
  Array.iteri
    (fun k total ->
      let sum = ref 0.0 in
      Array.iter (fun row -> sum := !sum +. row.(k)) c.Collection.times;
      Alcotest.(check (float 1e-6)) "column adds up" total !sum)
    c.Collection.totals

let test_collection_best_cv () =
  let c = collection () in
  let name = c.Collection.modules.(1) in
  let best = Collection.best_cv_for c name in
  let row = c.Collection.times.(1) in
  let k = Ft_util.Stats.argmin row in
  Alcotest.(check bool) "argmin CV returned" true
    (Ft_flags.Cv.equal best c.Collection.pool.(k))

let test_collection_top_k_subset_ordered () =
  let c = collection () in
  let name = c.Collection.modules.(2) in
  let row = c.Collection.times.(2) in
  let top = Collection.top_k_for c name 10 in
  Alcotest.(check int) "10 CVs" 10 (Array.length top);
  Alcotest.(check bool) "head is the best" true
    (Ft_flags.Cv.equal top.(0) (Collection.best_cv_for c name));
  (* Every returned CV's collected time is within the 10 smallest. *)
  let sorted = Array.copy row in
  Array.sort compare sorted;
  let threshold = sorted.(9) in
  Array.iter
    (fun cv ->
      let k = ref (-1) in
      Array.iteri
        (fun i p -> if Ft_flags.Cv.equal p cv && !k < 0 then k := i)
        c.Collection.pool;
      Alcotest.(check bool) "within top-10 times" true
        (row.(!k) <= threshold +. 1e-12))
    top

let test_module_index () =
  let c = collection () in
  Alcotest.(check bool) "residual at 0" true
    (Collection.module_index c Outline.residual_module = Some 0);
  Alcotest.(check bool) "missing module" true
    (Collection.module_index c "nope" = None)

(* --- Result helpers --------------------------------------------------------- *)

let test_best_so_far () =
  Alcotest.(check (list (float 1e-9))) "prefix minimum"
    [ 5.0; 3.0; 3.0; 1.0; 1.0 ]
    (Result.best_so_far [ 5.0; 3.0; 4.0; 1.0; 2.0 ]);
  Alcotest.(check (list (float 1e-9))) "empty" [] (Result.best_so_far [])

let test_evaluations_to_best () =
  let r =
    Result.make ~algorithm:"t" ~configuration:(Result.Whole_program Ft_flags.Cv.o3)
      ~baseline_s:10.0 ~evaluations:5
      ~trace:[ 5.0; 3.0; 3.0; 1.0; 1.0 ]
      ~best_seconds:1.0
  in
  Alcotest.(check int) "first eval within 0.5% of final" 4
    (Result.evaluations_to_best r)

(* --- algorithms -------------------------------------------------------------- *)

let test_random_search () =
  let ctx = (Lazy.force session).Tuner.ctx in
  let r = Funcytuner.Random_search.run ctx in
  Alcotest.(check string) "name" "Random" r.Result.algorithm;
  Alcotest.(check int) "K evaluations" 120 r.Result.evaluations;
  Alcotest.(check int) "trace length" 120 (List.length r.Result.trace);
  Alcotest.(check bool) "speedup positive" true (r.Result.speedup > 0.0);
  (match r.Result.configuration with
  | Result.Whole_program _ -> ()
  | Result.Per_module _ -> Alcotest.fail "random is per-program");
  (* With 120 candidates + the implicit O3 point in the space, random
     search should not end up slower than ~5% below baseline. *)
  Alcotest.(check bool) "sane speedup" true (r.Result.speedup > 0.9)

let test_fr_per_module () =
  let s = Lazy.force session in
  let r = Funcytuner.Fr.run s.Tuner.ctx s.Tuner.outline in
  Alcotest.(check string) "name" "FR" r.Result.algorithm;
  match r.Result.configuration with
  | Result.Per_module assignment ->
      Alcotest.(check int) "one CV per module"
        (Outline.module_count s.Tuner.outline)
        (List.length assignment)
  | Result.Whole_program _ -> Alcotest.fail "FR is per-module"

let test_greedy () =
  let s = Lazy.force session in
  let g = Funcytuner.Greedy.run s.Tuner.ctx (collection ()) in
  Alcotest.(check int) "one realized measurement" 1
    g.Funcytuner.Greedy.realized.Result.evaluations;
  Alcotest.(check bool) "independent bound beats realized" true
    (g.Funcytuner.Greedy.independent_speedup
    > g.Funcytuner.Greedy.realized.Result.speedup);
  (* The independent sum uses per-module minima, so it must be at least
     the speedup of the best single uniform build. *)
  let best_uniform =
    Array.fold_left Float.min infinity (collection ()).Collection.totals
  in
  Alcotest.(check bool) "independent >= best uniform" true
    (g.Funcytuner.Greedy.independent_seconds <= best_uniform +. 1e-9)

let test_cfr () =
  let s = Lazy.force session in
  let r = Cfr.run ~top_x:10 s.Tuner.ctx (collection ()) in
  Alcotest.(check string) "name" "CFR" r.Result.algorithm;
  Alcotest.(check int) "K evaluations" 120 r.Result.evaluations;
  match r.Result.configuration with
  | Result.Per_module assignment ->
      (* Every assigned CV must come from its module's pruned pool. *)
      let pools = Cfr.pruned_pools ~top_x:10 (collection ()) in
      List.iter
        (fun (m, cv) ->
          let pool = List.assoc m pools in
          Alcotest.(check bool)
            ("CV for " ^ m ^ " is inside its pruned space")
            true
            (Array.exists (Ft_flags.Cv.equal cv) pool))
        assignment
  | Result.Whole_program _ -> Alcotest.fail "CFR is per-module"

let test_cfr_pruned_pools_sizes () =
  let pools = Cfr.pruned_pools ~top_x:7 (collection ()) in
  List.iter
    (fun (_, pool) -> Alcotest.(check int) "top-X width" 7 (Array.length pool))
    pools

let test_pipeline_determinism () =
  let run () =
    let s =
      Tuner.make_session ~pool_size:40 ~platform ~program ~input ~seed:77 ()
    in
    (Tuner.run_cfr ~top_x:5 s).Result.speedup
  in
  Alcotest.(check (float 1e-12)) "same seed, same CFR result" (run ()) (run ())

let test_seed_changes_results () =
  let run seed =
    let s =
      Tuner.make_session ~pool_size:40 ~platform ~program ~input ~seed ()
    in
    (Tuner.run_cfr ~top_x:5 s).Result.speedup
  in
  Alcotest.(check bool) "different seeds explore differently" true
    (run 7 <> run 8)

let test_evaluate_configuration_other_input () =
  let s = Lazy.force session in
  let cfr = Tuner.run_cfr ~top_x:10 s in
  let small = Ft_suite.Suite.small_input program in
  let t =
    Tuner.evaluate_configuration s ~input:small ~rng:(Ft_util.Rng.create 3)
      cfr.Result.configuration
  in
  let o3 = Tuner.o3_seconds s ~input:small in
  Alcotest.(check bool) "re-evaluation runs" true (t > 0.0);
  Alcotest.(check bool) "tuned result in a sane band" true
    (o3 /. t > 0.8 && o3 /. t < 2.0)

let test_adaptive_cfr () =
  let s = Lazy.force session in
  let r =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:20 s.Tuner.ctx (collection ())
  in
  Alcotest.(check string) "name" "CFR-adaptive" r.Result.algorithm;
  Alcotest.(check bool) "stops within the budget" true
    (r.Result.evaluations <= 120);
  Alcotest.(check bool) "spent at least patience evaluations" true
    (r.Result.evaluations >= 20);
  Alcotest.(check int) "trace matches spent budget" r.Result.evaluations
    (List.length r.Result.trace);
  (* The adaptive variant should land close to full CFR. *)
  let full = Funcytuner.Cfr.run ~top_x:10 s.Tuner.ctx (collection ()) in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of full CFR (%.3f vs %.3f)" r.Result.speedup
       full.Result.speedup)
    true
    (r.Result.speedup > full.Result.speedup -. 0.05)

let test_adaptive_patience_controls_budget () =
  let s = Lazy.force session in
  let short =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:5 s.Tuner.ctx (collection ())
  in
  let long =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:60 s.Tuner.ctx (collection ())
  in
  Alcotest.(check bool) "more patience, at least as many evaluations" true
    (long.Result.evaluations >= short.Result.evaluations)

let suite =
  ( "core",
    [
      Alcotest.test_case "context basics" `Quick test_context_pool_and_baseline;
      Alcotest.test_case "context determinism" `Quick
        test_context_pool_deterministic;
      Alcotest.test_case "evaluate vs measure" `Quick
        test_context_evaluate_vs_measure;
      Alcotest.test_case "collection dimensions" `Quick
        test_collection_dimensions;
      Alcotest.test_case "collection positivity" `Quick
        test_collection_times_positive;
      Alcotest.test_case "collection additivity" `Quick
        test_collection_rows_sum_to_totals;
      Alcotest.test_case "best CV per module" `Quick test_collection_best_cv;
      Alcotest.test_case "top-k pruning" `Quick
        test_collection_top_k_subset_ordered;
      Alcotest.test_case "module index" `Quick test_module_index;
      Alcotest.test_case "best-so-far traces" `Quick test_best_so_far;
      Alcotest.test_case "convergence metric" `Quick test_evaluations_to_best;
      Alcotest.test_case "random search" `Quick test_random_search;
      Alcotest.test_case "FR" `Quick test_fr_per_module;
      Alcotest.test_case "greedy + independence bound" `Quick test_greedy;
      Alcotest.test_case "CFR focusing" `Quick test_cfr;
      Alcotest.test_case "pruned pool widths" `Quick
        test_cfr_pruned_pools_sizes;
      Alcotest.test_case "pipeline determinism" `Quick
        test_pipeline_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_results;
      Alcotest.test_case "generalization evaluation" `Quick
        test_evaluate_configuration_other_input;
      Alcotest.test_case "adaptive CFR" `Quick test_adaptive_cfr;
      Alcotest.test_case "adaptive patience" `Quick
        test_adaptive_patience_controls_budget;
    ] )
