(* Tests for ft_flags: the 33-flag space, CVs, and sampling geometry. *)

module Flag = Ft_flags.Flag
module Cv = Ft_flags.Cv
module Space = Ft_flags.Space
module Rng = Ft_util.Rng

let test_flag_count () =
  Alcotest.(check int) "33 flags, as in the paper" 33 Flag.count;
  Alcotest.(check int) "all array matches" 33 (Array.length Flag.all)

let test_flag_index_bijective () =
  let seen = Array.make Flag.count false in
  Array.iter
    (fun id ->
      let i = Flag.index id in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < Flag.count);
      Alcotest.(check bool) "index unique" false seen.(i);
      seen.(i) <- true)
    Flag.all

let test_flag_index_matches_order () =
  Array.iteri
    (fun i id -> Alcotest.(check int) (Flag.name id) i (Flag.index id))
    Flag.all

let test_arity_at_least_two () =
  Array.iter
    (fun id ->
      Alcotest.(check bool) (Flag.name id) true (Flag.arity id >= 2))
    Flag.all

let test_defaults_in_domain () =
  Array.iter
    (fun id ->
      let check name v =
        Alcotest.(check bool)
          (Flag.name id ^ " " ^ name)
          true
          (v >= 0 && v < Flag.arity id)
      in
      check "o3" (Flag.default_o3 id);
      check "o2" (Flag.default_o2 id))
    Flag.all

let test_space_size () =
  let size = Flag.space_size () in
  (* "roughly 2.3e13" in the paper (§2.1). *)
  Alcotest.(check bool)
    (Printf.sprintf "|COS| = %.3g is in the paper's order of magnitude" size)
    true
    (size > 1e12 && size < 1e14)

let test_of_name_roundtrip () =
  Array.iter
    (fun id ->
      Alcotest.(check bool) (Flag.name id) true
        (Flag.of_name (Flag.name id) = Some id))
    Flag.all;
  Alcotest.(check bool) "unknown" true (Flag.of_name "-bogus" = None)

(* --- Cv ---------------------------------------------------------------- *)

let test_o3_values () =
  Alcotest.(check int) "O3 base level" 3 (Cv.base_opt_level Cv.o3);
  Alcotest.(check bool) "O3 vectorizes" true (Cv.vec_enabled Cv.o3);
  Alcotest.(check bool) "O3 width auto" true (Cv.simd_pref Cv.o3 = Cv.Width_auto);
  Alcotest.(check bool) "O3 unroll auto" true (Cv.unroll_bound Cv.o3 = None);
  Alcotest.(check bool) "O3 no ipo" false (Cv.ipo Cv.o3);
  Alcotest.(check int) "O3 inline budget" 100 (Cv.inline_factor Cv.o3);
  Alcotest.(check int) "O3 prefetch level" 2 (Cv.prefetch_level Cv.o3);
  Alcotest.(check bool) "O3 strict aliasing" true (Cv.ansi_alias Cv.o3);
  Alcotest.(check bool) "O3 fma" true (Cv.fma Cv.o3)

let test_o2_weaker () =
  Alcotest.(check int) "O2 base level" 2 (Cv.base_opt_level Cv.o2);
  Alcotest.(check bool) "O2 lower prefetch" true
    (Cv.prefetch_level Cv.o2 <= Cv.prefetch_level Cv.o3)

let test_set_get () =
  let cv = Cv.set Cv.o3 Flag.Unroll 3 in
  Alcotest.(check int) "set applies" 3 (Cv.get cv Flag.Unroll);
  Alcotest.(check int) "original untouched" 0 (Cv.get Cv.o3 Flag.Unroll);
  Alcotest.(check bool) "unroll=4 decodes" true
    (Cv.unroll_bound cv = Some 4);
  Alcotest.check_raises "domain checked"
    (Invalid_argument "Cv: value 99 out of domain for -unroll") (fun () ->
      ignore (Cv.set Cv.o3 Flag.Unroll 99))

let test_render () =
  Alcotest.(check string) "O3 renders minimal" "-O3" (Cv.render Cv.o3);
  let cv = Cv.set Cv.o3 Flag.Streaming_stores 1 in
  Alcotest.(check string) "difference rendered"
    "-O3 -qopt-streaming-stores=always" (Cv.render cv);
  Alcotest.(check bool) "full render covers all flags" true
    (List.length (String.split_on_char ' ' (Cv.render_full Cv.o3))
    = Flag.count)

let test_compact_roundtrip () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let cv = Space.sample rng in
    match Cv.of_compact (Cv.to_compact cv) with
    | Some cv' -> Alcotest.(check bool) "roundtrip" true (Cv.equal cv cv')
    | None -> Alcotest.fail "compact roundtrip failed"
  done;
  Alcotest.(check bool) "garbage rejected" true (Cv.of_compact "zzz" = None);
  Alcotest.(check bool) "short rejected" true (Cv.of_compact "1.2.3" = None)

let test_hash_stable () =
  let rng = Rng.create 18 in
  let cv = Space.sample rng in
  Alcotest.(check int) "hash deterministic" (Cv.hash cv) (Cv.hash cv);
  let cv' = Space.mutate rng cv in
  Alcotest.(check bool) "mutation changes hash (almost surely)" true
    (Cv.hash cv <> Cv.hash cv')

let test_bits_roundtrip () =
  let rng = Rng.create 19 in
  for _ = 1 to 50 do
    let bits = Array.init Flag.count (fun _ -> Rng.bool rng) in
    match Cv.to_bits (Cv.of_bits bits) with
    | Some bits' ->
        Alcotest.(check (array bool)) "bits roundtrip" bits bits'
    | None -> Alcotest.fail "binarized CV not recognized"
  done

let test_bits_rejects_foreign_values () =
  (* A value that is neither the default nor the alternative. *)
  let cv = Cv.set Cv.o3 Flag.Prefetch 1 in
  Alcotest.(check bool) "foreign value rejected" true (Cv.to_bits cv = None)

let test_alternative_differs_from_default () =
  Array.iter
    (fun id ->
      Alcotest.(check bool) (Flag.name id) true
        (Cv.binary_alternative id <> Flag.default_o3 id))
    Flag.all

(* --- Space -------------------------------------------------------------- *)

let test_sample_in_domain () =
  let rng = Rng.create 20 in
  for _ = 1 to 200 do
    let cv = Space.sample rng in
    Array.iter
      (fun id ->
        let v = Cv.get cv id in
        Alcotest.(check bool) "in domain" true (v >= 0 && v < Flag.arity id))
      Flag.all
  done

let test_sample_pool_size () =
  let rng = Rng.create 21 in
  Alcotest.(check int) "pool size" 37 (Array.length (Space.sample_pool rng 37))

let test_sample_deterministic () =
  let p1 = Space.sample_pool (Rng.create 22) 10 in
  let p2 = Space.sample_pool (Rng.create 22) 10 in
  Array.iteri
    (fun i cv -> Alcotest.(check bool) "same pool" true (Cv.equal cv p2.(i)))
    p1

let test_mutate_distance_one () =
  let rng = Rng.create 23 in
  for _ = 1 to 100 do
    let cv = Space.sample rng in
    Alcotest.(check int) "hamming distance 1" 1
      (Space.distance cv (Space.mutate rng cv))
  done

let test_crossover_inherits () =
  let rng = Rng.create 24 in
  let a = Space.sample rng and b = Space.sample rng in
  let child = Space.crossover rng a b in
  Array.iter
    (fun id ->
      let v = Cv.get child id in
      Alcotest.(check bool) "gene from a parent" true
        (v = Cv.get a id || v = Cv.get b id))
    Flag.all

let test_point_roundtrip () =
  let rng = Rng.create 25 in
  for _ = 1 to 100 do
    let cv = Space.sample rng in
    let cv' = Space.of_point (Space.to_point cv) in
    Alcotest.(check bool) "decode(encode) = id" true (Cv.equal cv cv')
  done

let test_of_point_clamps () =
  let wild = Array.make Space.dimensions 17.0 in
  let cv = Space.of_point wild in
  Array.iter
    (fun id ->
      Alcotest.(check int) "clamped to max value" (Flag.arity id - 1)
        (Cv.get cv id))
    Flag.all;
  Alcotest.check_raises "dimension checked"
    (Invalid_argument "Space.of_point: wrong dimension") (fun () ->
      ignore (Space.of_point [| 0.5 |]))

let prop_sample_binary_is_binary =
  QCheck.Test.make ~count:100 ~name:"binary samples stay in binary subspace"
    QCheck.small_int (fun seed ->
      let cv = Space.sample_binary (Rng.create seed) in
      Cv.to_bits cv <> None)

let prop_distance_symmetric =
  QCheck.Test.make ~count:100 ~name:"hamming distance symmetric"
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = Space.sample (Rng.create s1)
      and b = Space.sample (Rng.create s2) in
      Space.distance a b = Space.distance b a)

let prop_mutate_n_bounded =
  QCheck.Test.make ~count:100 ~name:"mutate_n moves at most n flags"
    QCheck.(pair small_int (int_range 0 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let cv = Space.sample rng in
      Space.distance cv (Space.mutate_n rng n cv) <= n)

let suite =
  ( "flags",
    [
      Alcotest.test_case "33 flags" `Quick test_flag_count;
      Alcotest.test_case "index bijective" `Quick test_flag_index_bijective;
      Alcotest.test_case "index order" `Quick test_flag_index_matches_order;
      Alcotest.test_case "arity >= 2" `Quick test_arity_at_least_two;
      Alcotest.test_case "defaults valid" `Quick test_defaults_in_domain;
      Alcotest.test_case "space size ~2e13" `Quick test_space_size;
      Alcotest.test_case "of_name roundtrip" `Quick test_of_name_roundtrip;
      Alcotest.test_case "O3 semantics" `Quick test_o3_values;
      Alcotest.test_case "O2 semantics" `Quick test_o2_weaker;
      Alcotest.test_case "set/get" `Quick test_set_get;
      Alcotest.test_case "rendering" `Quick test_render;
      Alcotest.test_case "compact roundtrip" `Quick test_compact_roundtrip;
      Alcotest.test_case "hash stable" `Quick test_hash_stable;
      Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
      Alcotest.test_case "bits rejects foreign" `Quick
        test_bits_rejects_foreign_values;
      Alcotest.test_case "alternatives differ" `Quick
        test_alternative_differs_from_default;
      Alcotest.test_case "sample in domain" `Quick test_sample_in_domain;
      Alcotest.test_case "pool size" `Quick test_sample_pool_size;
      Alcotest.test_case "sampling deterministic" `Quick
        test_sample_deterministic;
      Alcotest.test_case "mutate distance 1" `Quick test_mutate_distance_one;
      Alcotest.test_case "crossover inherits" `Quick test_crossover_inherits;
      Alcotest.test_case "point roundtrip" `Quick test_point_roundtrip;
      Alcotest.test_case "of_point clamps" `Quick test_of_point_clamps;
      QCheck_alcotest.to_alcotest prop_sample_binary_is_binary;
      QCheck_alcotest.to_alcotest prop_distance_symmetric;
      QCheck_alcotest.to_alcotest prop_mutate_n_bounded;
    ] )
