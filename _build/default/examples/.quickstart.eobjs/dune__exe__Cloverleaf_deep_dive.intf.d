examples/cloverleaf_deep_dive.mli:
