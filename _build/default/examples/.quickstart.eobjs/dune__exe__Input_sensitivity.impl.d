examples/input_sensitivity.ml: Ft_prog Ft_suite Ft_util Funcytuner Input Option Platform Printf
