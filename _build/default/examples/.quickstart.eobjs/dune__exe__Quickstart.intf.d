examples/quickstart.mli:
