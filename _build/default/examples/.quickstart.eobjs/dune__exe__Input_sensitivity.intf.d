examples/input_sensitivity.mli:
