examples/quickstart.ml: Ft_caliper Ft_flags Ft_outline Ft_prog Ft_suite Funcytuner List Option Platform Printf
