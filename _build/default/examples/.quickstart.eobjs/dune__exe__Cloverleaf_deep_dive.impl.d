examples/cloverleaf_deep_dive.ml: Ft_caliper Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Funcytuner Lazy List Option Platform Printf
