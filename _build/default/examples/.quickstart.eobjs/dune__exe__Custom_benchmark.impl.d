examples/custom_benchmark.ml: Feature Ft_flags Ft_outline Ft_prog Funcytuner Input List Loop Platform Printf Program String
