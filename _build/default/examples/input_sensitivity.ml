(* Does a configuration tuned on one input keep its benefit on others?
   (The §4.3 question: HPC codes are tuned once and run many times with
   different scientific inputs.)

     dune exec examples/input_sensitivity.exe

   Tunes AMG on the Broadwell tuning input, then re-measures the same
   tuned binary on the paper's small and large inputs and on longer
   runs. *)

open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result

let () =
  let program = Option.get (Ft_suite.Suite.find "AMG") in
  let platform = Platform.Broadwell in
  let tuning = Ft_suite.Suite.tuning_input platform program in
  let session =
    Tuner.make_session ~pool_size:400 ~platform ~program ~input:tuning
      ~seed:11 ()
  in
  let cfr = Tuner.run_cfr session in
  Printf.printf "tuned on %s: CFR speedup %.3f\n" tuning.Input.label
    cfr.Result.speedup;

  let check label input =
    let o3 = Tuner.o3_seconds session ~input in
    let tuned =
      Tuner.evaluate_configuration session ~input
        ~rng:(Ft_util.Rng.create 99)
        cfr.Result.configuration
    in
    Printf.printf "  %-22s O3 %.2fs  tuned %.2fs  speedup %.3f\n" label o3
      tuned (o3 /. tuned)
  in
  print_endline "re-measuring the same tuned binary:";
  check "small input (size 20)" (Ft_suite.Suite.small_input program);
  check "large input (size 30)" (Ft_suite.Suite.large_input program);
  check "tuning input again" tuning;
  print_endline
    "\nthe benefit generalizes: FuncyTuner tunes the per-step profile,\n\
     which work-set scaling mostly preserves (the paper's one exception\n\
     is swim's tiny `test' input, whose working set falls into cache)."
