(* Quickstart: tune a benchmark with FuncyTuner CFR in ~20 lines.

     dune exec examples/quickstart.exe

   The pipeline below is the whole method of the paper:
     1. profile the O3 build with Caliper to find hot loops;
     2. outline each hot loop into its own compilation module;
     3. collect per-loop runtimes under K uniform builds (Fig. 4);
     4. run CFR: prune each module's CV pool to the top-X, re-sample
        assembled variants, keep the fastest (Algorithm 1). *)

open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result

let () =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let platform = Platform.Broadwell in
  let input = Ft_suite.Suite.tuning_input platform program in

  (* Steps 1-3 happen inside the session (the collection lazily). *)
  let session =
    Tuner.make_session ~pool_size:300 ~platform ~program ~input ~seed:7 ()
  in
  Printf.printf "T_O3 = %.2f s; outlined %d hot loops\n"
    session.Tuner.ctx.Funcytuner.Context.baseline_s
    (Ft_outline.Outline.module_count session.Tuner.outline - 1);

  (* Step 4. *)
  let cfr = Tuner.run_cfr session in
  Printf.printf "CFR speedup over O3: %.3f (%d evaluations)\n"
    cfr.Result.speedup cfr.Result.evaluations;

  (* The tuned executable is an ordinary per-module flag assignment: *)
  (match cfr.Result.configuration with
  | Result.Per_module assignment ->
      let dt_cv = List.assoc "dt" assignment in
      Printf.printf "flags chosen for the dt kernel: %s\n"
        (Ft_flags.Cv.render dt_cv)
  | Result.Whole_program _ -> assert false);

  (* Caliper's annotation API (what "instrumentation" means here): *)
  let ctx = Ft_caliper.Annotation.create () in
  Ft_caliper.Annotation.with_region ctx "timestep" (fun () ->
      Ft_caliper.Annotation.with_region ctx "dt" (fun () ->
          Ft_caliper.Annotation.advance ctx 0.9);
      Ft_caliper.Annotation.advance ctx 0.1);
  Printf.printf "annotation demo: timestep=%.1fs dt=%.1fs\n"
    (Ft_caliper.Annotation.inclusive_s ctx "timestep")
    (Ft_caliper.Annotation.inclusive_s ctx "dt")
