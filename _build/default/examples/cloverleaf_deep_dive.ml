(* The §4.4 case study as a runnable walk-through: why does per-loop
   tuning beat both per-program search and greedy per-loop combination on
   Cloverleaf?

     dune exec examples/cloverleaf_deep_dive.exe

   Output: the Caliper profile, the forced-vectorization experiment on
   the five Table 3 kernels, and the greedy-vs-CFR comparison. *)

open Ft_prog
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag
module Exec = Ft_machine.Exec
module Toolchain = Ft_machine.Toolchain
module Tuner = Funcytuner.Tuner

let kernels = [ "dt"; "cell3"; "cell7"; "mom9"; "acc" ]

let () =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let platform = Platform.Broadwell in
  let toolchain = Toolchain.make platform in
  let input = Ft_suite.Suite.tuning_input platform program in

  (* 1. Where does the time go at O3? *)
  let report =
    Ft_caliper.Profiler.run ~toolchain ~program ~input
      ~rng:(Ft_util.Rng.create 1) ()
  in
  print_endline "O3 Caliper profile:";
  print_string (Ft_caliper.Report.render report);

  (* 2. "Vectorization is not always profitable" (§4.4.2 obs. 1): force
     256-bit SIMD everywhere and watch the per-kernel effect. *)
  let evaluate cv =
    Exec.evaluate ~arch:toolchain.Toolchain.arch ~input
      (Toolchain.compile_uniform toolchain ~cv program)
  in
  let region run name =
    (List.find (fun (r : Exec.region_report) -> r.Exec.name = name)
       run.Exec.loops)
      .Exec.seconds
  in
  let o3 = evaluate Cv.o3 in
  print_endline "\nwhere the O3 time goes (Explain):";
  print_string (Ft_machine.Explain.render o3);
  let forced =
    Cv.o3
    |> (fun cv -> Cv.set cv Flag.Simd_width 2)
    |> (fun cv -> Cv.set cv Flag.Dep_analysis 2)
    |> fun cv -> Cv.set cv Flag.Vector_cost 2
  in
  let f256 = evaluate forced in
  print_endline "\nforced 256-bit vectorization, per-kernel speedup vs O3:";
  List.iter
    (fun k ->
      Printf.printf "  %-6s %.3f\n" k (region o3 k /. region f256 k))
    kernels;
  print_endline "  (cell3/cell7 lose: masked SIMD pays for both branch paths)";

  (* 3. Greedy vs CFR on the same per-loop measurements. *)
  let session =
    Tuner.make_session ~pool_size:400 ~platform ~program ~input ~seed:3 ()
  in
  let collection = Lazy.force session.Tuner.collection in
  let greedy = Funcytuner.Greedy.run session.Tuner.ctx collection in
  let cfr = Funcytuner.Cfr.run session.Tuner.ctx collection in
  Printf.printf
    "\ngreedy combination: %.3f realized (%.3f if modules were independent)\n"
    greedy.Funcytuner.Greedy.realized.Funcytuner.Result.speedup
    greedy.Funcytuner.Greedy.independent_speedup;
  Printf.printf "CFR (top-%d focusing): %.3f\n" Funcytuner.Cfr.default_top_x
    cfr.Funcytuner.Result.speedup;
  print_endline
    "greedy extrapolates from uniform builds and is blind to link-time\n\
     interference; CFR measures assembled binaries inside the focused space."
