(* Bring your own application: define a program model for a 2-D heat
   stencil mini-app, and let FuncyTuner tune it against the classical
   per-program random search.

     dune exec examples/custom_benchmark.exe

   This is the path a downstream user takes to study a new code: describe
   each hot loop's features (traffic mix, divergence, dependences,
   aliasing), pick a platform, tune. *)

open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result

let grid = 6.0e6 (* ~2450 x 2450 cells *)

let loop = Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0

(* Core 5-point stencil: clean streaming FMA code — wants wide SIMD. *)
let stencil =
  loop "stencil"
    {
      Feature.default with
      flops_per_iter = 10.0;
      fma_fraction = 0.8;
      read_bytes = 40.0;
      write_bytes = 8.0;
      alias_ambiguity = 0.2;
      body_insns = 26;
      working_set_kb = 96_000.0;
      trip_count = grid;
    }

(* Boundary-condition sweep: divergent and gather-y — SIMD-hostile. *)
let boundary =
  loop "boundary"
    {
      Feature.default with
      flops_per_iter = 30.0;
      read_bytes = 10.0;
      gather_bytes = 22.0;
      divergence = 0.5;
      branch_predictability = 0.9;
      alias_ambiguity = 0.3;
      body_insns = 48;
      working_set_kb = 12_000.0;
      trip_count = grid /. 16.0;
    }

(* Convergence check: a latency-bound reduction — wants deep unrolling. *)
let residual =
  loop "residual"
    {
      Feature.default with
      flops_per_iter = 12.0;
      read_bytes = 12.0;
      write_bytes = 0.0;
      dep_chain = 6.0;
      reduction = true;
      alias_ambiguity = 0.2;
      body_insns = 24;
      working_set_kb = 48_000.0;
      trip_count = grid;
    }

let nonloop =
  Loop.make "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 15.0;
      read_bytes = 24.0;
      write_bytes = 8.0;
      divergence = 0.3;
      branch_predictability = 0.85;
      alias_ambiguity = 0.85;
      calls_per_iter = 1.0;
      body_insns = 200;
      working_set_kb = 2_000.0;
      trip_count = 200_000.0;
      parallel = false;
    }

let heat2d =
  Program.make ~name:"heat2d" ~language:Program.C ~loc:800
    ~domain:"Heat diffusion mini-app" ~reference_size:2450.0 ~nonloop
    [ stencil; boundary; residual ]

let () =
  let platform = Platform.Broadwell in
  let input = Input.make ~size:2450.0 ~steps:50 () in
  let session =
    Tuner.make_session ~pool_size:400 ~platform ~program:heat2d ~input
      ~seed:5 ()
  in
  Printf.printf "heat2d: T_O3 = %.2f s, hot loops: %s\n"
    session.Tuner.ctx.Funcytuner.Context.baseline_s
    (String.concat ", " session.Tuner.outline.Ft_outline.Outline.hot);
  let random = Funcytuner.Random_search.run session.Tuner.ctx in
  let cfr = Tuner.run_cfr session in
  Printf.printf "per-program random search: %.3f\n" random.Result.speedup;
  Printf.printf "FuncyTuner CFR:            %.3f\n" cfr.Result.speedup;
  match cfr.Result.configuration with
  | Result.Per_module assignment ->
      print_endline "per-loop flags chosen by CFR:";
      List.iter
        (fun name ->
          match List.assoc_opt name assignment with
          | Some cv ->
              Printf.printf "  %-9s %s\n" name (Ft_flags.Cv.render cv)
          | None -> ())
        [ "stencil"; "boundary"; "residual" ]
  | Result.Whole_program _ -> assert false
