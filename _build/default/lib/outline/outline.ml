open Ft_prog

type t = {
  program : Program.t;
  hot : string list;
  cold : string list;
  baseline_report : Ft_caliper.Report.t;
}

let residual_module = "<residual>"

let of_report ~program ?(threshold = Ft_caliper.Profiler.default_hot_threshold)
    report =
  let hot = Ft_caliper.Report.hot_loops ~threshold report in
  let cold =
    List.filter_map
      (fun (l : Loop.t) ->
        if List.mem l.Loop.name hot then None else Some l.Loop.name)
      program.Program.loops
  in
  { program; hot; cold; baseline_report = report }

let outline ~toolchain ~program ~input ?threshold ~rng () =
  let report =
    Ft_caliper.Profiler.run ~toolchain ~program ~input ~rng ()
  in
  of_report ~program ?threshold report

let module_names t = residual_module :: t.hot
let module_count t = 1 + List.length t.hot

let cv_for_region t ~assignment region =
  if List.mem region t.hot then assignment region
  else assignment residual_module

let compile ~toolchain t ~assignment ?(instrumented = false) () =
  Ft_machine.Toolchain.compile_assigned toolchain
    ~cv_of:(cv_for_region t ~assignment)
    ~instrumented t.program
