(** Hot-loop outlining: turning loops into compilation modules (§3.3).

    FuncyTuner converts every hot loop (≥ 1 % of O3 end-to-end runtime)
    into its own function in its own source file so it can be compiled with
    its own CV.  Cold loops stay in their original files and are therefore
    compiled with the non-loop module's CV.  An [outlined] value is the
    resulting partition: J hot-loop modules plus one residual module. *)

type t = private {
  program : Ft_prog.Program.t;
  hot : string list;  (** outlined loops, hottest first; J = length *)
  cold : string list;  (** loops left in the residual module *)
  baseline_report : Ft_caliper.Report.t;  (** the profile that decided *)
}

val residual_module : string
(** Name of the residual (non-loop + cold loops) module in CV
    assignments. *)

val of_report :
  program:Ft_prog.Program.t ->
  ?threshold:float ->
  Ft_caliper.Report.t ->
  t
(** Partition using an existing profile (threshold defaults to 1 %). *)

val outline :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  ?threshold:float ->
  rng:Ft_util.Rng.t ->
  unit ->
  t
(** Profile with Caliper at O3, then partition. *)

val module_names : t -> string list
(** [residual_module :: hot] — one entry per independently compilable
    module; the CV-assignment domain for all per-loop algorithms. *)

val module_count : t -> int
(** J + 1 (the paper's J hot loops plus the residual module). *)

val cv_for_region : t -> assignment:(string -> Ft_flags.Cv.t) -> string -> Ft_flags.Cv.t
(** Resolve a program region to its module's CV: hot loops use their own
    assignment, everything else (non-loop region and cold loops) uses the
    residual module's. *)

val compile :
  toolchain:Ft_machine.Toolchain.t ->
  t ->
  assignment:(string -> Ft_flags.Cv.t) ->
  ?instrumented:bool ->
  unit ->
  Ft_compiler.Linker.binary
(** Compile + link the outlined program under a per-module CV assignment
    ([assignment] is consulted for {!module_names} only). *)
