lib/outline/outline.ml: Ft_caliper Ft_machine Ft_prog List Loop Program
