lib/outline/outline.mli: Ft_caliper Ft_compiler Ft_flags Ft_machine Ft_prog Ft_util
