open Ft_prog

type t = {
  platform : Platform.t;
  freq_ghz : float;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  numa_nodes : int;
  mem_gb : int;
  issue_flops : float;
  fp_latency : float;
  l2_kb : float;
  llc_kb_per_socket : float;
  icache_kb : float;
  dram_gbs_per_socket : float;
  llc_gbs : float;
  l2_bytes_per_cycle : float;
  mask_cost : float;
  gather_cost : float;
  strided_cost : float;
  avx256_throttle : float;
  mispredict_cycles : float;
  barrier_us : float;
  omp_threads : int;
  smt_boost : float;
  serial_bw_fraction : float;
}

let of_platform (platform : Platform.t) =
  match platform with
  | Opteron ->
      {
        platform;
        freq_ghz = 2.0;
        sockets = 2;
        cores_per_socket = 4;
        threads_per_core = 2;
        numa_nodes = 4;
        mem_gb = 32;
        issue_flops = 2.0;
        fp_latency = 4.0;
        l2_kb = 512.0;
        llc_kb_per_socket = 6144.0;
        icache_kb = 64.0;
        dram_gbs_per_socket = 21.0;
        llc_gbs = 90.0;
        l2_bytes_per_cycle = 16.0;
        mask_cost = 1.3;
        gather_cost = 2.0;
        strided_cost = 1.5;
        avx256_throttle = 0.0;
        mispredict_cycles = 18.0;
        barrier_us = 4.0;
        omp_threads = 16;
        smt_boost = 1.3;
        serial_bw_fraction = 0.35;
      }
  | Sandy_bridge ->
      {
        platform;
        freq_ghz = 2.0;
        sockets = 2;
        cores_per_socket = 8;
        threads_per_core = 2;
        numa_nodes = 2;
        mem_gb = 16;
        issue_flops = 2.0;
        fp_latency = 4.0;
        l2_kb = 256.0;
        llc_kb_per_socket = 20480.0;
        icache_kb = 32.0;
        dram_gbs_per_socket = 40.0;
        llc_gbs = 250.0;
        l2_bytes_per_cycle = 32.0;
        mask_cost = 1.0;
        gather_cost = 1.8;
        strided_cost = 1.3;
        avx256_throttle = 0.05;
        mispredict_cycles = 16.0;
        barrier_us = 2.5;
        omp_threads = 16;
        smt_boost = 1.0;
        serial_bw_fraction = 0.3;
      }
  | Broadwell ->
      {
        platform;
        freq_ghz = 2.1;
        sockets = 2;
        cores_per_socket = 8;
        threads_per_core = 2;
        numa_nodes = 2;
        mem_gb = 64;
        issue_flops = 2.0;
        fp_latency = 4.0;
        l2_kb = 256.0;
        llc_kb_per_socket = 20480.0;
        icache_kb = 32.0;
        dram_gbs_per_socket = 54.0;
        llc_gbs = 300.0;
        l2_bytes_per_cycle = 32.0;
        mask_cost = 0.85;
        gather_cost = 1.2;
        strided_cost = 1.1;
        avx256_throttle = 0.10;
        mispredict_cycles = 15.0;
        barrier_us = 2.0;
        omp_threads = 16;
        smt_boost = 1.0;
        serial_bw_fraction = 0.3;
      }

let physical_cores t = t.sockets * t.cores_per_socket

let effective_cores t =
  let physical = float_of_int (physical_cores t) in
  let threads = float_of_int t.omp_threads in
  if threads <= physical then threads else physical *. t.smt_boost

let aggregate_dram_gbs t =
  (* 0.9: imperfect NUMA locality with explicit proclist pinning. *)
  float_of_int t.sockets *. t.dram_gbs_per_socket *. 0.9
