type boundedness = Compute_bound | Memory_bound | Balanced

type t = {
  region : string;
  seconds : float;
  boundedness : boundedness;
  compute_s : float;
  memory_s : float;
  balance : float;
  decision : Ft_compiler.Decision.t;
  share : float;
}

let classify ~compute_s ~memory_s =
  if memory_s <= 0.0 then Compute_bound
  else
    let ratio = compute_s /. memory_s in
    if ratio > 1.25 then Compute_bound
    else if ratio < 0.8 then Memory_bound
    else Balanced

let boundedness_name = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
  | Balanced -> "balanced"

let of_region ~total (r : Exec.region_report) =
  {
    region = r.Exec.name;
    seconds = r.Exec.seconds;
    boundedness = classify ~compute_s:r.Exec.compute_s ~memory_s:r.Exec.memory_s;
    compute_s = r.Exec.compute_s;
    memory_s = r.Exec.memory_s;
    balance =
      (if r.Exec.memory_s > 0.0 then r.Exec.compute_s /. r.Exec.memory_s
       else infinity);
    decision = r.Exec.decision;
    share = r.Exec.seconds /. total;
  }

let of_run (run : Exec.run) =
  let total = run.Exec.total_s in
  List.map (of_region ~total) (run.Exec.loops @ [ run.Exec.nonloop ])
  |> List.sort (fun a b -> compare b.seconds a.seconds)

let render run =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "end-to-end %.3f s  (frequency derating %.3f, i-cache multiplier %.3f)\n"
       run.Exec.total_s run.Exec.freq_factor run.Exec.icache_mult);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-16s %6.1f%%  %-13s  [%s]\n" e.region
           (100.0 *. e.share)
           (boundedness_name e.boundedness)
           (Ft_compiler.Decision.summary e.decision)))
    (of_run run);
  Buffer.contents buf
