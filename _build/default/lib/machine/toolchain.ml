open Ft_compiler

type t = { cprofile : Cprofile.t; target : Target.t; arch : Arch.t }

let make ?(vendor = Cprofile.Icc) platform =
  let cprofile =
    match vendor with Cprofile.Icc -> Cprofile.icc | Cprofile.Gcc -> Cprofile.gcc
  in
  {
    cprofile;
    target = Target.for_platform platform;
    arch = Arch.of_platform platform;
  }

let compile_assigned t ~cv_of ?(instrumented = false) program =
  let units =
    Cunit.compile_program ~profile:t.cprofile ~target:t.target ~cv_of program
  in
  Linker.link ~target:t.target ~program ~instrumented units

let compile_uniform t ?(pgo = None) ~cv ?(instrumented = false) program =
  let units =
    Cunit.compile_program ~profile:t.cprofile ~target:t.target ~pgo
      ~cv_of:(fun _ -> cv)
      program
  in
  Linker.link ~target:t.target ~program ~instrumented units
