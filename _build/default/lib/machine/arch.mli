(** Execution-time architecture models for the three platforms of Table 2.

    Unlike {!Ft_compiler.Target} (what the compiler believes about the ISA),
    these records describe how code actually performs: frequencies, cache
    capacities, achievable bandwidths, SIMD-hostility costs, the AVX-256
    frequency license, and OpenMP scaling behaviour.  The gap between a
    personality's estimated costs and these true costs is the headroom the
    auto-tuners compete for. *)

type t = {
  platform : Ft_prog.Platform.t;
  freq_ghz : float;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  numa_nodes : int;
  mem_gb : int;
  issue_flops : float;  (** scalar double-precision flops per core-cycle *)
  fp_latency : float;  (** FP pipeline latency in cycles *)
  l2_kb : float;  (** per-core L2 (Opteron: per-core share) *)
  llc_kb_per_socket : float;
  icache_kb : float;  (** instruction cache relevant to hot loops *)
  dram_gbs_per_socket : float;  (** achievable stream bandwidth *)
  llc_gbs : float;  (** aggregate last-level-cache bandwidth *)
  l2_bytes_per_cycle : float;  (** per-core L2 bandwidth *)
  mask_cost : float;  (** true per-element cost of masked divergence *)
  gather_cost : float;  (** true per-lane-pair cost of gathers *)
  strided_cost : float;  (** true per-lane-pair shuffle cost *)
  avx256_throttle : float;
      (** whole-chip frequency loss when 256-bit units are hot (the AVX
          license offset; 0 on Opteron) *)
  mispredict_cycles : float;
  barrier_us : float;  (** OpenMP fork/join + barrier cost per invocation *)
  omp_threads : int;  (** 16 on all three platforms (Table 2) *)
  smt_boost : float;
      (** throughput multiplier per physical core from running 2 SMT
          threads (1.0 = SMT useless for this workload mix) *)
  serial_bw_fraction : float;
      (** fraction of one socket's bandwidth reachable by a single thread *)
}

val of_platform : Ft_prog.Platform.t -> t
(** The Table 2 machines. *)

val physical_cores : t -> int
val effective_cores : t -> float
(** Core-equivalents available to the 16 OpenMP threads, including the SMT
    boost when threads outnumber physical cores. *)

val aggregate_dram_gbs : t -> float
(** All sockets combined, after a NUMA-locality discount. *)
