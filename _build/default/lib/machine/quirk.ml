module Rng = Ft_util.Rng
module Flag = Ft_flags.Flag
module Cv = Ft_flags.Cv

let amplitude = 0.002

let flag_factor ~platform ~program ~region (flag : Flag.id) value =
  let key =
    Printf.sprintf "quirk:%s:%s:%s:%s=%d"
      (Ft_prog.Platform.short_name platform)
      program region (Flag.name flag) value
  in
  let rng = Rng.create (Rng.hash_string key) in
  1.0 +. ((Rng.float rng 2.0 -. 1.0) *. amplitude)

(* The same ~1000 pooled CVs are priced against the same regions hundreds
   of thousands of times during a search, so the product is memoized on
   (platform, program, region, CV).  Cv.hash is stable and collisions are
   harmless here (a collision would only alias one ±few-% texture value). *)
let memo : (string * int, float) Hashtbl.t = Hashtbl.create 4096

let factor ~platform ~program ~region cv =
  let key =
    ( Ft_prog.Platform.short_name platform ^ ":" ^ program ^ ":" ^ region,
      Cv.hash cv )
  in
  match Hashtbl.find_opt memo key with
  | Some f -> f
  | None ->
      let f =
        Array.fold_left
          (fun acc flag ->
            acc *. flag_factor ~platform ~program ~region flag (Cv.get cv flag))
          1.0 Flag.all
      in
      Hashtbl.replace memo key f;
      f
