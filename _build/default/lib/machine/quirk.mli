(** Deterministic per-loop micro-sensitivities to individual flag values.

    Real flag→performance landscapes are rugged: beyond the first-order
    effects (vectorization, unrolling, …) every loop has small idiosyncratic
    reactions to individual flag settings — code placement luck, uop-cache
    effects, store-buffer interactions.  This module provides that texture
    as a pure function of (platform, program, region, flag, value), so the
    landscape is rugged but perfectly reproducible: the same CV on the same
    loop always performs identically.

    The magnitude is small (each flag contributes ±1.5 %); first-order model
    terms dominate, but top-X per-loop pruning has realistic fine structure
    to exploit. *)

val factor :
  platform:Ft_prog.Platform.t ->
  program:string ->
  region:string ->
  Ft_flags.Cv.t ->
  float
(** Product of the per-flag multipliers for this CV on this region; always
    within [(1 - 0.015)^33, (1 + 0.015)^33] ≈ [0.61, 1.63] in theory, and
    within a few percent of 1.0 in practice (independent ± contributions
    cancel). *)

val flag_factor :
  platform:Ft_prog.Platform.t ->
  program:string ->
  region:string ->
  Ft_flags.Flag.id ->
  int ->
  float
(** The multiplier contributed by one flag value alone (exposed for tests:
    determinism and bounds). *)
