lib/machine/arch.mli: Ft_prog
