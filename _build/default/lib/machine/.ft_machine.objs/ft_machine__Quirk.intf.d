lib/machine/quirk.mli: Ft_flags Ft_prog
