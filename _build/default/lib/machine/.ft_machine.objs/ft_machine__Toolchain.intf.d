lib/machine/toolchain.mli: Arch Ft_compiler Ft_flags Ft_prog
