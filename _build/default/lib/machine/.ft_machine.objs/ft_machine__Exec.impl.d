lib/machine/exec.ml: Arch Cunit Decision Feature Float Ft_compiler Ft_flags Ft_prog Ft_util Input Linker List Loop Program Quirk
