lib/machine/arch.ml: Ft_prog Platform
