lib/machine/quirk.ml: Array Ft_flags Ft_prog Ft_util Hashtbl Printf
