lib/machine/explain.mli: Exec Ft_compiler
