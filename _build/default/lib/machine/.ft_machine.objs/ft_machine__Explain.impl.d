lib/machine/explain.ml: Buffer Exec Ft_compiler List Printf
