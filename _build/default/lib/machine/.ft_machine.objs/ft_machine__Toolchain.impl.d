lib/machine/toolchain.ml: Arch Cprofile Cunit Ft_compiler Linker Target
