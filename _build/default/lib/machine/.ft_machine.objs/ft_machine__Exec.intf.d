lib/machine/exec.mli: Arch Ft_compiler Ft_prog Ft_util
