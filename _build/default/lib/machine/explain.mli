(** Human-readable accounting of where a region's time comes from.

    [Exec] prices a region as max(compute, memory) + fixed cost under
    whole-binary couplings; this module classifies each region (compute-,
    memory- or latency-bound) and renders the breakdown — the tool a
    performance engineer reaches for when a tuned CV surprises them, and
    what the deep-dive example prints. *)

type boundedness = Compute_bound | Memory_bound | Balanced

type t = {
  region : string;
  seconds : float;
  boundedness : boundedness;
  compute_s : float;
  memory_s : float;
  balance : float;  (** compute/memory ratio; 1.0 = perfectly balanced *)
  decision : Ft_compiler.Decision.t;
  share : float;  (** of end-to-end time *)
}

val of_run : Exec.run -> t list
(** One entry per region (loops then the non-loop region), hottest
    first. *)

val boundedness_name : boundedness -> string

val render : Exec.run -> string
(** Multi-line report: per-region share, bound class, decision summary,
    plus the whole-binary couplings (frequency derating, i-cache
    multiplier). *)
