(** A bundled build-and-run environment: compiler personality, compile
    target, and execution architecture for one platform.

    Every experiment in the paper fixes these three together (e.g. "ICC
    17.04 on Broadwell with -xCORE-AVX2"), so the higher layers pass this
    record around instead of three loose values. *)

type t = {
  cprofile : Ft_compiler.Cprofile.t;
  target : Ft_compiler.Target.t;
  arch : Arch.t;
}

val make : ?vendor:Ft_compiler.Cprofile.vendor -> Ft_prog.Platform.t -> t
(** Vendor defaults to [Icc] (the paper's main tool-chain; [Gcc] is used
    only in the Fig. 1 CE experiment). *)

val compile_uniform :
  t ->
  ?pgo:Ft_compiler.Pgo.t option ->
  cv:Ft_flags.Cv.t ->
  ?instrumented:bool ->
  Ft_prog.Program.t ->
  Ft_compiler.Linker.binary
(** Traditional per-program build: one CV for every region, then link. *)

val compile_assigned :
  t ->
  cv_of:(string -> Ft_flags.Cv.t) ->
  ?instrumented:bool ->
  Ft_prog.Program.t ->
  Ft_compiler.Linker.binary
(** Per-module build: each region compiled with [cv_of region_name]. *)
