(** Fig. 8: Cloverleaf on Broadwell while scaling simulated time steps.

    Same tuned configurations as Fig. 7, evaluated at 100 / 200 / 400 /
    800 time steps of the tuning-size grid.  Paper: CFR's benefit is
    stable across the whole range (time-step count only multiplies the
    per-step profile, which is what FuncyTuner tuned). *)

val columns : string list
val run : Lab.t -> Series.t
(** Rows "100" … "800" plus GM. *)
