(** Fig. 6: FuncyTuner CFR vs the state of the art on Broadwell.

    Columns: COBAYN static / dynamic / hybrid, Intel PGO, OpenTuner, CFR —
    all with a 1000-evaluation budget where applicable, speedups over O3.

    Paper: OpenTuner +4.9 % GM, COBAYN static +4.6 %, hybrid +2.1 %,
    dynamic below 1.0, PGO marginal (and its instrumentation run fails for
    LULESH and Optewe), CFR +9.4 %. *)

val columns : string list

val run : Lab.t -> Series.t
(** GM row included. *)
