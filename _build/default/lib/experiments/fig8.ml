open Ft_prog

let columns = Fig7.columns
let step_counts = [ 100; 200; 400; 800 ]

let run lab =
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let tuning = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let rows =
    List.map
      (fun steps ->
        let input = Input.with_steps tuning steps in
        (string_of_int steps, Fig7.row lab program ~input))
      step_counts
  in
  Series.with_geomean
    (Series.make
       ~title:
         "Fig. 8: Cloverleaf on Broadwell, scaling time steps (speedup over \
          O3)"
       ~columns rows)
