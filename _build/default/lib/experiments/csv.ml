let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let of_series (s : Series.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (String.concat "," ("" :: List.map escape s.Series.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf
        (String.concat ","
           (escape label :: List.map (Printf.sprintf "%.6f") cells));
      Buffer.add_char buf '\n')
    s.Series.rows;
  Buffer.contents buf

let write ~path series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_series series))
