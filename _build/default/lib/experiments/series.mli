(** Figure-style result series: rows (benchmarks / categories) × columns
    (algorithms), cell = speedup normalized to O3 — the format of every
    bar chart in the paper.  Renders as a text table with an optional GM
    (geometric mean) row, which is how the harness "plots" figures. *)

type t = {
  title : string;
  columns : string list;  (** algorithm names *)
  rows : (string * float list) list;  (** row label → one cell per column *)
}

val make : title:string -> columns:string list -> (string * float list) list -> t
(** @raise Invalid_argument if any row's width differs from the header. *)

val with_geomean : t -> t
(** Append the paper's "GM" row (per-column geometric mean over rows). *)

val column : t -> string -> (string * float) list
(** One algorithm's values by row label.  @raise Not_found on unknown
    columns. *)

val cell : t -> row:string -> column:string -> float
(** @raise Not_found on unknown labels. *)

val to_table : t -> Ft_util.Table.t
(** Render; speedup cells are printed with 3 decimals. *)

val print : t -> unit
