(** The §4.4 deep dive: Cloverleaf's top-5 kernels on Broadwell.

    - {b Fig. 9}: per-loop speedups over O3 for Random, G.realized, CFR
      and G.Independent on dt / cell3 / cell7 / mom9 / acc.  The paper's
      shape: everything beats O3 on dt (scalar variants most), 256-bit
      code {e loses} on cell3 and cell7, scalar+IS wins mom9, unlocked
      256-bit wins acc, and G.realized's link-time surprises hurt it.
    - {b Table 3}: the code-generation decisions behind those bars
      (S/128/256, unroll, IS, IO, RS) per algorithm, plus the kernels' O3
      runtime ratios.  G.realized's decisions are read from the {e linked}
      binary, so the paper's observation — mom9 re-vectorized to 256-bit
      and unrolled twice by the link-time optimizer even though its module
      was compiled scalar — is visible verbatim. *)

val kernels : string list
(** ["dt"; "cell3"; "cell7"; "mom9"; "acc"]. *)

val fig9 : Lab.t -> Series.t
(** Rows = kernels; columns = Random, G.realized, CFR, G.Independent. *)

val table3 : Lab.t -> Ft_util.Table.t
(** Decision matrix in the paper's notation, with the O3-ratio header
    row. *)
