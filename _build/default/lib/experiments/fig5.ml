open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result

let columns = [ "Random"; "G.realized"; "FR"; "CFR"; "G.Independent" ]

let row lab platform program =
  let r = Lab.report lab platform program in
  [
    r.Tuner.random.Result.speedup;
    r.Tuner.greedy.Funcytuner.Greedy.realized.Result.speedup;
    r.Tuner.fr.Result.speedup;
    r.Tuner.cfr.Result.speedup;
    r.Tuner.greedy.Funcytuner.Greedy.independent_speedup;
  ]

let panel lab platform =
  let rows =
    List.map
      (fun (p : Program.t) -> (p.Program.name, row lab platform p))
      Ft_suite.Suite.all
  in
  Series.with_geomean
    (Series.make
       ~title:
         (Printf.sprintf "Fig. 5 (%s): speedup over O3 — %s"
            (Platform.short_name platform)
            (Platform.name platform))
       ~columns rows)

let run lab = List.map (panel lab) Platform.all
