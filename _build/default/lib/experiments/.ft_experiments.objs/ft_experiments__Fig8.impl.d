lib/experiments/fig8.ml: Fig7 Ft_prog Ft_suite Input List Option Platform Series
