lib/experiments/casestudy.ml: Array Ft_compiler Ft_flags Ft_machine Ft_prog Ft_suite Ft_util Funcytuner Lab Lazy List Option Platform Printf Series
