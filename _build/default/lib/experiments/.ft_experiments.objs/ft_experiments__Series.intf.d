lib/experiments/series.mli: Ft_util
