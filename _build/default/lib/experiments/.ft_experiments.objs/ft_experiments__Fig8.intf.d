lib/experiments/fig8.mli: Lab Series
