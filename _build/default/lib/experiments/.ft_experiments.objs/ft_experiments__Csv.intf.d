lib/experiments/csv.mli: Series
