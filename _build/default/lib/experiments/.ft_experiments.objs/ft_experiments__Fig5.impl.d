lib/experiments/fig5.ml: Ft_prog Ft_suite Funcytuner Lab List Platform Printf Program Series
