lib/experiments/casestudy.mli: Ft_util Lab Series
