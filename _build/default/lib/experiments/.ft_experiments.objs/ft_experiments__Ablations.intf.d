lib/experiments/ablations.mli: Ft_prog Ft_util Lab Series
