lib/experiments/fig6.ml: Ft_baselines Ft_cobayn Ft_opentuner Ft_prog Ft_suite Funcytuner Lab List Platform Program Series
