lib/experiments/csv.ml: Buffer Fun List Printf Series String
