lib/experiments/fig7.mli: Ft_prog Lab Series
