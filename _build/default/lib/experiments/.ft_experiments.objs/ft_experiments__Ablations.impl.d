lib/experiments/ablations.ml: Array Casestudy Float Ft_baselines Ft_flags Ft_machine Ft_outline Ft_prog Ft_suite Ft_util Funcytuner Lab Lazy List Option Platform Printf Program Series String
