lib/experiments/fig7.ml: Ft_baselines Ft_cobayn Ft_machine Ft_opentuner Ft_prog Ft_suite Funcytuner Input Lab List Platform Printf Program Series
