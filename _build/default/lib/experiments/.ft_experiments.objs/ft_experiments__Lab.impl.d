lib/experiments/lab.ml: Ft_baselines Ft_cobayn Ft_machine Ft_opentuner Ft_prog Ft_suite Ft_util Funcytuner Hashtbl Input Platform Program
