lib/experiments/fig6.mli: Lab Series
