lib/experiments/lab.mli: Ft_baselines Ft_cobayn Ft_opentuner Ft_prog Ft_util Funcytuner
