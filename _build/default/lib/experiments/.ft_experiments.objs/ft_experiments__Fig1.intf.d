lib/experiments/fig1.mli: Lab Series
