lib/experiments/fig5.mli: Ft_prog Lab Series
