lib/experiments/series.ml: Ft_util List String
