lib/experiments/fig1.ml: Ft_baselines Ft_compiler Ft_machine Ft_prog Ft_suite Lab List Option Platform Printf Program Series
