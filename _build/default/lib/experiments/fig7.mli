(** Fig. 7: do tuned configurations generalize to other work-set sizes?

    Protocol (§4.3): tune every approach on the Broadwell tuning input,
    then re-measure the {e same} tuned binaries on a smaller and a larger
    input (LULESH 180/250, AMG 20/30, Cloverleaf 1000/4000, Optewe
    384/768, SPEC test/ref), reporting speedup over O3 {e on that input}.

    Paper: little sensitivity overall (CFR GM +12.3 % small, +10.7 %
    large; AMG reaches +22 % on the large input); the one exception is
    swim's tiny "test" input, whose per-step profile no longer matches the
    tuning input (the work set drops into cache), where CFR trails the
    other approaches while still beating O3. *)

val columns : string list
(** ["Random"; "G.realized"; "COBAYN"; "PGO"; "OpenTuner"; "CFR"] —
    COBAYN is its best (static) variant, as in the paper's case study. *)

val panel : Lab.t -> small:bool -> Series.t
(** Fig. 7a ([small:true]) or 7b ([small:false]); GM row included. *)

val run : Lab.t -> Series.t list

val row :
  Lab.t -> Ft_prog.Program.t -> input:Ft_prog.Input.t -> float list
(** One benchmark's cells on an arbitrary input (shared with Fig. 8). *)
