(** Fig. 5: the four §2.2 algorithms (plus G.Independent) on all seven
    benchmarks, one panel per platform, speedups normalized to O3.

    Paper values to compare against: CFR geometric means of 1.092 / 1.103 /
    1.094 on Opteron / Sandy Bridge / Broadwell, Random 1.034 / 1.050 /
    1.046, G.realized frequently below 1.0 (down to 0.34 for Optewe on
    Sandy Bridge), FR in between, G.Independent the hypothetical top. *)

val columns : string list
(** ["Random"; "G.realized"; "FR"; "CFR"; "G.Independent"]. *)

val panel : Lab.t -> Ft_prog.Platform.t -> Series.t
(** One platform's panel (Fig. 5a/b/c), GM row included. *)

val run : Lab.t -> Series.t list
(** All three panels, in the paper's order. *)
