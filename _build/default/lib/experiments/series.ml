type t = {
  title : string;
  columns : string list;
  rows : (string * float list) list;
}

let make ~title ~columns rows =
  List.iter
    (fun (label, cells) ->
      if List.length cells <> List.length columns then
        invalid_arg ("Series.make: ragged row " ^ label))
    rows;
  { title; columns; rows }

let with_geomean t =
  let per_column i =
    Ft_util.Stats.geomean (List.map (fun (_, cells) -> List.nth cells i) t.rows)
  in
  let gm = List.mapi (fun i _ -> per_column i) t.columns in
  { t with rows = t.rows @ [ ("GM", gm) ] }

let column t name =
  let i =
    match List.find_index (String.equal name) t.columns with
    | Some i -> i
    | None -> raise Not_found
  in
  List.map (fun (label, cells) -> (label, List.nth cells i)) t.rows

let cell t ~row ~column:col =
  let cells = List.assoc row t.rows in
  match List.find_index (String.equal col) t.columns with
  | Some i -> List.nth cells i
  | None -> raise Not_found

let to_table t =
  let table = Ft_util.Table.create ~title:t.title ("" :: t.columns) in
  List.iter
    (fun (label, cells) ->
      if label = "GM" then Ft_util.Table.add_separator table;
      Ft_util.Table.add_row table
        (label :: List.map (Ft_util.Table.fmt_f ~digits:3) cells))
    t.rows;
  table

let print t = Ft_util.Table.print (to_table t)
