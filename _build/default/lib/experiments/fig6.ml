open Ft_prog
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner

let columns =
  [
    "COBAYN(static)";
    "COBAYN(dynamic)";
    "COBAYN(hybrid)";
    "PGO";
    "OpenTuner";
    "CFR";
  ]

let row lab (program : Program.t) =
  let cobayn v = (Lab.cobayn lab v program).Result.speedup in
  let report = Lab.report lab Platform.Broadwell program in
  [
    cobayn Ft_cobayn.Features.Static;
    cobayn Ft_cobayn.Features.Dynamic;
    cobayn Ft_cobayn.Features.Hybrid;
    (Lab.pgo lab program).Ft_baselines.Pgo_driver.speedup;
    (Lab.opentuner lab program).Ft_opentuner.Ensemble.result.Result.speedup;
    report.Tuner.cfr.Result.speedup;
  ]

let run lab =
  let rows =
    List.map
      (fun (p : Program.t) -> (p.Program.name, row lab p))
      Ft_suite.Suite.all
  in
  Series.with_geomean
    (Series.make
       ~title:
         "Fig. 6: state-of-the-art comparison on Broadwell (speedup over O3)"
       ~columns rows)
