open Ft_prog

let benchmarks = [ "LULESH"; "Cloverleaf"; "AMG" ]

let run lab =
  let ce vendor (program : Program.t) =
    let toolchain = Ft_machine.Toolchain.make ~vendor Platform.Broadwell in
    let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
    let result =
      Ft_baselines.Ce.run ~toolchain ~program ~input
        ~rng:
          (Lab.rng lab
             (Printf.sprintf "ce:%s:%s"
                (match vendor with
                | Ft_compiler.Cprofile.Gcc -> "gcc"
                | Ft_compiler.Cprofile.Icc -> "icc")
                program.Program.name))
        ()
    in
    result.Ft_baselines.Ce.speedup
  in
  let rows =
    List.map
      (fun name ->
        let program = Option.get (Ft_suite.Suite.find name) in
        ( name,
          [
            ce Ft_compiler.Cprofile.Gcc program;
            ce Ft_compiler.Cprofile.Icc program;
          ] ))
      benchmarks
  in
  Series.make
    ~title:
      "Fig. 1: Combined Elimination speedup over each compiler's O3 \
       (Broadwell)"
    ~columns:[ "GCC"; "ICC" ] rows
