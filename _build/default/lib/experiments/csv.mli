(** CSV export of result series — for users who want to plot the
    regenerated figures with their own tooling rather than read the
    harness's text tables. *)

val of_series : Series.t -> string
(** RFC-4180-style CSV: header row [",col1,col2,…"], one line per series
    row, 6-digit floats.  Labels containing commas or quotes are
    quoted. *)

val write : path:string -> Series.t -> unit
(** Write {!of_series} to a file. *)
