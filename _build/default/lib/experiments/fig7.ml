open Ft_prog
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner
module Exec = Ft_machine.Exec

let columns = [ "Random"; "G.realized"; "COBAYN"; "PGO"; "OpenTuner"; "CFR" ]

let pgo_seconds lab (program : Program.t) ~input =
  let toolchain = Ft_machine.Toolchain.make Platform.Broadwell in
  let tuning = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let binary =
    Ft_baselines.Pgo_driver.tuned_binary ~toolchain ~program ~input:tuning
  in
  (Exec.measure ~arch:toolchain.Ft_machine.Toolchain.arch ~input
     ~rng:(Lab.rng lab ("fig7:pgo:" ^ program.Program.name ^ input.Input.label))
     binary)
    .Exec.elapsed_s

let row lab (program : Program.t) ~input =
  let o3 = Lab.o3_on lab Platform.Broadwell program ~input in
  let eval configuration =
    o3 /. Lab.evaluate_on lab Platform.Broadwell program ~input configuration
  in
  let report = Lab.report lab Platform.Broadwell program in
  [
    eval report.Tuner.random.Result.configuration;
    eval
      report.Tuner.greedy.Funcytuner.Greedy.realized.Result.configuration;
    eval
      (Lab.cobayn lab Ft_cobayn.Features.Static program).Result.configuration;
    o3 /. pgo_seconds lab program ~input;
    eval
      (Lab.opentuner lab program).Ft_opentuner.Ensemble.result
        .Result.configuration;
    eval report.Tuner.cfr.Result.configuration;
  ]

let panel lab ~small =
  let rows =
    List.map
      (fun (p : Program.t) ->
        let input =
          if small then Ft_suite.Suite.small_input p
          else Ft_suite.Suite.large_input p
        in
        (p.Program.name, row lab p ~input))
      Ft_suite.Suite.all
  in
  Series.with_geomean
    (Series.make
       ~title:
         (Printf.sprintf
            "Fig. 7%s: generalization to %s inputs on Broadwell (speedup \
             over O3)"
            (if small then "a" else "b")
            (if small then "small" else "large"))
       ~columns rows)

let run lab = [ panel lab ~small:true; panel lab ~small:false ]
