open Ft_prog
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result
module Exec = Ft_machine.Exec
module Linker = Ft_compiler.Linker
module Decision = Ft_compiler.Decision

let kernels = [ "dt"; "cell3"; "cell7"; "mom9"; "acc" ]
let program lab = ignore lab; Option.get (Ft_suite.Suite.find "Cloverleaf")

let region_seconds run name =
  match
    List.find_opt (fun (r : Exec.region_report) -> r.Exec.name = name)
      run.Exec.loops
  with
  | Some r -> r.Exec.seconds
  | None -> invalid_arg ("Casestudy: unknown region " ^ name)

let region_decision run name =
  (List.find (fun (r : Exec.region_report) -> r.Exec.name = name)
     run.Exec.loops)
    .Exec.decision

(* Noise-free per-region run of a configuration's binary on the tuning
   input. *)
let run_of lab configuration =
  let p = program lab in
  let session = Lab.session lab Platform.Broadwell p in
  let binary = Tuner.build_configuration session configuration in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell p in
  Exec.evaluate
    ~arch:session.Tuner.ctx.Funcytuner.Context.toolchain.Ft_machine.Toolchain.arch
    ~input binary

let o3_run lab = run_of lab (Result.Whole_program Ft_flags.Cv.o3)

let fig9 lab =
  let p = program lab in
  let report = Lab.report lab Platform.Broadwell p in
  let session = Lab.session lab Platform.Broadwell p in
  let collection = Lazy.force session.Tuner.collection in
  let o3 = o3_run lab in
  let random_run = run_of lab report.Tuner.random.Result.configuration in
  let greedy_run =
    run_of lab
      report.Tuner.greedy.Funcytuner.Greedy.realized.Result.configuration
  in
  let cfr_run = run_of lab report.Tuner.cfr.Result.configuration in
  let independent_seconds name =
    match Funcytuner.Collection.module_index collection name with
    | Some j ->
        let row = collection.Funcytuner.Collection.times.(j) in
        row.(Ft_util.Stats.argmin row)
    | None -> invalid_arg ("Casestudy.fig9: " ^ name ^ " was not outlined")
  in
  let rows =
    List.map
      (fun kernel ->
        let base = region_seconds o3 kernel in
        ( kernel,
          [
            base /. region_seconds random_run kernel;
            base /. region_seconds greedy_run kernel;
            base /. region_seconds cfr_run kernel;
            base /. independent_seconds kernel;
          ] ))
      kernels
  in
  Series.make
    ~title:
      "Fig. 9: per-loop speedups, top-5 Cloverleaf kernels on Broadwell"
    ~columns:[ "Random"; "G.realized"; "CFR"; "G.Independent" ]
    rows

let table3 lab =
  let p = program lab in
  let report = Lab.report lab Platform.Broadwell p in
  let session = Lab.session lab Platform.Broadwell p in
  let collection = Lazy.force session.Tuner.collection in
  let o3 = o3_run lab in
  let decisions_of configuration =
    let run = run_of lab configuration in
    fun kernel -> Decision.summary (region_decision run kernel)
  in
  (* G.Independent: each kernel's best pool CV, compiled *uniformly* (the
     decisions the per-loop measurements actually saw — no link-time
     perturbation, per §3.4). *)
  let independent kernel =
    let cv = Funcytuner.Collection.best_cv_for collection kernel in
    let run = run_of lab (Result.Whole_program cv) in
    Decision.summary (region_decision run kernel)
  in
  let o3_ratio kernel =
    100.0 *. region_seconds o3 kernel /. o3.Exec.total_s
  in
  let table =
    Ft_util.Table.create
      ~title:
        "Table 3: optimization decisions for the 5 Cloverleaf kernels \
         (Broadwell)"
      ("Algorithm" :: kernels)
  in
  Ft_util.Table.add_row table
    ("O3 runtime ratio %"
    :: List.map (fun k -> Printf.sprintf "%.1f" (o3_ratio k)) kernels);
  Ft_util.Table.add_separator table;
  let add name summarize =
    Ft_util.Table.add_row table (name :: List.map summarize kernels)
  in
  add "O3 baseline" (decisions_of (Result.Whole_program Ft_flags.Cv.o3));
  add "Random" (decisions_of report.Tuner.random.Result.configuration);
  add "G.realized"
    (decisions_of
       report.Tuner.greedy.Funcytuner.Greedy.realized.Result.configuration);
  add "G.Independent" independent;
  add "CFR" (decisions_of report.Tuner.cfr.Result.configuration);
  table
