(** Fig. 1: Combined Elimination does not significantly beat O3.

    CE for GCC 5.4 and ICC 17.04 on LULESH, Cloverleaf and AMG (Broadwell),
    speedups normalized to each compiler's own O3 baseline.  Paper: all
    bars hover around 1.0 — CE gets trapped in per-program local minima. *)

val run : Lab.t -> Series.t
(** Columns ["GCC"; "ICC"]; rows LULESH / Cloverleaf / AMG. *)
