(* Cloverleaf (UK-MAC): 2-D structured compressible Euler solver.
   C with Fortran kernels in the original; modelled as C (the paper's
   deep-dive case study runs the C build).  Reference size 2000 = the
   2000x2000-cell Table 2 input; trips scale with the cell count (size^2).

   The five kernels of Table 3 (dt, cell3, cell7, mom9, acc) carry
   features calibrated so the O3 / Random / CFR / G decision rows and the
   Fig. 9 per-loop speedup shapes reproduce (see test_casestudy.ml):
     - dt:    latency-bound divergent min-reduction; O3 emits S,unroll2 and
              leaves the FP chain unbroken — deep unrolling with aggressive
              scheduling wins ~1.5x, forced 256-bit code much less.
     - cell3, cell7: gather-bound upwind kernels; O3 correctly stays
              scalar, forced 256-bit vectorization *loses* (Fig. 9),
              because if-converted SIMD touches both branch paths' data.
     - mom9:  stride-2000 column sweeps; ICC's quadratic width-cost belief
              picks 128-bit, true optimum is scalar + better selection.
     - acc:   clean FMA code, but C aliasing blocks vectorization at the
              default dependence analysis; unlocking it wins ~1.3-1.4x.

   O3 runtime shares on the Broadwell tuning input are pinned to Table 3
   (top five: 6.3/2.9/3.5/3.5/4.2 %; every other loop below 3 %) by
   Balance.calibrate. *)

open Ft_prog

let cells = 4.0e6 (* 2000 x 2000 *)

let loop = Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0

let dt =
  loop "dt"
    {
      Feature.default with
      flops_per_iter = 20.0;
      fma_fraction = 0.2;
      read_bytes = 8.0;
      write_bytes = 0.0;
      strided_bytes = 4.0;
      gather_bytes = 2.0;
      divergence = 0.55;
      branch_predictability = 0.88;
      dep_chain = 6.0;
      reduction = true;
      alias_ambiguity = 0.3;
      body_insns = 32;
      working_set_kb = 96_000.0;
      trip_count = cells;
    }

let cell3 =
  loop "cell3"
    {
      Feature.default with
      flops_per_iter = 40.0;
      fma_fraction = 0.3;
      read_bytes = 7.0;
      write_bytes = 8.0;
      gather_bytes = 35.0;
      divergence = 0.45;
      branch_predictability = 0.85;
      alias_ambiguity = 0.35;
      body_insns = 60;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let cell7 =
  loop "cell7"
    {
      Feature.default with
      flops_per_iter = 45.0;
      fma_fraction = 0.3;
      read_bytes = 12.0;
      write_bytes = 8.0;
      gather_bytes = 36.0;
      divergence = 0.35;
      branch_predictability = 0.8;
      alias_ambiguity = 0.35;
      body_insns = 64;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let mom9 =
  loop "mom9"
    {
      Feature.default with
      flops_per_iter = 55.0;
      fma_fraction = 0.35;
      read_bytes = 4.0;
      write_bytes = 2.0;
      strided_bytes = 24.0;
      gather_bytes = 2.0;
      divergence = 0.1;
      branch_predictability = 0.9;
      alias_ambiguity = 0.4;
      body_insns = 58;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let acc =
  loop "acc"
    {
      Feature.default with
      flops_per_iter = 72.0;
      fma_fraction = 0.6;
      read_bytes = 32.0;
      write_bytes = 12.0;
      alias_ambiguity = 0.7;
      body_insns = 56;
      working_set_kb = 160_000.0;
      trip_count = cells;
    }

let pdv =
  loop "pdv"
    {
      Feature.default with
      flops_per_iter = 48.0;
      fma_fraction = 0.4;
      read_bytes = 70.0;
      write_bytes = 24.0;
      divergence = 0.2;
      branch_predictability = 0.9;
      alias_ambiguity = 0.3;
      body_insns = 50;
      working_set_kb = 192_000.0;
      trip_count = cells;
    }

let flux_calc =
  loop "flux_calc"
    {
      Feature.default with
      flops_per_iter = 25.0;
      read_bytes = 60.0;
      write_bytes = 30.0;
      divergence = 0.15;
      branch_predictability = 0.92;
      alias_ambiguity = 0.3;
      body_insns = 36;
      working_set_kb = 192_000.0;
      trip_count = cells;
    }

let ideal_gas =
  loop "ideal_gas"
    {
      Feature.default with
      flops_per_iter = 35.0;
      read_bytes = 40.0;
      write_bytes = 16.0;
      alias_ambiguity = 0.25;
      body_insns = 30;
      working_set_kb = 96_000.0;
      trip_count = cells;
    }

let viscosity =
  loop "viscosity"
    {
      Feature.default with
      flops_per_iter = 80.0;
      fma_fraction = 0.5;
      read_bytes = 60.0;
      write_bytes = 8.0;
      strided_bytes = 20.0;
      divergence = 0.3;
      branch_predictability = 0.7;
      alias_ambiguity = 0.35;
      body_insns = 70;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let advec_mom_y =
  loop "advec_mom_y"
    {
      Feature.default with
      flops_per_iter = 40.0;
      fma_fraction = 0.35;
      read_bytes = 24.0;
      write_bytes = 8.0;
      strided_bytes = 26.0;
      divergence = 0.1;
      branch_predictability = 0.9;
      alias_ambiguity = 0.4;
      body_insns = 52;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let advec_cell_x =
  loop "advec_cell_x"
    {
      Feature.default with
      flops_per_iter = 38.0;
      fma_fraction = 0.3;
      read_bytes = 40.0;
      write_bytes = 16.0;
      gather_bytes = 12.0;
      divergence = 0.25;
      branch_predictability = 0.9;
      alias_ambiguity = 0.3;
      body_insns = 48;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let reset_field =
  loop "reset_field"
    {
      Feature.default with
      flops_per_iter = 2.0;
      fma_fraction = 0.0;
      read_bytes = 48.0;
      write_bytes = 48.0;
      alias_ambiguity = 0.15;
      body_insns = 12;
      working_set_kb = 256_000.0;
      trip_count = cells;
    }

let revert =
  loop "revert"
    {
      Feature.default with
      flops_per_iter = 2.0;
      fma_fraction = 0.0;
      read_bytes = 32.0;
      write_bytes = 32.0;
      alias_ambiguity = 0.15;
      body_insns = 10;
      working_set_kb = 128_000.0;
      trip_count = cells;
    }

let field_summary =
  loop "field_summary"
    {
      Feature.default with
      flops_per_iter = 14.0;
      fma_fraction = 0.3;
      read_bytes = 40.0;
      write_bytes = 0.0;
      dep_chain = 4.0;
      reduction = true;
      alias_ambiguity = 0.2;
      body_insns = 26;
      working_set_kb = 160_000.0;
      trip_count = cells;
    }

let update_halo =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "update_halo"
    {
      Feature.default with
      flops_per_iter = 4.0;
      fma_fraction = 0.0;
      read_bytes = 16.0;
      write_bytes = 16.0;
      strided_bytes = 32.0;
      alias_ambiguity = 0.3;
      body_insns = 20;
      working_set_kb = 2_000.0;
      trip_count = 64_000.0;
    }

let nonloop =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 30.0;
      read_bytes = 48.0;
      write_bytes = 12.0;
      divergence = 0.35;
      branch_predictability = 0.8;
      dep_chain = 2.0;
      alias_ambiguity = 0.9;
      calls_per_iter = 1.5;
      body_insns = 320;
      working_set_kb = 4_000.0;
      trip_count = 650_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"Cloverleaf" ~language:Program.C ~loc:14_500
    ~domain:"Hydrodynamics" ~reference_size:2000.0 ~nonloop
    [
      dt;
      cell3;
      cell7;
      mom9;
      acc;
      pdv;
      flux_calc;
      ideal_gas;
      viscosity;
      advec_mom_y;
      advec_cell_x;
      reset_field;
      revert;
      field_summary;
      update_halo;
    ]

(* Table 3 O3 runtime ratios for the top five; the rest below 3 % as the
   paper states.  update_halo sits below the 1 % outlining threshold. *)
let shares =
  [
    ("dt", 0.063);
    ("cell3", 0.029);
    ("cell7", 0.035);
    ("mom9", 0.035);
    ("acc", 0.042);
    ("pdv", 0.029);
    ("flux_calc", 0.028);
    ("ideal_gas", 0.022);
    ("viscosity", 0.029);
    ("advec_mom_y", 0.028);
    ("advec_cell_x", 0.029);
    ("reset_field", 0.025);
    ("revert", 0.022);
    ("field_summary", 0.018);
    ("update_halo", 0.007);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:2000.0 ~steps:60 ())
    ~total_s:14.0 ~shares draft
