(* 351.bwaves (SPEC OMP 2012): blast-wave CFD, Fortran.  The "train"
   input is the reference (size parameter 1.0); "test" and "ref" are the
   §4.3 small/large inputs.  Trips scale with size^3 (3-D grid).

   Fortran gives the compiler precise aliasing for free, so unlike the C
   codes nothing is alias-locked; the headroom sits in a huge Jacobian
   body that spills at O3 (register-allocation flags), a Gauss-Seidel-like
   solver sweep with an unvectorizable recurrence (scheduling flags), and
   the width choice on mixed-stride flux kernels. *)

open Ft_prog

let cells = 6.0e6

let loop = Loop.make ~trip_exponent:3.0 ~ws_exponent:3.0

let jacobian =
  loop "jacobian"
    {
      Feature.default with
      flops_per_iter = 160.0;
      fma_fraction = 0.5;
      read_bytes = 60.0;
      write_bytes = 24.0;
      alias_ambiguity = 0.05;
      body_insns = 130;
      working_set_kb = 500_000.0;
      trip_count = cells;
    }

let solver_sweep =
  loop "solver_sweep"
    {
      Feature.default with
      flops_per_iter = 70.0;
      fma_fraction = 0.4;
      read_bytes = 40.0;
      write_bytes = 16.0;
      dep_chain = 5.0;
      alias_ambiguity = 0.05;
      body_insns = 88;
      working_set_kb = 400_000.0;
      trip_count = cells;
    }

let flux =
  loop "flux"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.6;
      read_bytes = 40.0;
      write_bytes = 16.0;
      strided_bytes = 20.0;
      alias_ambiguity = 0.05;
      body_insns = 76;
      working_set_kb = 400_000.0;
      trip_count = cells;
    }

let residual_norm =
  loop "residual_norm"
    {
      Feature.default with
      flops_per_iter = 10.0;
      fma_fraction = 0.8;
      read_bytes = 16.0;
      write_bytes = 0.0;
      dep_chain = 4.0;
      reduction = true;
      alias_ambiguity = 0.05;
      body_insns = 20;
      working_set_kb = 200_000.0;
      trip_count = cells;
    }

let update =
  loop "update"
    {
      Feature.default with
      flops_per_iter = 8.0;
      fma_fraction = 0.6;
      read_bytes = 40.0;
      write_bytes = 24.0;
      alias_ambiguity = 0.05;
      body_insns = 18;
      working_set_kb = 500_000.0;
      trip_count = cells;
    }

let shell_bc =
  Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0 "shell_bc"
    {
      Feature.default with
      flops_per_iter = 24.0;
      fma_fraction = 0.3;
      read_bytes = 20.0;
      write_bytes = 10.0;
      strided_bytes = 20.0;
      alias_ambiguity = 0.05;
      body_insns = 34;
      working_set_kb = 10_000.0;
      trip_count = 160_000.0;
    }

let nonloop =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 18.0;
      read_bytes = 36.0;
      write_bytes = 10.0;
      divergence = 0.25;
      branch_predictability = 0.9;
      dep_chain = 1.0;
      alias_ambiguity = 0.1;
      calls_per_iter = 1.0;
      body_insns = 240;
      working_set_kb = 4_000.0;
      trip_count = 400_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"351.bwaves" ~language:Program.Fortran ~loc:1_200
    ~domain:"Computational fluid dynamics" ~reference_size:1.0 ~nonloop
    [ jacobian; solver_sweep; flux; residual_norm; update; shell_bc ]

let shares =
  [
    ("jacobian", 0.24);
    ("solver_sweep", 0.20);
    ("flux", 0.16);
    ("residual_norm", 0.06);
    ("update", 0.08);
    ("shell_bc", 0.04);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:1.0 ~steps:50 ())
    ~total_s:18.0 ~shares draft
