open Ft_prog
module Exec = Ft_machine.Exec
module Toolchain = Ft_machine.Toolchain

let scale_invocations (l : Loop.t) factor =
  let f = l.Loop.features in
  {
    l with
    Loop.features =
      { f with Feature.invocations = f.Feature.invocations *. factor };
  }

let one_pass ~toolchain ~input ~total_s ~shares (program : Program.t) =
  let binary = Toolchain.compile_uniform toolchain ~cv:Ft_flags.Cv.o3 program in
  let run = Exec.evaluate ~arch:toolchain.Toolchain.arch ~input binary in
  let measured name =
    match
      List.find_opt (fun (r : Exec.region_report) -> r.Exec.name = name)
        run.Exec.loops
    with
    | Some r -> r.Exec.seconds
    | None -> invalid_arg ("Balance.calibrate: unknown loop " ^ name)
  in
  let loop_share_sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares in
  if loop_share_sum >= 1.0 then
    invalid_arg "Balance.calibrate: loop shares must sum below 1";
  List.iter
    (fun (name, s) ->
      if s <= 0.0 then
        invalid_arg ("Balance.calibrate: non-positive share for " ^ name);
      ignore (measured name))
    shares;
  let rescale (l : Loop.t) =
    match List.assoc_opt l.Loop.name shares with
    | None -> l
    | Some share ->
        let target = share *. total_s in
        scale_invocations l (target /. measured l.Loop.name)
  in
  let nonloop =
    let target = (1.0 -. loop_share_sum) *. total_s in
    scale_invocations program.Program.nonloop
      (target /. run.Exec.nonloop.Exec.seconds)
  in
  Program.make ~name:program.Program.name ~language:program.Program.language
    ~loc:program.Program.loc ~domain:program.Program.domain
    ~reference_size:program.Program.reference_size
    ~pgo_instrumentable:program.Program.pgo_instrumentable ~nonloop
    (List.map rescale program.Program.loops)

let calibrate ~toolchain ~input ~total_s ~shares program =
  (* Second pass absorbs the whole-binary couplings that shift when the
     mix changes (AVX frequency share, i-cache pressure). *)
  let once = one_pass ~toolchain ~input ~total_s ~shares program in
  one_pass ~toolchain ~input ~total_s ~shares once
