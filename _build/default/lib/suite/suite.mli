(** The paper's benchmark suite (Tables 1 and 2) and its inputs.

    Seven OpenMP programs: AMG, LULESH, Cloverleaf, Optewe from the HPC
    proxy-app world, plus 351.bwaves, 362.fma3d and 363.swim from SPEC OMP
    2012.  Each benchmark module pins its O3 per-loop runtime profile on
    the Broadwell tuning input via {!Balance}; this module is the registry
    plus the per-platform tuning inputs (Table 2), the §4.3 small/large
    generalization inputs, and Table 1/2 rendering helpers. *)

val all : Ft_prog.Program.t list
(** In the paper's figure order: LULESH, Cloverleaf, AMG, Optewe, bwaves,
    fma3d, swim. *)

val find : string -> Ft_prog.Program.t option
(** Look up by name (case-insensitive; accepts short aliases such as
    ["cl"], ["bwaves"]). *)

val tuning_input : Ft_prog.Platform.t -> Ft_prog.Program.t -> Ft_prog.Input.t
(** The Table 2 input for a program on a platform (sized so one O3 run
    stays under 40 s).  @raise Invalid_argument for unknown programs. *)

val small_input : Ft_prog.Program.t -> Ft_prog.Input.t
(** §4.3 small test input (Broadwell): LULESH 180, AMG 20, Cloverleaf
    1000, Optewe 384, SPEC "test". *)

val large_input : Ft_prog.Program.t -> Ft_prog.Input.t
(** §4.3 large test input (Broadwell): LULESH 250, AMG 30, Cloverleaf
    4000, Optewe 768, SPEC "ref". *)

val table1 : unit -> Ft_util.Table.t
(** Table 1: name, language, LOC, domain. *)

val table2 : unit -> Ft_util.Table.t
(** Table 2: platform parameters and per-benchmark inputs. *)
