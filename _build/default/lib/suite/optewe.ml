(* Optewe (Sourouri): 3-D elastic seismic-wave propagation with PML
   boundaries, C++.  Reference size 512 = the Broadwell Table 2 input
   (512^3 grid, 5 time steps); trips scale with size^3.

   Personalities: directional stencils whose y/z sweeps are stride-bound
   (interchange and tiling matter), a stress update whose C++ pointer
   aliasing blocks vectorization at O3 (like Cloverleaf's acc, the big
   unlockable win), streaming velocity updates, and a branchy PML layer.

   PGO instrumentation fails for Optewe (paper §4.2.2, observation 3). *)

open Ft_prog

let grid = 3.0e7

let loop = Loop.make ~trip_exponent:3.0 ~ws_exponent:3.0

let stencil_x =
  loop "stencil_x"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.7;
      read_bytes = 70.0;
      write_bytes = 16.0;
      alias_ambiguity = 0.4;
      body_insns = 74;
      working_set_kb = 1_000_000.0;
      trip_count = grid;
    }

let stencil_y =
  loop "stencil_y"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.7;
      read_bytes = 20.0;
      write_bytes = 12.0;
      strided_bytes = 52.0;
      nest_depth = 3;
      alias_ambiguity = 0.4;
      body_insns = 74;
      working_set_kb = 1_000_000.0;
      trip_count = grid;
    }

let stencil_z =
  loop "stencil_z"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.7;
      read_bytes = 14.0;
      write_bytes = 12.0;
      strided_bytes = 60.0;
      nest_depth = 3;
      alias_ambiguity = 0.4;
      body_insns = 74;
      working_set_kb = 1_000_000.0;
      trip_count = grid;
    }

let stress_update =
  loop "stress_update"
    {
      Feature.default with
      flops_per_iter = 110.0;
      fma_fraction = 0.8;
      read_bytes = 36.0;
      write_bytes = 12.0;
      alias_ambiguity = 0.68;
      body_insns = 100;
      working_set_kb = 1_200_000.0;
      trip_count = grid;
    }

let vel_update =
  loop "vel_update"
    {
      Feature.default with
      flops_per_iter = 20.0;
      fma_fraction = 0.6;
      read_bytes = 64.0;
      write_bytes = 32.0;
      alias_ambiguity = 0.3;
      body_insns = 28;
      working_set_kb = 1_000_000.0;
      trip_count = grid;
    }

let pml_boundary =
  loop "pml_boundary"
    {
      Feature.default with
      flops_per_iter = 55.0;
      fma_fraction = 0.4;
      read_bytes = 20.0;
      write_bytes = 10.0;
      strided_bytes = 18.0;
      divergence = 0.55;
      branch_predictability = 0.6;
      alias_ambiguity = 0.45;
      body_insns = 72;
      working_set_kb = 150_000.0;
      trip_count = grid /. 8.0;
    }

let free_surface =
  Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0 "free_surface"
    {
      Feature.default with
      flops_per_iter = 30.0;
      fma_fraction = 0.4;
      read_bytes = 16.0;
      write_bytes = 10.0;
      strided_bytes = 24.0;
      alias_ambiguity = 0.4;
      body_insns = 40;
      working_set_kb = 8_000.0;
      trip_count = 260_000.0;
    }

let nonloop =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 26.0;
      read_bytes = 40.0;
      write_bytes = 12.0;
      divergence = 0.3;
      branch_predictability = 0.85;
      dep_chain = 1.0;
      alias_ambiguity = 0.9;
      calls_per_iter = 2.0;
      body_insns = 360;
      working_set_kb = 6_000.0;
      trip_count = 500_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"Optewe" ~language:Program.Cpp ~loc:2_700
    ~domain:"Seismic wave simulation" ~reference_size:512.0
    ~pgo_instrumentable:false ~nonloop
    [
      stencil_x;
      stencil_y;
      stencil_z;
      stress_update;
      vel_update;
      pml_boundary;
      free_surface;
    ]

let shares =
  [
    ("stencil_x", 0.11);
    ("stencil_y", 0.11);
    ("stencil_z", 0.11);
    ("stress_update", 0.13);
    ("vel_update", 0.09);
    ("pml_boundary", 0.07);
    ("free_surface", 0.025);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:512.0 ~steps:5 ())
    ~total_s:12.0 ~shares draft
