(** Workload balancing: pin a benchmark model's O3 runtime profile.

    Each benchmark model specifies per-loop {e personalities} (feature
    mixes) by hand, but the paper also tells us the O3 runtime {e shares}
    (e.g. Cloverleaf's top-5 kernels are 6.3/2.9/3.5/3.5/4.2 % of end-to-end
    time on Broadwell, Table 3) and that the O3 run takes at most ~40 s.
    This module reconciles the two: it executes the draft program at O3 on
    the reference platform/input and rescales every loop's invocation count
    so the O3 shares and the end-to-end runtime land exactly on target.

    Region times are linear in invocation counts, so one pass is exact up
    to the whole-binary couplings (frequency license share, i-cache
    pressure); a second fixed-point pass absorbs those. *)

val calibrate :
  toolchain:Ft_machine.Toolchain.t ->
  input:Ft_prog.Input.t ->
  total_s:float ->
  shares:(string * float) list ->
  Ft_prog.Program.t ->
  Ft_prog.Program.t
(** [calibrate ~toolchain ~input ~total_s ~shares program] rescales loop
    invocation counts so that, compiled at O3 and run on [input], each
    listed loop takes [share] of [total_s] and the whole program takes
    [total_s].  The non-loop region absorbs the unlisted remainder (its
    share is [1 - sum shares]; loops not listed keep their natural share of
    that remainder — in practice every loop should be listed).
    @raise Invalid_argument if shares exceed 1, a name is unknown, or a
    share is non-positive. *)
