(* 362.fma3d (SPEC OMP 2012): explicit finite-element crash simulation,
   Fortran, 62k LOC.  "train" is the reference input (size 1.0); trips are
   tied to the fixed unstructured mesh, so sizes scale element counts
   directly (exponent 1).

   Personalities: very large element-force bodies (spill-bound at O3),
   contact search with gathered neighbour lists and half-predictable
   branches (a wrong-to-vectorize candidate even in Fortran), plus
   streaming nodal updates.  Overall headroom is modest — fma3d is one of
   the paper's smaller wins. *)

open Ft_prog

let elements = 2.0e6

let loop = Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0

let element_force =
  loop "element_force"
    {
      Feature.default with
      flops_per_iter = 220.0;
      fma_fraction = 0.5;
      read_bytes = 80.0;
      write_bytes = 32.0;
      alias_ambiguity = 0.05;
      body_insns = 150;
      working_set_kb = 300_000.0;
      trip_count = elements;
    }

let stress_integrate =
  loop "stress_integrate"
    {
      Feature.default with
      flops_per_iter = 150.0;
      fma_fraction = 0.5;
      read_bytes = 60.0;
      write_bytes = 24.0;
      divergence = 0.25;
      branch_predictability = 0.85;
      alias_ambiguity = 0.05;
      body_insns = 120;
      working_set_kb = 300_000.0;
      trip_count = elements;
    }

let contact_search =
  loop "contact_search"
    {
      Feature.default with
      flops_per_iter = 40.0;
      fma_fraction = 0.2;
      read_bytes = 12.0;
      write_bytes = 4.0;
      gather_bytes = 24.0;
      divergence = 0.5;
      branch_predictability = 0.8;
      alias_ambiguity = 0.05;
      body_insns = 70;
      working_set_kb = 150_000.0;
      trip_count = elements /. 2.0;
    }

let hourglass_control =
  loop "hourglass_control"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.6;
      read_bytes = 48.0;
      write_bytes = 16.0;
      alias_ambiguity = 0.05;
      body_insns = 84;
      working_set_kb = 250_000.0;
      trip_count = elements;
    }

let mass_update =
  loop "mass_update"
    {
      Feature.default with
      flops_per_iter = 6.0;
      fma_fraction = 0.5;
      read_bytes = 32.0;
      write_bytes = 24.0;
      alias_ambiguity = 0.05;
      body_insns = 16;
      working_set_kb = 200_000.0;
      trip_count = elements;
    }

let nodal_accel =
  loop "nodal_accel"
    {
      Feature.default with
      flops_per_iter = 30.0;
      fma_fraction = 0.4;
      read_bytes = 40.0;
      write_bytes = 16.0;
      gather_bytes = 8.0;
      alias_ambiguity = 0.05;
      body_insns = 36;
      working_set_kb = 200_000.0;
      trip_count = elements;
    }

let time_integration =
  loop "time_integration"
    {
      Feature.default with
      flops_per_iter = 20.0;
      fma_fraction = 0.4;
      read_bytes = 36.0;
      write_bytes = 20.0;
      alias_ambiguity = 0.05;
      body_insns = 26;
      working_set_kb = 200_000.0;
      trip_count = elements;
    }

let nonloop =
  Loop.make "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 22.0;
      read_bytes = 40.0;
      write_bytes = 12.0;
      divergence = 0.3;
      branch_predictability = 0.85;
      dep_chain = 1.0;
      alias_ambiguity = 0.1;
      calls_per_iter = 2.0;
      body_insns = 300;
      working_set_kb = 10_000.0;
      trip_count = 600_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"362.fma3d" ~language:Program.Fortran ~loc:62_000
    ~domain:"Mechanical simulation" ~reference_size:1.0 ~nonloop
    [
      element_force;
      stress_integrate;
      contact_search;
      hourglass_control;
      mass_update;
      nodal_accel;
      time_integration;
    ]

let shares =
  [
    ("element_force", 0.16);
    ("stress_integrate", 0.12);
    ("contact_search", 0.08);
    ("hourglass_control", 0.06);
    ("mass_update", 0.06);
    ("nodal_accel", 0.07);
    ("time_integration", 0.05);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:1.0 ~steps:20 ())
    ~total_s:12.0 ~shares draft
