(* 363.swim (SPEC OMP 2012): shallow-water weather prediction, Fortran,
   0.5k LOC.  Three classic 2-D stencil loops (calc1/calc2/calc3) stream
   a handful of N x N arrays each time step; the code is almost entirely
   memory-bound, so the tuning story is about the memory system:
   non-temporal stores (skip read-for-ownership on the written arrays),
   prefetch level/distance, and avoiding vector-width choices that inflate
   traffic.

   The §4.3 pathology reproduces here: on the tiny "test" input the
   working set drops into the last-level cache, so CVs tuned on "train"
   (streaming stores + far prefetch, ideal for DRAM-resident arrays)
   actively backfire — the paper reports exactly this as the one case
   where CFR trails on the small input while still beating O3. *)

open Ft_prog

let points = 1.4e7 (* ~3800 x 3800 *)

let loop = Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0

let calc1 =
  loop "calc1"
    {
      Feature.default with
      flops_per_iter = 30.0;
      fma_fraction = 0.6;
      read_bytes = 120.0;
      write_bytes = 40.0;
      alias_ambiguity = 0.05;
      body_insns = 44;
      working_set_kb = 900_000.0;
      trip_count = points;
    }

let calc2 =
  loop "calc2"
    {
      Feature.default with
      flops_per_iter = 35.0;
      fma_fraction = 0.6;
      read_bytes = 140.0;
      write_bytes = 32.0;
      alias_ambiguity = 0.05;
      body_insns = 48;
      working_set_kb = 900_000.0;
      trip_count = points;
    }

let calc3 =
  loop "calc3"
    {
      Feature.default with
      flops_per_iter = 25.0;
      fma_fraction = 0.5;
      read_bytes = 100.0;
      write_bytes = 48.0;
      divergence = 0.1;
      branch_predictability = 0.95;
      alias_ambiguity = 0.05;
      body_insns = 40;
      working_set_kb = 900_000.0;
      trip_count = points;
    }

let periodic_bc =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "periodic_bc"
    {
      Feature.default with
      flops_per_iter = 4.0;
      fma_fraction = 0.0;
      read_bytes = 16.0;
      write_bytes = 16.0;
      strided_bytes = 16.0;
      alias_ambiguity = 0.05;
      body_insns = 14;
      working_set_kb = 500.0;
      trip_count = 15_000.0;
    }

let nonloop =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 12.0;
      read_bytes = 24.0;
      write_bytes = 8.0;
      divergence = 0.2;
      branch_predictability = 0.9;
      dep_chain = 0.0;
      alias_ambiguity = 0.1;
      calls_per_iter = 0.5;
      body_insns = 120;
      working_set_kb = 2_000.0;
      trip_count = 250_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"363.swim" ~language:Program.Fortran ~loc:500
    ~domain:"Weather prediction" ~reference_size:1.0 ~nonloop
    [ calc1; calc2; calc3; periodic_bc ]

let shares =
  [
    ("calc1", 0.29); ("calc2", 0.29); ("calc3", 0.24); ("periodic_bc", 0.03);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:1.0 ~steps:40 ())
    ~total_s:9.0 ~shares draft
