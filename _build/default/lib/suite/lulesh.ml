(* LULESH (LLNL proxy app): unstructured shock hydrodynamics on a 3-D
   hexahedral mesh, C++.  Reference size 200 = the Broadwell Table 2 input
   (200^3 elements, 10 time steps); trips scale with size^3.

   Optimization personalities:
     - hourglass/stress force kernels: large FMA-rich bodies that spill at
       O3 — register-allocation and spill-placement flags pay off;
     - eos: branchy equation-of-state selection that O3 if-converts; with
       highly biased branches, *not* converting (keeping branches) wins;
     - material_props: gather-indexed region traversal that O3 vectorizes
       at a loss;
     - pos/vel updates: pure streaming — non-temporal stores and prefetch
       distance are the whole game.

   PGO instrumentation fails for LULESH (paper §4.2.2, observation 3). *)

open Ft_prog

let elements = 8.0e6 (* 200^3 *)

let loop = Loop.make ~trip_exponent:3.0 ~ws_exponent:3.0

let hourglass_force =
  loop "hourglass_force"
    {
      Feature.default with
      flops_per_iter = 200.0;
      fma_fraction = 0.8;
      read_bytes = 60.0;
      write_bytes = 24.0;
      alias_ambiguity = 0.45;
      body_insns = 120;
      working_set_kb = 700_000.0;
      trip_count = elements;
    }

let stress_force =
  loop "stress_force"
    {
      Feature.default with
      flops_per_iter = 90.0;
      fma_fraction = 0.6;
      read_bytes = 70.0;
      write_bytes = 24.0;
      alias_ambiguity = 0.5;
      body_insns = 84;
      working_set_kb = 700_000.0;
      trip_count = elements;
    }

let eos =
  loop "eos"
    {
      Feature.default with
      flops_per_iter = 60.0;
      fma_fraction = 0.3;
      read_bytes = 48.0;
      write_bytes = 16.0;
      divergence = 0.6;
      branch_predictability = 0.93;
      alias_ambiguity = 0.5;
      body_insns = 90;
      working_set_kb = 500_000.0;
      trip_count = elements;
    }

let material_props =
  loop "material_props"
    {
      Feature.default with
      flops_per_iter = 30.0;
      fma_fraction = 0.3;
      read_bytes = 16.0;
      write_bytes = 8.0;
      gather_bytes = 20.0;
      divergence = 0.3;
      branch_predictability = 0.9;
      alias_ambiguity = 0.4;
      body_insns = 44;
      working_set_kb = 400_000.0;
      trip_count = elements;
    }

let pos_vel_update =
  loop "pos_vel_update"
    {
      Feature.default with
      flops_per_iter = 6.0;
      fma_fraction = 0.2;
      read_bytes = 48.0;
      write_bytes = 48.0;
      alias_ambiguity = 0.2;
      body_insns = 16;
      working_set_kb = 500_000.0;
      trip_count = elements;
    }

let kinematics =
  loop "kinematics"
    {
      Feature.default with
      flops_per_iter = 70.0;
      fma_fraction = 0.5;
      read_bytes = 24.0;
      write_bytes = 8.0;
      strided_bytes = 36.0;
      nest_depth = 2;
      alias_ambiguity = 0.45;
      body_insns = 66;
      working_set_kb = 600_000.0;
      trip_count = elements;
    }

let volume_calc =
  loop "volume_calc"
    {
      Feature.default with
      flops_per_iter = 70.0;
      fma_fraction = 0.5;
      read_bytes = 48.0;
      write_bytes = 8.0;
      alias_ambiguity = 0.4;
      body_insns = 58;
      working_set_kb = 500_000.0;
      trip_count = elements;
    }

let courant =
  loop "courant"
    {
      Feature.default with
      flops_per_iter = 18.0;
      fma_fraction = 0.2;
      read_bytes = 12.0;
      strided_bytes = 4.0;
      write_bytes = 0.0;
      divergence = 0.4;
      branch_predictability = 0.85;
      dep_chain = 5.0;
      reduction = true;
      alias_ambiguity = 0.3;
      body_insns = 30;
      working_set_kb = 300_000.0;
      trip_count = elements;
    }

let energy_calc =
  loop "energy_calc"
    {
      Feature.default with
      flops_per_iter = 50.0;
      fma_fraction = 0.4;
      read_bytes = 32.0;
      write_bytes = 16.0;
      dep_chain = 3.0;
      alias_ambiguity = 0.45;
      body_insns = 62;
      working_set_kb = 500_000.0;
      trip_count = elements;
    }

let monotonic_q =
  loop "monotonic_q"
    {
      Feature.default with
      flops_per_iter = 45.0;
      fma_fraction = 0.3;
      read_bytes = 16.0;
      write_bytes = 8.0;
      gather_bytes = 14.0;
      divergence = 0.45;
      branch_predictability = 0.75;
      alias_ambiguity = 0.45;
      body_insns = 56;
      working_set_kb = 500_000.0;
      trip_count = elements;
    }

let nonloop =
  Loop.make ~trip_exponent:1.0 ~ws_exponent:1.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 24.0;
      read_bytes = 40.0;
      write_bytes = 16.0;
      divergence = 0.3;
      branch_predictability = 0.85;
      dep_chain = 1.0;
      alias_ambiguity = 0.95;
      calls_per_iter = 3.0;
      body_insns = 420;
      working_set_kb = 8_000.0;
      trip_count = 400_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"LULESH" ~language:Program.Cpp ~loc:7_200
    ~domain:"Hydrodynamics" ~reference_size:200.0 ~pgo_instrumentable:false
    ~nonloop
    [
      hourglass_force;
      stress_force;
      eos;
      material_props;
      pos_vel_update;
      kinematics;
      volume_calc;
      courant;
      energy_calc;
      monotonic_q;
    ]

let shares =
  [
    ("hourglass_force", 0.16);
    ("stress_force", 0.12);
    ("eos", 0.10);
    ("material_props", 0.06);
    ("pos_vel_update", 0.08);
    ("kinematics", 0.09);
    ("volume_calc", 0.06);
    ("courant", 0.03);
    ("energy_calc", 0.06);
    ("monotonic_q", 0.05);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:200.0 ~steps:10 ())
    ~total_s:16.0 ~shares draft
