lib/suite/balance.ml: Feature Ft_flags Ft_machine Ft_prog List Loop Program
