lib/suite/fma3d.ml: Balance Feature Ft_machine Ft_prog Input Loop Platform Program
