lib/suite/suite.ml: Amg Bwaves Cloverleaf Fma3d Ft_prog Ft_util Input List Lulesh Optewe Option Platform Printf Program String Swim
