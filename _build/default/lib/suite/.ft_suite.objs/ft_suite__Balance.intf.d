lib/suite/balance.mli: Ft_machine Ft_prog
