lib/suite/suite.mli: Ft_prog Ft_util
