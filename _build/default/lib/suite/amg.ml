(* AMG (LLNL): algebraic multigrid linear-system solver, C.  Reference
   size 25 = the Broadwell Table 2 input; a run is one solve (steps = 1)
   whose inner V-cycle iterations are folded into invocation counts; trips
   scale with size^3 (3-D problem).

   This is the benchmark FuncyTuner helps most (paper: +18.1% on Opteron,
   +12.7% on Broadwell, +22% on the large input).  The headroom is
   concentrated where ICC's cost model mis-fires on sparse kernels:
     - matvec over CSR rows: predictable row-length branches make scalar
       code cheap, but the cost model sees vectorizable gathers and emits
       SIMD that touches both branch paths — a 20-25% loss that -no-vec
       recovers;
     - Gauss-Seidel relaxation: a loop-carried recurrence that cannot be
       vectorized at all; scheduling/selection flags and prefetching are
       the only lever, which per-program tuning cannot pull without
       hurting the vector-friendly kernels;
     - axpy/dot: pure streams where non-temporal stores, prefetch distance
       and deep unrolling pay. *)

open Ft_prog

let fine_rows = 2.5e6

let loop = Loop.make ~trip_exponent:3.0 ~ws_exponent:3.0

let sparse ~name ~share_of_fine ~ws ~gather ~read ~write ~flops ~div ~pred
    ~dep ~body =
  loop name
    {
      Feature.default with
      flops_per_iter = flops;
      fma_fraction = 0.3;
      read_bytes = read;
      write_bytes = write;
      gather_bytes = gather;
      divergence = div;
      branch_predictability = pred;
      dep_chain = dep;
      alias_ambiguity = 0.35;
      body_insns = body;
      working_set_kb = ws;
      trip_count = fine_rows *. share_of_fine;
    }

let matvec_fine =
  sparse ~name:"matvec_fine" ~share_of_fine:1.0 ~ws:300_000.0 ~gather:12.0
    ~read:40.0 ~write:8.0 ~flops:16.0 ~div:0.5 ~pred:0.95 ~dep:0.0 ~body:44

let matvec_coarse =
  sparse ~name:"matvec_coarse" ~share_of_fine:0.25 ~ws:18_000.0 ~gather:12.0
    ~read:40.0 ~write:8.0 ~flops:16.0 ~div:0.5 ~pred:0.95 ~dep:0.0 ~body:44

let relax_fine =
  sparse ~name:"relax_fine" ~share_of_fine:1.0 ~ws:300_000.0 ~gather:14.0
    ~read:36.0 ~write:8.0 ~flops:20.0 ~div:0.4 ~pred:0.9 ~dep:4.0 ~body:52

let relax_coarse =
  sparse ~name:"relax_coarse" ~share_of_fine:0.25 ~ws:18_000.0 ~gather:14.0
    ~read:36.0 ~write:8.0 ~flops:20.0 ~div:0.4 ~pred:0.9 ~dep:4.0 ~body:52

(* Interpolation over a fixed stencil: clean, FMA-rich, vector-friendly —
   deliberately in tension with the sparse kernels: a whole-program
   -no-vec CV that rescues matvec/relax forfeits interp's 3x SIMD win,
   which is why per-program search stalls on AMG (Fig. 5). *)
let interp =
  loop "interp"
    {
      Feature.default with
      flops_per_iter = 40.0;
      fma_fraction = 0.7;
      read_bytes = 20.0;
      write_bytes = 8.0;
      alias_ambiguity = 0.2;
      body_insns = 40;
      working_set_kb = 200_000.0;
      trip_count = fine_rows;
    }

let restrict_op =
  sparse ~name:"restrict_op" ~share_of_fine:0.5 ~ws:120_000.0 ~gather:16.0
    ~read:24.0 ~write:12.0 ~flops:12.0 ~div:0.35 ~pred:0.92 ~dep:0.0 ~body:38

let dot =
  loop "dot"
    {
      Feature.default with
      flops_per_iter = 8.0;
      fma_fraction = 0.9;
      read_bytes = 16.0;
      write_bytes = 0.0;
      dep_chain = 4.0;
      reduction = true;
      alias_ambiguity = 0.2;
      body_insns = 18;
      working_set_kb = 150_000.0;
      trip_count = fine_rows;
    }

let axpy =
  loop "axpy"
    {
      Feature.default with
      flops_per_iter = 4.0;
      fma_fraction = 1.0;
      read_bytes = 32.0;
      write_bytes = 16.0;
      alias_ambiguity = 0.25;
      body_insns = 14;
      working_set_kb = 200_000.0;
      trip_count = fine_rows;
    }

let residual =
  sparse ~name:"residual" ~share_of_fine:1.0 ~ws:300_000.0 ~gather:12.0
    ~read:36.0 ~write:10.0 ~flops:14.0 ~div:0.45 ~pred:0.94 ~dep:0.0 ~body:42

let nonloop =
  Loop.make ~trip_exponent:2.0 ~ws_exponent:2.0 "<nonloop>"
    {
      Feature.default with
      flops_per_iter = 20.0;
      read_bytes = 44.0;
      write_bytes = 16.0;
      divergence = 0.4;
      branch_predictability = 0.8;
      dep_chain = 1.0;
      alias_ambiguity = 0.95;
      calls_per_iter = 2.0;
      body_insns = 380;
      working_set_kb = 40_000.0;
      trip_count = 900_000.0;
      parallel = false;
    }

let draft =
  Program.make ~name:"AMG" ~language:Program.C ~loc:113_000
    ~domain:"Math: linear solver" ~reference_size:25.0 ~nonloop
    [
      matvec_fine;
      matvec_coarse;
      relax_fine;
      relax_coarse;
      interp;
      restrict_op;
      dot;
      axpy;
      residual;
    ]

let shares =
  [
    ("matvec_fine", 0.16);
    ("matvec_coarse", 0.07);
    ("relax_fine", 0.13);
    ("relax_coarse", 0.07);
    ("interp", 0.13);
    ("restrict_op", 0.06);
    ("dot", 0.04);
    ("axpy", 0.06);
    ("residual", 0.05);
  ]

let program =
  Balance.calibrate
    ~toolchain:(Ft_machine.Toolchain.make Platform.Broadwell)
    ~input:(Input.make ~size:25.0 ~steps:1 ())
    ~total_s:11.0 ~shares draft
