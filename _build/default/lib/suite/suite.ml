open Ft_prog

let all =
  [
    Lulesh.program;
    Cloverleaf.program;
    Amg.program;
    Optewe.program;
    Bwaves.program;
    Fma3d.program;
    Swim.program;
  ]

let aliases =
  [
    ("lulesh", "LULESH");
    ("cloverleaf", "Cloverleaf");
    ("cl", "Cloverleaf");
    ("amg", "AMG");
    ("optewe", "Optewe");
    ("bwaves", "351.bwaves");
    ("351.bwaves", "351.bwaves");
    ("fma3d", "362.fma3d");
    ("362.fma3d", "362.fma3d");
    ("swim", "363.swim");
    ("363.swim", "363.swim");
  ]

let find name =
  let lower = String.lowercase_ascii name in
  let canonical = Option.value ~default:name (List.assoc_opt lower aliases) in
  List.find_opt
    (fun (p : Program.t) ->
      String.lowercase_ascii p.Program.name = String.lowercase_ascii canonical)
    all

(* Table 2: per-platform tuning inputs (size, time steps). *)
let tuning_input (platform : Platform.t) (program : Program.t) =
  let size, steps =
    match (program.Program.name, platform) with
    | "LULESH", Platform.Opteron -> (120.0, 10)
    | "LULESH", Platform.Sandy_bridge -> (150.0, 10)
    | "LULESH", Platform.Broadwell -> (200.0, 10)
    | "Cloverleaf", Platform.Opteron -> (2000.0, 30)
    | "Cloverleaf", Platform.Sandy_bridge -> (2000.0, 30)
    | "Cloverleaf", Platform.Broadwell -> (2000.0, 60)
    | "AMG", Platform.Opteron -> (18.0, 1)
    | "AMG", Platform.Sandy_bridge -> (20.0, 1)
    | "AMG", Platform.Broadwell -> (25.0, 1)
    | "Optewe", Platform.Opteron -> (320.0, 5)
    | "Optewe", Platform.Sandy_bridge -> (384.0, 5)
    | "Optewe", Platform.Broadwell -> (512.0, 5)
    | "351.bwaves", Platform.Opteron -> (1.0, 10)
    | "351.bwaves", Platform.Sandy_bridge -> (1.0, 15)
    | "351.bwaves", Platform.Broadwell -> (1.0, 50)
    | "362.fma3d", _ -> (1.0, 20)
    | "363.swim", _ -> (1.0, 40)
    | name, _ -> invalid_arg ("Suite.tuning_input: unknown program " ^ name)
  in
  Input.make
    ~label:(Printf.sprintf "tuning/%s" (Platform.short_name platform))
    ~size ~steps ()

(* §4.3: small and large work-set inputs (evaluated on Broadwell). *)
let generalization_size ~small (program : Program.t) =
  match (program.Program.name, small) with
  | "LULESH", true -> 180.0
  | "LULESH", false -> 250.0
  | "Cloverleaf", true -> 1000.0
  | "Cloverleaf", false -> 4000.0
  | "AMG", true -> 20.0
  | "AMG", false -> 30.0
  | "Optewe", true -> 384.0
  | "Optewe", false -> 768.0
  | ("351.bwaves" | "362.fma3d" | "363.swim"), true -> 0.15 (* SPEC test *)
  | ("351.bwaves" | "362.fma3d" | "363.swim"), false -> 1.5 (* SPEC ref *)
  | name, _ -> invalid_arg ("Suite.generalization_size: unknown " ^ name)

let small_input program =
  let tuning = tuning_input Platform.Broadwell program in
  Input.make ~label:"small"
    ~size:(generalization_size ~small:true program)
    ~steps:tuning.Input.steps ()

let large_input program =
  let tuning = tuning_input Platform.Broadwell program in
  Input.make ~label:"large"
    ~size:(generalization_size ~small:false program)
    ~steps:tuning.Input.steps ()

let table1 () =
  let t =
    Ft_util.Table.create ~title:"Table 1: List of benchmarks"
      [ "Name"; "Language"; "LOC"; "Domain" ]
  in
  List.iter
    (fun (p : Program.t) ->
      Ft_util.Table.add_row t
        [
          p.Program.name;
          Program.language_name p.Program.language;
          Printf.sprintf "%.1fk" (float_of_int p.Program.loc /. 1000.0);
          p.Program.domain;
        ])
    all;
  t

(* Table 2 restates the paper's platform facts directly — they are inputs
   to the reproduction (Arch.of_platform encodes the same numbers), not
   derived values. *)
let table2 () =
  let t =
    Ft_util.Table.create
      ~title:"Table 2: Platform overview, runtime configurations, inputs"
      [ "Row"; "AMD Opteron"; "Intel Sandy Bridge"; "Intel Broadwell" ]
  in
  let row name f =
    Ft_util.Table.add_row t (name :: List.map f Platform.all)
  in
  row "Processor" Platform.processor;
  row "Processor-specific flag" Platform.processor_flag;
  Ft_util.Table.add_row t [ "Sockets"; "2"; "2"; "2" ];
  Ft_util.Table.add_row t [ "NUMA nodes"; "4"; "2"; "2" ];
  Ft_util.Table.add_row t [ "Cores/socket"; "4"; "8"; "8" ];
  Ft_util.Table.add_row t [ "Threads/core"; "2"; "2"; "2" ];
  Ft_util.Table.add_row t [ "Core frequency [GHz]"; "2.0"; "2.0"; "2.1" ];
  Ft_util.Table.add_row t [ "Memory size [GB]"; "32"; "16"; "64" ];
  Ft_util.Table.add_row t [ "OpenMP thread count"; "16"; "16"; "16" ];
  Ft_util.Table.add_separator t;
  List.iter
    (fun (p : Program.t) ->
      let cell platform =
        let input = tuning_input platform p in
        Printf.sprintf "%g, %d" input.Input.size input.Input.steps
      in
      row (p.Program.name ^ ": size, steps") cell)
    all;
  t
