lib/baselines/ce.mli: Ft_flags Ft_machine Ft_prog Ft_util
