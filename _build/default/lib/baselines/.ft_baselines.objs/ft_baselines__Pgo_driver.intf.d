lib/baselines/pgo_driver.mli: Ft_compiler Ft_machine Ft_prog Ft_util
