lib/baselines/pgo_driver.ml: Ft_caliper Ft_compiler Ft_flags Ft_machine
