lib/baselines/ce.ml: Array Ft_caliper Ft_flags Ft_machine Ft_prog Ft_util List
