module Flag = Ft_flags.Flag
module Cv = Ft_flags.Cv
module Exec = Ft_machine.Exec
module Toolchain = Ft_machine.Toolchain

type step = { eliminated : Flag.id; rip : float }

type t = {
  algorithm : string;
  cv : Cv.t;
  seconds : float;
  speedup : float;
  steps : step list;
  evaluations : int;
}

(* Shared measurement state for all three algorithms. *)
type env = {
  toolchain : Toolchain.t;
  program : Ft_prog.Program.t;
  input : Ft_prog.Input.t;
  rng : Ft_util.Rng.t;
  mutable evaluations : int;
}

let measure env cv =
  env.evaluations <- env.evaluations + 1;
  let binary = Toolchain.compile_uniform env.toolchain ~cv env.program in
  (Exec.measure ~arch:env.toolchain.Toolchain.arch ~input:env.input
     ~rng:env.rng binary)
    .Exec.elapsed_s

let rip_of env bits current_s id =
  let trial = Array.copy bits in
  trial.(Flag.index id) <- false;
  let s = measure env (Cv.of_bits trial) in
  (s, (s -. current_s) /. current_s)

let finish env ~algorithm ~bits ~steps =
  let baseline_o3 =
    Ft_caliper.Profiler.baseline_seconds ~toolchain:env.toolchain
      ~program:env.program ~input:env.input
  in
  let cv = Cv.of_bits bits in
  let binary = Toolchain.compile_uniform env.toolchain ~cv env.program in
  let seconds =
    (Exec.evaluate ~arch:env.toolchain.Toolchain.arch ~input:env.input binary)
      .Exec.total_s
  in
  {
    algorithm;
    cv;
    seconds;
    speedup = baseline_o3 /. seconds;
    steps = List.rev steps;
    evaluations = env.evaluations;
  }

let make_env ~toolchain ~program ~input ~rng =
  { toolchain; program; input; rng; evaluations = 0 }

let on_flags bits =
  Array.to_list Flag.all |> List.filter (fun id -> bits.(Flag.index id))

let run_batch ~toolchain ~program ~input ~rng () =
  let env = make_env ~toolchain ~program ~input ~rng in
  let bits = Array.make Flag.count true in
  let base_s = measure env (Cv.of_bits bits) in
  let steps =
    on_flags bits
    |> List.filter_map (fun id ->
           let _, rip = rip_of env bits base_s id in
           if rip < 0.0 then Some { eliminated = id; rip } else None)
  in
  List.iter (fun s -> bits.(Flag.index s.eliminated) <- false) steps;
  finish env ~algorithm:"BE" ~bits ~steps:(List.rev steps)

let run_iterative ~toolchain ~program ~input ~rng () =
  let env = make_env ~toolchain ~program ~input ~rng in
  let bits = Array.make Flag.count true in
  let current_s = ref (measure env (Cv.of_bits bits)) in
  let steps = ref [] in
  let continue = ref true in
  while !continue do
    let candidates =
      on_flags bits
      |> List.map (fun id ->
             let s, rip = rip_of env bits !current_s id in
             (id, s, rip))
      |> List.filter (fun (_, _, rip) -> rip < 0.0)
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
    in
    match candidates with
    | [] -> continue := false
    | (id, s, rip) :: _ ->
        bits.(Flag.index id) <- false;
        current_s := s;
        steps := { eliminated = id; rip } :: !steps
  done;
  finish env ~algorithm:"IE" ~bits ~steps:!steps

let run ~toolchain ~program ~input ~rng () =
  let env = make_env ~toolchain ~program ~input ~rng in
  let bits = Array.make Flag.count true in
  let current_s = ref (measure env (Cv.of_bits bits)) in
  let steps = ref [] in
  let continue = ref true in
  while !continue do
    (* RIPs of all remaining flags against the current baseline. *)
    let candidates =
      on_flags bits
      |> List.map (fun id ->
             let s, rip = rip_of env bits !current_s id in
             (id, s, rip))
      |> List.filter (fun (_, _, rip) -> rip < 0.0)
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
    in
    match candidates with
    | [] -> continue := false
    | (first, s, rip) :: rest ->
        (* Remove the most harmful flag outright... *)
        bits.(Flag.index first) <- false;
        current_s := s;
        steps := { eliminated = first; rip } :: !steps;
        (* ...then re-try the other candidates against the *updated*
           baseline within the same iteration (the "combined" part). *)
        List.iter
          (fun (id, _, _) ->
            let s', rip' = rip_of env bits !current_s id in
            if rip' < 0.0 then begin
              bits.(Flag.index id) <- false;
              current_s := s';
              steps := { eliminated = id; rip = rip' } :: !steps
            end)
          rest
  done;
  finish env ~algorithm:"CE" ~bits ~steps:!steps
