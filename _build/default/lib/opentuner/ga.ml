module Rng = Ft_util.Rng
module Space = Ft_flags.Space

type member = { cv : Ft_flags.Cv.t; cost : float }

let create ?(population = 20) ~rng () =
  let members : member list ref = ref [] in
  let pending = ref [] in
  let tournament () =
    match !members with
    | [] -> Space.sample rng
    | pool ->
        let pick () = List.nth pool (Rng.int rng (List.length pool)) in
        let a = pick () and b = pick () in
        (if a.cost <= b.cost then a else b).cv
  in
  let propose () =
    let trial =
      if List.length !members < population then Space.sample rng
      else
        let child = Space.crossover rng (tournament ()) (tournament ()) in
        if Rng.float rng 1.0 < 0.3 then Space.mutate rng child else child
    in
    pending := trial :: !pending;
    trial
  in
  let feedback cv cost =
    if List.exists (Ft_flags.Cv.equal cv) !pending then begin
      pending := List.filter (fun c -> not (Ft_flags.Cv.equal c cv)) !pending;
      members := { cv; cost } :: !members;
      if List.length !members > population then
        members :=
          List.sort (fun a b -> compare a.cost b.cost) !members
          |> List.filteri (fun i _ -> i < population)
    end
  in
  { Technique.name = "GeneticAlgorithm"; propose; feedback }
