type arm = {
  name : string;
  mutable history : bool list;  (* newest first, bounded by window *)
  mutable n : int;
}

type t = { arms : arm list; window : int; exploration : float; mutable total : int }

let create ?(window = 50) ?(exploration = 1.0) names =
  {
    arms = List.map (fun name -> { name; history = []; n = 0 }) names;
    window;
    exploration;
    total = 0;
  }

let find t name =
  match List.find_opt (fun a -> a.name = name) t.arms with
  | Some a -> a
  | None -> invalid_arg ("Bandit: unknown arm " ^ name)

let auc_of_history history =
  (* Trapezoid area under the cumulative-success curve, newest weighted
     most: sum_i v_i * i, normalized by the maximal area. *)
  let n = List.length history in
  if n = 0 then 0.0
  else begin
    let num = ref 0 and denom = ref 0 in
    (* history is newest-first; weight newest highest. *)
    List.iteri
      (fun i v ->
        let w = n - i in
        if v then num := !num + w;
        denom := !denom + w)
      history;
    float_of_int !num /. float_of_int !denom
  end

let select t =
  t.total <- t.total + 1;
  match List.find_opt (fun a -> a.n = 0) t.arms with
  | Some a -> a.name
  | None ->
      let score a =
        auc_of_history a.history
        +. t.exploration
           *. sqrt (2.0 *. log (float_of_int t.total) /. float_of_int a.n)
      in
      (Ft_util.Stats.max_by score t.arms).name

let reward t name improved =
  let a = find t name in
  a.n <- a.n + 1;
  a.history <- improved :: a.history;
  if List.length a.history > t.window then
    a.history <- List.filteri (fun i _ -> i < t.window) a.history

let uses t name = (find t name).n
let auc t name = auc_of_history (find t name).history
