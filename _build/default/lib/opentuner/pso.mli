(** Particle-swarm optimization over the continuous CV relaxation.

    Standard global-best PSO: each particle keeps a position and velocity
    in [0,1)^33; velocity is updated toward the particle's own best and
    the swarm's best with inertia [w] and acceleration coefficients
    [c1]/[c2], positions clamp into the cube and decode through
    {!Ft_flags.Space.of_point}.  (PSO is part of OpenTuner's stock
    technique set.) *)

val create :
  ?particles:int ->
  ?inertia:float ->
  ?c1:float ->
  ?c2:float ->
  rng:Ft_util.Rng.t ->
  unit ->
  Technique.t
(** Defaults: 20 particles, inertia 0.7, c1 = c2 = 1.4. *)
