(** Torczon-style pattern hill climber on the discrete CV space.

    OpenTuner's ensemble includes "Torczon hillclimbers"; this variant
    walks the flag lattice directly: from the incumbent it probes
    single-flag mutations (the unit pattern), accepts improvements, and
    widens to multi-flag mutations when the unit pattern stalls —
    contracting back to unit steps after a success, restarting from a
    fresh random point after repeated failures at the widest step. *)

val create : rng:Ft_util.Rng.t -> unit -> Technique.t
