module Rng = Ft_util.Rng
module Space = Ft_flags.Space

type member = { mutable point : float array; mutable cost : float }

let create ?(population = 24) ?(f = 0.6) ?(cr = 0.8) ~rng () =
  let members =
    Array.init population (fun _ ->
        {
          point = Array.init Space.dimensions (fun _ -> Rng.float rng 1.0);
          cost = infinity;
        })
  in
  let target = ref 0 in
  let pending = ref [] in
  let propose () =
    let i = !target in
    target := (i + 1) mod population;
    let m = members.(i) in
    let trial =
      if m.cost = infinity then Array.copy m.point
      else begin
        let distinct () =
          let rec pick () =
            let j = Rng.int rng population in
            if j = i then pick () else j
          in
          pick ()
        in
        let a = members.(distinct ()).point
        and b = members.(distinct ()).point
        and c = members.(distinct ()).point in
        let forced = Rng.int rng Space.dimensions in
        Array.init Space.dimensions (fun d ->
            if d = forced || Rng.float rng 1.0 < cr then
              Ft_util.Stats.clamp ~lo:0.0 ~hi:0.999999
                (a.(d) +. (f *. (b.(d) -. c.(d))))
            else m.point.(d))
      end
    in
    let cv = Space.of_point trial in
    pending := (cv, i, trial) :: !pending;
    cv
  in
  let feedback cv cost =
    match
      List.find_opt (fun (c, _, _) -> Ft_flags.Cv.equal c cv) !pending
    with
    | None -> ()
    | Some ((_, i, trial) as entry) ->
        pending := List.filter (fun e -> e != entry) !pending;
        let m = members.(i) in
        if cost < m.cost then begin
          m.point <- trial;
          m.cost <- cost
        end
  in
  { Technique.name = "DifferentialEvolution"; propose; feedback }
