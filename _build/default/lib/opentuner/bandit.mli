(** The AUC multi-armed bandit meta-technique (OpenTuner §3.1).

    OpenTuner assigns each evaluation to a technique using a sliding-window
    bandit whose exploitation term is the {e area under the curve} of the
    technique's recent successes: within the window, a success (the
    proposal improved the global best) at a more recent position
    contributes more area.  The score of arm a is

      auc(a) + c * sqrt(2 ln t / n_a)

    with the usual UCB exploration term.  Unused arms are tried first. *)

type t

val create : ?window:int -> ?exploration:float -> string list -> t
(** [create names] — one arm per technique name.  Window 50,
    exploration 1.0 by default. *)

val select : t -> string
(** Name of the arm to use for the next evaluation. *)

val reward : t -> string -> bool -> unit
(** [reward t name improved] records whether the arm's proposal improved
    the global best. *)

val uses : t -> string -> int
(** Evaluations assigned to an arm so far (for reporting). *)

val auc : t -> string -> float
(** Current AUC score of an arm (0 if its window is empty). *)
