(** Simulated annealing on the discrete flag lattice.

    A single walker mutates 1–3 flags per step and accepts worsening moves
    with probability exp(-Δ/T) under a geometric cooling schedule; the
    temperature is expressed relative to the incumbent's cost so the
    technique is scale-free in the objective.  (Simulated annealing is
    part of OpenTuner's stock technique set.) *)

val create :
  ?initial_temperature:float ->
  ?cooling:float ->
  rng:Ft_util.Rng.t ->
  unit ->
  Technique.t
(** Defaults: initial relative temperature 0.05 (a 5 % regression is
    accepted with probability 1/e at the start), cooling 0.995/step. *)
