(** The search-technique interface of the OpenTuner-style ensemble.

    OpenTuner (Ansel et al., PACT'14) coordinates many search techniques
    over one shared result database; each technique repeatedly proposes a
    configuration and receives the measured cost of every configuration
    the ensemble evaluates.  This module fixes that contract: a technique
    is a stateful [propose]/[feedback] pair over whole-program CVs. *)

type t = {
  name : string;
  propose : unit -> Ft_flags.Cv.t;  (** next configuration to test *)
  feedback : Ft_flags.Cv.t -> float -> unit;
      (** measured cost (seconds) of a configuration this technique
          proposed *)
}

val seeded_best : (Ft_flags.Cv.t * float) list ref -> Ft_flags.Cv.t option
(** Helper: current global best from a shared results cell (techniques
    such as hill climbers restart from it). *)
