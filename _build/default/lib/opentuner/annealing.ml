module Rng = Ft_util.Rng
module Space = Ft_flags.Space

let create ?(initial_temperature = 0.05) ?(cooling = 0.995) ~rng () =
  let incumbent = ref (Space.sample rng) in
  let incumbent_cost = ref infinity in
  let temperature = ref initial_temperature in
  let pending = ref [] in
  let propose () =
    let trial =
      if !incumbent_cost = infinity then !incumbent
      else Space.mutate_n rng (1 + Rng.int rng 3) !incumbent
    in
    pending := trial :: !pending;
    trial
  in
  let feedback cv cost =
    if List.exists (Ft_flags.Cv.equal cv) !pending then begin
      pending := List.filter (fun c -> not (Ft_flags.Cv.equal c cv)) !pending;
      let accept =
        if cost < !incumbent_cost then true
        else
          let delta = (cost -. !incumbent_cost) /. !incumbent_cost in
          Rng.float rng 1.0 < exp (-.delta /. Float.max 1e-6 !temperature)
      in
      if accept then begin
        incumbent := cv;
        incumbent_cost := cost
      end;
      temperature := !temperature *. cooling
    end
  in
  { Technique.name = "SimulatedAnnealing"; propose; feedback }
