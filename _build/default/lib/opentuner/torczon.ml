module Rng = Ft_util.Rng
module Space = Ft_flags.Space

let max_step = 6
let stall_limit = 12

let create ~rng () =
  let incumbent = ref (Space.sample rng) in
  let incumbent_cost = ref infinity in
  let step = ref 1 in
  let stalls = ref 0 in
  let pending = ref [] in
  let propose () =
    let trial = Space.mutate_n rng !step !incumbent in
    pending := trial :: !pending;
    trial
  in
  let feedback cv cost =
    if List.exists (Ft_flags.Cv.equal cv) !pending then begin
      pending := List.filter (fun c -> not (Ft_flags.Cv.equal c cv)) !pending;
      if cost < !incumbent_cost then begin
        incumbent := cv;
        incumbent_cost := cost;
        step := 1;
        stalls := 0
      end
      else begin
        incr stalls;
        if !stalls mod 4 = 0 then step := min max_step (!step + 1);
        if !stalls >= stall_limit then begin
          (* Expand exhausted: restart from a fresh random point. *)
          incumbent := Space.sample rng;
          incumbent_cost := infinity;
          step := 1;
          stalls := 0
        end
      end
    end
  in
  { Technique.name = "TorczonHillclimber"; propose; feedback }
