module Rng = Ft_util.Rng
module Space = Ft_flags.Space
module Stats = Ft_util.Stats

type vertex = { point : float array; mutable cost : float }

type phase =
  | Init of int  (* evaluating initial vertex i *)
  | Reflect
  | Expand of float array * float  (* reflected point and its cost *)
  | Contract of float array * float
  | Shrink of int  (* re-evaluating shrunken vertex i *)

let dims = Space.dimensions
let clamp = Stats.clamp ~lo:0.0 ~hi:0.999999

let create ~rng () =
  let fresh_simplex () =
    let origin = Array.init dims (fun _ -> Rng.float rng 1.0) in
    Array.init (dims + 1) (fun i ->
        let point = Array.copy origin in
        if i > 0 then
          point.(i - 1) <- clamp (point.(i - 1) +. 0.25);
        { point; cost = infinity })
  in
  let simplex = ref (fresh_simplex ()) in
  let phase = ref (Init 0) in
  let pending = ref None in
  let order () =
    Array.sort (fun a b -> compare a.cost b.cost) !simplex
  in
  let centroid_excluding_worst () =
    let n = Array.length !simplex - 1 in
    let acc = Array.make dims 0.0 in
    for i = 0 to n - 1 do
      let p = !simplex.(i).point in
      for d = 0 to dims - 1 do
        acc.(d) <- acc.(d) +. p.(d)
      done
    done;
    Array.map (fun v -> v /. float_of_int n) acc
  in
  let combine a b coeff =
    Array.init dims (fun d -> clamp (a.(d) +. (coeff *. (a.(d) -. b.(d)))))
  in
  let propose () =
    let point =
      match !phase with
      | Init i -> !simplex.(i).point
      | Reflect ->
          order ();
          let worst = !simplex.(Array.length !simplex - 1) in
          combine (centroid_excluding_worst ()) worst.point 1.0
      | Expand (reflected, _) ->
          let worst = !simplex.(Array.length !simplex - 1) in
          ignore reflected;
          combine (centroid_excluding_worst ()) worst.point 2.0
      | Contract (_, _) ->
          let worst = !simplex.(Array.length !simplex - 1) in
          combine (centroid_excluding_worst ()) worst.point (-0.5)
      | Shrink i -> !simplex.(i).point
    in
    pending := Some point;
    Space.of_point point
  in
  let feedback _cv cost =
    match !pending with
    | None -> ()
    | Some point ->
        pending := None;
        (match !phase with
        | Init i ->
            !simplex.(i).cost <- cost;
            phase :=
              if i + 1 <= dims then Init (i + 1) else Reflect
        | Reflect ->
            order ();
            let best = !simplex.(0).cost
            and second_worst = !simplex.(Array.length !simplex - 2).cost
            and worst = !simplex.(Array.length !simplex - 1) in
            if cost < best then phase := Expand (point, cost)
            else if cost < second_worst then begin
              worst.cost <- cost;
              Array.blit point 0 worst.point 0 dims;
              phase := Reflect
            end
            else phase := Contract (point, cost)
        | Expand (reflected, reflected_cost) ->
            let worst = !simplex.(Array.length !simplex - 1) in
            if cost < reflected_cost then begin
              worst.cost <- cost;
              Array.blit point 0 worst.point 0 dims
            end
            else begin
              worst.cost <- reflected_cost;
              Array.blit reflected 0 worst.point 0 dims
            end;
            phase := Reflect
        | Contract (_, reflected_cost) ->
            let worst = !simplex.(Array.length !simplex - 1) in
            if cost < Float.min worst.cost reflected_cost then begin
              worst.cost <- cost;
              Array.blit point 0 worst.point 0 dims;
              phase := Reflect
            end
            else begin
              (* Shrink everything toward the best vertex. *)
              order ();
              let best = !simplex.(0).point in
              Array.iteri
                (fun i v ->
                  if i > 0 then begin
                    for d = 0 to dims - 1 do
                      v.point.(d) <-
                        clamp (best.(d) +. (0.5 *. (v.point.(d) -. best.(d))))
                    done;
                    v.cost <- infinity
                  end)
                !simplex;
              phase := Shrink 1
            end
        | Shrink i ->
            !simplex.(i).cost <- cost;
            phase :=
              if i + 1 <= dims then Shrink (i + 1) else Reflect);
        (* Restart a collapsed simplex (all vertices decode identically). *)
        order ();
        let spread =
          !simplex.(Array.length !simplex - 1).cost -. !simplex.(0).cost
        in
        if !phase = Reflect && Float.abs spread < 1e-9 then begin
          simplex := fresh_simplex ();
          phase := Init 0
        end
  in
  { Technique.name = "NelderMead"; propose; feedback }
