(** Steady-state genetic algorithm over CVs.

    Tournament selection of two parents from a fixed-size population,
    uniform crossover ({!Ft_flags.Space.crossover}), one-flag mutation,
    and replace-worst insertion. *)

val create : ?population:int -> rng:Ft_util.Rng.t -> unit -> Technique.t
(** Default population 20. *)
