module Rng = Ft_util.Rng
module Space = Ft_flags.Space

type particle = {
  mutable position : float array;
  mutable velocity : float array;
  mutable best_position : float array;
  mutable best_cost : float;
}

let clamp = Ft_util.Stats.clamp ~lo:0.0 ~hi:0.999999

let create ?(particles = 20) ?(inertia = 0.7) ?(c1 = 1.4) ?(c2 = 1.4) ~rng () =
  let dims = Space.dimensions in
  let swarm =
    Array.init particles (fun _ ->
        let position = Array.init dims (fun _ -> Rng.float rng 1.0) in
        {
          position;
          velocity = Array.init dims (fun _ -> (Rng.float rng 0.2) -. 0.1);
          best_position = Array.copy position;
          best_cost = infinity;
        })
  in
  let global_best = ref None in
  let cursor = ref 0 in
  let pending = ref [] in
  let propose () =
    let i = !cursor in
    cursor := (i + 1) mod particles;
    let p = swarm.(i) in
    (if p.best_cost < infinity then begin
       (* Velocity update toward personal and global bests. *)
       let gbest =
         match !global_best with
         | Some (pos, _) -> pos
         | None -> p.best_position
       in
       for d = 0 to dims - 1 do
         let r1 = Rng.float rng 1.0 and r2 = Rng.float rng 1.0 in
         p.velocity.(d) <-
           (inertia *. p.velocity.(d))
           +. (c1 *. r1 *. (p.best_position.(d) -. p.position.(d)))
           +. (c2 *. r2 *. (gbest.(d) -. p.position.(d)));
         p.position.(d) <- clamp (p.position.(d) +. p.velocity.(d))
       done
     end);
    let cv = Space.of_point p.position in
    pending := (cv, i, Array.copy p.position) :: !pending;
    cv
  in
  let feedback cv cost =
    match
      List.find_opt (fun (c, _, _) -> Ft_flags.Cv.equal c cv) !pending
    with
    | None -> ()
    | Some ((_, i, position) as entry) ->
        pending := List.filter (fun e -> e != entry) !pending;
        let p = swarm.(i) in
        if cost < p.best_cost then begin
          p.best_cost <- cost;
          p.best_position <- position
        end;
        (match !global_best with
        | Some (_, best) when best <= cost -> ()
        | _ -> global_best := Some (position, cost))
  in
  { Technique.name = "ParticleSwarm"; propose; feedback }
