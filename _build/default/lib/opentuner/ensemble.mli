(** The OpenTuner comparator: an AUC-bandit ensemble of search techniques
    run for 1000 test iterations over the whole-program CV space (§4.2.1).

    Techniques: differential evolution, Nelder–Mead, a Torczon-style
    pattern hill climber, a steady-state GA, particle-swarm optimization,
    simulated annealing, and pure random — each proposing whole-program
    CVs, coordinated by the sliding-window AUC bandit, sharing one result
    database. *)

type t = {
  result : Funcytuner.Result.t;  (** algorithm = ["OpenTuner"] *)
  technique_uses : (string * int) list;  (** evaluations per technique *)
}

val run : ?budget:int -> Funcytuner.Context.t -> t
(** Budget defaults to the context's pool size (1000 evaluations, as in
    the paper's comparison). *)
