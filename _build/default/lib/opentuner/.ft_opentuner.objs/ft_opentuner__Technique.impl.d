lib/opentuner/technique.ml: Ft_flags List
