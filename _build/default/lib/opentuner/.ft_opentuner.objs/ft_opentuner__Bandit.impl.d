lib/opentuner/bandit.ml: Ft_util List
