lib/opentuner/annealing.mli: Ft_util Technique
