lib/opentuner/ensemble.ml: Annealing Array Bandit De Ft_flags Ft_util Funcytuner Ga List Nelder_mead Pso Technique Torczon
