lib/opentuner/bandit.mli:
