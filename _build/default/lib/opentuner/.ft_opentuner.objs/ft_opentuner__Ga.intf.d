lib/opentuner/ga.mli: Ft_util Technique
