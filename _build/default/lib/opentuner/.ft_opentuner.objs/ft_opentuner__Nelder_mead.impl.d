lib/opentuner/nelder_mead.ml: Array Float Ft_flags Ft_util Technique
