lib/opentuner/ga.ml: Ft_flags Ft_util List Technique
