lib/opentuner/pso.ml: Array Ft_flags Ft_util List Technique
