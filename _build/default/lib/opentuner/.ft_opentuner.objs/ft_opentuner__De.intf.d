lib/opentuner/de.mli: Ft_util Technique
