lib/opentuner/technique.mli: Ft_flags
