lib/opentuner/de.ml: Array Ft_flags Ft_util List Technique
