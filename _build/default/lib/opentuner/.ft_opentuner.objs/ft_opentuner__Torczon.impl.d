lib/opentuner/torczon.ml: Ft_flags Ft_util List Technique
