lib/opentuner/torczon.mli: Ft_util Technique
