lib/opentuner/nelder_mead.mli: Ft_util Technique
