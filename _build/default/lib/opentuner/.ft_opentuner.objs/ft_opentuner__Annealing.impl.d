lib/opentuner/annealing.ml: Float Ft_flags Ft_util List Technique
