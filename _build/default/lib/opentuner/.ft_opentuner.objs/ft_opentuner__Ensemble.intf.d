lib/opentuner/ensemble.mli: Funcytuner
