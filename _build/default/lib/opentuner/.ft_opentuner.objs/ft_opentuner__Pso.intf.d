lib/opentuner/pso.mli: Ft_util Technique
