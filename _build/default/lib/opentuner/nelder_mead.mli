(** Nelder–Mead simplex search on the continuous CV relaxation.

    The standard downhill simplex (reflection α=1, expansion γ=2, outside
    contraction β=0.5, shrink σ=0.5) reorganized as an incremental
    propose/feedback state machine: each [propose] emits exactly one trial
    point (a vertex being (re)evaluated, a reflection, an expansion, a
    contraction, or a shrink vertex) and the matching [feedback] advances
    the simplex.  Degenerate simplexes restart around the best-known
    vertex. *)

val create : rng:Ft_util.Rng.t -> unit -> Technique.t
