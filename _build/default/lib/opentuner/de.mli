(** Differential evolution over the continuous relaxation of the CV space.

    Classic DE/rand/1/bin: for a target population member, a mutant is
    formed as [a + f * (b - c)] from three distinct other members and
    crossed over coordinate-wise with probability [cr]; the trial replaces
    the target if it measures faster.  Points live in [0,1)^33 and decode
    through {!Ft_flags.Space.of_point}. *)

val create :
  ?population:int ->
  ?f:float ->
  ?cr:float ->
  rng:Ft_util.Rng.t ->
  unit ->
  Technique.t
(** Defaults: population 24, f = 0.6, cr = 0.8. *)
