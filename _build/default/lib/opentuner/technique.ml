type t = {
  name : string;
  propose : unit -> Ft_flags.Cv.t;
  feedback : Ft_flags.Cv.t -> float -> unit;
}

let seeded_best results =
  match !results with
  | [] -> None
  | (cv0, c0) :: rest ->
      let best =
        List.fold_left
          (fun (cv, c) (cv', c') -> if c' < c then (cv', c') else (cv, c))
          (cv0, c0) rest
      in
      Some (fst best)
