lib/flags/space.ml: Array Cv Flag Ft_util
