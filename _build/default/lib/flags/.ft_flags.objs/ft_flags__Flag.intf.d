lib/flags/flag.mli:
