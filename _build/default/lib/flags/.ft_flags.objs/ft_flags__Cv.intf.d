lib/flags/cv.mli: Flag
