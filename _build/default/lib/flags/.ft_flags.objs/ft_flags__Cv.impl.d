lib/flags/cv.ml: Array Flag List Option Printf String
