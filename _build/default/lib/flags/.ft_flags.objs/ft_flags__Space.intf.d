lib/flags/space.mli: Cv Ft_util
