lib/flags/flag.ml: Array
