module Rng = Ft_util.Rng

let sample rng = Cv.make (fun id -> Rng.int rng (Flag.arity id))
let sample_pool rng k = Array.init k (fun _ -> sample rng)

let sample_binary rng =
  Cv.make (fun id ->
      if Rng.bool rng then Cv.binary_alternative id else Flag.default_o3 id)

let mutate rng cv =
  let id = Rng.choose rng Flag.all in
  let arity = Flag.arity id in
  let current = Cv.get cv id in
  (* Pick uniformly among the other values. *)
  let shift = 1 + Rng.int rng (arity - 1) in
  Cv.set cv id ((current + shift) mod arity)

let rec mutate_n rng n cv = if n <= 0 then cv else mutate_n rng (n - 1) (mutate rng cv)

let crossover rng a b =
  Cv.make (fun id -> if Rng.bool rng then Cv.get a id else Cv.get b id)

let distance a b =
  Array.fold_left
    (fun acc id -> if Cv.get a id = Cv.get b id then acc else acc + 1)
    0 Flag.all

let dimensions = Flag.count

let to_point cv =
  Array.map
    (fun id ->
      let arity = float_of_int (Flag.arity id) in
      (float_of_int (Cv.get cv id) +. 0.5) /. arity)
    Flag.all

let of_point x =
  if Array.length x <> dimensions then
    invalid_arg "Space.of_point: wrong dimension";
  Cv.make (fun id ->
      let arity = Flag.arity id in
      let coord = Ft_util.Stats.clamp ~lo:0.0 ~hi:0.999999 x.(Flag.index id) in
      int_of_float (coord *. float_of_int arity))
