(** Sampling and search-space geometry over the compiler optimization space.

    All search algorithms in the paper start from the same primitive: a pool
    of K = 1000 CVs sampled uniformly at random (each flag value chosen with
    equal probability, §3.2).  The geometric helpers (neighbours, crossover,
    continuous relaxation) support the OpenTuner-style ensemble baselines. *)

val sample : Ft_util.Rng.t -> Cv.t
(** One uniform CV: every flag picks among its values with equal
    probability. *)

val sample_pool : Ft_util.Rng.t -> int -> Cv.t array
(** [sample_pool rng k] draws [k] independent uniform CVs — the paper's
    pre-sampled pool (step 1 of Figs. 2–4). *)

val sample_binary : Ft_util.Rng.t -> Cv.t
(** Uniform over the binarized subspace (each flag: O3 default or its
    {!Cv.binary_alternative}), as used for COBAYN. *)

val mutate : Ft_util.Rng.t -> Cv.t -> Cv.t
(** Change exactly one uniformly chosen flag to a different value — the unit
    neighbourhood step of hill-climbing searches. *)

val mutate_n : Ft_util.Rng.t -> int -> Cv.t -> Cv.t
(** Apply [n] successive {!mutate} steps. *)

val crossover : Ft_util.Rng.t -> Cv.t -> Cv.t -> Cv.t
(** Uniform crossover: each flag comes from either parent with equal
    probability (genetic-algorithm primitive). *)

val distance : Cv.t -> Cv.t -> int
(** Hamming distance in flag positions. *)

(** {1 Continuous relaxation}

    Nelder–Mead and Torczon pattern search operate on real vectors; a CV is
    relaxed to a point of [0,1)^33 where coordinate [i] selects value
    [floor (x.(i) *. arity_i)].  Decoding clamps coordinates into [0,1). *)

val to_point : Cv.t -> float array
(** Centre of the CV's cell in the relaxed cube. *)

val of_point : float array -> Cv.t
(** Decode (with clamping).  @raise Invalid_argument on wrong dimension. *)

val dimensions : int
(** 33. *)
