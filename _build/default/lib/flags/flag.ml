type id =
  | Base_opt
  | Vec
  | Simd_width
  | Unroll
  | Unroll_aggressive
  | Ipo
  | Inline_threshold
  | Ansi_alias
  | Streaming_stores
  | Prefetch
  | Prefetch_distance
  | Fma
  | Interchange
  | Fusion
  | Distribution
  | Tile
  | Sched
  | Isel
  | Regalloc
  | Spill_opt
  | Align_loops
  | Pad
  | Branch_conv
  | Cmov
  | Scalar_rep
  | Gvn
  | Licm
  | Func_split
  | Jump_tables
  | Dep_analysis
  | Code_layout
  | Vector_cost
  | Heap_arrays

type descriptor = {
  d_id : id;
  d_name : string;
  d_values : string array;
  d_o3 : int;
  d_o2 : int;
}

let on_off = [| "off"; "on" |]

let descriptors =
  [|
    { d_id = Base_opt; d_name = "-O"; d_values = [| "1"; "2"; "3" |]; d_o3 = 2; d_o2 = 1 };
    { d_id = Vec; d_name = "-vec"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Simd_width; d_name = "-simd-width"; d_values = [| "auto"; "128"; "256" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Unroll; d_name = "-unroll"; d_values = [| "auto"; "0"; "2"; "4"; "8"; "16" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Unroll_aggressive; d_name = "-unroll-aggressive"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
    { d_id = Ipo; d_name = "-ipo"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
    { d_id = Inline_threshold; d_name = "-inline-factor"; d_values = [| "25"; "50"; "100"; "200"; "400" |]; d_o3 = 2; d_o2 = 2 };
    { d_id = Ansi_alias; d_name = "-ansi-alias"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Streaming_stores; d_name = "-qopt-streaming-stores"; d_values = [| "auto"; "always"; "never" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Prefetch; d_name = "-qopt-prefetch"; d_values = [| "0"; "1"; "2"; "3"; "4" |]; d_o3 = 2; d_o2 = 1 };
    { d_id = Prefetch_distance; d_name = "-qopt-prefetch-distance"; d_values = [| "auto"; "near"; "mid"; "far" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Fma; d_name = "-fma"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Interchange; d_name = "-qopt-loop-interchange"; d_values = on_off; d_o3 = 1; d_o2 = 0 };
    { d_id = Fusion; d_name = "-qopt-loop-fusion"; d_values = on_off; d_o3 = 1; d_o2 = 0 };
    { d_id = Distribution; d_name = "-qopt-loop-distribution"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
    { d_id = Tile; d_name = "-qopt-block-size"; d_values = [| "none"; "8"; "16"; "32"; "64" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Sched; d_name = "-qsched"; d_values = [| "conservative"; "default"; "aggressive" |]; d_o3 = 1; d_o2 = 1 };
    { d_id = Isel; d_name = "-qisel"; d_values = [| "default"; "advanced"; "size" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Regalloc; d_name = "-qregalloc"; d_values = [| "default"; "aggressive" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Spill_opt; d_name = "-qspill-opt"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Align_loops; d_name = "-falign-loops"; d_values = on_off; d_o3 = 1; d_o2 = 0 };
    { d_id = Pad; d_name = "-pad"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
    { d_id = Branch_conv; d_name = "-qif-convert"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Cmov; d_name = "-qcmov"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Scalar_rep; d_name = "-scalar-rep"; d_values = on_off; d_o3 = 1; d_o2 = 0 };
    { d_id = Gvn; d_name = "-qgvn"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Licm; d_name = "-qlicm"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Func_split; d_name = "-qhot-cold-split"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
    { d_id = Jump_tables; d_name = "-qjump-tables"; d_values = on_off; d_o3 = 1; d_o2 = 1 };
    { d_id = Dep_analysis; d_name = "-qdep-analysis"; d_values = [| "basic"; "advanced"; "aggressive" |]; d_o3 = 1; d_o2 = 0 };
    { d_id = Code_layout; d_name = "-qcode-layout"; d_values = [| "default"; "hot"; "size" |]; d_o3 = 0; d_o2 = 0 };
    { d_id = Vector_cost; d_name = "-vec-cost-model"; d_values = [| "conservative"; "default"; "unlimited" |]; d_o3 = 1; d_o2 = 1 };
    { d_id = Heap_arrays; d_name = "-heap-arrays"; d_values = on_off; d_o3 = 0; d_o2 = 0 };
  |]

let all = Array.map (fun d -> d.d_id) descriptors
let count = Array.length descriptors

let index = function
  | Base_opt -> 0
  | Vec -> 1
  | Simd_width -> 2
  | Unroll -> 3
  | Unroll_aggressive -> 4
  | Ipo -> 5
  | Inline_threshold -> 6
  | Ansi_alias -> 7
  | Streaming_stores -> 8
  | Prefetch -> 9
  | Prefetch_distance -> 10
  | Fma -> 11
  | Interchange -> 12
  | Fusion -> 13
  | Distribution -> 14
  | Tile -> 15
  | Sched -> 16
  | Isel -> 17
  | Regalloc -> 18
  | Spill_opt -> 19
  | Align_loops -> 20
  | Pad -> 21
  | Branch_conv -> 22
  | Cmov -> 23
  | Scalar_rep -> 24
  | Gvn -> 25
  | Licm -> 26
  | Func_split -> 27
  | Jump_tables -> 28
  | Dep_analysis -> 29
  | Code_layout -> 30
  | Vector_cost -> 31
  | Heap_arrays -> 32

let descriptor id = descriptors.(index id)
let name id = (descriptor id).d_name
let values id = (descriptor id).d_values
let arity id = Array.length (descriptor id).d_values
let default_o3 id = (descriptor id).d_o3
let default_o2 id = (descriptor id).d_o2

let space_size () =
  Array.fold_left
    (fun acc d -> acc *. float_of_int (Array.length d.d_values))
    1.0 descriptors

let of_name s =
  let found = ref None in
  Array.iter (fun d -> if d.d_name = s then found := Some d.d_id) descriptors;
  !found
