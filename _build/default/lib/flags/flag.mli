(** The compiler optimization flag vocabulary.

    The paper tunes 33 optimization-related flags of the Intel 17.04
    compilers (§3.2): binary switches plus multi-valued parametric options,
    discretized, giving a compiler optimization space (COS) of roughly
    2.3e13 points.  This module defines the equivalent vocabulary for the
    simulated compiler: 33 flags whose domain-size product is ≈ 2.1e13.

    Floating-point-behaviour flags are deliberately absent: like the paper,
    the framework always compiles with the equivalent of
    [-fp-model source] so that all code variants are numerically
    comparable.  Processor-specific ISA flags ([-xAVX], [-xCORE-AVX2]) are
    attached to the architecture, not to the search space (Table 2). *)

type id =
  | Base_opt  (** base optimization level: O1 / O2 / O3 *)
  | Vec  (** auto-vectorizer master switch ([-no-vec] when off) *)
  | Simd_width  (** preferred SIMD width: auto / 128 / 256 bit *)
  | Unroll  (** loop unroll bound: auto / 0 / 2 / 4 / 8 / 16 *)
  | Unroll_aggressive  (** unroll beyond the cost model's comfort *)
  | Ipo  (** cross-module interprocedural optimization at link time *)
  | Inline_threshold  (** inliner budget as % of default: 25..400 *)
  | Ansi_alias  (** assume strict ANSI aliasing rules *)
  | Streaming_stores  (** non-temporal stores: auto / always / never *)
  | Prefetch  (** software prefetch aggressiveness 0..4 *)
  | Prefetch_distance  (** prefetch distance: auto / near / mid / far *)
  | Fma  (** fused multiply-add contraction *)
  | Interchange  (** loop interchange *)
  | Fusion  (** loop fusion *)
  | Distribution  (** loop distribution *)
  | Tile  (** loop tiling block size: none / 8 / 16 / 32 / 64 *)
  | Sched  (** instruction scheduling effort (the paper's "IO") *)
  | Isel  (** instruction selection strategy (the paper's "IS") *)
  | Regalloc  (** register allocation strategy *)
  | Spill_opt  (** spill-code placement optimization *)
  | Align_loops  (** align loop heads to fetch boundaries *)
  | Pad  (** inter-array padding of shared arrays *)
  | Branch_conv  (** if-conversion of divergent branches *)
  | Cmov  (** use conditional moves *)
  | Scalar_rep  (** scalar replacement of array references *)
  | Gvn  (** global value numbering / PRE *)
  | Licm  (** loop-invariant code motion *)
  | Func_split  (** hot/cold function splitting *)
  | Jump_tables  (** lower switches to jump tables *)
  | Dep_analysis  (** dependence-analysis precision: basic/advanced/aggressive *)
  | Code_layout  (** code placement: default / hot-grouped / size *)
  | Vector_cost  (** vectorizer cost model: conservative/default/unlimited *)
  | Heap_arrays  (** move large temporaries to the heap *)

val all : id array
(** Every flag, in canonical order.  [Array.length all = 33]. *)

val count : int
(** Number of flags (33). *)

val index : id -> int
(** Position of a flag in {!all} (also its slot in a CV). *)

val name : id -> string
(** Command-line spelling, e.g. ["-unroll"]. *)

val values : id -> string array
(** Printable domain of the flag, e.g. [[|"auto";"0";"2";"4";"8";"16"|]].
    Always at least two values. *)

val arity : id -> int
(** [Array.length (values id)]. *)

val default_o3 : id -> int
(** Value index the simulated [-O3] uses for this flag. *)

val default_o2 : id -> int
(** Value index the simulated [-O2] uses. *)

val space_size : unit -> float
(** Product of all arities — the size of the COS (≈ 2.1e13). *)

val of_name : string -> id option
(** Inverse of {!name}. *)
