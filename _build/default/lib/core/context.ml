module Rng = Ft_util.Rng
module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec

type t = {
  toolchain : Toolchain.t;
  program : Ft_prog.Program.t;
  input : Ft_prog.Input.t;
  pool : Ft_flags.Cv.t array;
  baseline_s : float;
  rng : Rng.t;
}

let make ?(pool_size = 1000) ~toolchain ~program ~input ~seed () =
  let rng = Rng.create seed in
  let pool = Ft_flags.Space.sample_pool (Rng.of_label rng "pool") pool_size in
  let baseline_s =
    Ft_caliper.Profiler.baseline_seconds ~toolchain ~program ~input
  in
  { toolchain; program; input; pool; baseline_s; rng }

let stream t label = Rng.of_label t.rng label

let measure_uniform t ~rng cv =
  let binary = Toolchain.compile_uniform t.toolchain ~cv t.program in
  let m = Exec.measure ~arch:t.toolchain.Toolchain.arch ~input:t.input ~rng binary in
  m.Exec.elapsed_s

let evaluate_uniform t cv =
  let binary = Toolchain.compile_uniform t.toolchain ~cv t.program in
  (Exec.evaluate ~arch:t.toolchain.Toolchain.arch ~input:t.input binary)
    .Exec.total_s

let speedup t seconds = t.baseline_s /. seconds
