(** Greedy combination G (§2.2.3) and its independence bound (§3.4).

    G picks, for each module j, the pool CV minimizing the collected
    per-loop time T[j][k], links the winners together, and measures the
    assembled executable — that measured result is {b G.realized}.

    {b G.Independent} is the hypothetical upper bound obtained by summing
    each module's best collected time (including the derived residual)
    without ever assembling a binary.  The gap between the two is the
    paper's evidence of inter-module dependence: if modules were
    independent, realized and independent would coincide. *)

type t = {
  realized : Result.t;  (** measured runtime of the assembled greedy binary *)
  independent_seconds : float;  (** Σ_j min_k T[j][k] *)
  independent_speedup : float;  (** T_O3 / independent_seconds *)
}

val run : Context.t -> Collection.t -> t
(** One assembled-binary measurement (plus the arithmetic bound). *)
