type configuration =
  | Whole_program of Ft_flags.Cv.t
  | Per_module of (string * Ft_flags.Cv.t) list

type t = {
  algorithm : string;
  configuration : configuration;
  best_seconds : float;
  speedup : float;
  evaluations : int;
  trace : float list;
}

let make ~algorithm ~configuration ~baseline_s ~evaluations ~trace
    ~best_seconds =
  {
    algorithm;
    configuration;
    best_seconds;
    speedup = baseline_s /. best_seconds;
    evaluations;
    trace;
  }

let best_so_far series =
  let folder (best, acc) x =
    let best' = match best with None -> x | Some b -> Float.min b x in
    (Some best', best' :: acc)
  in
  let _, reversed = List.fold_left folder (None, []) series in
  List.rev reversed

let evaluations_to_best t =
  match t.trace with
  | [] -> 0
  | trace ->
      let final = List.fold_left Float.min infinity trace in
      let threshold = final *. 1.005 in
      let rec find i = function
        | [] -> i (* unreachable for non-empty traces *)
        | x :: rest -> if x <= threshold then i else find (i + 1) rest
      in
      find 1 trace
