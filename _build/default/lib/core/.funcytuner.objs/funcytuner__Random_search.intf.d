lib/core/random_search.mli: Context Result
