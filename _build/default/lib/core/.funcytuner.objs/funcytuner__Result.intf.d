lib/core/result.mli: Ft_flags
