lib/core/context.ml: Ft_caliper Ft_flags Ft_machine Ft_prog Ft_util
