lib/core/cfr.mli: Collection Context Ft_flags Result
