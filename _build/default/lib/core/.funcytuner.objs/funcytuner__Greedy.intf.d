lib/core/greedy.mli: Collection Context Result
