lib/core/collection.ml: Array Context Float Ft_flags Ft_machine Ft_outline Ft_util List
