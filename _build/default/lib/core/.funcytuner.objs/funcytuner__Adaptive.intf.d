lib/core/adaptive.mli: Collection Context Result
