lib/core/result.ml: Float Ft_flags List
