lib/core/tuner.mli: Collection Context Ft_compiler Ft_outline Ft_prog Ft_util Greedy Lazy Result
