lib/core/random_search.ml: Array Context Ft_util Result
