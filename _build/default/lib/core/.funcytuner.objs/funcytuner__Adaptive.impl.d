lib/core/adaptive.ml: Array Cfr Collection Context Fr Ft_util List Result
