lib/core/fr.mli: Context Ft_flags Ft_outline Ft_util Result
