lib/core/greedy.ml: Array Collection Context Fr Ft_util List Result
