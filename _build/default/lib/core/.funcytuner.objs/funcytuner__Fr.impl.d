lib/core/fr.ml: Array Context Ft_machine Ft_outline Ft_util List Result
