lib/core/cfr.ml: Array Collection Context Fr Ft_util List Result
