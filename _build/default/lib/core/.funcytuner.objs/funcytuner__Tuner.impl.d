lib/core/tuner.ml: Cfr Collection Context Fr Ft_caliper Ft_machine Ft_outline Greedy Lazy List Random_search Result
