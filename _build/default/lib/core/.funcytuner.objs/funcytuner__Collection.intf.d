lib/core/collection.mli: Context Ft_flags Ft_outline
