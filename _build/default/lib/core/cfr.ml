module Rng = Ft_util.Rng

let default_top_x = 20

let pruned_pools ?(top_x = default_top_x) (collection : Collection.t) =
  Array.to_list collection.Collection.modules
  |> List.map (fun m -> (m, Collection.top_k_for collection m top_x))

let run ?(top_x = default_top_x) (ctx : Context.t)
    (collection : Collection.t) =
  let rng = Context.stream ctx "cfr" in
  let pools = pruned_pools ~top_x collection in
  let k = Array.length ctx.Context.pool in
  let best = ref None in
  let times = ref [] in
  for _ = 1 to k do
    (* Line 15: re-sample each module's CV inside its pruned space. *)
    let assignment =
      List.map (fun (m, pool) -> (m, Rng.choose rng pool)) pools
    in
    let t =
      Fr.measure_assignment ctx collection.Collection.outline ~rng assignment
    in
    times := t :: !times;
    match !best with
    | Some (best_t, _) when best_t <= t -> ()
    | _ -> best := Some (t, assignment)
  done;
  let best_seconds, configuration =
    match !best with
    | Some (_, a) ->
        ( Fr.evaluate_assignment ctx collection.Collection.outline a,
          Result.Per_module a )
    | None -> invalid_arg "Cfr.run: empty pool"
  in
  Result.make ~algorithm:"CFR" ~configuration
    ~baseline_s:ctx.Context.baseline_s ~evaluations:k
    ~trace:(Result.best_so_far (List.rev !times))
    ~best_seconds
