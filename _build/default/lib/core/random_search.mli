(** Per-program random search (§2.2.1, Fig. 2) — the classical reference.

    Does not modify the program: every pre-sampled CV compiles {e all}
    source files (step 2), all K code variants are executed (step 3), and
    the fastest wins.  Search-space size is C0 = |COS|. *)

val run : Context.t -> Result.t
(** Evaluate the whole pool; K timed runs. *)
