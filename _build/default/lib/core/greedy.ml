type t = {
  realized : Result.t;
  independent_seconds : float;
  independent_speedup : float;
}

let run (ctx : Context.t) (collection : Collection.t) =
  let modules = Array.to_list collection.Collection.modules in
  let assignment =
    List.map (fun m -> (m, Collection.best_cv_for collection m)) modules
  in
  let seconds =
    Fr.evaluate_assignment ctx collection.Collection.outline assignment
  in
  let realized =
    Result.make ~algorithm:"G.realized"
      ~configuration:(Result.Per_module assignment)
      ~baseline_s:ctx.Context.baseline_s ~evaluations:1 ~trace:[ seconds ]
      ~best_seconds:seconds
  in
  let independent_seconds =
    Array.fold_left
      (fun acc row -> acc +. row.(Ft_util.Stats.argmin row))
      0.0 collection.Collection.times
  in
  {
    realized;
    independent_seconds;
    independent_speedup = ctx.Context.baseline_s /. independent_seconds;
  }
