let run (ctx : Context.t) =
  let rng = Context.stream ctx "random" in
  let times =
    Array.map (fun cv -> Context.measure_uniform ctx ~rng cv) ctx.Context.pool
  in
  let best = Ft_util.Stats.argmin times in
  Result.make ~algorithm:"Random"
    ~configuration:(Result.Whole_program ctx.Context.pool.(best))
    ~baseline_s:ctx.Context.baseline_s
    ~evaluations:(Array.length times)
    ~trace:(Result.best_so_far (Array.to_list times))
    ~best_seconds:(Context.evaluate_uniform ctx ctx.Context.pool.(best))
