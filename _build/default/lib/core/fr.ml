module Outline = Ft_outline.Outline
module Exec = Ft_machine.Exec
module Rng = Ft_util.Rng

let measure_assignment (ctx : Context.t) outline ~rng assignment =
  let binary =
    Outline.compile ~toolchain:ctx.Context.toolchain outline
      ~assignment:(fun name -> List.assoc name assignment)
      ()
  in
  let m =
    Exec.measure ~arch:ctx.Context.toolchain.Ft_machine.Toolchain.arch
      ~input:ctx.Context.input ~rng binary
  in
  m.Exec.elapsed_s

let evaluate_assignment (ctx : Context.t) outline assignment =
  let binary =
    Outline.compile ~toolchain:ctx.Context.toolchain outline
      ~assignment:(fun name -> List.assoc name assignment)
      ()
  in
  (Exec.evaluate ~arch:ctx.Context.toolchain.Ft_machine.Toolchain.arch
     ~input:ctx.Context.input binary)
    .Exec.total_s

let run (ctx : Context.t) outline =
  let rng = Context.stream ctx "fr" in
  let modules = Outline.module_names outline in
  let k = Array.length ctx.Context.pool in
  let best = ref None in
  let times = ref [] in
  for _ = 1 to k do
    let assignment =
      List.map (fun m -> (m, Rng.choose rng ctx.Context.pool)) modules
    in
    let t = measure_assignment ctx outline ~rng assignment in
    times := t :: !times;
    match !best with
    | Some (best_t, _) when best_t <= t -> ()
    | _ -> best := Some (t, assignment)
  done;
  let best_seconds, configuration =
    match !best with
    | Some (_, a) -> (evaluate_assignment ctx outline a, Result.Per_module a)
    | None -> invalid_arg "Fr.run: empty pool"
  in
  Result.make ~algorithm:"FR" ~configuration ~baseline_s:ctx.Context.baseline_s
    ~evaluations:k
    ~trace:(Result.best_so_far (List.rev !times))
    ~best_seconds
