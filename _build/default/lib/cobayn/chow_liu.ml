module Rng = Ft_util.Rng

type node = {
  parent : int option;
  (* P(true | parent_value); for the root only index 0 is meaningful. *)
  p_true : float array;  (* [| p when parent=false; p when parent=true |] *)
}

type t = { nodes : node array; order : int list (* topological *) }

let counts samples i j =
  (* Joint counts of (x_i, x_j) with Laplace smoothing of 1. *)
  let c = Array.make_matrix 2 2 1.0 in
  List.iter
    (fun row ->
      let a = if row.(i) then 1 else 0 and b = if row.(j) then 1 else 0 in
      c.(a).(b) <- c.(a).(b) +. 1.0)
    samples;
  c

let mutual_information samples i j =
  let c = counts samples i j in
  let total = c.(0).(0) +. c.(0).(1) +. c.(1).(0) +. c.(1).(1) in
  let p a b = c.(a).(b) /. total in
  let px a = (c.(a).(0) +. c.(a).(1)) /. total in
  let py b = (c.(0).(b) +. c.(1).(b)) /. total in
  let term a b =
    let pab = p a b in
    pab *. log (pab /. (px a *. py b))
  in
  term 0 0 +. term 0 1 +. term 1 0 +. term 1 1

let marginal samples i =
  let t =
    List.fold_left (fun acc row -> if row.(i) then acc +. 1.0 else acc) 1.0
      samples
  in
  t /. (float_of_int (List.length samples) +. 2.0)

let conditional samples ~child ~parent =
  let c = counts samples parent child in
  [|
    c.(0).(1) /. (c.(0).(0) +. c.(0).(1));
    c.(1).(1) /. (c.(1).(0) +. c.(1).(1));
  |]

let fit ~dims samples =
  (match samples with
  | [] -> invalid_arg "Chow_liu.fit: no samples"
  | rows ->
      if List.exists (fun r -> Array.length r <> dims) rows then
        invalid_arg "Chow_liu.fit: ragged sample rows");
  (* Prim's algorithm on the complete MI graph, rooted at variable 0. *)
  let in_tree = Array.make dims false in
  let parent = Array.make dims None in
  let best_gain = Array.make dims neg_infinity in
  let order = ref [ 0 ] in
  in_tree.(0) <- true;
  Array.iteri
    (fun j _ ->
      if j <> 0 then begin
        best_gain.(j) <- mutual_information samples 0 j;
        parent.(j) <- Some 0
      end)
    in_tree;
  for _ = 2 to dims do
    (* Attach the out-of-tree variable with maximal MI to the tree. *)
    let next = ref (-1) in
    Array.iteri
      (fun j inside ->
        if (not inside) && (!next < 0 || best_gain.(j) > best_gain.(!next))
        then next := j)
      in_tree;
    let j = !next in
    in_tree.(j) <- true;
    order := j :: !order;
    Array.iteri
      (fun k inside ->
        if not inside then
          let mi = mutual_information samples j k in
          if mi > best_gain.(k) then begin
            best_gain.(k) <- mi;
            parent.(k) <- Some j
          end)
      in_tree
  done;
  let nodes =
    Array.init dims (fun i ->
        match parent.(i) with
        | None ->
            let p = marginal samples i in
            { parent = None; p_true = [| p; p |] }
        | Some p ->
            { parent = Some p; p_true = conditional samples ~child:i ~parent:p })
  in
  { nodes; order = List.rev !order }

let sample t rng =
  let dims = Array.length t.nodes in
  let values = Array.make dims false in
  List.iter
    (fun i ->
      let node = t.nodes.(i) in
      let p =
        match node.parent with
        | None -> node.p_true.(0)
        | Some parent -> node.p_true.(if values.(parent) then 1 else 0)
      in
      values.(i) <- Rng.float rng 1.0 < p)
    t.order;
  values

let log_likelihood t values =
  let acc = ref 0.0 in
  List.iter
    (fun i ->
      let node = t.nodes.(i) in
      let p =
        match node.parent with
        | None -> node.p_true.(0)
        | Some parent -> node.p_true.(if values.(parent) then 1 else 0)
      in
      acc := !acc +. log (if values.(i) then p else 1.0 -. p))
    t.order;
  !acc

let edges t =
  Array.to_list t.nodes
  |> List.mapi (fun i node -> (i, node.parent))
  |> List.filter_map (fun (i, p) ->
         match p with Some parent -> Some (parent, i) | None -> None)
