(** Chow–Liu tree Bayesian networks over binary flag vectors.

    COBAYN's inference engine is a Bayesian network over (binarized)
    compiler flags.  The Chow–Liu construction finds the best
    tree-structured approximation of the joint distribution: compute the
    pairwise mutual information of every flag pair from the training
    samples, take a maximum spanning tree, root it, and fit the
    conditional tables P(child | parent) with Laplace smoothing.
    Ancestral sampling then draws flag assignments that follow the
    correlations good configurations exhibited in training. *)

type t

val fit : dims:int -> bool array list -> t
(** [fit ~dims samples] learns a tree over [dims] binary variables.
    @raise Invalid_argument on an empty sample list or ragged rows. *)

val sample : t -> Ft_util.Rng.t -> bool array
(** One ancestral sample (root marginal, then children conditionally). *)

val log_likelihood : t -> bool array -> float
(** Log-probability of an assignment under the fitted tree (for tests and
    model comparison). *)

val edges : t -> (int * int) list
(** The learned tree's (parent, child) edges, for inspection. *)

val mutual_information : bool array list -> int -> int -> float
(** Empirical MI (nats, Laplace-smoothed) between two columns — the
    quantity the spanning tree maximizes; exposed for tests. *)
