(** Expectation–maximization for diagonal-covariance Gaussian mixtures.

    COBAYN groups training programs in feature space with an EM-fitted
    mixture model before learning one Bayesian network per component.
    This is that clustering: k diagonal Gaussians fitted by EM from a
    k-means-style initialization, with variance flooring for stability on
    small corpora (30 programs).  [responsibility]-based hard assignment
    is exposed for the model, soft responsibilities for tests. *)

type t

val fit :
  ?iterations:int ->
  ?variance_floor:float ->
  k:int ->
  rng:Ft_util.Rng.t ->
  float array list ->
  t
(** Fit a [k]-component mixture (k is clamped to the sample count).
    Defaults: 40 EM iterations, variance floor 1e-4.
    @raise Invalid_argument on an empty sample list or ragged rows. *)

val components : t -> int
val means : t -> float array array
val weights : t -> float array

val responsibilities : t -> float array -> float array
(** Posterior component probabilities for a point (sums to 1). *)

val assign : t -> float array -> int
(** Hard assignment: argmax responsibility. *)

val log_likelihood : t -> float array -> float
(** Log density of a point under the mixture. *)
