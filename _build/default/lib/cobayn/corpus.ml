open Ft_prog
module Rng = Ft_util.Rng

(* Template distributions per cBench domain.  Each field is (low, high)
   for a uniform draw. *)
type template = {
  domain : string;
  flops : float * float;
  bytes : float * float;
  gather_frac : float * float;  (* of total bytes *)
  divergence : float * float;
  predictability : float * float;
  dep : float * float;
  body : int * int;
  alias : float * float;
  reduction_p : float;
}

let templates =
  [
    ( "crypto",
      {
        domain = "Cryptography";
        flops = (24.0, 60.0);
        bytes = (16.0, 40.0);
        gather_frac = (0.1, 0.4);
        divergence = (0.0, 0.2);
        predictability = (0.8, 0.99);
        dep = (2.0, 6.0);
        body = (40, 120);
        alias = (0.1, 0.5);
        reduction_p = 0.1;
      } );
    ( "codec",
      {
        domain = "Media codec";
        flops = (20.0, 80.0);
        bytes = (32.0, 96.0);
        gather_frac = (0.0, 0.3);
        divergence = (0.2, 0.6);
        predictability = (0.6, 0.95);
        dep = (0.0, 3.0);
        body = (30, 100);
        alias = (0.2, 0.7);
        reduction_p = 0.15;
      } );
    ( "sort_search",
      {
        domain = "Sorting / searching";
        flops = (4.0, 16.0);
        bytes = (16.0, 48.0);
        gather_frac = (0.3, 0.7);
        divergence = (0.4, 0.8);
        predictability = (0.5, 0.9);
        dep = (0.0, 2.0);
        body = (16, 48);
        alias = (0.3, 0.8);
        reduction_p = 0.2;
      } );
    ( "dsp",
      {
        domain = "Signal processing";
        flops = (30.0, 110.0);
        bytes = (24.0, 64.0);
        gather_frac = (0.0, 0.15);
        divergence = (0.0, 0.15);
        predictability = (0.85, 0.99);
        dep = (0.0, 4.0);
        body = (24, 90);
        alias = (0.05, 0.4);
        reduction_p = 0.4;
      } );
    ( "string",
      {
        domain = "String processing";
        flops = (2.0, 10.0);
        bytes = (8.0, 32.0);
        gather_frac = (0.1, 0.5);
        divergence = (0.3, 0.7);
        predictability = (0.5, 0.85);
        dep = (0.0, 2.0);
        body = (12, 40);
        alias = (0.4, 0.9);
        reduction_p = 0.1;
      } );
  ]

let names =
  [
    ("bitcount", "sort_search");
    ("qsort1", "sort_search");
    ("dijkstra", "sort_search");
    ("patricia", "sort_search");
    ("stringsearch", "string");
    ("ispell_kernel", "string");
    ("rsynth_kernel", "string");
    ("ghostscript_kernel", "string");
    ("blowfish_e", "crypto");
    ("blowfish_d", "crypto");
    ("rijndael_e", "crypto");
    ("rijndael_d", "crypto");
    ("sha", "crypto");
    ("crc32", "crypto");
    ("pgp_kernel", "crypto");
    ("adpcm_c", "codec");
    ("adpcm_d", "codec");
    ("gsm_toast", "codec");
    ("jpeg_c", "codec");
    ("jpeg_d", "codec");
    ("lame_kernel", "codec");
    ("mad_kernel", "codec");
    ("tiff2bw", "codec");
    ("tiffdither", "codec");
    ("bzip2_c", "codec");
    ("bzip2_d", "codec");
    ("susan_corners", "dsp");
    ("susan_edges", "dsp");
    ("fft", "dsp");
    ("basicmath", "dsp");
  ]

let range rng (lo, hi) = lo +. Rng.float rng (hi -. lo)
let irange rng (lo, hi) = lo + Rng.int rng (max 1 (hi - lo))

let make_loop rng template index =
  let total_bytes = range rng template.bytes in
  let gather = total_bytes *. range rng template.gather_frac in
  let contiguous = total_bytes -. gather in
  let features =
    {
      Feature.flops_per_iter = range rng template.flops;
      fma_fraction = range rng (0.0, 0.6);
      read_bytes = contiguous *. 0.75;
      write_bytes = contiguous *. 0.25;
      strided_bytes = 0.0;
      gather_bytes = gather;
      divergence = range rng template.divergence;
      branch_predictability = range rng template.predictability;
      dep_chain = range rng template.dep;
      reduction = Rng.float rng 1.0 < template.reduction_p;
      alias_ambiguity = range rng template.alias;
      calls_per_iter = range rng (0.0, 0.8);
      body_insns = irange rng template.body;
      nest_depth = 1 + Rng.int rng 2;
      working_set_kb = range rng (64.0, 4096.0);
      trip_count = 50_000.0 +. Rng.float rng 400_000.0;
      invocations = 1.0 +. Rng.float rng 8.0;
      parallel = false (* cBench is serial *);
    }
  in
  Loop.make (Printf.sprintf "kernel%d" index) features

let make_program rng (name, template_key) =
  let template =
    List.assoc template_key templates
  in
  let loop_count = 1 + Rng.int rng 3 in
  let loops = List.init loop_count (make_loop rng template) in
  let nonloop =
    Loop.make "<nonloop>"
      {
        Feature.default with
        flops_per_iter = 10.0;
        read_bytes = 24.0;
        write_bytes = 8.0;
        divergence = 0.3;
        branch_predictability = 0.8;
        alias_ambiguity = 0.7;
        calls_per_iter = 1.0;
        body_insns = 150;
        working_set_kb = 512.0;
        trip_count = 100_000.0;
        parallel = false;
      }
  in
  Program.make ~name ~language:Program.C ~loc:(500 + Rng.int rng 20_000)
    ~domain:template.domain ~reference_size:1.0 ~nonloop loops

let programs ~seed =
  let rng = Rng.create seed in
  List.map (fun spec -> make_program (Rng.of_label rng (fst spec)) spec) names

let input_for (_ : Program.t) = Input.make ~label:"cbench" ~size:1.0 ~steps:1 ()
