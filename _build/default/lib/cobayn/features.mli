(** Program characterization features for COBAYN (§4.2.1).

    COBAYN describes a program with Milepost-GCC {e static} features and
    MICA {e dynamic} features and feeds them to a Bayesian network.  The
    equivalents here:

    - {b static}: aggregates over the whole program model (body sizes, loop
      counts, memory/compute mix, branch and call densities, nest depth,
      aliasing) — information a compiler pass can read off the IR;
    - {b dynamic}: microarchitecture-independent execution characteristics
      (ILP, memory intensity, mispredict rate, footprint) gathered from an
      instrumented {e serial} run.  MICA instruments serial code only, so
      for OpenMP programs the sample covers just the serial regions — a
      faithful reproduction of why the paper's dynamic and hybrid COBAYN
      models underperform on parallel benchmarks (§4.2.2 observation 2). *)

val static_dims : int
(** 12 *)

val dynamic_dims : int
(** 6 *)

val static_features : Ft_prog.Program.t -> float array
(** Static (Milepost-style) characterization; length {!static_dims}. *)

val dynamic_features : Ft_prog.Program.t -> float array
(** Dynamic (MICA-style) characterization from the serial portion only;
    length {!dynamic_dims}. *)

type variant = Static | Dynamic | Hybrid

val variant_name : variant -> string
(** ["static"], ["dynamic"], ["hybrid"]. *)

val extract : variant -> Ft_prog.Program.t -> float array
(** The feature vector for a model variant (hybrid = static @ dynamic). *)
