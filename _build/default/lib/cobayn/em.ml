module Rng = Ft_util.Rng

type t = {
  weights : float array;  (* mixing proportions *)
  mu : float array array;  (* component means *)
  var : float array array;  (* diagonal variances *)
}

let components t = Array.length t.weights
let means t = t.mu
let weights t = t.weights

let log_gaussian ~mu ~var x =
  let acc = ref 0.0 in
  Array.iteri
    (fun d m ->
      let v = var.(d) in
      let diff = x.(d) -. m in
      acc := !acc -. (0.5 *. (log (2.0 *. Float.pi *. v) +. (diff *. diff /. v))))
    mu;
  !acc

let log_sum_exp xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

let component_logs t x =
  Array.init (components t) (fun c ->
      log t.weights.(c) +. log_gaussian ~mu:t.mu.(c) ~var:t.var.(c) x)

let log_likelihood t x = log_sum_exp (component_logs t x)

let responsibilities t x =
  let logs = component_logs t x in
  let z = log_sum_exp logs in
  Array.map (fun l -> exp (l -. z)) logs

let assign t x =
  let r = responsibilities t x in
  let best = ref 0 in
  Array.iteri (fun c p -> if p > r.(!best) then best := c) r;
  !best

let fit ?(iterations = 40) ?(variance_floor = 1e-4) ~k ~rng samples =
  (match samples with
  | [] -> invalid_arg "Em.fit: no samples"
  | first :: rest ->
      let dims = Array.length first in
      if List.exists (fun r -> Array.length r <> dims) rest then
        invalid_arg "Em.fit: ragged sample rows");
  let data = Array.of_list samples in
  let n = Array.length data in
  let dims = Array.length data.(0) in
  let k = max 1 (min k n) in
  (* Initialize means on spread-out samples, unit variances, uniform
     weights. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let model =
    {
      weights = Array.make k (1.0 /. float_of_int k);
      mu = Array.init k (fun c -> Array.copy data.(order.(c * n / k)));
      var = Array.init k (fun _ -> Array.make dims 1.0);
    }
  in
  let resp = Array.make_matrix n k 0.0 in
  for _ = 1 to iterations do
    (* E step *)
    Array.iteri
      (fun i x ->
        let r = responsibilities model x in
        Array.blit r 0 resp.(i) 0 k)
      data;
    (* M step *)
    for c = 0 to k - 1 do
      let nc = ref 1e-9 in
      for i = 0 to n - 1 do
        nc := !nc +. resp.(i).(c)
      done;
      model.weights.(c) <- !nc /. float_of_int n;
      for d = 0 to dims - 1 do
        let mean = ref 0.0 in
        for i = 0 to n - 1 do
          mean := !mean +. (resp.(i).(c) *. data.(i).(d))
        done;
        let mean = !mean /. !nc in
        model.mu.(c).(d) <- mean;
        let var = ref 0.0 in
        for i = 0 to n - 1 do
          let diff = data.(i).(d) -. mean in
          var := !var +. (resp.(i).(c) *. diff *. diff)
        done;
        model.var.(c).(d) <- Float.max variance_floor (!var /. !nc)
      done
    done
  done;
  model
