(** A synthetic cBench-like training corpus.

    COBAYN is trained on cBench (Fursin's shared autotuning kernels):
    small {e serial} C programs — crypto, codecs, sorting, DSP, string
    processing.  This module generates 30 program models with matching
    names and per-domain feature distributions, deterministically from a
    seed.  All loops are serial (cBench predates OpenMP), so MICA-style
    dynamic features are informative {e on the corpus} — and misleading on
    the paper's OpenMP benchmarks, exactly as published. *)

val programs : seed:int -> Ft_prog.Program.t list
(** The 30 corpus programs. *)

val input_for : Ft_prog.Program.t -> Ft_prog.Input.t
(** The (small) evaluation input used during training. *)
