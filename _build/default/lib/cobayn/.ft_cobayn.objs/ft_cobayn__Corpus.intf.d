lib/cobayn/corpus.mli: Ft_prog
