lib/cobayn/corpus.ml: Feature Ft_prog Ft_util Input List Loop Printf Program
