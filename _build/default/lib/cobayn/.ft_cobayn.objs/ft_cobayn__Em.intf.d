lib/cobayn/em.mli: Ft_util
