lib/cobayn/chow_liu.ml: Array Ft_util List
