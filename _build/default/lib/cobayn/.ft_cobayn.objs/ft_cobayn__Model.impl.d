lib/cobayn/model.ml: Array Chow_liu Corpus Em Features Float Ft_flags Ft_machine Ft_util Funcytuner List Printf
