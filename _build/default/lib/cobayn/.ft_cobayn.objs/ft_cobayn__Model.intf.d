lib/cobayn/model.mli: Features Ft_flags Ft_machine Ft_prog Ft_util Funcytuner
