lib/cobayn/features.mli: Ft_prog
