lib/cobayn/em.ml: Array Float Ft_util List
