lib/cobayn/chow_liu.mli: Ft_util
