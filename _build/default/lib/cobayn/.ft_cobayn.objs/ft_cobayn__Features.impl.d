lib/cobayn/features.ml: Array Feature Float Ft_prog List Loop Program
