(** The COBAYN pipeline: train on cBench, infer flags for a new program
    (§4.2.1).

    Training: every corpus program is compiled with 1000 random binarized
    CVs and executed; the top 100 CVs per program become its "good
    configuration" sample (exactly the paper's protocol).  Programs are
    clustered in feature space by an EM-fitted Gaussian mixture ({!Em},
    as in the COBAYN paper), and each component gets its own
    Chow–Liu-tree Bayesian network over the 33 binarized flags.

    Inference: extract the target's features, find the nearest cluster,
    draw 1000 CVs from its network, compile + run each on the target, and
    report the fastest — so COBAYN spends the same 1000-evaluation budget
    as the other comparators, but spends it on a {e learned} distribution
    instead of a uniform one. *)

type t

val train :
  toolchain:Ft_machine.Toolchain.t ->
  variant:Features.variant ->
  ?clusters:int ->
  ?corpus_seed:int ->
  ?top:int ->
  ?samples_per_program:int ->
  unit ->
  t
(** Defaults: 3 clusters, corpus seed 2019, top 100 of 1000 samples. *)

val variant : t -> Features.variant
val cluster_count : t -> int

val nearest_cluster : t -> Ft_prog.Program.t -> int
(** The mixture component most responsible for the program's (normalized)
    features. *)

val sample_cv : t -> cluster:int -> Ft_util.Rng.t -> Ft_flags.Cv.t
(** One CV drawn from a cluster's Bayesian network. *)

val tune : t -> Funcytuner.Context.t -> Funcytuner.Result.t
(** Full inference on a tuning session (1000 evaluations); the result's
    algorithm is ["COBAYN(<variant>)"]. *)
