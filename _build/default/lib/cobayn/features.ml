open Ft_prog

let static_dims = 12
let dynamic_dims = 6

let all_regions (p : Program.t) = p.Program.nonloop :: p.Program.loops

let mean_by f xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left (fun acc x -> acc +. f x) 0.0 xs
         /. float_of_int (List.length xs)

let static_features (p : Program.t) =
  let loops = List.map (fun (l : Loop.t) -> l.Loop.features) p.Program.loops in
  let every =
    List.map (fun (l : Loop.t) -> l.Loop.features)
      (all_regions p)
  in
  let mem f = mean_by f loops in
  [|
    mem (fun f -> float_of_int f.Feature.body_insns);
    float_of_int (List.length loops);
    mem (fun f ->
        Feature.bytes_per_iter f /. Float.max 1.0 f.Feature.flops_per_iter);
    mem (fun f -> f.Feature.divergence);
    mean_by (fun f -> f.Feature.calls_per_iter) every;
    mem (fun f -> float_of_int f.Feature.nest_depth);
    mem (fun f ->
        f.Feature.strided_bytes /. Float.max 1.0 (Feature.bytes_per_iter f));
    mem (fun f ->
        f.Feature.gather_bytes /. Float.max 1.0 (Feature.bytes_per_iter f));
    mem (fun f -> if f.Feature.reduction then 1.0 else 0.0);
    mem (fun f -> f.Feature.alias_ambiguity);
    mem (fun f -> log10 (Float.max 1.0 f.Feature.trip_count));
    mem (fun f -> if f.Feature.parallel then 1.0 else 0.0);
  |]

let dynamic_features (p : Program.t) =
  (* MICA instruments serial execution only: for an OpenMP code the sample
     is the serial regions, which rarely resemble the hot loops. *)
  let serial =
    all_regions p
    |> List.map (fun (l : Loop.t) -> l.Loop.features)
    |> List.filter (fun f -> not f.Feature.parallel)
  in
  let sample =
    match serial with
    | [] -> [ p.Program.nonloop.Loop.features ]
    | s -> s
  in
  let m f = mean_by f sample in
  [|
    m (fun f -> 1.0 /. (1.0 +. f.Feature.dep_chain)) (* ILP proxy *);
    m (fun f ->
        Feature.bytes_per_iter f /. Float.max 1.0 f.Feature.flops_per_iter);
    m (fun f -> f.Feature.divergence *. (1.0 -. f.Feature.branch_predictability));
    m (fun f -> log10 (Float.max 1.0 f.Feature.working_set_kb));
    m (fun f -> f.Feature.flops_per_iter /. float_of_int f.Feature.body_insns);
    m (fun f -> f.Feature.calls_per_iter);
  |]

type variant = Static | Dynamic | Hybrid

let variant_name = function
  | Static -> "static"
  | Dynamic -> "dynamic"
  | Hybrid -> "hybrid"

let extract variant p =
  match variant with
  | Static -> static_features p
  | Dynamic -> dynamic_features p
  | Hybrid -> Array.append (static_features p) (dynamic_features p)
