lib/util/stats.mli:
