lib/util/rng.mli:
