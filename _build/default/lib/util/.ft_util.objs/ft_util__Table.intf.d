lib/util/table.mli:
