type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells =
  let n_head = List.length t.headers and n = List.length cells in
  if n > n_head then invalid_arg "Table.add_row: more cells than headers";
  let padded =
    if n = n_head then cells else cells @ List.init (n_head - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = '%' || c = 'x' || c = 'e')
       s

let render t =
  let rows = List.rev t.rows in
  let cells_of = function Cells c -> c | Separator -> [] in
  let all_cells = t.headers :: List.filter_map
    (function Cells c -> Some c | Separator -> None) rows in
  let n_cols = List.length t.headers in
  let widths = Array.make n_cols 0 in
  let note_widths cells =
    List.iteri
      (fun i c -> if i < n_cols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  List.iter note_widths all_cells;
  (* Right-align a column iff every non-empty body cell looks numeric. *)
  let numeric = Array.make n_cols true in
  List.iter
    (fun r ->
      List.iteri
        (fun i c ->
          if i < n_cols && c <> "" && not (looks_numeric c) then
            numeric.(i) <- false)
        (cells_of r))
    rows;
  let pad i c =
    let w = widths.(i) in
    let len = String.length c in
    if len >= w then c
    else if numeric.(i) then String.make (w - len) ' ' ^ c
    else c ^ String.make (w - len) ' '
  in
  let line ch =
    let segments = Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths) in
    "+" ^ String.concat "+" segments ^ "+"
  in
  let render_cells cells =
    let padded = List.mapi (fun i c -> " " ^ pad i c ^ " ") cells in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (line '-' ^ "\n");
  Buffer.add_string buf (render_cells t.headers ^ "\n");
  Buffer.add_string buf (line '=' ^ "\n");
  List.iter
    (fun r ->
      match r with
      | Separator -> Buffer.add_string buf (line '-' ^ "\n")
      | Cells c -> Buffer.add_string buf (render_cells c ^ "\n"))
    rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_f ?(digits = 3) v = Printf.sprintf "%.*f" digits v

let fmt_pct ratio =
  let pct = (ratio -. 1.0) *. 100.0 in
  Printf.sprintf "%+.1f%%" pct

let bar ?(width = 40) ?(scale = 1.5) v =
  let v = if v < 0.0 then 0.0 else v in
  let n = int_of_float (Float.round (v /. scale *. float_of_int width)) in
  let n = min n width in
  String.make n '#'
