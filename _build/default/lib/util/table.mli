(** Plain-text table and bar-chart rendering for the experiment harness.

    The benchmark harness regenerates every paper table and figure as text:
    tables print aligned columns, figures print one row per (benchmark,
    algorithm) series with an optional ASCII bar so the "who wins" shape is
    visible at a glance in a terminal log. *)

type t
(** An in-progress table: a header plus accumulated rows. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append one row.  Rows shorter than the header are padded with [""];
    longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule (rendered between row groups). *)

val render : t -> string
(** Render with box-drawing rules and per-column alignment (numeric-looking
    cells right-aligned, text left-aligned). *)

val print : t -> unit
(** [render] then [print_string] with a trailing newline. *)

val fmt_f : ?digits:int -> float -> string
(** Fixed-point float formatting (default 3 digits), for table cells. *)

val fmt_pct : float -> string
(** Format a speedup ratio as a signed percentage over baseline, e.g.
    [fmt_pct 1.093 = "+9.3%"]. *)

val bar : ?width:int -> ?scale:float -> float -> string
(** [bar v] renders a horizontal bar proportional to [v] (default 1.0 maps to
    [width/scale] characters), used for figure-style output. *)
