(** The Caliper source-annotation API, against a virtual clock.

    This mirrors the programming model of Caliper's C API
    ([cali_begin_region] / [cali_end_region]): regions nest, and each
    region accumulates the (virtual) time spent between its begin and end
    marks.  The simulator's binaries are annotated implicitly — the machine
    model reports per-region times directly — but the explicit API is kept
    for programs modelled at a finer grain (see the quickstart example) and
    to document what "instrumentation" means in this reproduction.

    Time is virtual: the caller advances the clock explicitly, so tests and
    examples are deterministic. *)

type t
(** A Caliper context: a region stack plus accumulated inclusive times. *)

val create : unit -> t
(** Fresh context with an empty stack and the clock at 0. *)

val begin_region : t -> string -> unit
(** Push a region.  Mirrors [CALI_MARK_BEGIN]. *)

val end_region : t -> string -> unit
(** Pop a region.  @raise Invalid_argument if [name] is not the innermost
    open region (mismatched nesting is a bug in the annotated program). *)

val advance : t -> float -> unit
(** Advance the virtual clock by a number of seconds; the elapsed time is
    attributed to every currently open region (inclusive semantics).
    @raise Invalid_argument on negative durations. *)

val with_region : t -> string -> (unit -> 'a) -> 'a
(** [with_region t name f] brackets [f] with begin/end, exception-safe. *)

val inclusive_s : t -> string -> float
(** Total inclusive time attributed to a region name (0 if never opened). *)

val open_regions : t -> string list
(** Currently open regions, innermost first. *)

val to_report : total_s:float -> t -> Report.t
(** Package the accumulated top-level region times as a {!Report.t}. *)
