module Toolchain = Ft_machine.Toolchain
module Exec = Ft_machine.Exec

let default_hot_threshold = 0.01

let run ~toolchain ~program ~input ?(cv = Ft_flags.Cv.o3) ~rng () =
  let binary =
    Toolchain.compile_uniform toolchain ~cv ~instrumented:true program
  in
  let m =
    Exec.measure ~arch:toolchain.Toolchain.arch ~input ~rng binary
  in
  Report.of_measurement m

let baseline_seconds ~toolchain ~program ~input =
  let binary =
    Toolchain.compile_uniform toolchain ~cv:Ft_flags.Cv.o3 program
  in
  let run = Exec.evaluate ~arch:toolchain.Toolchain.arch ~input binary in
  run.Exec.total_s
