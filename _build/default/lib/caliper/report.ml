type t = { total_s : float; loop_s : (string * float) list }

let of_measurement (m : Ft_machine.Exec.measurement) =
  { total_s = m.Ft_machine.Exec.elapsed_s; loop_s = m.Ft_machine.Exec.region_samples }

let loop_time t name = List.assoc_opt name t.loop_s

let other_s t =
  let loops = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.loop_s in
  Float.max 0.0 (t.total_s -. loops)

let ratio t name =
  match loop_time t name with
  | None -> None
  | Some s -> if t.total_s > 0.0 then Some (s /. t.total_s) else None

let hot_loops ~threshold t =
  let shares =
    List.filter_map
      (fun (name, s) ->
        let r = if t.total_s > 0.0 then s /. t.total_s else 0.0 in
        if r >= threshold then Some (name, r) else None)
      t.loop_s
  in
  shares
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "total: %.3f s\n" t.total_s);
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) t.loop_s in
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %8.3f s  %5.1f%%\n" name s
           (100.0 *. s /. t.total_s)))
    sorted;
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %8.3f s  %5.1f%%\n" "<other>" (other_s t)
       (100.0 *. other_s t /. t.total_s));
  Buffer.contents buf
