lib/caliper/annotation.mli: Report
