lib/caliper/profiler.ml: Ft_flags Ft_machine Report
