lib/caliper/profiler.mli: Ft_flags Ft_machine Ft_prog Ft_util Report
