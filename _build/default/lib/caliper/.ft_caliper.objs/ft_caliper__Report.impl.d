lib/caliper/report.ml: Buffer Float Ft_machine List Printf
