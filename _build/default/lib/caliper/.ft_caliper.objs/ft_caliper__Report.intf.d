lib/caliper/report.mli: Ft_machine
