lib/caliper/annotation.ml: Hashtbl List Option Printf Report
