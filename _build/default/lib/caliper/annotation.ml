type t = {
  mutable stack : string list;  (* innermost first *)
  times : (string, float) Hashtbl.t;  (* inclusive seconds per region *)
}

let create () = { stack = []; times = Hashtbl.create 16 }
let begin_region t name = t.stack <- name :: t.stack

let end_region t name =
  match t.stack with
  | top :: rest when top = name -> t.stack <- rest
  | top :: _ ->
      invalid_arg
        (Printf.sprintf
           "Annotation.end_region: expected innermost region %S, got %S" top
           name)
  | [] -> invalid_arg "Annotation.end_region: no open region"

let advance t dt =
  if dt < 0.0 then invalid_arg "Annotation.advance: negative duration";
  List.iter
    (fun name ->
      let current = Option.value ~default:0.0 (Hashtbl.find_opt t.times name) in
      Hashtbl.replace t.times name (current +. dt))
    t.stack

let with_region t name f =
  begin_region t name;
  match f () with
  | result ->
      end_region t name;
      result
  | exception e ->
      end_region t name;
      raise e

let inclusive_s t name =
  Option.value ~default:0.0 (Hashtbl.find_opt t.times name)

let open_regions t = t.stack

let to_report ~total_s t =
  let loop_s =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.times []
    |> List.sort compare
  in
  { Report.total_s; loop_s }
