(** Caliper-style per-region profiling reports.

    Caliper (Boehme et al., SC'16) gives HPC codes lightweight source-level
    annotations whose per-region inclusive times are collected at runtime.
    FuncyTuner uses it twice: once on the O3 build to find hot loops worth
    outlining (§3.3), and once per sampled CV to collect the per-loop
    runtimes T[j][k] that drive space focusing (Fig. 4).

    A report holds the measured per-loop times of one run plus the derived
    non-loop remainder.  As in the paper, the non-loop time is {e not}
    measured directly — glue code is scattered across too many files — but
    obtained by subtracting the hot loops' aggregate from the end-to-end
    time. *)

type t = {
  total_s : float;  (** end-to-end wall time of the run *)
  loop_s : (string * float) list;  (** measured instrumented-loop times *)
}

val of_measurement : Ft_machine.Exec.measurement -> t
(** Package one instrumented run. *)

val loop_time : t -> string -> float option
(** Measured time of one instrumented loop. *)

val other_s : t -> float
(** Derived non-loop (plus cold-loop) time: total minus instrumented loops.
    Clamped at 0 — noise can push the subtraction marginally negative. *)

val ratio : t -> string -> float option
(** A loop's share of the end-to-end time, e.g. 0.063 for Cloverleaf's [dt]
    (Table 3). *)

val hot_loops : threshold:float -> t -> string list
(** Loops whose share is at least [threshold] (the paper uses 0.01),
    ordered by decreasing share. *)

val render : t -> string
(** Human-readable profile listing, hottest first. *)
