(** Instrumented profiling runs (the paper's §3.3 workflow).

    FuncyTuner profiles the target application compiled with
    [-O3 -qopenmp -fp-model source] and Caliper annotations, then treats
    every loop at ≥ 1 % of end-to-end time as hot. *)

val run :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  ?cv:Ft_flags.Cv.t ->
  rng:Ft_util.Rng.t ->
  unit ->
  Report.t
(** One instrumented run; [cv] defaults to the O3 baseline. *)

val baseline_seconds :
  toolchain:Ft_machine.Toolchain.t ->
  program:Ft_prog.Program.t ->
  input:Ft_prog.Input.t ->
  float
(** Noise-free, uninstrumented O3 end-to-end runtime — the paper's T_O3
    denominator for all speedups. *)

val default_hot_threshold : float
(** 0.01 — "at least 1.0 % of the baseline's end-to-end runtime". *)
