(** Benchmark inputs: a size parameter plus a number of simulated time steps.

    Scientific codes run a time-step outer loop; the paper tunes with inputs
    sized so one O3 run takes under 40 s (Table 2), and separately evaluates
    generalization to smaller / larger work sets (§4.3) and to longer runs
    (Fig. 8).  An input here is exactly that pair, plus a label for
    reporting. *)

type t = { label : string; size : float; steps : int }

val make : ?label:string -> size:float -> steps:int -> unit -> t
(** Label defaults to ["size=<size>,steps=<steps>"].
    @raise Invalid_argument if [size <= 0] or [steps <= 0]. *)

val with_steps : t -> int -> t
(** Same work set, different number of time steps (Fig. 8's axis). *)

val scale : reference:float -> t -> float
(** [scale ~reference i] = [i.size /. reference]: the factor handed to
    {!Loop.features_at}. *)
