(** Whole-program models.

    A program is a set of candidate loops plus one aggregate non-loop region
    (scattered glue code whose runtime the paper can only derive by
    subtraction, §3.3), together with Table 1 metadata.  Programs are the
    unit the compiler compiles and the machine executes; the outliner turns
    a program's hot loops into separate compilation modules. *)

type language = C | Cpp | Fortran

type t = private {
  name : string;
  language : language;
  loc : int;  (** lines of source code (Table 1) *)
  domain : string;  (** application domain (Table 1) *)
  loops : Loop.t list;  (** candidate loops, hot and cold *)
  nonloop : Loop.t;  (** the aggregate non-loop region *)
  reference_size : float;  (** the size the loop features describe *)
  pgo_instrumentable : bool;
      (** PGO instrumentation runs fail for LULESH and Optewe (§4.2.2) *)
}

val make :
  name:string ->
  language:language ->
  loc:int ->
  domain:string ->
  reference_size:float ->
  ?pgo_instrumentable:bool ->
  nonloop:Loop.t ->
  Loop.t list ->
  t
(** @raise Invalid_argument on duplicate loop names, an empty loop list, or
    a non-positive reference size. *)

val language_name : language -> string
(** ["C"], ["C++"] or ["Fortran"]. *)

val loop_count : t -> int
(** Number of candidate loops (excluding the non-loop region). *)

val find_loop : t -> string -> Loop.t option
(** Look a loop up by name ([nonloop] included, under its own name). *)

val fortran : t -> bool
(** Fortran front-ends get precise alias information for free; the
    heuristics consult this. *)
