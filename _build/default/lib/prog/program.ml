type language = C | Cpp | Fortran

type t = {
  name : string;
  language : language;
  loc : int;
  domain : string;
  loops : Loop.t list;
  nonloop : Loop.t;
  reference_size : float;
  pgo_instrumentable : bool;
}

let make ~name ~language ~loc ~domain ~reference_size
    ?(pgo_instrumentable = true) ~nonloop loops =
  if loops = [] then invalid_arg "Program.make: no loops";
  if reference_size <= 0.0 then
    invalid_arg "Program.make: reference_size must be positive";
  let names = List.map (fun (l : Loop.t) -> l.Loop.name) loops in
  let all_names = nonloop.Loop.name :: names in
  let sorted = List.sort compare all_names in
  let rec has_duplicate = function
    | a :: (b :: _ as rest) -> if a = b then true else has_duplicate rest
    | _ -> false
  in
  if has_duplicate sorted then
    invalid_arg "Program.make: duplicate loop names";
  {
    name;
    language;
    loc;
    domain;
    loops;
    nonloop;
    reference_size;
    pgo_instrumentable;
  }

let language_name = function C -> "C" | Cpp -> "C++" | Fortran -> "Fortran"
let loop_count t = List.length t.loops

let find_loop t loop_name =
  if t.nonloop.Loop.name = loop_name then Some t.nonloop
  else List.find_opt (fun (l : Loop.t) -> l.Loop.name = loop_name) t.loops

let fortran t = t.language = Fortran
