type t = Opteron | Sandy_bridge | Broadwell

let all = [ Opteron; Sandy_bridge; Broadwell ]

let name = function
  | Opteron -> "AMD Opteron"
  | Sandy_bridge -> "Intel Sandy Bridge"
  | Broadwell -> "Intel Broadwell"

let short_name = function
  | Opteron -> "opteron"
  | Sandy_bridge -> "snb"
  | Broadwell -> "bdw"

let processor = function
  | Opteron -> "Opteron 6128"
  | Sandy_bridge -> "Xeon E5-2650 0"
  | Broadwell -> "Xeon E5-2620 v4"

let processor_flag = function
  | Opteron -> "default"
  | Sandy_bridge -> "-xAVX"
  | Broadwell -> "-xCORE-AVX2"

let of_short_name = function
  | "opteron" -> Some Opteron
  | "snb" -> Some Sandy_bridge
  | "bdw" -> Some Broadwell
  | _ -> None
