type t = {
  name : string;
  features : Feature.t;
  trip_exponent : float;
  ws_exponent : float;
}

let make ?(trip_exponent = 1.0) ?(ws_exponent = 1.0) name features =
  (match Feature.validate features with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Loop.make %s: %s" name msg));
  { name; features; trip_exponent; ws_exponent }

let features_at ~scale t =
  let f = t.features in
  {
    f with
    Feature.trip_count = f.Feature.trip_count *. (scale ** t.trip_exponent);
    working_set_kb = f.Feature.working_set_kb *. (scale ** t.ws_exponent);
  }
