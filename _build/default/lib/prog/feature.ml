type t = {
  flops_per_iter : float;
  fma_fraction : float;
  read_bytes : float;
  write_bytes : float;
  strided_bytes : float;
  gather_bytes : float;
  divergence : float;
  branch_predictability : float;
  dep_chain : float;
  reduction : bool;
  alias_ambiguity : float;
  calls_per_iter : float;
  body_insns : int;
  nest_depth : int;
  working_set_kb : float;
  trip_count : float;
  invocations : float;
  parallel : bool;
}

let default =
  {
    flops_per_iter = 8.0;
    fma_fraction = 0.5;
    read_bytes = 32.0;
    write_bytes = 8.0;
    strided_bytes = 0.0;
    gather_bytes = 0.0;
    divergence = 0.0;
    branch_predictability = 0.9;
    dep_chain = 0.0;
    reduction = false;
    alias_ambiguity = 0.2;
    calls_per_iter = 0.0;
    body_insns = 40;
    nest_depth = 1;
    working_set_kb = 256.0;
    trip_count = 10_000.0;
    invocations = 1.0;
    parallel = true;
  }

let validate t =
  let fraction name v =
    if v < 0.0 || v > 1.0 then Error (name ^ " outside [0,1]") else Ok ()
  in
  let non_negative name v =
    if v < 0.0 then Error (name ^ " negative") else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = fraction "fma_fraction" t.fma_fraction in
  let* () = fraction "divergence" t.divergence in
  let* () = fraction "branch_predictability" t.branch_predictability in
  let* () = fraction "alias_ambiguity" t.alias_ambiguity in
  let* () = non_negative "flops_per_iter" t.flops_per_iter in
  let* () = non_negative "read_bytes" t.read_bytes in
  let* () = non_negative "write_bytes" t.write_bytes in
  let* () = non_negative "strided_bytes" t.strided_bytes in
  let* () = non_negative "gather_bytes" t.gather_bytes in
  let* () = non_negative "dep_chain" t.dep_chain in
  let* () = non_negative "calls_per_iter" t.calls_per_iter in
  let* () = non_negative "working_set_kb" t.working_set_kb in
  let* () = non_negative "invocations" t.invocations in
  if t.trip_count <= 0.0 then Error "trip_count must be positive"
  else if t.body_insns <= 0 then Error "body_insns must be positive"
  else if t.nest_depth <= 0 then Error "nest_depth must be positive"
  else Ok ()

let bytes_per_iter t =
  t.read_bytes +. t.write_bytes +. t.strided_bytes +. t.gather_bytes

let vector_hostility t =
  let mem = bytes_per_iter t in
  let gather_share = if mem > 0.0 then t.gather_bytes /. mem else 0.0 in
  let dep_term =
    if t.reduction then 0.2 else min 1.0 (t.dep_chain /. 8.0)
  in
  t.divergence +. gather_share +. dep_term
