type t = { label : string; size : float; steps : int }

let make ?label ~size ~steps () =
  if size <= 0.0 then invalid_arg "Input.make: size must be positive";
  if steps <= 0 then invalid_arg "Input.make: steps must be positive";
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "size=%g,steps=%d" size steps
  in
  { label; size; steps }

let with_steps t steps =
  make ~label:(Printf.sprintf "%s/steps=%d" t.label steps) ~size:t.size ~steps
    ()

let scale ~reference t = t.size /. reference
