lib/prog/loop.ml: Feature Printf
