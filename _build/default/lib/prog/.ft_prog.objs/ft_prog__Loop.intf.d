lib/prog/loop.mli: Feature
