lib/prog/feature.ml: Result
