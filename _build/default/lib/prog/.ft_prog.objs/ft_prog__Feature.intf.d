lib/prog/feature.mli:
