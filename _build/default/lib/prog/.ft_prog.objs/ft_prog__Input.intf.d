lib/prog/input.mli:
