lib/prog/platform.ml:
