lib/prog/platform.mli:
