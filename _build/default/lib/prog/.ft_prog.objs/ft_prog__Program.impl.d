lib/prog/program.ml: List Loop
