lib/prog/program.mli: Loop
