lib/prog/input.ml: Printf
