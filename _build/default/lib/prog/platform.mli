(** The three evaluation platforms of the paper (Table 2).

    The variant lives in [ft_prog] (not in the machine model) because
    benchmark inputs are keyed by platform too: the paper sizes every
    benchmark per machine so a single O3 run stays under 40 s. *)

type t = Opteron | Sandy_bridge | Broadwell

val all : t list
(** In the paper's order: Opteron, Sandy Bridge, Broadwell. *)

val name : t -> string
(** Display name, e.g. ["Intel Broadwell"]. *)

val short_name : t -> string
(** Compact tag used in tables, e.g. ["bdw"]. *)

val processor : t -> string
(** Processor model from Table 2. *)

val processor_flag : t -> string
(** The processor-specific ISA flag of Table 2 ([default], [-xAVX],
    [-xCORE-AVX2]); fixed per platform, not part of the search space. *)

val of_short_name : string -> t option
