(** Per-loop code features.

    A loop enters the simulated tool-chain only through this feature vector:
    the compiler's heuristics read it to make code-generation decisions, the
    machine model reads it to cost those decisions, and COBAYN's
    Milepost/MICA-style extractors project it to learning features.  Values
    describe the loop at the benchmark's {e reference} input size; the
    workload scaling rules of {!Loop} rescale trip counts and working sets
    for other inputs. *)

type t = {
  flops_per_iter : float;  (** double-precision flops per iteration *)
  fma_fraction : float;  (** fraction of flops contractable into FMAs *)
  read_bytes : float;  (** contiguous read traffic, bytes/iteration *)
  write_bytes : float;  (** contiguous write traffic, bytes/iteration *)
  strided_bytes : float;  (** non-unit-stride traffic, bytes/iteration *)
  gather_bytes : float;  (** indirect (gather/scatter) traffic, bytes/iter *)
  divergence : float;  (** fraction of iterations taking data-dependent
                            branches (0 = straight-line) *)
  branch_predictability : float;
      (** 0 = random branches, 1 = perfectly predictable *)
  dep_chain : float;  (** loop-carried dependence chain length in flops
                           (0 = fully parallel iterations) *)
  reduction : bool;  (** the only loop-carried dependence is a reduction *)
  alias_ambiguity : float;
      (** 0 = compiler can prove pointers distinct, 1 = fully ambiguous
          (C pointer soup); Fortran programs sit near 0 *)
  calls_per_iter : float;  (** small out-of-line calls per iteration *)
  body_insns : int;  (** static instruction count of the loop body *)
  nest_depth : int;  (** loop-nest depth, 1 = innermost only *)
  working_set_kb : float;  (** per-invocation data footprint, KiB *)
  trip_count : float;  (** iterations per invocation *)
  invocations : float;  (** invocations per simulated time step *)
  parallel : bool;  (** body of an OpenMP [parallel for] *)
}

val default : t
(** A neutral, compute-light serial loop; define real loops with
    [{ default with ... }]. *)

val validate : t -> (unit, string) result
(** Check ranges (fractions in [0,1], non-negative counts, positive trip
    count).  Used by tests and by the program constructors. *)

val bytes_per_iter : t -> float
(** Total memory traffic per iteration over all stream classes. *)

val vector_hostility : t -> float
(** A derived score in [0, ~3]: how much SIMD execution is expected to be
    degraded by divergence, gathers and dependence chains.  Used by tests
    and by COBAYN's static features; the machine model uses the raw fields
    directly. *)
