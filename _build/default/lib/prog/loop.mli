(** Loops (and the non-loop pseudo-region) with workload scaling rules.

    Each loop carries its reference-size feature vector plus exponents
    describing how its trip count and working set grow with the input's size
    parameter; e.g. a 3-D stencil over an N³ grid has trip exponent 3 while a
    1-D sweep has exponent 1.  The machine model asks for features {e at} a
    given input via {!features_at}. *)

type t = {
  name : string;
  features : Feature.t;  (** at the program's reference size *)
  trip_exponent : float;  (** trips ∝ (size / reference_size) ^ e *)
  ws_exponent : float;  (** working set ∝ (size / reference_size) ^ e *)
}

val make :
  ?trip_exponent:float -> ?ws_exponent:float -> string -> Feature.t -> t
(** [make name features] with both exponents defaulting to 1.0.
    @raise Invalid_argument if [Feature.validate] rejects [features]. *)

val features_at : scale:float -> t -> Feature.t
(** [features_at ~scale l] rescales trip count and working set for an input
    whose size parameter is [scale] times the reference size. *)
