open Ft_prog

type region_profile = {
  trip_count : float;
  predictability : float;
  working_set_kb : float;
}

type t = (string * region_profile) list

let profile_of_loop ~scale (l : Loop.t) =
  let f = Loop.features_at ~scale l in
  {
    trip_count = f.Feature.trip_count;
    predictability = f.Feature.branch_predictability;
    working_set_kb = f.Feature.working_set_kb;
  }

let collect ~(program : Program.t) ~(input : Input.t) =
  if not program.Program.pgo_instrumentable then
    Error
      (Printf.sprintf
         "prof-gen: instrumented run of %s aborted (instrumentation \
          incompatible with the program's runtime behaviour)"
         program.Program.name)
  else
    let scale = Input.scale ~reference:program.Program.reference_size input in
    let entry (l : Loop.t) = (l.Loop.name, profile_of_loop ~scale l) in
    Ok (entry program.Program.nonloop :: List.map entry program.Program.loops)

let lookup t name = List.assoc_opt name t
let region_count = List.length
