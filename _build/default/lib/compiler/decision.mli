(** Per-loop code-generation decisions.

    A decision record is what the simulated compiler actually emits for one
    region: which SIMD width, how far it unrolled, whether it used
    non-temporal stores, how good the instruction schedule is, how many
    values it spilled, and how big the resulting code is.  Table 3 of the
    paper describes exactly this record for five Cloverleaf kernels
    (S/128/256, unroll×N, IS, IO, RS); {!summary} renders the same compact
    notation.  The machine model prices a loop from its decision record and
    its (transformed) feature vector alone. *)

type width = Scalar | W128 | W256

type t = {
  width : width;
  unroll : int;  (** ≥ 1; 1 = not unrolled *)
  if_converted : bool;  (** divergent branches turned into masks/cmov *)
  prefetch : int;  (** effective software-prefetch level, 0–4 *)
  prefetch_far : bool;  (** distance tuned for DRAM-resident streams *)
  streaming : bool;  (** non-temporal stores emitted *)
  inlined : bool;  (** small callees inlined into the loop body *)
  fma_used : bool;  (** FMA contraction emitted (needs target support) *)
  sched_quality : float;
      (** instruction-reordering quality: 1.0 = O3 default schedule,
          > 1 extracts more ILP (the paper's "IO") *)
  isel_quality : float;
      (** instruction-selection quality: 1.0 = default (the paper's "IS") *)
  spills : float;  (** register-spill traffic per iteration ("RS") *)
  redundancy : float;
      (** dynamic-instruction bloat factor ≥ 1.0 when redundancy
          eliminations (GVN/LICM/scalar replacement) are disabled *)
  tiled : bool;  (** loop tiling applied *)
  code_aligned : bool;  (** loop head aligned to fetch boundary *)
  profile_guided : bool;  (** trip counts/branch profile were available *)
  code_bytes : int;  (** i-cache footprint of this region's code *)
}

val lanes : width -> int
(** SIMD lanes for 64-bit elements: 1, 2 or 4. *)

val width_bits : width -> int
(** 64, 128 or 256. *)

val width_name : width -> string
(** ["S"], ["128"] or ["256"] — Table 3 notation. *)

val summary : t -> string
(** Table 3-style compact rendering, e.g. ["256, unroll2, IS, IO"] or
    ["S, RS"].  Decisions matching the plain O3 schedule render as just the
    width. *)

val equal : t -> t -> bool

val hash : t -> int
(** Stable structural hash of the emitted code (floats quantized to 1e-3).
    Two modules with equal decision records produce identical object code,
    so link-time behaviour is keyed on this rather than on flag
    spellings. *)
