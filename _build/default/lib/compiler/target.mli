(** Compile-time target descriptions.

    This is the compiler's view of the machine it is generating code for —
    ISA width, FMA availability, register file — as selected by the
    processor-specific flags of Table 2 ([default] / [-xAVX] /
    [-xCORE-AVX2]).  The execution-time performance parameters (frequencies,
    cache sizes, bandwidths) live in [Ft_machine.Arch]; keeping the two
    separate mirrors reality: a compiler knows the ISA, not the memory
    system's behaviour under 16 threads. *)

type t = {
  platform : Ft_prog.Platform.t;
  max_simd_bits : int;  (** 128 on Opteron, 256 on Sandy Bridge/Broadwell *)
  has_fma : bool;  (** true only on Broadwell (-xCORE-AVX2) *)
  vector_regs : int;  (** architectural vector registers (16 on all three) *)
  scalar_regs : int;  (** architectural integer/fp scalar registers *)
}

val for_platform : Ft_prog.Platform.t -> t
(** The Table 2 targets. *)
