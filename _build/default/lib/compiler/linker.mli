(** The link step ([xild]-style), including cross-module interference.

    This is the heart of the paper's §4.4 finding: when compilation modules
    built with {e different} CVs are linked and any of them enables IPO, the
    link-time optimizer revisits per-module decisions using whole-program
    information — it may re-vectorize a loop at full width, unroll it
    further, de-vectorize it, or degrade its schedule while allocating
    across module boundaries.  The paper observed exactly this: G.realized's
    mom9 was re-vectorized to 256-bit AVX2 and unrolled twice even though
    its module was compiled for scalar code.

    The perturbation is a {e deterministic} function of the full
    module→CV assignment, so linking the same objects always yields the
    same binary (as with a real linker), and uniform builds — every module
    sharing one CV, as in the per-loop data-collection phase — are never
    perturbed.  Greedy combination is blind to this effect (it extrapolates
    from uniform builds), while CFR measures assembled binaries and
    therefore optimizes through it. *)

type region = {
  cunit : Cunit.t;  (** the object as compiled *)
  final : Decision.t;  (** the decision after link-time optimization *)
}

type binary = {
  program : Ft_prog.Program.t;
  target : Target.t;
  nonloop : region;
  regions : region list;  (** hot-loop regions, in program order *)
  uniform : bool;  (** all modules shared one CV *)
  data_padded : bool;  (** shared arrays padded/aligned (non-loop module) *)
  layout_hot : bool;  (** hot-grouped code layout (non-loop module) *)
  total_code_bytes : int;
  link_luck : float;
      (** whole-binary code-layout/LTO luck factor (≥ 1.0); exactly 1.0
          for uniform builds, a deterministic half-normal draw keyed on
          the module→CV assignment otherwise.  This is the part of
          cross-module interference that per-loop measurements cannot
          reveal: greedy combination eats an average draw blind, while
          CFR's 1000 measured assemblies let it keep a near-1.0 draw. *)
  instrumented : bool;  (** Caliper annotations compiled in *)
}

val link :
  target:Target.t ->
  program:Ft_prog.Program.t ->
  ?instrumented:bool ->
  Cunit.t list ->
  binary
(** Link units (non-loop module first, as produced by
    {!Cunit.compile_program}) into an executable.
    @raise Invalid_argument if the unit list does not cover exactly the
    program's regions. *)

val assignment_fingerprint : Cunit.t list -> int
(** The deterministic hash of the module→object-code assignment that seeds
    link-time decisions (decision records, not flag spellings — a flag
    that changes no code-generation decision cannot change the link);
    exposed for tests. *)
