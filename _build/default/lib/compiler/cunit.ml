open Ft_prog

type t = {
  region_name : string;
  loop : Loop.t;
  cv : Ft_flags.Cv.t;
  decision : Decision.t;
}

let compile ~profile ~target ~language ?(pgo = None) ~cv (loop : Loop.t) =
  let decision, features_eff =
    Heuristics.decide ~profile ~target ~language ~pgo ~cv loop.Loop.features
  in
  let loop_eff = { loop with Loop.features = features_eff } in
  { region_name = loop.Loop.name; loop = loop_eff; cv; decision }

let compile_program ~profile ~target ?(pgo = None) ~cv_of
    (program : Program.t) =
  let language = program.Program.language in
  let compile_region (loop : Loop.t) =
    let name = loop.Loop.name in
    let region_pgo = Option.bind pgo (fun db -> Pgo.lookup db name) in
    compile ~profile ~target ~language ~pgo:region_pgo ~cv:(cv_of name) loop
  in
  compile_region program.Program.nonloop
  :: List.map compile_region program.Program.loops
