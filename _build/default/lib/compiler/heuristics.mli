(** The simulated compiler's per-loop decision making.

    [decide] maps one region's feature vector plus one compilation vector to
    the {!Decision.t} the compiler emits and the {e effective} feature
    vector after code transformations (interchange rewrites strided traffic,
    inlining grows the body and removes calls, etc.).

    The profitability analysis inside uses the personality's {e estimated}
    costs ({!Cprofile.t}), which differ from the machine model's true costs
    — that bias is what gives iterative compilation its headroom, and it is
    calibrated so the O3 decisions for the five Cloverleaf kernels match
    Table 3 of the paper (see [test_compiler.ml]). *)

val decide :
  profile:Cprofile.t ->
  target:Target.t ->
  language:Ft_prog.Program.language ->
  ?pgo:Pgo.region_profile option ->
  cv:Ft_flags.Cv.t ->
  Ft_prog.Feature.t ->
  Decision.t * Ft_prog.Feature.t
(** [decide ~profile ~target ~language ~pgo ~cv features] →
    (decision, effective features). *)

val internal_vector_estimate :
  profile:Cprofile.t -> Ft_prog.Feature.t -> Decision.width -> float
(** The compiler's {e internal} estimated speedup of vectorizing at a given
    width (1.0 = break-even vs scalar).  Exposed for tests and for the
    Table 3 case-study analysis. *)

val alias_provable :
  profile:Cprofile.t ->
  language:Ft_prog.Program.language ->
  cv:Ft_flags.Cv.t ->
  Ft_prog.Feature.t ->
  bool
(** Whether dependence analysis can rule out aliasing for this loop under
    the given flags (Fortran always can). *)
