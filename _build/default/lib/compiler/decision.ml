type width = Scalar | W128 | W256

type t = {
  width : width;
  unroll : int;
  if_converted : bool;
  prefetch : int;
  prefetch_far : bool;
  streaming : bool;
  inlined : bool;
  fma_used : bool;
  sched_quality : float;
  isel_quality : float;
  spills : float;
  redundancy : float;
  tiled : bool;
  code_aligned : bool;
  profile_guided : bool;
  code_bytes : int;
}

let lanes = function Scalar -> 1 | W128 -> 2 | W256 -> 4
let width_bits = function Scalar -> 64 | W128 -> 128 | W256 -> 256
let width_name = function Scalar -> "S" | W128 -> "128" | W256 -> "256"

let summary t =
  let extras = ref [] in
  let add s = extras := s :: !extras in
  if t.unroll > 1 then add (Printf.sprintf "unroll%d" t.unroll);
  if t.isel_quality > 1.01 then add "IS";
  if t.sched_quality > 1.01 then add "IO";
  if t.spills > 0.05 then add "RS";
  String.concat ", " (width_name t.width :: List.rev !extras)

let equal = ( = )

let hash t =
  let q f = int_of_float (f *. 1000.0) in
  let b v = if v then 1 else 0 in
  let acc = ref 17 in
  let mix v = acc := (!acc * 1000003) + v in
  mix (lanes t.width);
  mix t.unroll;
  mix (b t.if_converted);
  mix t.prefetch;
  mix (b t.prefetch_far);
  mix (b t.streaming);
  mix (b t.inlined);
  mix (b t.fma_used);
  mix (q t.sched_quality);
  mix (q t.isel_quality);
  mix (q t.spills);
  mix (q t.redundancy);
  mix (b t.tiled);
  mix (b t.code_aligned);
  mix (b t.profile_guided);
  mix t.code_bytes;
  !acc land max_int
