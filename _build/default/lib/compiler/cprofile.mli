(** Compiler personalities (heuristic parameter sets).

    The paper compares the Intel 17.04 compilers against GCC 5.4 in Fig. 1;
    both are production compilers whose difference, from the auto-tuner's
    point of view, is the {e bias} of their internal cost models: how they
    estimate vectorization overheads, where their profitability thresholds
    sit, and how they unroll.  A personality bundles those constants.

    A crucial, deliberate property: the estimates below are {e not} the
    machine model's true costs.  Production heuristics are tuned on
    benchmark suites and are systematically wrong for code they were not
    tuned on (§1 of the paper) — that gap is exactly the headroom iterative
    compilation exploits. *)

type vendor = Icc | Gcc

type t = {
  vendor : vendor;
  name : string;  (** e.g. ["icc-17.0.4"] *)
  est_divergence_cost : float;
      (** estimated per-lane-pair cost of masked divergent control flow *)
  est_gather_cost : float;  (** estimated cost of gathers per lane-pair *)
  est_strided_cost : float;  (** estimated shuffle cost for strided access *)
  vec_threshold : float;
      (** estimated speedup required before vectorizing under the default
          cost model; the conservative model adds {!conservative_margin} *)
  conservative_margin : float;
  alias_limit_basic : float;
      (** max tolerated alias ambiguity under basic dependence analysis *)
  alias_limit_advanced : float;
  alias_limit_aggressive : float;
  no_ansi_alias_penalty : float;
      (** subtracted from the alias limit when strict aliasing is off *)
  unroll_small_body : int;  (** body size (insns) below which unroll = 4 *)
  unroll_mid_body : int;  (** body size below which unroll = 2 *)
  unroll_large_body : int;  (** body size below which unroll = 3 *)
  base_quality : float;
      (** overall code-quality multiplier (> means faster code);
          ICC = 1.0, GCC slightly below on these HPC kernels *)
}

val icc : t
(** Intel C/C++/Fortran 17.0.4 personality. *)

val gcc : t
(** GCC 5.4.0 personality (used only for the Fig. 1 CE experiment). *)

val alias_limit : t -> Ft_flags.Cv.three_level -> float
(** The ambiguity limit for a given dependence-analysis precision. *)
