(** Profile-guided optimization support (the paper's §4.2 PGO comparator).

    Intel's PGO flow is two-phase: an instrumented build ([-prof-gen]) runs
    on the tuning input to collect trip counts and branch statistics, and a
    second build ([-prof-use]) feeds them to the heuristics.  The paper
    notes the instrumentation run {e fails} for LULESH and Optewe — the
    simulated flow reproduces that via
    [Ft_prog.Program.pgo_instrumentable]. *)

type region_profile = {
  trip_count : float;  (** measured iterations per invocation *)
  predictability : float;  (** observed branch predictability, [0,1] *)
  working_set_kb : float;  (** measured data footprint *)
}

type t
(** A profile database: region name → {!region_profile}. *)

val collect :
  program:Ft_prog.Program.t -> input:Ft_prog.Input.t -> (t, string) result
(** Run the instrumented build on the tuning input.  Returns [Error] with a
    diagnostic when the program cannot be instrumented (LULESH, Optewe). *)

val lookup : t -> string -> region_profile option
(** Profile for a region name, if the instrumented run covered it. *)

val region_count : t -> int
