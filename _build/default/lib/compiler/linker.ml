open Ft_prog
module Rng = Ft_util.Rng
module Cv = Ft_flags.Cv

type region = { cunit : Cunit.t; final : Decision.t }

type binary = {
  program : Program.t;
  target : Target.t;
  nonloop : region;
  regions : region list;
  uniform : bool;
  data_padded : bool;
  layout_hot : bool;
  total_code_bytes : int;
  link_luck : float;
  instrumented : bool;
}

(* Keyed on the *object code* (decision records), not the flag spelling:
   two CVs producing identical per-module decisions link identically. *)
let assignment_fingerprint units =
  List.fold_left
    (fun acc (u : Cunit.t) ->
      let h = Decision.hash u.Cunit.decision in
      (acc * 1000003) + h + Rng.hash_string u.Cunit.region_name)
    5381 units

(* Link-time perturbation of one region's decision.  Drawn from a stream
   seeded by (program, region, whole-assignment fingerprint): deterministic
   per assembled binary, different across assignments. *)
let perturb ~(target : Target.t) ~program_name ~fingerprint (u : Cunit.t) =
  let d = u.Cunit.decision in
  let f = u.Cunit.loop.Loop.features in
  let rng =
    Rng.create
      (Rng.hash_string
         (Printf.sprintf "lto:%s:%s:%d" program_name u.Cunit.region_name
            fingerprint))
  in
  let x = Rng.float rng 1.0 in
  if x < 0.30 then d
  else if x < 0.48 then
    (* Re-vectorize at full width with whole-program dependence info. *)
    let dep_ok = f.Feature.dep_chain <= 0.0 || f.Feature.reduction in
    if not dep_ok then d
    else
      let width =
        if target.Target.max_simd_bits >= 256 then Decision.W256
        else Decision.W128
      in
      {
        d with
        Decision.width;
        if_converted = d.Decision.if_converted || f.Feature.divergence > 0.0;
        unroll = max d.Decision.unroll 2;
        spills = d.Decision.spills +. 1.5;
        code_bytes = int_of_float (float_of_int d.Decision.code_bytes *. 1.9);
      }
  else if x < 0.63 then
    if d.Decision.width = Decision.Scalar then d
    else
      {
        d with
        Decision.width = Decision.Scalar;
        code_bytes = int_of_float (float_of_int d.Decision.code_bytes *. 0.7);
      }
  else if x < 0.83 then
    {
      d with
      Decision.unroll = min 16 (d.Decision.unroll * 4);
      spills = d.Decision.spills +. 2.0;
      code_bytes = int_of_float (float_of_int d.Decision.code_bytes *. 3.0);
    }
  else
    (* Cross-module register allocation degrades the schedule. *)
    { d with Decision.sched_quality = d.Decision.sched_quality *. 0.85 }

let link ~target ~(program : Program.t) ?(instrumented = false) units =
  let expected =
    program.Program.nonloop.Loop.name
    :: List.map (fun (l : Loop.t) -> l.Loop.name) program.Program.loops
  in
  let got = List.map (fun (u : Cunit.t) -> u.Cunit.region_name) units in
  if List.sort compare expected <> List.sort compare got then
    invalid_arg "Linker.link: units do not match the program's regions";
  let find name =
    List.find (fun (u : Cunit.t) -> u.Cunit.region_name = name) units
  in
  let distinct_cvs =
    List.sort_uniq Cv.compare (List.map (fun (u : Cunit.t) -> u.Cunit.cv) units)
  in
  let uniform = List.length distinct_cvs <= 1 in
  let any_ipo = List.exists (fun (u : Cunit.t) -> Cv.ipo u.Cunit.cv) units in
  let fingerprint = assignment_fingerprint units in
  let finalize (u : Cunit.t) =
    let final =
      if uniform || not any_ipo then u.Cunit.decision
      else
        perturb ~target ~program_name:program.Program.name ~fingerprint u
    in
    { cunit = u; final }
  in
  let nonloop_unit = find program.Program.nonloop.Loop.name in
  let loop_regions =
    List.map
      (fun (l : Loop.t) -> finalize (find l.Loop.name))
      program.Program.loops
  in
  let nonloop = finalize nonloop_unit in
  let total_code_bytes =
    List.fold_left
      (fun acc r -> acc + r.final.Decision.code_bytes)
      nonloop.final.Decision.code_bytes loop_regions
  in
  let link_luck =
    if uniform || not any_ipo then 1.0
    else
      let rng =
        Rng.create
          (Rng.hash_string
             (Printf.sprintf "luck:%s:%d" program.Program.name fingerprint))
      in
      1.0 +. Float.abs (Rng.gauss rng ~mu:0.0 ~sigma:0.07)
  in
  {
    program;
    target;
    nonloop;
    regions = loop_regions;
    uniform;
    data_padded = Cv.pad_arrays nonloop_unit.Cunit.cv;
    layout_hot = Cv.code_layout nonloop_unit.Cunit.cv = Cv.Layout_hot;
    total_code_bytes;
    link_luck;
    instrumented;
  }
