type t = {
  platform : Ft_prog.Platform.t;
  max_simd_bits : int;
  has_fma : bool;
  vector_regs : int;
  scalar_regs : int;
}

let for_platform (platform : Ft_prog.Platform.t) =
  match platform with
  | Opteron ->
      { platform; max_simd_bits = 128; has_fma = false; vector_regs = 16; scalar_regs = 16 }
  | Sandy_bridge ->
      { platform; max_simd_bits = 256; has_fma = false; vector_regs = 16; scalar_regs = 16 }
  | Broadwell ->
      { platform; max_simd_bits = 256; has_fma = true; vector_regs = 16; scalar_regs = 16 }
