open Ft_prog
module Cv = Ft_flags.Cv

(* The decision pipeline, in compiler phase order:
     1. scalar transformations (inlining, interchange, distribution) that
        rewrite the feature vector;
     2. vectorization legality (dependences, aliasing, control flow) and
        profitability under the personality's *estimated* cost model;
     3. unrolling;
     4. back-end quality knobs (scheduling, selection, register allocation)
        and the resulting spill count;
     5. code-size accounting.
   Every constant here is a heuristic *belief*; the truth lives in
   Ft_machine.Exec. *)

let gather_share (f : Feature.t) =
  let total = Feature.bytes_per_iter f in
  if total <= 0.0 then 0.0 else f.Feature.gather_bytes /. total

let strided_share (f : Feature.t) =
  let total = Feature.bytes_per_iter f in
  if total <= 0.0 then 0.0 else f.Feature.strided_bytes /. total

let internal_vector_estimate ~(profile : Cprofile.t) (f : Feature.t) width =
  let l = float_of_int (Decision.lanes width) in
  if l <= 1.0 then 1.0
  else
    (* Estimated per-element overhead of executing this loop SIMD-wide;
       believed to grow quadratically with width (shuffles, masks).  The
       quadratic belief is what makes the compiler pick 128-bit code for
       moderately hostile loops, as ICC does for Cloverleaf's mom9. *)
    let hostility =
      (f.Feature.divergence *. profile.Cprofile.est_divergence_cost)
      +. (gather_share f *. profile.Cprofile.est_gather_cost)
      +. (strided_share f *. profile.Cprofile.est_strided_cost)
    in
    l /. (1.0 +. (hostility *. l *. l /. 4.0))

let alias_provable ~(profile : Cprofile.t) ~language ~cv (f : Feature.t) =
  match (language : Program.language) with
  | Fortran -> true
  | C | Cpp ->
      let limit = Cprofile.alias_limit profile (Cv.dep_analysis cv) in
      let limit =
        if Cv.ansi_alias cv then limit
        else limit -. profile.Cprofile.no_ansi_alias_penalty
      in
      f.Feature.alias_ambiguity < limit

(* --- scalar transformations (phase 1) ------------------------------- *)

let apply_inlining ~cv ~ipo_linked (f : Feature.t) =
  if f.Feature.calls_per_iter <= 0.0 then (f, false)
  else
    let factor = Cv.inline_factor cv in
    let inlined = factor >= 100 || (ipo_linked && factor >= 50) in
    if not inlined then (f, false)
    else
      let callee_insns = 14.0 *. min 2.0 (float_of_int factor /. 100.0) in
      let grown =
        f.Feature.body_insns
        + int_of_float (f.Feature.calls_per_iter *. callee_insns)
      in
      ({ f with Feature.calls_per_iter = 0.0; body_insns = grown }, true)

let apply_interchange ~cv (f : Feature.t) =
  if
    Cv.interchange cv && f.Feature.nest_depth >= 2
    && f.Feature.strided_bytes > f.Feature.read_bytes
  then
    let moved = 0.7 *. f.Feature.strided_bytes in
    {
      f with
      Feature.strided_bytes = f.Feature.strided_bytes -. moved;
      read_bytes = f.Feature.read_bytes +. moved;
    }
  else f

(* --- unrolling (phase 3) -------------------------------------------- *)

let auto_unroll ~(profile : Cprofile.t) ~vectorized (f : Feature.t) =
  let body = f.Feature.body_insns in
  let choice =
    if body <= profile.Cprofile.unroll_small_body then 4
    else if body <= profile.Cprofile.unroll_mid_body then 2
    else if body <= profile.Cprofile.unroll_large_body then 3
    else 1
  in
  if vectorized then min choice 2 else choice

let decide ~(profile : Cprofile.t) ~(target : Target.t) ~language ?(pgo = None)
    ~cv (f0 : Feature.t) =
  let olevel = Cv.base_opt_level cv in
  (* Phase 1: scalar transformations. *)
  let f1, inlined = apply_inlining ~cv ~ipo_linked:(Cv.ipo cv) f0 in
  let f2 = if olevel >= 2 then apply_interchange ~cv f1 else f1 in
  let f = if Cv.heap_arrays cv then
      { f2 with Feature.working_set_kb = f2.Feature.working_set_kb *. 1.02 }
    else f2
  in
  (* Phase 2: vectorization. *)
  let alias_ok = alias_provable ~profile ~language ~cv f in
  let dep_ok = f.Feature.dep_chain <= 0.0 || f.Feature.reduction in
  (* The vectorizer if-converts divergent bodies itself (masked
     execution); the Branch_conv/Cmov flags only steer *scalar*
     if-conversion below. *)
  let legal = alias_ok && dep_ok && olevel >= 2 in
  let clamp_width w =
    match (w : Decision.width) with
    | W256 when target.Target.max_simd_bits < 256 -> Decision.W128
    | w -> w
  in
  let width =
    if not (Cv.vec_enabled cv) || olevel < 2 || not legal then Decision.Scalar
    else
      match Cv.simd_pref cv with
      | Cv.Width_128 -> Decision.W128
      | Cv.Width_256 -> clamp_width Decision.W256
      | Cv.Width_auto ->
          let threshold =
            let base = profile.Cprofile.vec_threshold in
            let base = if olevel = 2 then base +. 0.25 else base in
            match Cv.vector_cost cv with
            | Cv.Level_low -> base +. profile.Cprofile.conservative_margin
            | Cv.Level_default -> base
            | Cv.Level_high -> 0.0
          in
          let candidates =
            if target.Target.max_simd_bits >= 256 then
              [ Decision.W128; Decision.W256 ]
            else [ Decision.W128 ]
          in
          let est w = internal_vector_estimate ~profile f w in
          let best =
            Ft_util.Stats.max_by est (List.map (fun w -> (w : Decision.width)) candidates)
          in
          (* Production cost models refuse masked divergent reductions:
             the horizontal dependence plus per-lane masking rarely pays
             off in their training set.  An unlimited cost model (or a
             forced width, handled above) overrides this. *)
          let divergent_reduction_veto =
            f.Feature.reduction
            && f.Feature.divergence > 0.2
            && Cv.vector_cost cv <> Cv.Level_high
          in
          if est best >= threshold && not divergent_reduction_veto then best
          else Decision.Scalar
  in
  let vectorized = width <> Decision.Scalar in
  (* Phase 3: unrolling. *)
  let unroll =
    if olevel < 2 then 1
    else
      let auto = auto_unroll ~profile ~vectorized f in
      let auto = if olevel = 2 then min auto 2 else auto in
      let chosen =
        match Cv.unroll_bound cv with
        | None -> auto
        | Some 0 -> 1
        | Some n -> n
      in
      let chosen = if Cv.unroll_aggressive cv then chosen * 2 else chosen in
      let chosen = min chosen 16 in
      (* Never unroll past a quarter of the trip count. *)
      let trip_cap =
        max 1 (int_of_float (f.Feature.trip_count /. 4.0 /.
                             float_of_int (Decision.lanes width)))
      in
      max 1 (min chosen trip_cap)
  in
  (* Control flow: vector loops must be if-converted; scalar loops are
     if-converted when the compiler believes the branches mispredict. *)
  let if_converted =
    if f.Feature.divergence <= 0.0 then false
    else if vectorized then true
    else
      Cv.branch_conv cv && Cv.cmov cv
      && f.Feature.divergence *. (1.0 -. f.Feature.branch_predictability)
         > 0.08
  in
  (* Prefetching. *)
  let prefetch = if olevel < 2 then 0 else Cv.prefetch_level cv in
  let prefetch_far =
    match Cv.prefetch_distance cv with
    | Some Cv.Level_high -> true
    | Some _ -> false
    | None -> (
        (* auto: with a profile the compiler knows the working set. *)
        match pgo with
        | Some p -> p.Pgo.working_set_kb > 20480.0
        | None -> false)
  in
  (* Non-temporal stores. *)
  let streaming =
    if f.Feature.write_bytes <= 0.0 then false
    else
      match Cv.streaming_stores cv with
      | Cv.Stream_always -> true
      | Cv.Stream_never -> false
      | Cv.Stream_auto ->
          let ws_known_large =
            match pgo with
            | Some p -> p.Pgo.working_set_kb > 20480.0
            | None -> f.Feature.trip_count >= 4096.0
          in
          vectorized && f.Feature.write_bytes >= 24.0 && ws_known_large
  in
  let fma_used =
    target.Target.has_fma && Cv.fma cv && f.Feature.fma_fraction > 0.0
    && olevel >= 2
  in
  (* Phase 4: back end. *)
  let sched_quality =
    match Cv.sched cv with
    | Cv.Level_low -> 0.97
    | Cv.Level_default -> 1.0
    | Cv.Level_high -> 1.03
  in
  let sched_quality = if olevel = 1 then sched_quality *. 0.94 else sched_quality in
  let isel_quality =
    (* Advanced selection pays off on large bodies with real choice in the
       instruction mix; on small bodies the extra search just perturbs an
       already-optimal schedule. *)
    match Cv.isel cv with
    | Cv.Isel_default -> 1.0
    | Cv.Isel_advanced -> if f.Feature.body_insns >= 48 then 1.02 else 0.99
    | Cv.Isel_size -> 0.985
  in
  let pressure =
    (float_of_int (min f.Feature.body_insns 120) /. 9.0)
    +. (float_of_int unroll *. if vectorized then 1.8 else 1.0)
    +. (if Cv.scalar_rep cv then 2.0 else 0.0)
    +. (match Cv.sched cv with
       | Cv.Level_high -> 4.0
       | Cv.Level_low -> -2.0
       | Cv.Level_default -> 0.0)
    +. if vectorized then 3.0 else 0.0
  in
  let regs =
    float_of_int target.Target.vector_regs
    +. (if Cv.regalloc_aggressive cv then 2.0 else 0.0)
    +. if Cv.distribution cv then 2.0 else 0.0
  in
  let spills =
    let raw = max 0.0 (pressure -. regs) in
    raw *. if Cv.spill_opt cv then 0.25 else 0.45
  in
  let redundancy =
    let base = 1.0 in
    let base = if Cv.gvn cv then base else base +. 0.06 in
    let base = if Cv.licm cv then base else base +. 0.08 in
    let base = if Cv.scalar_rep cv then base else base +. 0.05 in
    let base =
      match olevel with 1 -> base +. 0.22 | 2 -> base +. 0.04 | _ -> base
    in
    (* Aggressive dependence analysis resolves borderline aliasing by
       multi-versioning: code whose pointers stay genuinely ambiguous
       executes the runtime checks on every trip.  This is the per-program
       cost of the flag that unlocks alias-blocked kernels — pointer-soup
       regions pay for it. *)
    let base =
      if
        Cv.dep_analysis cv = Cv.Level_high
        && f.Feature.alias_ambiguity > profile.Cprofile.alias_limit_aggressive
      then base +. 0.08
      else base
    in
    base /. profile.Cprofile.base_quality
  in
  let tiled = Cv.tile_size cv <> None && f.Feature.nest_depth >= 2 in
  (* Phase 5: code size. *)
  let code_bytes =
    let width_factor =
      match width with Decision.Scalar -> 1.0 | W128 -> 1.15 | W256 -> 1.3
    in
    let isel_factor = match Cv.isel cv with Cv.Isel_size -> 0.85 | _ -> 1.0 in
    let split_factor =
      if Cv.func_split cv && f.Feature.divergence > 0.0 then 0.8 else 1.0
    in
    let body = float_of_int f.Feature.body_insns *. 4.2 in
    let main = body *. float_of_int unroll *. width_factor in
    let remainder = if vectorized || unroll > 1 then body *. 0.3 else 0.0 in
    let aligned_pad = if Cv.align_loops cv then 32.0 else 0.0 in
    int_of_float
      (((main +. remainder) *. isel_factor *. split_factor)
      +. 80.0 +. aligned_pad)
  in
  let decision =
    {
      Decision.width;
      unroll;
      if_converted;
      prefetch;
      prefetch_far;
      streaming;
      inlined;
      fma_used;
      sched_quality;
      isel_quality;
      spills;
      redundancy;
      tiled;
      code_aligned = Cv.align_loops cv;
      profile_guided = pgo <> None;
      code_bytes;
    }
  in
  (decision, f)
