(** Compilation units: one compiled region (object file).

    FuncyTuner's per-loop model compiles each outlined hot loop — plus the
    aggregate non-loop module — as its own unit with its own CV (§2.1).  The
    traditional model is the special case where every unit shares one CV. *)

type t = {
  region_name : string;
  loop : Ft_prog.Loop.t;
      (** the region with its {e effective} (post-transformation) features *)
  cv : Ft_flags.Cv.t;
  decision : Decision.t;
}

val compile :
  profile:Cprofile.t ->
  target:Target.t ->
  language:Ft_prog.Program.language ->
  ?pgo:Pgo.region_profile option ->
  cv:Ft_flags.Cv.t ->
  Ft_prog.Loop.t ->
  t
(** Compile one region under one CV. *)

val compile_program :
  profile:Cprofile.t ->
  target:Target.t ->
  ?pgo:Pgo.t option ->
  cv_of:(string -> Ft_flags.Cv.t) ->
  Ft_prog.Program.t ->
  t list
(** Compile every region of a program — the non-loop module first, then the
    loops in program order — choosing each unit's CV with [cv_of region_name]
    (constant function = traditional per-program model). *)
