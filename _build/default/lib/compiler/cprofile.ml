type vendor = Icc | Gcc

type t = {
  vendor : vendor;
  name : string;
  est_divergence_cost : float;
  est_gather_cost : float;
  est_strided_cost : float;
  vec_threshold : float;
  conservative_margin : float;
  alias_limit_basic : float;
  alias_limit_advanced : float;
  alias_limit_aggressive : float;
  no_ansi_alias_penalty : float;
  unroll_small_body : int;
  unroll_mid_body : int;
  unroll_large_body : int;
  base_quality : float;
}

let icc =
  {
    vendor = Icc;
    name = "icc-17.0.4";
    est_divergence_cost = 0.15;
    est_gather_cost = 1.1;
    est_strided_cost = 0.75;
    vec_threshold = 1.15;
    conservative_margin = 0.45;
    alias_limit_basic = 0.35;
    alias_limit_advanced = 0.65;
    alias_limit_aggressive = 0.85;
    no_ansi_alias_penalty = 0.25;
    unroll_small_body = 24;
    unroll_mid_body = 44;
    unroll_large_body = 72;
    base_quality = 1.0;
  }

let gcc =
  {
    vendor = Gcc;
    name = "gcc-5.4.0";
    est_divergence_cost = 0.2;
    est_gather_cost = 1.25;
    est_strided_cost = 0.85;
    vec_threshold = 1.3;
    conservative_margin = 0.5;
    alias_limit_basic = 0.3;
    alias_limit_advanced = 0.6;
    alias_limit_aggressive = 0.8;
    no_ansi_alias_penalty = 0.3;
    unroll_small_body = 20;
    unroll_mid_body = 52;
    unroll_large_body = 52;
    base_quality = 0.965;
  }

let alias_limit t (level : Ft_flags.Cv.three_level) =
  match level with
  | Level_low -> t.alias_limit_basic
  | Level_default -> t.alias_limit_advanced
  | Level_high -> t.alias_limit_aggressive
