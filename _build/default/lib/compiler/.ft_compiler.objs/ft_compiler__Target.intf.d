lib/compiler/target.mli: Ft_prog
