lib/compiler/target.ml: Ft_prog
