lib/compiler/heuristics.ml: Cprofile Decision Feature Ft_flags Ft_prog Ft_util List Pgo Program Target
