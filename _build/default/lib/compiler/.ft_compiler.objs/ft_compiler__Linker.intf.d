lib/compiler/linker.mli: Cunit Decision Ft_prog Target
