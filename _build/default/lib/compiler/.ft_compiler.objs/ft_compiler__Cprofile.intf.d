lib/compiler/cprofile.mli: Ft_flags
