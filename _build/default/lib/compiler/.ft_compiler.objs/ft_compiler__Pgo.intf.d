lib/compiler/pgo.mli: Ft_prog
