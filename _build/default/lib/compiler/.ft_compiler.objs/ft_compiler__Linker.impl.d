lib/compiler/linker.ml: Cunit Decision Feature Float Ft_flags Ft_prog Ft_util List Loop Printf Program Target
