lib/compiler/cprofile.ml: Ft_flags
