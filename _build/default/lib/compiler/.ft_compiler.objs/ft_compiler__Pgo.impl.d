lib/compiler/pgo.ml: Feature Ft_prog Input List Loop Printf Program
