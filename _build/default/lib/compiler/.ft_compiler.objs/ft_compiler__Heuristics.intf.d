lib/compiler/heuristics.mli: Cprofile Decision Ft_flags Ft_prog Pgo Target
