lib/compiler/decision.ml: List Printf String
