lib/compiler/cunit.mli: Cprofile Decision Ft_flags Ft_prog Pgo Target
