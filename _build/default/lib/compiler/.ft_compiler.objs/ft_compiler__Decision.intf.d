lib/compiler/decision.mli:
