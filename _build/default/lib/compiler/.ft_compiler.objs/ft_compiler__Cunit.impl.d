lib/compiler/cunit.ml: Decision Ft_flags Ft_prog Heuristics List Loop Option Pgo Program
