(* The benchmark harness: regenerates every table and figure of the paper
   (run with no arguments for all of them, or name experiments:
   tab1 tab2 fig1 fig5a fig5b fig5c fig6 fig7a fig7b fig8 fig9 tab3
   ablations micro engine).

   Flags (anywhere on the command line):
     --jobs N | -j N   size of the evaluation-engine worker pool
                       (default 1 = sequential; results are bit-identical
                       for any value)
     --stats           print engine telemetry at exit

   Absolute speedups come from the simulated tool-chain, so they are not
   expected to equal the paper's testbed numbers; the shapes (who wins,
   roughly by how much, where greedy fails) are the reproduction target —
   EXPERIMENTS.md records the side-by-side comparison.

   "micro" runs Bechamel micro-benchmarks of the framework machinery (one
   Test.make per core operation); "engine" exercises the parallel
   evaluation engine (determinism, cache reuse, sequential-vs-parallel
   wall clock). *)

open Ft_experiments
module Table = Ft_util.Table

let jobs = ref 1
let stats = ref false
let lab = lazy (Lab.create ~jobs:!jobs ())

let banner name description =
  Printf.printf "\n=== %s — %s ===\n%!" name description

let note fmt = Printf.printf (fmt ^^ "\n%!")

let run_tab1 () =
  banner "tab1" "Table 1: benchmark list";
  Table.print (Ft_suite.Suite.table1 ())

let run_tab2 () =
  banner "tab2" "Table 2: platforms and inputs";
  Table.print (Ft_suite.Suite.table2 ())

let run_fig1 () =
  banner "fig1" "Combined Elimination vs O3 (paper: no significant gain)";
  Series.print (Fig1.run (Lazy.force lab))

let run_fig5 panel =
  let platform, tag =
    match panel with
    | `A -> (Ft_prog.Platform.Opteron, "fig5a")
    | `B -> (Ft_prog.Platform.Sandy_bridge, "fig5b")
    | `C -> (Ft_prog.Platform.Broadwell, "fig5c")
  in
  banner tag
    "Random / G.realized / FR / CFR / G.Independent vs O3 (paper GM: CFR \
     +9.2/+10.3/+9.4%)";
  Series.print (Fig5.panel (Lazy.force lab) platform)

let run_fig6 () =
  banner "fig6"
    "State of the art on Broadwell (paper GM: OpenTuner +4.9%, COBAYN \
     static +4.6%, dynamic <1.0, PGO marginal, CFR +9.4%)";
  let l = Lazy.force lab in
  Series.print (Fig6.run l);
  List.iter
    (fun (p : Ft_prog.Program.t) ->
      let pgo = Lab.pgo l p in
      match pgo.Ft_baselines.Pgo_driver.diagnostic with
      | Some msg -> note "  note: %s" msg
      | None -> ())
    Ft_suite.Suite.all

let run_fig7 small =
  let tag = if small then "fig7a" else "fig7b" in
  banner tag
    "Generalization to different work-set sizes (paper GM: CFR +12.3% \
     small / +10.7% large)";
  Series.print (Fig7.panel (Lazy.force lab) ~small)

let run_fig8 () =
  banner "fig8" "Cloverleaf time-step scaling (paper: CFR benefit stable)";
  Series.print (Fig8.run (Lazy.force lab))

let run_fig9 () =
  banner "fig9"
    "Per-loop speedups, top-5 Cloverleaf kernels (paper: 256-bit loses on \
     cell3/cell7; scalar wins dt/mom9; acc wants 256)";
  Series.print (Casestudy.fig9 (Lazy.force lab))

let run_tab3 () =
  banner "tab3" "Decision matrix for the Cloverleaf kernels";
  Table.print (Casestudy.table3 (Lazy.force lab))

let run_ablations () =
  banner "ablations"
    "top-X sweep, convergence, adaptive budget, elimination variants, \
     critical flags";
  let l = Lazy.force lab in
  Series.print (Ablations.top_x_sweep l);
  Table.print (Ablations.convergence l);
  Table.print (Ablations.adaptive_budget l);
  Series.print (Ablations.elimination_variants l);
  Table.print (Ablations.critical_flags_table l)

(* --- Bechamel micro-benchmarks -------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let toolchain = Ft_machine.Toolchain.make Ft_prog.Platform.Broadwell in
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let input = Ft_suite.Suite.tuning_input Ft_prog.Platform.Broadwell program in
  let rng = Ft_util.Rng.create 7 in
  let cv = Ft_flags.Space.sample rng in
  let binary = Ft_machine.Toolchain.compile_uniform toolchain ~cv program in
  let pool = Ft_flags.Space.sample_pool rng 100 in
  let samples =
    List.init 200 (fun _ ->
        Option.get (Ft_flags.Cv.to_bits (Ft_flags.Space.sample_binary rng)))
  in
  Test.make_grouped ~name:"funcytuner"
    [
      Test.make ~name:"cv_sample"
        (Staged.stage (fun () -> ignore (Ft_flags.Space.sample rng)));
      Test.make ~name:"compile_program"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Toolchain.compile_uniform toolchain ~cv program)));
      Test.make ~name:"evaluate_binary"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Exec.evaluate
                  ~arch:toolchain.Ft_machine.Toolchain.arch ~input binary)));
      Test.make ~name:"measure_binary"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Exec.measure
                  ~arch:toolchain.Ft_machine.Toolchain.arch ~input ~rng binary)));
      Test.make ~name:"top_k_prune"
        (Staged.stage (fun () ->
             let costs =
               Array.init 1000 (fun i -> float_of_int (i * 7919 mod 997))
             in
             ignore (Ft_util.Stats.top_k_indices 20 costs)));
      Test.make ~name:"crossover"
        (Staged.stage (fun () ->
             ignore (Ft_flags.Space.crossover rng pool.(3) pool.(7))));
      Test.make ~name:"chow_liu_fit"
        (Staged.stage (fun () ->
             ignore (Ft_cobayn.Chow_liu.fit ~dims:Ft_flags.Flag.count samples)));
    ]

let run_micro () =
  banner "micro" "Bechamel micro-benchmarks of the framework machinery";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 256) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Micro-benchmarks (monotonic clock)"
      [ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, estimate) -> Table.add_row table [ name; estimate ])
    (List.sort compare !rows);
  Table.print table

(* --- evaluation-engine exercise -------------------------------------- *)

let run_engine () =
  banner "engine"
    "parallel evaluation engine: determinism, cache reuse, wall clock";
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let platform = Ft_prog.Platform.Broadwell in
  let input = Ft_suite.Suite.tuning_input platform program in
  let collect jobs =
    let session =
      Funcytuner.Tuner.make_session ~pool_size:300 ~jobs ~platform ~program
        ~input ~seed:42 ()
    in
    let t0 = Unix.gettimeofday () in
    let c = Lazy.force session.Funcytuner.Tuner.collection in
    let elapsed = Unix.gettimeofday () -. t0 in
    (session, c, elapsed)
  in
  let parallel_jobs = max 4 !jobs in
  let _, seq, seq_s = collect 1 in
  let par_session, par, par_s = collect parallel_jobs in
  note "collection (K=300, swim/bdw): sequential %.3f s, %d workers %.3f s \
        (%.2fx)"
    seq_s parallel_jobs par_s (seq_s /. par_s);
  let identical =
    seq.Funcytuner.Collection.times = par.Funcytuner.Collection.times
    && seq.Funcytuner.Collection.totals = par.Funcytuner.Collection.totals
  in
  note "determinism: parallel matrix bit-identical to sequential = %b"
    identical;
  if not identical then failwith "engine determinism violated";
  (* CFR on the same session reuses the engine cache for every assignment
     it has already linked; a second CFR run is served entirely by it. *)
  let r1 = Funcytuner.Tuner.run_cfr ~top_x:10 par_session in
  let before =
    Ft_engine.Telemetry.snapshot
      (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx)
  in
  let t0 = Unix.gettimeofday () in
  let r2 = Funcytuner.Tuner.run_cfr ~top_x:10 par_session in
  let warm_s = Unix.gettimeofday () -. t0 in
  let after =
    Ft_engine.Telemetry.snapshot
      (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx)
  in
  note "CFR speedup %.3f; re-run from warm cache: %.3f s, +%d hits, +%d \
        misses, same result = %b"
    r1.Funcytuner.Result.speedup warm_s
    (after.Ft_engine.Telemetry.cache_hits
   - before.Ft_engine.Telemetry.cache_hits)
    (after.Ft_engine.Telemetry.cache_misses
   - before.Ft_engine.Telemetry.cache_misses)
    (r1.Funcytuner.Result.speedup = r2.Funcytuner.Result.speedup);
  print_string
    (Ft_engine.Telemetry.render
       (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx))

let experiments =
  [
    ("tab1", run_tab1);
    ("tab2", run_tab2);
    ("fig1", run_fig1);
    ("fig5a", fun () -> run_fig5 `A);
    ("fig5b", fun () -> run_fig5 `B);
    ("fig5c", fun () -> run_fig5 `C);
    ("fig6", run_fig6);
    ("fig7a", fun () -> run_fig7 true);
    ("fig7b", fun () -> run_fig7 false);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("tab3", run_tab3);
    ("ablations", run_ablations);
    ("micro", run_micro);
    ("engine", run_engine);
  ]

(* "engine" benchmarks the engine itself on its own sessions, so running
   every experiment does not include it by default. *)
let default_experiments =
  List.filter (fun (name, _) -> name <> "engine") experiments

let set_jobs s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> jobs := n
  | _ ->
      Printf.eprintf "bench: --jobs expects an integer >= 1, got '%s'\n" s;
      exit 2

let parse_args argv =
  let rec go names = function
    | [] -> List.rev names
    | "--stats" :: rest ->
        stats := true;
        go names rest
    | ("--jobs" | "-j") :: n :: rest ->
        set_jobs n;
        go names rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs="
      ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        go names rest
    | name :: rest -> go (name :: names) rest
  in
  go [] (List.tl (Array.to_list argv))

let () =
  let requested =
    match parse_args Sys.argv with
    | [] -> List.map fst default_experiments
    | names -> names
  in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  if !stats then begin
    print_newline ();
    print_string (Ft_engine.Telemetry.render (Lab.telemetry (Lazy.force lab)))
  end;
  Printf.printf "\n(total harness CPU time: %.1f s)\n" (Sys.time () -. t0)
